#!/usr/bin/env python3
"""Queue-depth study: a compact Figure 5 + Figure 6, with analysis.

Sweeps the posted-receive and unexpected-message queue benchmarks over a
coarse grid for the paper's three receiver configurations and reports the
derived quantities Section VI discusses: warm/cold per-entry cost, the
cache knee, the ALPU's fixed overhead and its break-even queue length.

Run:  python examples/queue_depth_study.py          (about a minute)
      python examples/queue_depth_study.py --fast   (coarser, seconds)
"""

import argparse

from repro.analysis.curves import (
    crossover_length,
    detect_knee,
    fixed_overhead_ns,
    per_entry_slope_ns,
)
from repro.analysis.tables import format_curve
from repro.workloads.preposted import PrepostedParams, run_preposted
from repro.workloads.runner import nic_preset
from repro.workloads.unexpected import UnexpectedParams, run_unexpected


def preposted_curves(lengths, iterations):
    curves = {}
    for preset in ("baseline", "alpu128", "alpu256"):
        series = []
        for length in lengths:
            result = run_preposted(
                nic_preset(preset),
                PrepostedParams(
                    queue_length=length,
                    traverse_fraction=1.0,
                    iterations=iterations,
                    warmup=2,
                ),
            )
            series.append(result.median_ns)
        curves[preset] = series
    return curves


def unexpected_curves(lengths, iterations):
    curves = {}
    for preset in ("baseline", "alpu128", "alpu256"):
        series = []
        for length in lengths:
            result = run_unexpected(
                nic_preset(preset),
                UnexpectedParams(
                    queue_length=length, iterations=iterations, warmup=2
                ),
            )
            series.append(result.median_ns)
        curves[preset] = series
    return curves


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="coarser grid")
    args = parser.parse_args()

    if args.fast:
        lengths = [1, 5, 32, 128, 200, 300, 500]
        iterations = 5
    else:
        lengths = [1, 2, 5, 8, 16, 32, 64, 128, 160, 200, 256, 320, 400, 500]
        iterations = 8

    print("Posted-receive queue (Figure 5 projections, full traversal)")
    print("-" * 64)
    curves = preposted_curves(lengths, iterations)
    for preset, series in curves.items():
        print(format_curve(preset, lengths, series))

    baseline = curves["baseline"]
    warm = per_entry_slope_ns(lengths, baseline, hi=128)
    knee = detect_knee(lengths, baseline)
    cold = per_entry_slope_ns(lengths, baseline, lo=max(300, knee or 0))
    print(f"\n  baseline warm cost : {warm:5.1f} ns/entry   (paper ~15)")
    print(f"  cache knee         : {knee} entries      (32 KB L1 exhausted)")
    print(f"  baseline cold cost : {cold:5.1f} ns/entry   (paper ~64)")
    for preset, capacity in (("alpu128", 128), ("alpu256", 256)):
        series = curves[preset]
        overhead = fixed_overhead_ns(lengths[:2], series[:2]) - fixed_overhead_ns(
            lengths[:2], baseline[:2]
        )
        breakeven = crossover_length(lengths, baseline, lengths, series)
        print(
            f"  {preset}: fixed overhead {overhead:+5.1f} ns, "
            f"break-even at {breakeven:.1f} entries, "
            f"flat through {capacity} entries"
        )

    print()
    print("Unexpected-message queue (Figure 6)")
    print("-" * 64)
    unexpected_lengths = [x for x in lengths if x <= 300]
    curves6 = unexpected_curves(unexpected_lengths, iterations)
    for preset, series in curves6.items():
        print(format_curve(preset, unexpected_lengths, series))
    win = crossover_length(
        unexpected_lengths, curves6["baseline"], unexpected_lengths, curves6["alpu128"]
    )
    print(f"\n  baseline falls behind the ALPU past ~{win:.0f} unexpected entries")


if __name__ == "__main__":
    main()
