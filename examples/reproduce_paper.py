#!/usr/bin/env python3
"""One-shot reproduction report: every table and figure, one run.

Equivalent to ``pytest benchmarks/ --benchmark-only -s`` but as a plain
script producing a single readable report -- handy for CI artifacts or a
quick "does the reproduction hold?" check.

Run:  python examples/reproduce_paper.py            (~1 minute)
"""

from repro.analysis.curves import crossover_length, detect_knee, per_entry_slope_ns
from repro.analysis.tables import format_curve, format_rows
from repro.core.cell import CellKind
from repro.fpga.report import (
    TABLE_IV_PUBLISHED,
    TABLE_V_PUBLISHED,
    model_table,
    render_table,
)
from repro.proc.params import TABLE_III_ROWS
from repro.workloads.preposted import PrepostedParams, run_preposted
from repro.workloads.runner import nic_preset
from repro.workloads.unexpected import UnexpectedParams, run_unexpected

RULE = "=" * 72


def tables() -> None:
    print(RULE)
    print("TABLE III -- processor simulation parameters (recorded verbatim)")
    print(format_rows(["Parameter", "CPU", "NIC Processor"], TABLE_III_ROWS))
    print()
    print(render_table(
        "TABLE IV -- Posted Receives ALPU (model vs published)",
        model_table(CellKind.POSTED_RECEIVE), TABLE_IV_PUBLISHED))
    print()
    print(render_table(
        "TABLE V -- Unexpected Messages ALPU (model vs published)",
        model_table(CellKind.UNEXPECTED), TABLE_V_PUBLISHED))


def figure5() -> None:
    print(RULE)
    print("FIGURE 5 -- latency vs posted-receive queue length (full traversal)")
    lengths = [1, 2, 5, 8, 16, 32, 64, 128, 160, 200, 256, 320, 400, 500]
    curves = {}
    for preset in ("baseline", "alpu128", "alpu256"):
        curves[preset] = [
            run_preposted(
                nic_preset(preset),
                PrepostedParams(
                    queue_length=length, traverse_fraction=1.0,
                    iterations=6, warmup=2,
                ),
            ).median_ns
            for length in lengths
        ]
        print(format_curve(preset, lengths, curves[preset]))
    baseline = curves["baseline"]
    warm = per_entry_slope_ns(lengths, baseline, hi=128)
    cold = per_entry_slope_ns(lengths, baseline, lo=320)
    knee = detect_knee(lengths, baseline)
    breakeven = crossover_length(lengths, baseline, lengths, curves["alpu256"])
    print(
        f"\n  warm {warm:.1f} ns/entry (paper ~15) | cold {cold:.1f} (paper ~64)"
        f" | knee {knee} entries | ALPU overhead "
        f"{curves['alpu256'][0] - baseline[0]:+.0f} ns (paper ~+80)"
        f" | break-even {breakeven:.1f} entries (paper ~5)"
    )


def figure6() -> None:
    print(RULE)
    print("FIGURE 6 -- latency vs unexpected queue length")
    lengths = [0, 5, 10, 20, 40, 70, 100, 150, 200, 256, 300]
    curves = {}
    for preset in ("baseline", "alpu128", "alpu256"):
        curves[preset] = [
            run_unexpected(
                nic_preset(preset),
                UnexpectedParams(queue_length=length, iterations=6, warmup=2),
            ).median_ns
            for length in lengths
        ]
        print(format_curve(preset, lengths, curves[preset]))
    win = crossover_length(lengths, curves["baseline"], lengths, curves["alpu128"])
    print(
        f"\n  short-queue ALPU loss {curves['alpu128'][0] - curves['baseline'][0]:+.0f} ns"
        f" (paper: tens of ns) | baseline falls behind past ~{win:.0f} entries"
        " (paper: ~70)"
    )


if __name__ == "__main__":
    tables()
    figure5()
    figure6()
    print(RULE)
    print("Full accounting: EXPERIMENTS.md; shape assertions: benchmarks/.")
