#!/usr/bin/env python3
"""A manager/worker pattern built on MPI_ANY_SOURCE wildcards.

Section II: "The use of MPI_ANY_SOURCE, where the source of the incoming
message is not known, is most prevalent. ... Re-coding applications to
eliminate the use of source wildcards is non-trivial."  This example is
that application shape: a manager farms work to three workers and
collects results with ANY_SOURCE receives, because it cannot know which
worker finishes first.

The run demonstrates two things:

1. wildcard receives pair correctly with whichever worker answers first
   (on both the baseline and ALPU NICs -- the ALPU's mask bits implement
   the wildcard in hardware);
2. the manager's posted-receive queue holds one wildcard per outstanding
   work item, so a deep pipeline means real queue traversal -- the load
   the ALPU exists to absorb.

Run:  python examples/wildcard_workers.py
"""

from repro.core.match import ANY_SOURCE
from repro.mpi.world import MpiWorld, WorldConfig
from repro.nic.nic import NicConfig

NUM_WORKERS = 3
ITEMS_PER_WORKER = 6
WORK_TAG = 1
RESULT_TAG = 2


def manager(mpi):
    yield from mpi.init()
    total_items = NUM_WORKERS * ITEMS_PER_WORKER
    # hand out the initial work
    for worker in range(1, NUM_WORKERS + 1):
        yield from mpi.send(dest=worker, tag=WORK_TAG, size=256)
    # collect with ANY_SOURCE; keep the pipeline full
    collected = 0
    handed_out = NUM_WORKERS
    results_by_worker = {w: 0 for w in range(1, NUM_WORKERS + 1)}
    while collected < total_items:
        request = yield from mpi.recv(source=ANY_SOURCE, tag=RESULT_TAG, size=64)
        # MPI_Status tells us which worker this was -- the whole point of
        # the wildcard pattern
        results_by_worker[request.status.source] += 1
        collected += 1
        if handed_out < total_items:
            # keep each worker busy: send the next item straight back to
            # whoever just finished
            yield from mpi.send(dest=request.status.source, tag=WORK_TAG, size=256)
            handed_out += 1
    # shut the workers down (zero-byte poison pills)
    for worker in range(1, NUM_WORKERS + 1):
        yield from mpi.send(dest=worker, tag=WORK_TAG, size=0)
    yield from mpi.finalize()
    return results_by_worker


def worker(mpi):
    yield from mpi.init()
    processed = 0
    while True:
        request = yield from mpi.recv(source=0, tag=WORK_TAG, size=256)
        if request.status.count == 0:  # zero-byte poison pill (MPI_Status)
            break
        processed += 1
        yield from mpi.send(dest=0, tag=RESULT_TAG, size=64)
    yield from mpi.finalize()
    return processed


def run(label, nic):
    world = MpiWorld(WorldConfig(num_ranks=NUM_WORKERS + 1, nic=nic))
    programs = {0: manager}
    for rank in range(1, NUM_WORKERS + 1):
        programs[rank] = worker
    results = world.run(programs)
    per_worker = [results[r] for r in range(1, NUM_WORKERS + 1)]
    manager_view = results[0]
    traversed = world.nics[0].firmware.entries_traversed
    print(f"{label:34s} items/worker={per_worker}  "
          f"manager-NIC entries traversed={traversed}  "
          f"finished at {world.now_ps / 1e6:.1f} us")
    assert sum(per_worker) == NUM_WORKERS * ITEMS_PER_WORKER
    assert sum(manager_view.values()) == NUM_WORKERS * ITEMS_PER_WORKER
    assert {w: per_worker[w - 1] for w in manager_view} == manager_view
    return world


def main() -> None:
    print(__doc__.splitlines()[0])
    print()
    run("baseline NIC", NicConfig.baseline())
    run("NIC + 128-entry ALPUs", NicConfig.with_alpu(128, 16))
    print(
        "\nEvery work item was delivered and every ANY_SOURCE receive\n"
        "paired with exactly one worker reply under both NICs; the ALPU\n"
        "run shows the manager NIC traversing (almost) no entries in\n"
        "software."
    )


if __name__ == "__main__":
    main()
