#!/usr/bin/env python3
"""Measure LogP/LogGP parameters of the simulated network.

Section I: "models such as LogP (and the LogGP extension) are much more
useful [than ping-pong latency].  Early work with these models indicated
that the most important thing for applications was to minimize the
overhead ... the second largest impact on application performance is gap
(effectively, the inverse of the message rate). ... time spent traversing
queues leads to an increase in gap."

This example measures, on the simulated system:

* **o_s** -- send overhead: host time consumed by MPI_Isend;
* **L + o_r** -- one-way latency of a pre-posted zero-byte message;
* **G** -- per-byte gap, from the slope of latency against message size;
* **gap under queue load** -- the effective per-message cost at the
  receiver when the posted-receive queue is deep: the quantity the ALPU
  exists to fix.

Run:  python examples/logp_parameters.py
"""

from repro.mpi.world import MpiWorld, WorldConfig
from repro.nic.nic import NicConfig
from repro.sim.process import now
from repro.sim.units import ps_to_ns
from repro.workloads.pingpong import PingPongParams, run_pingpong
from repro.workloads.preposted import PrepostedParams, run_preposted


def measure_send_overhead(nic: NicConfig) -> float:
    """Host cycles consumed by MPI_Isend itself (the LogP 'o_s')."""
    overheads = []

    def sender(mpi):
        yield from mpi.init()
        requests = []
        for i in range(8):
            t0 = yield now()
            request = yield from mpi.isend(dest=1, tag=i, size=0)
            t1 = yield now()
            overheads.append(ps_to_ns(t1 - t0))
            requests.append(request)
        yield from mpi.waitall(requests)
        yield from mpi.finalize()

    def receiver(mpi):
        yield from mpi.init()
        for i in range(8):
            yield from mpi.recv(source=0, tag=i, size=0)
        yield from mpi.finalize()

    MpiWorld(WorldConfig(num_ranks=2, nic=nic)).run({0: sender, 1: receiver})
    return sum(overheads) / len(overheads)


def measure_per_byte_gap(nic: NicConfig) -> float:
    """LogGP 'G': ns per byte, from two eager message sizes."""
    small = run_pingpong(nic, PingPongParams(message_size=512, iterations=5, warmup=2))
    large = run_pingpong(nic, PingPongParams(message_size=4096, iterations=5, warmup=2))
    return (large.mean_ns - small.mean_ns) / (4096 - 512)


def measure_queue_gap(nic: NicConfig, depth: int) -> float:
    """Effective extra receiver cost per message with a deep queue."""
    shallow = run_preposted(
        nic,
        PrepostedParams(queue_length=1, traverse_fraction=1.0, iterations=6, warmup=2),
    )
    deep = run_preposted(
        nic,
        PrepostedParams(
            queue_length=depth, traverse_fraction=1.0, iterations=6, warmup=2
        ),
    )
    return deep.median_ns - shallow.median_ns


def main() -> None:
    print("LogP/LogGP parameters of the simulated system")
    print("-" * 66)
    header = f"{'parameter':<38}{'baseline':>12}{'ALPU-256':>12}"
    print(header)
    print("-" * 66)
    rows = []
    for label, fn in [
        ("o_s: send overhead (ns)", measure_send_overhead),
        ("G: per-byte gap (ns/B)", measure_per_byte_gap),
        ("queue gap, 100-deep posted Q (ns)", lambda nic: measure_queue_gap(nic, 100)),
        ("queue gap, 400-deep posted Q (ns)", lambda nic: measure_queue_gap(nic, 400)),
    ]:
        baseline_value = fn(NicConfig.baseline())
        alpu_value = fn(NicConfig.with_alpu(256, 16))
        rows.append((label, baseline_value, alpu_value))
        print(f"{label:<38}{baseline_value:>12.2f}{alpu_value:>12.2f}")
    print("-" * 66)
    print(
        "\nThe offload keeps o_s and G untouched (the host and the wire\n"
        "are the same); what it removes is the queue-depth component of\n"
        "the gap -- the 'second largest impact on application\n"
        "performance' the introduction calls out."
    )


if __name__ == "__main__":
    main()
