#!/usr/bin/env python3
"""Quickstart: drive an ALPU directly, then run a simulated MPI job.

Part 1 exercises the associative list processing unit exactly through its
hardware protocol (Tables I and II): batched inserts, wildcard matching,
MPI's oldest-first ordering, and delete-on-match.

Part 2 stands up a complete two-node simulated system -- host CPUs, NICs
with embedded processors and caches, a 200 ns wire -- and measures a
zero-byte ping-pong on the baseline NIC versus an ALPU-accelerated one.

Run:  python examples/quickstart.py
"""

from repro.core import (
    ANY_SOURCE,
    Alpu,
    AlpuConfig,
    Insert,
    MatchFormat,
    MatchRequest,
    StartInsert,
    StopInsert,
)
from repro.nic.nic import NicConfig
from repro.workloads.pingpong import PingPongParams, run_pingpong


def part1_alpu_protocol() -> None:
    print("=" * 64)
    print("Part 1: the ALPU, driven through its command protocol")
    print("=" * 64)

    fmt = MatchFormat()  # the paper's 42-bit {context, source, tag} layout
    alpu = Alpu(AlpuConfig(total_cells=128, block_size=16))

    # Post three receives: an ANY_SOURCE wildcard first, then two exact.
    # Tags 1..3 stand in for pointers into NIC memory.
    receives = [
        ("ANY_SOURCE, tag 7", *fmt.pack_receive(context=1, source=ANY_SOURCE, tag=7)),
        ("source 4,   tag 7", *fmt.pack_receive(context=1, source=4, tag=7)),
        ("source 5,   tag 9", *fmt.pack_receive(context=1, source=5, tag=9)),
    ]
    (ack,) = alpu.submit(StartInsert())
    print(f"START INSERT -> START ACKNOWLEDGE (free entries: {ack.free_entries})")
    for pointer, (label, bits, mask) in enumerate(receives, start=1):
        alpu.submit(Insert(match_bits=bits, mask_bits=mask, tag=pointer))
        print(f"  INSERT tag={pointer}: {label}")
    alpu.submit(StopInsert())

    # A message from source 4 with tag 7 matches BOTH the wildcard and the
    # exact receive -- MPI semantics demand the OLDER one (the wildcard):
    header = MatchRequest(bits=fmt.pack(context=1, source=4, tag=7))
    (response,) = alpu.present_header(header)
    print(f"header (src=4, tag=7) -> {response}   <- ordering beats specificity")

    # The wildcard is consumed (delete-on-match); a second identical
    # message now matches the exact receive:
    (response,) = alpu.present_header(header)
    print(f"header (src=4, tag=7) -> {response}   <- wildcard was consumed")

    # Nothing matches tag 8:
    (response,) = alpu.present_header(MatchRequest(bits=fmt.pack(1, 4, 8)))
    print(f"header (src=4, tag=8) -> {response}")
    print(f"entries remaining in the ALPU: {alpu.occupancy}")


def part2_system_simulation() -> None:
    print()
    print("=" * 64)
    print("Part 2: zero-byte ping-pong on a simulated two-node system")
    print("=" * 64)
    params = PingPongParams(message_size=0, iterations=10, warmup=3)
    for label, nic in [
        ("baseline NIC (software list traversal)", NicConfig.baseline()),
        ("NIC + 256-entry ALPUs", NicConfig.with_alpu(256, 16)),
    ]:
        result = run_pingpong(nic, params)
        print(f"{label:42s} half-RTT: {result.mean_ns:7.1f} ns")
    print(
        "\nWith a one-entry queue each NIC pays ~80 ns of ALPU interaction\n"
        "overhead (the paper's Section VI-B penalty; here both ends of the\n"
        "ping-pong pay it).  The payoff appears as queues grow: run\n"
        "examples/queue_depth_study.py next."
    )


if __name__ == "__main__":
    part1_alpu_protocol()
    part2_system_simulation()
