#!/usr/bin/env python3
"""Per-link utilization of a halo exchange: crossbar vs. torus.

Runs the same 16-rank, 6-neighbour halo exchange (plus its per-iteration
allreduce) on two physical networks -- the dedicated-wire ``crossbar``
and the routed ``torus3d`` -- with telemetry on, then renders each
fabric's per-link utilization from the unified run report.

The point the numbers make: the crossbar spreads the same traffic over
O(N^2) idle wires (utilization per wire is tiny and uniform), while the
torus concentrates it onto 6 shared channels per node, where store-and-
forward contention -- and any hot spot a bad logical-to-physical mapping
creates -- becomes visible.

Run:  python examples/topology_halo.py          (a few seconds)
      python examples/topology_halo.py --ranks 32
"""

import argparse

from repro.obs.telemetry import Telemetry
from repro.workloads.halo import HaloParams, run_halo
from repro.workloads.runner import nic_preset


def link_utilizations(report):
    """``[(link name, utilization), ...]`` out of a run-report document."""
    out = []
    for name, value in report["metrics"].items():
        if name.startswith("fabric.wire") and name.endswith("/utilization"):
            link = name[: -len("/utilization")]
            src, _, dst = link[len("fabric.wire"):].partition("->")
            if src != dst:  # self-channels never carry halo traffic
                out.append((link, value))
    return out


def render(title, utils, width=40):
    print(f"\n{title}")
    print(f"  physical channels: {len(utils)}")
    busiest = sorted(utils, key=lambda item: item[1], reverse=True)[:8]
    peak = busiest[0][1] if busiest and busiest[0][1] > 0 else 1.0
    for name, value in busiest:
        bar = "#" * max(1, round(width * value / peak)) if value else ""
        print(f"  {name:<22} {value:7.4f} {bar}")
    mean = sum(value for _, value in utils) / len(utils)
    print(f"  mean utilization {mean:.5f}, peak {busiest[0][1]:.5f}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ranks", type=int, default=16)
    parser.add_argument("--message-size", type=int, default=2048)
    args = parser.parse_args()

    for topology in ("crossbar", "torus3d"):
        bundle = Telemetry(tracing=False, timeline=True, health=True)
        result = run_halo(
            nic_preset("alpu128"),
            HaloParams(
                ranks=args.ranks,
                topology=topology,
                message_size=args.message_size,
                iterations=3,
                warmup=1,
            ),
            telemetry=bundle,
        )
        report = bundle.report(
            benchmark="halo", topology=topology, ranks=args.ranks
        )
        render(
            f"{result.topology}: median iteration {result.median_ns:.0f} ns "
            f"(health: {report['health']['verdict']})",
            link_utilizations(report),
        )


if __name__ == "__main__":
    main()
