#!/usr/bin/env python3
"""Trace a ping-pong: metrics snapshot plus a Chrome/Perfetto trace file.

Runs a zero-byte ping-pong on the ALPU-accelerated NIC with the
telemetry layer on, prints the headline counters, and writes a Chrome
trace-event JSON.  Open the file at https://ui.perfetto.dev (or
chrome://tracing) to see ALPU match spans, firmware search spans, queue
depth counters and fabric packet instants on a shared timeline.

Run:  python examples/trace_pingpong.py [out.trace.json]
      (default output: pingpong.trace.json)
"""

import sys

from repro.nic.nic import NicConfig
from repro.obs import Telemetry
from repro.workloads.pingpong import PingPongParams, run_pingpong


def main(out_path: str = "pingpong.trace.json") -> None:
    telemetry = Telemetry()  # metrics + tracing + sampling probe
    result = run_pingpong(
        NicConfig.with_alpu(256, 16),
        PingPongParams(message_size=0, iterations=10, warmup=3),
        telemetry=telemetry,
    )

    print("zero-byte ping-pong, NIC + 256-entry ALPUs, telemetry on")
    print(f"  half-RTT mean: {result.mean_ns:7.1f} ns")

    snapshot = result.metrics
    print("\nheadline metrics (receiver NIC):")
    for key in (
        "nic1.alpu.posted/matches_attempted",
        "nic1.alpu.posted/match_successes",
        "nic1.alpu.posted/inserts",
        "nic1.fw/headers_matched",
        "nic1.fw/entries_traversed",
        "fabric/packets",
        "fabric/bytes",
    ):
        print(f"  {key:40s} {snapshot[key]}")
    depth = snapshot["nic1.postedRecvQ/depth_samples"]
    print(
        f"  {'nic1.postedRecvQ depth (sampled)':40s} "
        f"mean={depth['mean']:.2f} max={depth['max']} n={depth['count']}"
    )

    telemetry.write_chrome_trace(out_path)
    events = len(telemetry.tracer.records)
    print(f"\nwrote {out_path} ({events} trace records)")
    print("open it at https://ui.perfetto.dev or chrome://tracing")


if __name__ == "__main__":
    main(*sys.argv[1:2])
