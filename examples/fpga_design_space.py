#!/usr/bin/env python3
"""Explore the ALPU design space with the FPGA area/timing model.

Beyond reproducing the twelve published design points of Tables IV and V,
the structural model extrapolates: larger arrays, wider Portals-style
match words, narrower MPI-only configurations.  This example walks the
space and prints the engineering trade-offs the paper discusses --
including the "worst case" note that a mask bit per match bit is only
needed for Portals-class generality.

Run:  python examples/fpga_design_space.py
"""

from repro.analysis.tables import format_rows
from repro.core.alpu import AlpuConfig
from repro.core.cell import CellKind
from repro.core.pipeline import match_latency_cycles
from repro.fpga.resources import estimate_resources
from repro.fpga.timing import asic_clock_mhz, clock_mhz

#: Virtex-II Pro 100 capacity, for utilization estimates (the paper: the
#: 256-entry posted ALPU consumes ~35% of the part)
V2P100_SLICES = 44_096


def sweep_sizes() -> None:
    print("Array size sweep (posted-receive cells, block size 16)")
    rows = []
    for cells in (64, 128, 256, 512, 1024):
        config = AlpuConfig(total_cells=cells, block_size=16)
        estimate = estimate_resources(config)
        rows.append(
            (
                cells,
                f"{estimate.luts:,}",
                f"{estimate.flipflops:,}",
                f"{estimate.slices:,}",
                f"{100 * estimate.slices / V2P100_SLICES:.0f}%",
                f"{clock_mhz(16):.1f}",
                match_latency_cycles(cells, 16),
            )
        )
    print(format_rows(
        ["cells", "LUTs", "FFs", "slices", "V2P100", "MHz", "latency"], rows
    ))
    print(
        "Area scales linearly with cells; the latency column grows only\n"
        "when the between-block tree deepens past 8 blocks.\n"
    )


def sweep_match_widths() -> None:
    print("Match width sweep (256 cells, block 16): MPI-only vs Portals")
    rows = []
    for label, width, tag in (
        ("MPI 4K-node minimal", 32, 16),
        ("MPI 32K-node (paper)", 42, 16),
        ("Portals full width", 64, 20),
        ("Portals wide", 96, 20),
    ):
        posted = estimate_resources(
            AlpuConfig(
                kind=CellKind.POSTED_RECEIVE,
                total_cells=256,
                block_size=16,
                match_width=width,
                tag_width=tag,
            )
        )
        unexpected = estimate_resources(
            AlpuConfig(
                kind=CellKind.UNEXPECTED,
                total_cells=256,
                block_size=16,
                match_width=width,
                tag_width=tag,
            )
        )
        rows.append(
            (label, width, f"{posted.flipflops:,}", f"{unexpected.flipflops:,}",
             f"{100 * unexpected.flipflops / posted.flipflops:.0f}%")
        )
    print(format_rows(
        ["configuration", "bits", "posted FFs", "unexpected FFs", "ratio"], rows
    ))
    print(
        "The stored-mask tax grows with width: masks-as-inputs (the\n"
        "unexpected flavour) saves more the wider the match word gets.\n"
    )


def asic_projection() -> None:
    print("ASIC projection (the paper's conservative 5x estimate)")
    rows = [
        (bs, f"{clock_mhz(bs):.1f}", f"{asic_clock_mhz(bs):.0f}",
         f"{1e3 / asic_clock_mhz(bs) * 7:.1f}")
        for bs in (8, 16, 32)
    ]
    print(format_rows(
        ["block", "FPGA MHz", "ASIC MHz", "7-cycle match (ns)"], rows
    ))
    print(
        "At ~500 MHz a full match costs ~14 ns -- less than one warm\n"
        "list-entry visit on the embedded processor."
    )


if __name__ == "__main__":
    sweep_sizes()
    sweep_match_widths()
    asic_projection()
