"""Time units for the simulator.

All simulation timestamps are integers in **picoseconds**.  Integer time
makes cycle arithmetic exact: a 2 GHz host-CPU cycle is 500 ps and a
500 MHz NIC-processor or ALPU cycle is 2000 ps, so no accumulation of
floating-point error can reorder events between the two clock domains.
"""

from __future__ import annotations

PS_PER_NS: int = 1_000
PS_PER_US: int = 1_000_000


def ns(value: float) -> int:
    """Convert nanoseconds to integer picoseconds (rounded)."""
    return round(value * PS_PER_NS)


def us(value: float) -> int:
    """Convert microseconds to integer picoseconds (rounded)."""
    return round(value * PS_PER_US)


def cycles_to_ps(cycles: int, clock_hz: float) -> int:
    """Convert a cycle count at ``clock_hz`` to picoseconds.

    The per-cycle period is rounded to an integer picosecond count first so
    that N cycles always cost exactly N times one cycle.
    """
    period_ps = round(1e12 / clock_hz)
    return cycles * period_ps


def ps_to_ns(ps: int) -> float:
    """Convert picoseconds to (float) nanoseconds, for reporting."""
    return ps / PS_PER_NS
