"""Generator-based cooperative processes.

Firmware loops and host programs are naturally sequential-with-waits, so we
model them as Python generators driven by the event engine (the same style
SimPy uses).  A process body yields *commands*:

``yield delay(ps)``
    Advance simulated time by ``ps`` picoseconds (the process is computing).

``yield wait_on(signal)``
    Block until the signal pulses (or immediately if its level is set).
    Yields the value ``True``.

``yield wait_on(signal, timeout_ps=t)``
    As above but resume after ``t`` ps even without a pulse.  The yield
    evaluates to ``True`` on pulse, ``False`` on timeout.

``yield now()``
    Evaluates to the current simulated time without advancing it.

A process may ``return value``; other processes retrieve it through
:attr:`Process.result` after waiting on :attr:`Process.done`.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Generator, Optional

from repro.sim.engine import Engine, SimulationError
from repro.sim.event import EventHandle
from repro.sim.signal import Signal


# --------------------------------------------------------------------------
# Yieldable commands
# --------------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class _Delay:
    ps: int


@dataclasses.dataclass(frozen=True)
class _WaitOn:
    signal: Signal
    timeout_ps: Optional[int] = None


@dataclasses.dataclass(frozen=True)
class _Now:
    pass


def delay(ps: int) -> _Delay:
    """Command: advance this process's local time by ``ps`` picoseconds."""
    if ps < 0:
        raise ValueError(f"negative delay: {ps}")
    return _Delay(int(ps))


def wait_on(signal: Signal, timeout_ps: Optional[int] = None) -> _WaitOn:
    """Command: block on ``signal`` (optionally with a timeout)."""
    return _WaitOn(signal, timeout_ps)


def now() -> _Now:
    """Command: evaluate to the current simulated time."""
    return _Now()


class ProcessState(enum.Enum):
    """Lifecycle of a simulated process."""

    CREATED = "created"
    RUNNING = "running"
    WAITING = "waiting"
    FINISHED = "finished"
    FAILED = "failed"


class Process:
    """A simulated thread of control.

    Parameters
    ----------
    engine:
        The engine that drives this process.
    body:
        A generator following the command protocol above.
    name:
        Diagnostic name.
    start:
        When True (default), the first step is scheduled immediately (at
        zero delay from creation time).
    """

    def __init__(
        self,
        engine: Engine,
        body: Generator[Any, Any, Any],
        name: str = "proc",
        *,
        start: bool = True,
    ) -> None:
        self.engine = engine
        self.name = name
        self._body = body
        self.state = ProcessState.CREATED
        self.result: Any = None
        self.error: Optional[BaseException] = None
        #: pulsed exactly once, when the process finishes or fails
        self.done = Signal(f"{name}.done")
        self._wait_event: Optional[EventHandle] = None
        if start:
            self.engine.schedule(0, lambda: self._step(None))

    # ---------------------------------------------------------------- public
    @property
    def finished(self) -> bool:
        """Has the process reached a terminal state?"""
        return self.state in (ProcessState.FINISHED, ProcessState.FAILED)

    def start(self) -> None:
        """Start a process created with ``start=False``."""
        if self.state is not ProcessState.CREATED:
            raise SimulationError(f"process {self.name} already started")
        self.engine.schedule(0, lambda: self._step(None))

    # --------------------------------------------------------------- driving
    def _step(self, send_value: Any) -> None:
        if self.finished:
            return
        self.state = ProcessState.RUNNING
        try:
            command = self._body.send(send_value)
        except StopIteration as stop:
            self.state = ProcessState.FINISHED
            self.result = stop.value
            self.done.set()
            return
        except BaseException as exc:  # noqa: BLE001 - recorded & re-raised on join
            self.state = ProcessState.FAILED
            self.error = exc
            self.done.set()
            raise
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        if isinstance(command, _Delay):
            self.state = ProcessState.WAITING
            self.engine.schedule(command.ps, lambda: self._step(None))
        elif isinstance(command, _Now):
            # Answer immediately, without consuming simulated time.
            self._step(self.engine.now)
        elif isinstance(command, _WaitOn):
            self._wait(command)
        elif isinstance(command, Process):
            # Waiting on another process == waiting on its done signal.
            self._wait(_WaitOn(command.done))
        else:
            raise SimulationError(
                f"process {self.name} yielded unknown command {command!r}"
            )

    def _wait(self, command: _WaitOn) -> None:
        self.state = ProcessState.WAITING
        signal = command.signal
        resumed = False

        def on_pulse() -> None:
            nonlocal resumed
            if resumed:
                return
            resumed = True
            if self._wait_event is not None:
                self._wait_event.cancel()
                self._wait_event = None
            # Resume on a fresh event so wakeups never nest inside pulse().
            self.engine.schedule(0, lambda: self._step(True))

        if signal.level:
            self.engine.schedule(0, lambda: self._step(True))
            return
        signal.add_waiter(on_pulse)
        if command.timeout_ps is not None:

            def on_timeout() -> None:
                nonlocal resumed
                if resumed:
                    return
                resumed = True
                signal.remove_waiter(on_pulse)
                self._wait_event = None
                self._step(False)

            self._wait_event = self.engine.schedule(command.timeout_ps, on_timeout)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Process {self.name!r} {self.state.value}>"
