"""Generator-based cooperative processes.

Firmware loops and host programs are naturally sequential-with-waits, so we
model them as Python generators driven by the event engine (the same style
SimPy uses).  This is how the paper's software is expressed: the NIC
firmware loop of Fig. 2 and the host-side MPI library are Python
generators whose ``yield``\\ s charge simulated time against the cost
models in :mod:`repro.proc.costmodel`.  A process body yields *commands*:

``yield delay(ps)``
    Advance simulated time by ``ps`` picoseconds (the process is computing).

``yield wait_on(signal)``
    Block until the signal pulses (or immediately if its level is set).
    Yields the value ``True``.

``yield wait_on(signal, timeout_ps=t)``
    As above but resume after ``t`` ps even without a pulse.  The yield
    evaluates to ``True`` on pulse, ``False`` on timeout.

``yield now()``
    Evaluates to the current simulated time without advancing it.

A process may ``return value``; other processes retrieve it through
:attr:`Process.result` after waiting on :attr:`Process.done`.

Hot-path notes
--------------
Process resumption dominates the simulator's wall-clock profile (every
simulated "compute for N cycles" is one trip through :meth:`Process._step`),
so the trampoline is deliberately lean:

* ``delay(ps)`` returns a bare non-negative ``int`` -- the dispatch test is
  a single ``type(command) is int`` check (``bool`` deliberately fails it),
  with no command object allocated per yield.
* ``now()`` returns a shared singleton, and the reply is delivered by
  looping back into ``body.send`` rather than recursing.
* Each process caches its two resume callables (``send(None)`` and
  ``send(True)``) so scheduling a wakeup does not build a new closure per
  event, and zero-delay wakeups go through :meth:`Engine.post`, which
  skips handle allocation.

Semantics are unchanged: wakeups always travel through the event queue
(never run inline), so ordering against same-instant peers is exactly the
(time, priority, seq) rule documented in :mod:`repro.sim.engine`.
"""

from __future__ import annotations

import enum
from typing import Any, Generator, Optional

from repro.sim.engine import Engine, SimulationError
from repro.sim.event import EventHandle
from repro.sim.signal import Signal


# --------------------------------------------------------------------------
# Yieldable commands
# --------------------------------------------------------------------------
class _WaitOn:
    """Command record for ``wait_on``; plain slotted class (hot path)."""

    __slots__ = ("signal", "timeout_ps")

    def __init__(self, signal: Signal, timeout_ps: Optional[int] = None) -> None:
        self.signal = signal
        self.timeout_ps = timeout_ps


class _Now:
    """Marker type for the ``now()`` command (a shared singleton)."""

    __slots__ = ()


_NOW = _Now()


def delay(ps: int) -> int:
    """Command: advance this process's local time by ``ps`` picoseconds.

    Returns the picosecond count itself: the process trampoline treats a
    yielded ``int`` as a delay, so no wrapper object is allocated.
    """
    if ps < 0:
        raise ValueError(f"negative delay: {ps}")
    return int(ps)


def wait_on(signal: Signal, timeout_ps: Optional[int] = None) -> _WaitOn:
    """Command: block on ``signal`` (optionally with a timeout)."""
    return _WaitOn(signal, timeout_ps)


def now() -> _Now:
    """Command: evaluate to the current simulated time."""
    return _NOW


class ProcessState(enum.Enum):
    """Lifecycle of a simulated process."""

    CREATED = "created"
    RUNNING = "running"
    WAITING = "waiting"
    FINISHED = "finished"
    FAILED = "failed"


_RUNNING = ProcessState.RUNNING
_WAITING = ProcessState.WAITING
_FINISHED = ProcessState.FINISHED
_FAILED = ProcessState.FAILED


class Process:
    """A simulated thread of control.

    Parameters
    ----------
    engine:
        The engine that drives this process.
    body:
        A generator following the command protocol above.
    name:
        Diagnostic name.
    start:
        When True (default), the first step is scheduled immediately (at
        zero delay from creation time).
    """

    __slots__ = (
        "engine",
        "name",
        "_body",
        "state",
        "result",
        "error",
        "done",
        "_wait_event",
        "_wait_signal",
        "_resume_none",
        "_resume_true",
        "_on_pulse_ref",
        "_on_timeout_ref",
    )

    def __init__(
        self,
        engine: Engine,
        body: Generator[Any, Any, Any],
        name: str = "proc",
        *,
        start: bool = True,
    ) -> None:
        self.engine = engine
        self.name = name
        self._body = body
        self.state = ProcessState.CREATED
        self.result: Any = None
        self.error: Optional[BaseException] = None
        #: pulsed exactly once, when the process finishes or fails
        self.done = Signal(f"{name}.done")
        self._wait_event: Optional[EventHandle] = None
        self._wait_signal: Optional[Signal] = None
        # cached bound methods: one resume pair per process, not one
        # allocation per event (and the profiler attributes resumes to
        # Process._resume/_resume_ok instead of the scheduling site);
        # likewise one pulse/timeout callback pair instead of a fresh
        # closure pair per wait
        self._resume_none = self._resume
        self._resume_true = self._resume_ok
        self._on_pulse_ref = self._on_pulse
        self._on_timeout_ref = self._on_timeout
        if start:
            engine.post(self._resume_none)

    # ---------------------------------------------------------------- public
    @property
    def finished(self) -> bool:
        """Has the process reached a terminal state?"""
        return self.state is _FINISHED or self.state is _FAILED

    def start(self) -> None:
        """Start a process created with ``start=False``."""
        if self.state is not ProcessState.CREATED:
            raise SimulationError(f"process {self.name} already started")
        self.engine.post(self._resume_none)

    # --------------------------------------------------------------- driving
    def _resume(self) -> None:
        """Scheduled resume after a delay (or at process start)."""
        self._step(None)

    def _resume_ok(self) -> None:
        """Scheduled resume after a signal wait that was satisfied."""
        self._step(True)

    def _step(self, send_value: Any) -> None:
        state = self.state
        if state is _FINISHED or state is _FAILED:
            return
        engine = self.engine
        body_send = self._body.send
        # Loop instead of recursing so zero-cost commands (``now()``) do
        # not stack a Python frame per reply.
        while True:
            self.state = _RUNNING
            try:
                command = body_send(send_value)
            except StopIteration as stop:
                self.state = _FINISHED
                self.result = stop.value
                self.done.set()
                return
            except BaseException as exc:  # noqa: BLE001 - recorded & re-raised on join
                self.state = _FAILED
                self.error = exc
                self.done.set()
                raise
            if type(command) is int:
                self.state = _WAITING
                if command:
                    engine.schedule_call(command, self._resume_none)
                else:
                    engine.post(self._resume_none)
                return
            if command is _NOW:
                send_value = engine._now
                continue
            if type(command) is _WaitOn:
                self._wait(command)
                return
            if isinstance(command, Process):
                # Waiting on another process == waiting on its done signal.
                self._wait(_WaitOn(command.done))
                return
            raise SimulationError(
                f"process {self.name} yielded unknown command {command!r}"
            )

    def _wait(self, command: _WaitOn) -> None:
        self.state = _WAITING
        signal = command.signal
        engine = self.engine
        if signal.level:
            engine.post(self._resume_true)
            return
        # One-shot safety without a per-wait ``resumed`` flag: a pulse
        # consumes the waiter (so it cannot fire again) and cancels the
        # timeout event; a timeout removes the waiter before resuming.
        # Exactly one of the two callbacks can ever run per wait.
        signal.add_waiter(self._on_pulse_ref)
        if command.timeout_ps is not None:
            self._wait_signal = signal
            self._wait_event = engine.schedule(
                command.timeout_ps, self._on_timeout_ref
            )

    def _on_pulse(self) -> None:
        event = self._wait_event
        if event is not None:
            event.cancel()
            self._wait_event = None
        # Resume on a fresh event so wakeups never nest inside pulse().
        self.engine.post(self._resume_true)

    def _on_timeout(self) -> None:
        self._wait_event = None
        self._wait_signal.remove_waiter(self._on_pulse_ref)
        self._step(False)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Process {self.name!r} {self.state.value}>"
