"""A timer wheel for high-churn cancel-heavy timers.

The reliability layer arms one retransmit timer per in-flight packet and
cancels almost every one of them (the ACK nearly always wins the race).
Routing those timers straight into the engine heap has two costs:

* every timer is its own heap entry -- ``heappush`` on arm, a tombstone
  the event loop must pop and skip after a cancel;
* a burst of packets injected in one event arms many timers with the
  *same* deadline, each a separate heap entry.

The wheel collapses both.  Timers land in per-deadline **slots** (a dict
keyed by absolute deadline); only the first timer of a slot schedules an
engine event, later ones ride along for a dict insert.  Cancel is an
O(1) dict delete -- no tombstone ever reaches the heap.  When the slot's
event fires, whatever callbacks are still registered run in arming
order.

Unlike the classic hashed timer wheel this one does **not** quantize:
a slot is one exact deadline, so simulated firing times are identical
to per-timer engine scheduling and the zero-fault benchmarks stay
bit-identical.  The hashing trick trades timing precision for bucket
reuse; in a simulator, timing *is* the semantics, so the trade is not
available.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict

from repro.sim.engine import Engine


class TimerHandle:
    """Cancellation handle for one timer in a wheel slot."""

    __slots__ = ("_slot", "_token")

    def __init__(self, slot: Dict[int, Callable[[], None]], token: int) -> None:
        self._slot = slot
        self._token = token

    def cancel(self) -> None:
        """Remove the timer; a no-op if it already fired or was cancelled."""
        self._slot.pop(self._token, None)

    @property
    def active(self) -> bool:
        """Is the timer still armed (not fired, not cancelled)?"""
        return self._token in self._slot


class TimerWheel:
    """Per-deadline timer slots sharing one engine event each."""

    __slots__ = ("_engine", "_slots", "_tokens")

    def __init__(self, engine: Engine) -> None:
        self._engine = engine
        #: deadline_ps -> {token: callback}, insertion order = arming order
        self._slots: Dict[int, Dict[int, Callable[[], None]]] = {}
        self._tokens = itertools.count()

    @property
    def armed(self) -> int:
        """Timers currently armed across every slot (probe surface)."""
        return sum(len(slot) for slot in self._slots.values())

    def schedule(self, delay_ps: int, callback: Callable[[], None]) -> TimerHandle:
        """Arm ``callback`` to fire ``delay_ps`` from now; returns a handle."""
        if delay_ps < 0:
            raise ValueError(f"negative timer delay: {delay_ps}")
        engine = self._engine
        deadline = engine.now + delay_ps
        slot = self._slots.get(deadline)
        if slot is None:
            slot = {}
            self._slots[deadline] = slot
            engine.schedule_call(delay_ps, lambda: self._fire(deadline))
        token = next(self._tokens)
        slot[token] = callback
        return TimerHandle(slot, token)

    def _fire(self, deadline: int) -> None:
        # Drain rather than snapshot: a callback may cancel a peer timer
        # in this same slot (handles keep a reference to the dict), and a
        # cancelled timer must not run -- exactly the guarantee separate
        # engine events gave.  Re-arms can never land back in this slot:
        # the slot left ``_slots`` above and delays are non-negative, so
        # a same-instant re-arm opens a fresh slot and a fresh event.
        slot = self._slots.pop(deadline)
        while slot:
            token = next(iter(slot))
            callback = slot.pop(token)
            callback()
