"""Simulation components.

A :class:`Component` is a named object bound to an engine.  A
:class:`ClockedComponent` additionally has a clock period and helpers to
schedule work a whole number of its own cycles in the future -- this is how
the 500 MHz NIC processor, the ALPU and the 2 GHz host CPU coexist in one
event queue.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.engine import Engine
from repro.sim.event import EventHandle
from repro.sim.units import cycles_to_ps


class Component:
    """Base class for everything that lives in a simulation."""

    def __init__(self, engine: Engine, name: str) -> None:
        self.engine = engine
        self.name = name

    @property
    def now(self) -> int:
        """Current simulated time (ps)."""
        return self.engine.now

    def schedule(
        self, delay_ps: int, action: Callable[[], Any], *, priority: int = 0
    ) -> EventHandle:
        """Schedule ``action`` relative to now (see Engine.schedule)."""
        return self.engine.schedule(delay_ps, action, priority=priority)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"


class ClockedComponent(Component):
    """A component with its own clock domain.

    Parameters
    ----------
    clock_hz:
        Clock frequency.  The period is rounded to an integer picosecond
        count (exact for 2 GHz and 500 MHz).
    """

    def __init__(self, engine: Engine, name: str, clock_hz: float) -> None:
        super().__init__(engine, name)
        self.clock_hz = clock_hz
        self.period_ps = cycles_to_ps(1, clock_hz)
        if self.period_ps <= 0:
            raise ValueError(f"clock {clock_hz} Hz yields non-positive period")

    def cycles(self, n: int) -> int:
        """Duration of ``n`` cycles of this component's clock, in ps."""
        return n * self.period_ps

    def schedule_cycles(
        self, n: int, action: Callable[[], Any], *, priority: int = 0
    ) -> EventHandle:
        """Schedule ``action`` ``n`` of *this component's* cycles from now."""
        return self.schedule(self.cycles(n), action, priority=priority)

    def next_edge(self) -> int:
        """Delay (ps) from now to the next rising edge of this clock.

        Returns 0 when "now" is exactly on an edge.
        """
        rem = self.engine.now % self.period_ps
        return 0 if rem == 0 else self.period_ps - rem
