"""Bounded FIFOs with back-pressure and wakeup signals.

The paper's NIC decouples the processor from the ALPU with hardware FIFOs
(header FIFO, command FIFO, result FIFO).  :class:`Fifo` models these: a
bounded queue whose ``not_empty`` / ``not_full`` signals processes can wait
on, so a consumer firmware loop can sleep until a result arrives and the
ALPU can stall when the command FIFO backs up.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Optional, TypeVar

from repro.sim.signal import Signal

T = TypeVar("T")


class FifoFullError(RuntimeError):
    """Raised on push to a full FIFO."""


class FifoEmptyError(RuntimeError):
    """Raised on pop from an empty FIFO."""


class Fifo(Generic[T]):
    """A bounded FIFO.

    Parameters
    ----------
    capacity:
        Maximum number of entries; ``None`` means unbounded (used for
        software-visible queues where the bound is enforced elsewhere).
    name:
        Diagnostic name, also used to name the wakeup signals.
    """

    def __init__(self, capacity: Optional[int] = None, name: str = "fifo") -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._items: Deque[T] = deque()
        #: pulses on every push (and its level tracks non-emptiness)
        self.not_empty = Signal(f"{name}.not_empty")
        #: pulses on every pop from full (level tracks non-fullness)
        self.not_full = Signal(f"{name}.not_full")
        self.not_full.set()
        # lifetime statistics
        self.total_pushed = 0
        self.total_popped = 0
        self.high_water = 0

    # ------------------------------------------------------------- observers
    def __len__(self) -> int:
        return len(self._items)

    @property
    def empty(self) -> bool:
        """No items queued?"""
        return not self._items

    @property
    def full(self) -> bool:
        """At capacity? (Never true for unbounded FIFOs.)"""
        return self.capacity is not None and len(self._items) >= self.capacity

    @property
    def free_slots(self) -> Optional[int]:
        """Remaining capacity, or None when unbounded."""
        if self.capacity is None:
            return None
        return self.capacity - len(self._items)

    def peek(self) -> T:
        """Return the head item without removing it."""
        if not self._items:
            raise FifoEmptyError(f"peek on empty fifo {self.name}")
        return self._items[0]

    # ------------------------------------------------------------ operations
    def push(self, item: T) -> None:
        """Append ``item``; raises :class:`FifoFullError` when full."""
        items = self._items
        capacity = self.capacity
        if capacity is not None and len(items) >= capacity:
            raise FifoFullError(f"push to full fifo {self.name}")
        items.append(item)
        self.total_pushed += 1
        depth = len(items)
        if depth > self.high_water:
            self.high_water = depth
        if capacity is not None and depth >= capacity:
            self.not_full.clear()
        self.not_empty.set()

    def try_push(self, item: T) -> bool:
        """Push if space is available; returns success."""
        if self.full:
            return False
        self.push(item)
        return True

    def pop(self) -> T:
        """Remove and return the head item."""
        items = self._items
        if not items:
            raise FifoEmptyError(f"pop from empty fifo {self.name}")
        item = items.popleft()
        self.total_popped += 1
        if not items:
            self.not_empty.clear()
        self.not_full.set()
        return item

    def try_pop(self) -> Optional[T]:
        """Pop if non-empty, else return None."""
        if not self._items:
            return None
        return self.pop()

    def drain(self) -> list[T]:
        """Pop everything, in order."""
        out = []
        while self._items:
            out.append(self.pop())
        return out

    def clear(self) -> None:
        """Discard all contents (models a hardware reset)."""
        self._items.clear()
        self.not_empty.clear()
        self.not_full.set()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cap = "inf" if self.capacity is None else self.capacity
        return f"<Fifo {self.name!r} {len(self._items)}/{cap}>"
