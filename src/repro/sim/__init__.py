"""Component-based discrete-event simulation framework.

This subpackage is the reproduction's substitute for Enkidu, the
component-based discrete event simulation framework the paper's evaluation
is built on (Rodrigues, TR04-14, 2004).  It provides:

* :class:`~repro.sim.engine.Engine` -- the event queue and simulated clock
  (picosecond-resolution integer timestamps).
* :class:`~repro.sim.component.Component` /
  :class:`~repro.sim.component.ClockedComponent` -- the building blocks a
  simulated system is assembled from.
* :class:`~repro.sim.link.Link` -- a fixed-latency, point-to-point message
  channel between components (the paper's 20 ns NIC local bus and 200 ns
  network wire are both Links).
* :class:`~repro.sim.fifo.Fifo` -- a bounded FIFO with back-pressure,
  matching the decoupling FIFOs around the ALPU.
* :class:`~repro.sim.process.Process` -- generator-based cooperative
  processes for modelling firmware and host programs that both *compute*
  (charge simulated time) and *wait* (block on signals).

Time is kept as an integer count of picoseconds so that cycle arithmetic at
2 GHz (500 ps) and 500 MHz (2000 ps) is exact.
"""

from repro.sim.engine import Engine, SimulationError
from repro.sim.event import EventHandle
from repro.sim.component import Component, ClockedComponent
from repro.sim.link import Link
from repro.sim.fifo import Fifo, FifoFullError, FifoEmptyError
from repro.sim.process import Process, ProcessState, delay, wait_on, now
from repro.sim.signal import Signal

from repro.sim.units import (
    PS_PER_NS,
    PS_PER_US,
    ns,
    us,
    cycles_to_ps,
    ps_to_ns,
)

__all__ = [
    "Engine",
    "SimulationError",
    "EventHandle",
    "Component",
    "ClockedComponent",
    "Link",
    "Fifo",
    "FifoFullError",
    "FifoEmptyError",
    "Process",
    "ProcessState",
    "delay",
    "wait_on",
    "now",
    "Signal",
    "PS_PER_NS",
    "PS_PER_US",
    "ns",
    "us",
    "cycles_to_ps",
    "ps_to_ns",
]
