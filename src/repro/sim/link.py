"""Fixed-latency point-to-point links.

A :class:`Link` delivers messages from a sender to a receiver FIFO after a
fixed latency, optionally with per-byte serialization.  The paper's system
uses two: the NIC local bus (20 ns per transaction) and the network wire
(200 ns, Table III).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from repro.sim.component import Component
from repro.sim.engine import Engine
from repro.sim.fifo import Fifo


class Link(Component):
    """Delivers messages into a destination FIFO after ``latency_ps``.

    Parameters
    ----------
    dest:
        Destination FIFO, or ``None`` for a routed channel whose
        ``on_deliver`` hook decides where the message lands (the
        topology-aware fabric forwards or delivers per packet).
    latency_ps:
        Head latency for every message.
    bandwidth_bytes_per_ps:
        When set, a message carrying ``size`` bytes additionally occupies
        the link for ``size / bandwidth`` ps; messages are serialized (a
        second message entering a busy link queues behind the first).
        When ``None`` the link is a pure-latency pipe (transactions may
        overlap).
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        dest: Optional[Fifo],
        latency_ps: int,
        *,
        bandwidth_bytes_per_ps: Optional[float] = None,
        on_deliver: Optional[Callable[[Any], None]] = None,
    ) -> None:
        super().__init__(engine, name)
        if latency_ps < 0:
            raise ValueError(f"negative link latency {latency_ps}")
        self.dest = dest
        self.latency_ps = latency_ps
        self.bandwidth = bandwidth_bytes_per_ps
        self.on_deliver = on_deliver
        self._busy_until = 0
        #: in-flight messages, in delivery order.  Delivery timestamps on
        #: one link are non-decreasing in send order (``start`` and the
        #: clock are both monotone), so a FIFO plus one bound method per
        #: delivery replaces a per-send closure.
        self._pending: deque = deque()
        self.messages_sent = 0
        self.bytes_sent = 0
        #: cumulative serialization occupancy (utilization numerator)
        self.busy_ps = 0
        #: cumulative contention wait: time messages spent queued behind
        #: earlier traffic before starting to serialize
        self.wait_ps = 0
        #: high-water mark of simultaneously in-flight messages
        self.peak_queue = 0

    def occupancy_ps(self, size_bytes: int) -> int:
        """Serialization time for a message of ``size_bytes``."""
        if self.bandwidth is None or size_bytes <= 0:
            return 0
        return round(size_bytes / self.bandwidth)

    def send(self, message: Any, size_bytes: int = 0) -> int:
        """Inject a message; returns its delivery timestamp (ps).

        With bandwidth modelling, the message starts serializing when the
        link frees up; delivery = start + occupancy + latency.
        """
        engine = self.engine
        now = engine._now
        busy = self._busy_until
        start = busy if busy > now else now
        if self.bandwidth is None or size_bytes <= 0:
            occupancy = 0
        else:
            occupancy = round(size_bytes / self.bandwidth)
        self._busy_until = start + occupancy
        deliver_at = start + occupancy + self.latency_ps
        self._pending.append(message)
        engine.schedule_call(deliver_at - now, self._deliver_next)
        self.messages_sent += 1
        self.bytes_sent += size_bytes
        self.busy_ps += occupancy
        self.wait_ps += start - now
        if len(self._pending) > self.peak_queue:
            self.peak_queue = len(self._pending)
        return deliver_at

    @property
    def queue_depth(self) -> int:
        """Messages committed to the link but not yet delivered."""
        return len(self._pending)

    def utilization(self) -> float:
        """Fraction of elapsed sim time spent serializing (0.0 at t=0)."""
        return self.busy_ps / self.now if self.now else 0.0

    def _deliver_next(self) -> None:
        message = self._pending.popleft()
        if self.dest is not None:
            self.dest.push(message)
        if self.on_deliver is not None:
            self.on_deliver(message)
