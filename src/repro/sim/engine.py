"""The discrete-event simulation engine.

The :class:`Engine` owns the event heap and the simulated clock.  It is the
single point of truth for "now"; every component and process reads time
through the engine.  The engine is deliberately minimal -- components,
links, FIFOs and processes are layered on top of ``schedule``.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.obs.lifecycle import NULL_LIFECYCLE
from repro.obs.metrics import NULL_REGISTRY
from repro.obs.selfprof import perf_counter
from repro.obs.tracer import NULL_TRACER
from repro.sim.event import Event, EventHandle


class SimulationError(RuntimeError):
    """Raised for illegal engine operations (e.g. scheduling in the past)."""


class Engine:
    """Event queue + clock.

    Parameters
    ----------
    tracer:
        A :class:`repro.obs.tracer.Tracer` collecting structured records
        from instrumented components.  Defaults to the shared no-op
        tracer (``engine.tracer.enabled`` is False).
    metrics:
        A :class:`repro.obs.metrics.MetricsRegistry` components obtain
        instruments from.  Defaults to the shared no-op registry.
    lifecycle:
        A :class:`repro.obs.lifecycle.LifecycleRecorder` the MPI layer,
        NIC firmware and network mark per-message stage transitions
        into.  Defaults to the shared no-op recorder
        (``engine.lifecycle.enabled`` is False).
    profiler:
        A :class:`repro.obs.selfprof.SimProfiler`; when set, ``step``
        times every event handler with the wall clock.  Never touches
        simulated state.
    """

    def __init__(
        self,
        *,
        tracer=None,
        metrics=None,
        lifecycle=None,
        profiler=None,
    ) -> None:
        self._heap: list[Event] = []
        self._now: int = 0
        self._seq: int = 0
        self._fired: int = 0
        #: live (scheduled, not fired, not cancelled) events -- kept exact
        #: by schedule/step/cancel so :attr:`pending` is O(1)
        self._live: int = 0
        self._stopped = False
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.lifecycle = lifecycle if lifecycle is not None else NULL_LIFECYCLE
        self.profiler = profiler
        self.tracer.attach_clock(lambda: self._now)
        self.lifecycle.attach_clock(lambda: self._now)

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> int:
        """Current simulated time in picoseconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far."""
        return self._fired

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still in the heap.

        O(1): a counter incremented on ``schedule`` and decremented when
        an event fires or its handle is cancelled -- never a heap walk,
        so periodic probes sampling the backlog stay linear in events
        even when the heap carries many lazy-cancellation tombstones.
        (``tests/sim/test_engine.py`` asserts the counter against an
        explicit heap walk.)  Use :attr:`raw_pending` for the heap size
        including tombstones.
        """
        return self._live

    def _note_cancelled(self) -> None:
        """An :class:`EventHandle` cancelled a live event (O(1) upkeep)."""
        self._live -= 1

    @property
    def raw_pending(self) -> int:
        """Heap size including cancelled tombstones (the pre-telemetry
        meaning of ``pending``, kept as an escape hatch)."""
        return len(self._heap)

    # ------------------------------------------------------------- scheduling
    def schedule(
        self,
        delay_ps: int,
        action: Callable[[], Any],
        *,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``action`` to run ``delay_ps`` picoseconds from now.

        A ``delay_ps`` of zero is allowed and runs after all events already
        scheduled for the current instant at the same priority.  Negative
        delays are an error.
        """
        if delay_ps < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay_ps})")
        event = Event(self._now + delay_ps, priority, self._seq, action)
        self._seq += 1
        heapq.heappush(self._heap, event)
        self._live += 1
        return EventHandle(event, self)

    def schedule_at(
        self,
        time_ps: int,
        action: Callable[[], Any],
        *,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``action`` at an absolute timestamp."""
        if time_ps < self._now:
            raise SimulationError(
                f"cannot schedule at t={time_ps} (now is {self._now})"
            )
        return self.schedule(time_ps - self._now, action, priority=priority)

    # ------------------------------------------------------------------- run
    def stop(self) -> None:
        """Request that the current ``run`` call return after this event."""
        self._stopped = True

    def step(self) -> bool:
        """Execute the next non-cancelled event.  Returns False if none."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time < self._now:  # pragma: no cover - heap invariant
                raise SimulationError("event heap produced a past event")
            self._now = event.time
            self._fired += 1
            event.fired = True
            self._live -= 1
            profiler = self.profiler
            if profiler is None:
                event.action()
            else:
                start = perf_counter()
                event.action()
                profiler.record(event.action, perf_counter() - start)
            return True
        return False

    def run(
        self,
        until: Optional[int] = None,
        *,
        max_events: Optional[int] = None,
    ) -> int:
        """Run until the heap drains, ``until`` is reached, or ``stop()``.

        Parameters
        ----------
        until:
            Absolute timestamp (ps).  Events *at* ``until`` are executed;
            events after it are left in the heap and the clock is advanced
            to ``until``.
        max_events:
            Safety valve for tests; raises :class:`SimulationError` when
            exceeded (it usually indicates a livelocked model).

        Returns
        -------
        int
            The simulated time at exit.
        """
        self._stopped = False
        executed = 0
        while self._heap and not self._stopped:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and head.time > until:
                break
            if max_events is not None and executed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} at t={self._now} ps"
                )
            if not self.step():
                break
            executed += 1
        if until is not None and not self._stopped and self._now < until:
            self._now = until
        return self._now
