"""The discrete-event simulation engine.

The :class:`Engine` owns the event queues and the simulated clock.  It is
the single point of truth for "now"; every component and process reads time
through the engine.  The engine is deliberately minimal -- components,
links, FIFOs and processes are layered on top of ``schedule``.

Data layout (the hot path)
--------------------------
Events are plain lists ``[time, priority, seq, action, state]`` (see
:mod:`repro.sim.event`) held in **two** queues:

* ``_heap`` -- a binary heap ordered by ``(time, priority, seq)`` for
  events in the future or at non-default priority.  List comparison is a
  C-level lexicographic walk, so there is no ``__lt__`` dispatch per
  sift step.
* ``_slot`` -- a FIFO deque holding the *current-instant slot*: events
  scheduled with zero delay at priority 0.  This is by far the most
  common case (process wakeups, signal pulses, FIFO hand-offs), and a
  deque append/popleft is O(1) versus O(log n) heap sifts.

The split is exact, not approximate.  A slot entry's key is
``(now_at_schedule_time, 0, seq)``; because the clock never moves
backwards and ``seq`` only grows, the slot deque is always sorted by key,
and no *future* ``schedule`` call can create a key smaller than one
already popped.  ``step`` therefore compares the slot head against the
heap head and pops whichever has the smaller ``(time, priority, seq)``
key -- byte-identical event ordering to a single heap, measurably faster.
(``tests/sim/test_engine.py`` pins the ordering cases: same-instant
priorities, zero-delay events running after current-instant peers, and
the live-event counter against an explicit walk of both queues.)

This engine drives the reproduction of the queue-processing pipeline from
the source paper (Underwood, Hemmert, Rodrigues, Murphy, Brightwell,
"A Hardware Acceleration Unit for MPI Queue Processing", IPDPS 2005):
the Fig. 4/5 latency numbers come out of components exchanging events
through this queue, so its ordering rules are part of the model's
determinism contract.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Optional

from repro.obs.lifecycle import NULL_LIFECYCLE
from repro.obs.metrics import NULL_REGISTRY
from repro.obs.selfprof import perf_counter
from repro.obs.tracer import NULL_TRACER
from repro.sim.event import EventHandle


class SimulationError(RuntimeError):
    """Raised for illegal engine operations (e.g. scheduling in the past)."""


class Engine:
    """Event queues + clock.

    Parameters
    ----------
    tracer:
        A :class:`repro.obs.tracer.Tracer` collecting structured records
        from instrumented components.  Defaults to the shared no-op
        tracer (``engine.tracer.enabled`` is False).
    metrics:
        A :class:`repro.obs.metrics.MetricsRegistry` components obtain
        instruments from.  Defaults to the shared no-op registry.
    lifecycle:
        A :class:`repro.obs.lifecycle.LifecycleRecorder` the MPI layer,
        NIC firmware and network mark per-message stage transitions
        into.  Defaults to the shared no-op recorder
        (``engine.lifecycle.enabled`` is False).
    profiler:
        A :class:`repro.obs.selfprof.SimProfiler`; when set, ``step``
        times every event handler with the wall clock.  Never touches
        simulated state.
    """

    def __init__(
        self,
        *,
        tracer=None,
        metrics=None,
        lifecycle=None,
        profiler=None,
    ) -> None:
        #: future / non-default-priority events, heap-ordered by key
        self._heap: list[list] = []
        #: current-instant priority-0 events, FIFO (always key-sorted)
        self._slot: deque[list] = deque()
        self._now: int = 0
        self._seq: int = 0
        self._fired: int = 0
        #: live (scheduled, not fired, not cancelled) events -- kept exact
        #: by schedule/step/cancel so :attr:`pending` is O(1)
        self._live: int = 0
        self._stopped = False
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.lifecycle = lifecycle if lifecycle is not None else NULL_LIFECYCLE
        self.profiler = profiler
        self.tracer.attach_clock(lambda: self._now)
        self.lifecycle.attach_clock(lambda: self._now)

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> int:
        """Current simulated time in picoseconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far."""
        return self._fired

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.

        O(1): a counter incremented on ``schedule``/``post`` and
        decremented when an event fires or its handle is cancelled --
        never a queue walk, so periodic probes sampling the backlog stay
        linear in events even when the heap carries many
        lazy-cancellation tombstones.  (``tests/sim/test_engine.py``
        asserts the counter against an explicit walk of both queues.)
        Use :attr:`raw_pending` for the queue sizes including tombstones.
        """
        return self._live

    def _note_cancelled(self) -> None:
        """An :class:`EventHandle` cancelled a live event (O(1) upkeep)."""
        self._live -= 1

    @property
    def raw_pending(self) -> int:
        """Queued entries including cancelled tombstones (the
        pre-telemetry meaning of ``pending``, kept as an escape hatch)."""
        return len(self._heap) + len(self._slot)

    # ------------------------------------------------------------- scheduling
    def schedule(
        self,
        delay_ps: int,
        action: Callable[[], Any],
        *,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``action`` to run ``delay_ps`` picoseconds from now.

        A ``delay_ps`` of zero is allowed and runs after all events already
        scheduled for the current instant at the same priority.  Negative
        delays are an error.
        """
        if delay_ps < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay_ps})")
        seq = self._seq
        self._seq = seq + 1
        entry = [self._now + delay_ps, priority, seq, action, 0]
        if delay_ps == 0 and priority == 0:
            self._slot.append(entry)
        else:
            heappush(self._heap, entry)
        self._live += 1
        return EventHandle(entry, self)

    def post(self, action: Callable[[], Any]) -> None:
        """Schedule ``action`` at the current instant without a handle.

        Equivalent to ``schedule(0, action)`` except that no
        :class:`EventHandle` is allocated.  This is the engine's fastest
        path -- the process layer resumes through it -- so use it
        whenever the caller never cancels.
        """
        seq = self._seq
        self._seq = seq + 1
        self._slot.append([self._now, 0, seq, action, 0])
        self._live += 1

    def schedule_call(self, delay_ps: int, action: Callable[[], Any]) -> None:
        """Schedule at priority 0 without allocating an :class:`EventHandle`.

        The handle-free sibling of :meth:`schedule` for fire-and-forget
        events (process delays, link deliveries): ordering is identical,
        only the cancellation handle is skipped.
        """
        if delay_ps < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay_ps})")
        seq = self._seq
        self._seq = seq + 1
        entry = [self._now + delay_ps, 0, seq, action, 0]
        if delay_ps == 0:
            self._slot.append(entry)
        else:
            heappush(self._heap, entry)
        self._live += 1

    def schedule_at(
        self,
        time_ps: int,
        action: Callable[[], Any],
        *,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``action`` at an absolute timestamp."""
        if time_ps < self._now:
            raise SimulationError(
                f"cannot schedule at t={time_ps} (now is {self._now})"
            )
        return self.schedule(time_ps - self._now, action, priority=priority)

    # ------------------------------------------------------------------- run
    def stop(self) -> None:
        """Request that the current ``run`` call return after this event."""
        self._stopped = True

    def _pop_next(self) -> Optional[list]:
        """Pop the live entry with the smallest (time, priority, seq) key."""
        heap = self._heap
        slot = self._slot
        while slot and slot[0][4]:
            slot.popleft()
        while heap and heap[0][4]:
            heappop(heap)
        if slot:
            if heap and heap[0] < slot[0]:
                return heappop(heap)
            return slot.popleft()
        if heap:
            return heappop(heap)
        return None

    def step(self) -> bool:
        """Execute the next non-cancelled event.  Returns False if none."""
        entry = self._pop_next()
        if entry is None:
            return False
        time = entry[0]
        if time < self._now:  # pragma: no cover - queue invariant
            raise SimulationError("event queue produced a past event")
        self._now = time
        self._fired += 1
        entry[4] = 2
        self._live -= 1
        action = entry[3]
        profiler = self.profiler
        if profiler is None:
            action()
        else:
            start = perf_counter()
            action()
            profiler.record(action, perf_counter() - start)
        return True

    def run(
        self,
        until: Optional[int] = None,
        *,
        max_events: Optional[int] = None,
    ) -> int:
        """Run until the queues drain, ``until`` is reached, or ``stop()``.

        Parameters
        ----------
        until:
            Absolute timestamp (ps).  Events *at* ``until`` are executed;
            events after it are left queued and the clock is advanced
            to ``until``.
        max_events:
            Safety valve for tests; raises :class:`SimulationError` when
            exceeded (it usually indicates a livelocked model).

        Returns
        -------
        int
            The simulated time at exit.
        """
        self._stopped = False
        executed = 0
        heap = self._heap
        slot = self._slot
        while not self._stopped:
            while slot and slot[0][4]:
                slot.popleft()
            while heap and heap[0][4]:
                heappop(heap)
            if not slot and not heap:
                break
            if until is not None:
                if slot:
                    head_time = slot[0][0]
                    if heap and heap[0][0] < head_time:
                        head_time = heap[0][0]
                else:
                    head_time = heap[0][0]
                if head_time > until:
                    break
            if max_events is not None and executed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} at t={self._now} ps"
                )
            if not self.step():
                break
            executed += 1
        if until is not None and not self._stopped and self._now < until:
            self._now = until
        return self._now
