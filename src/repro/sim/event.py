"""Events and cancellable event handles.

A scheduled event is a plain mutable list ``[time, priority, seq, action,
state]`` -- the engine's hot path allocates tens of thousands of these per
run, and a bare list is both cheaper to build and cheaper to compare than
a dataclass instance (list comparison is a single C-level lexicographic
walk over the first three integer fields; ``seq`` is unique, so the
comparison never reaches the callable).

``seq`` is a monotonically increasing tie-breaker so that events scheduled
at the same timestamp with the same priority fire in scheduling order --
this gives the simulator deterministic, reproducible behaviour regardless
of heap internals.

``state`` is one of the ``EVENT_*`` constants below.  Cancellation flips
the state in place (lazy cancellation: the entry stays queued and is
skipped when popped), and the engine marks the entry fired the moment the
action runs, which guards the live-event counter against a handle
cancelled after its event already executed.
"""

from __future__ import annotations

from typing import Any, Callable, List

#: indices into an event entry list
TIME, PRIORITY, SEQ, ACTION, STATE = range(5)

#: entry states (``STATE`` field)
EVENT_LIVE = 0
EVENT_CANCELLED = 1
EVENT_FIRED = 2

#: an event entry: [time, priority, seq, action, state]
EventEntry = List[Any]


def make_entry(
    time: int, priority: int, seq: int, action: Callable[[], Any]
) -> EventEntry:
    """Build a live event entry (convenience for tests; the engine inlines
    this construction on its hot path)."""
    return [time, priority, seq, action, EVENT_LIVE]


class EventHandle:
    """Handle returned by :meth:`Engine.schedule`; supports cancellation.

    Cancellation is lazy: the entry stays in its queue but is skipped when
    popped.  This keeps cancellation O(1).  The handle notifies its owner
    (the engine) on a *successful* cancellation so the engine's live-event
    counter stays exact without ever walking the heap.
    """

    __slots__ = ("_entry", "_owner")

    def __init__(self, entry: EventEntry, owner=None) -> None:
        self._entry = entry
        #: anything with a ``_note_cancelled()`` method (the engine)
        self._owner = owner

    @property
    def time(self) -> int:
        """Scheduled firing time (ps)."""
        return self._entry[TIME]

    @property
    def cancelled(self) -> bool:
        """Has the event been cancelled?"""
        return self._entry[STATE] == EVENT_CANCELLED

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent, no-op after fire)."""
        entry = self._entry
        if entry[STATE] != EVENT_LIVE:
            return
        entry[STATE] = EVENT_CANCELLED
        if self._owner is not None:
            self._owner._note_cancelled()
