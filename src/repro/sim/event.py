"""Events and cancellable event handles.

An :class:`Event` is a (time, priority, seq, action) record.  ``seq`` is a
monotonically increasing tie-breaker so that events scheduled at the same
timestamp with the same priority fire in scheduling order -- this gives the
simulator deterministic, reproducible behaviour regardless of heap
internals.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable


@dataclasses.dataclass(order=True)
class Event:
    """A scheduled simulation event.

    Ordering is by ``(time, priority, seq)``; the callable itself does not
    participate in comparisons.
    """

    time: int
    priority: int
    seq: int
    action: Callable[[], Any] = dataclasses.field(compare=False)
    cancelled: bool = dataclasses.field(default=False, compare=False)
    #: set by the engine the moment the action runs; guards the live-event
    #: counter against a handle cancelled after its event already fired
    fired: bool = dataclasses.field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`Engine.schedule`; supports cancellation.

    Cancellation is lazy: the event stays in the heap but is skipped when
    popped.  This keeps cancellation O(1).  The handle notifies its owner
    (the engine) on a *successful* cancellation so the engine's live-event
    counter stays exact without ever walking the heap.
    """

    __slots__ = ("_event", "_owner")

    def __init__(self, event: Event, owner=None) -> None:
        self._event = event
        #: anything with a ``_note_cancelled()`` method (the engine)
        self._owner = owner

    @property
    def time(self) -> int:
        """Scheduled firing time (ps)."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Has the event been cancelled?"""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        event = self._event
        if event.cancelled or event.fired:
            return
        event.cancelled = True
        if self._owner is not None:
            self._owner._note_cancelled()
