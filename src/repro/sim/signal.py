"""Signals: wakeup points that processes can block on.

A :class:`Signal` is a lightweight condition variable for the simulation.
Processes (see :mod:`repro.sim.process`) block on a signal with
``yield wait_on(sig)``; components fire it with :meth:`Signal.pulse` (wake
all current waiters once) or set a persistent level with :meth:`Signal.set`
(waiters return immediately while the level is high).
"""

from __future__ import annotations

from typing import Callable, List


class Signal:
    """A pulse/level wakeup signal.

    ``pulse()`` wakes every currently-registered waiter exactly once.
    ``set()``/``clear()`` manage a persistent level; a waiter registering
    while the level is set is woken immediately (on the next zero-delay
    event), which avoids lost-wakeup races between a producer and a
    consumer that checks state before sleeping.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._level = False
        self._waiters: List[Callable[[], None]] = []
        self._observers: List[Callable[[], None]] = []
        self._pulses = 0

    # ------------------------------------------------------------- observers
    @property
    def level(self) -> bool:
        """Current persistent level."""
        return self._level

    @property
    def pulse_count(self) -> int:
        """Total number of pulses fired (monitoring/testing aid)."""
        return self._pulses

    @property
    def num_waiters(self) -> int:
        """How many one-shot waiters are registered."""
        return len(self._waiters)

    # ----------------------------------------------------------------- waits
    def add_waiter(self, callback: Callable[[], None]) -> None:
        """Register a wakeup callback (used by the process layer)."""
        self._waiters.append(callback)

    def remove_waiter(self, callback: Callable[[], None]) -> None:
        """Unregister a callback; ignores callbacks already woken."""
        try:
            self._waiters.remove(callback)
        except ValueError:
            pass

    def observe(self, callback: Callable[[], None]) -> None:
        """Register a *persistent* observer, called on every pulse.

        Unlike waiters, observers are not consumed; they are how one
        signal (e.g. a NIC-wide "work arrived" kick) fans in several
        sources (rx FIFO, command FIFO, DMA completions).
        """
        self._observers.append(callback)

    # ---------------------------------------------------------------- firing
    def pulse(self) -> None:
        """Wake all currently registered waiters once (and all observers)."""
        self._pulses += 1
        if self._waiters:
            waiters, self._waiters = self._waiters, []
            for callback in waiters:
                callback()
        for callback in self._observers:
            callback()

    def set(self) -> None:
        """Raise the level and wake waiters (inlined :meth:`pulse` body --
        every FIFO push lands here, so the extra call frame showed up)."""
        self._level = True
        self._pulses += 1
        waiters = self._waiters
        if waiters:
            self._waiters = []
            for callback in waiters:
                callback()
        for callback in self._observers:
            callback()

    def clear(self) -> None:
        """Lower the level."""
        self._level = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "set" if self._level else "clear"
        return f"<Signal {self.name!r} {state} waiters={len(self._waiters)}>"
