"""A simple N-port network fabric.

Every port pair is connected with the Table III wire: 200 ns latency, plus
serialization at the injection link's bandwidth.  Packets between a given
(source, destination) pair are delivered in injection order -- the network
ordering guarantee that MPI's "messages between two nodes in the same
context arrive in send order" semantics build on.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.network.faults import FaultModel, Verdict
from repro.network.packet import Packet
from repro.proc.params import NETWORK_WIRE_LATENCY_PS
from repro.sim.component import Component
from repro.sim.engine import Engine
from repro.sim.fifo import Fifo
from repro.sim.link import Link


@dataclasses.dataclass(frozen=True)
class FabricConfig:
    """Latency/bandwidth of the interconnect."""

    wire_latency_ps: int = NETWORK_WIRE_LATENCY_PS
    #: injection bandwidth; 0.002 bytes/ps = 2 GB/s (Red Storm class)
    bandwidth_bytes_per_ps: float = 0.002


class Fabric(Component):
    """N nodes, each with an rx FIFO; per-source-pair ordered delivery."""

    def __init__(
        self,
        engine: Engine,
        num_nodes: int,
        config: FabricConfig = FabricConfig(),
        name: str = "fabric",
        faults: Optional[FaultModel] = None,
    ) -> None:
        super().__init__(engine, name)
        if num_nodes <= 0:
            raise ValueError(f"need at least one node, got {num_nodes}")
        self.config = config
        self.num_nodes = num_nodes
        #: optional fault oracle; when None (or idle) injection is the
        #: historical single-send path, bit-for-bit
        self.faults = faults
        #: one receive FIFO per node; the NIC's Rx side drains it
        self.rx_fifos: List[Fifo] = [
            Fifo(name=f"{name}.rx{i}") for i in range(num_nodes)
        ]
        #: per-destination delivery callbacks (NICs hook header replication
        #: to the ALPU and their wakeup kick here)
        self._rx_callbacks: List[List] = [[] for _ in range(num_nodes)]

        def _notify(dst: int, packet: Packet) -> None:
            self.in_flight -= 1
            for callback in self._rx_callbacks[dst]:
                callback(packet)

        # one link per (src, dst) pair: serialization happens at injection,
        # so back-to-back sends between one pair queue behind each other
        # while different sources can overlap (a crossbar-like fabric)
        self._links: List[List[Link]] = [
            [
                Link(
                    engine,
                    f"{name}.wire{src}->{dst}",
                    dest=self.rx_fifos[dst],
                    latency_ps=config.wire_latency_ps,
                    bandwidth_bytes_per_ps=config.bandwidth_bytes_per_ps,
                    on_deliver=(lambda d: (lambda pkt: _notify(d, pkt)))(dst),
                )
                for dst in range(num_nodes)
            ]
            for src in range(num_nodes)
        ]
        self._seq: Dict[tuple, int] = {}
        self.packets_delivered = 0
        #: packets committed to a wire but not yet delivered (duplicates
        #: count twice, dropped packets never count) -- a plain counter
        #: kept exact by :meth:`inject`/delivery, probed by the timeline
        self.in_flight = 0
        # telemetry: totals as counters, per-link traffic/utilization as
        # snapshot-time collectors over the Link objects' own tallies
        registry = engine.metrics
        self._m_packets = registry.counter(f"{name}/packets")
        self._m_bytes = registry.counter(f"{name}/bytes")
        self._m_dropped = registry.counter(f"{name}/faults_dropped")
        self._m_duplicated = registry.counter(f"{name}/faults_duplicated")
        self._m_delayed = registry.counter(f"{name}/faults_delayed")
        self._m_corrupted = registry.counter(f"{name}/faults_corrupted")
        if registry.enabled:
            for src in range(num_nodes):
                for dst in range(num_nodes):
                    link = self._links[src][dst]
                    registry.register_collector(
                        f"{link.name}/bytes", lambda lnk=link: lnk.bytes_sent
                    )
                    registry.register_collector(
                        f"{link.name}/utilization",
                        lambda lnk=link: lnk.utilization(),
                    )

    def inject(self, packet: Packet) -> Packet:
        """Send a packet; returns the (sequence-stamped) packet injected."""
        if not 0 <= packet.src < self.num_nodes:
            raise ValueError(f"bad source node {packet.src}")
        if not 0 <= packet.dst < self.num_nodes:
            raise ValueError(f"bad destination node {packet.dst}")
        key = (packet.src, packet.dst)
        seq = self._seq.get(key, 0)
        self._seq[key] = seq + 1
        stamped = dataclasses.replace(packet, seq=seq)
        verdict = Verdict.DELIVER if self.faults is None else self.faults.judge(stamped)
        link = self._links[packet.src][packet.dst]
        if verdict is Verdict.DROP:
            # swallowed by the wire: no link traffic, no delivery.  The
            # sender's reliability layer (if any) recovers via timeout.
            self._m_dropped.inc()
            lifecycle = self.engine.lifecycle
            if lifecycle.enabled:
                lifecycle.mark_uid(
                    stamped.send_id,
                    "wire_drop",
                    detail={"kind": stamped.kind.name, "seq": stamped.seq},
                )
            tracer = self.engine.tracer
            if tracer.enabled:
                tracer.instant(
                    "network",
                    f"{self.name}.fault_drop",
                    {"kind": stamped.kind.name, "src": stamped.src, "dst": stamped.dst},
                )
            return stamped
        if verdict is Verdict.CORRUPT:
            # flip match-header bits but leave the checksum stale so the
            # receiver's verification catches it and NACKs
            stamped = dataclasses.replace(
                stamped, match_bits=self.faults.corrupt_bits(stamped.match_bits)
            )
            self._m_corrupted.inc()
        if verdict is Verdict.DELAY:
            # hold the packet back long enough for later traffic on the
            # same pair to overtake it: a genuine reorder at the receiver
            self._m_delayed.inc()
            delay_ps = self.faults.config.reorder_delay_ps
            self.in_flight += 1
            self.engine.schedule(
                delay_ps, lambda p=stamped: link.send(p, p.wire_bytes)
            )
        else:
            self.in_flight += 1
            link.send(stamped, stamped.wire_bytes)
            if verdict is Verdict.DUPLICATE:
                self._m_duplicated.inc()
                self.in_flight += 1
                link.send(stamped, stamped.wire_bytes)
        lifecycle = self.engine.lifecycle
        if lifecycle.enabled:
            lifecycle.mark_uid(
                stamped.send_id,
                "wire",
                detail={
                    "kind": stamped.kind.name,
                    "src": stamped.src,
                    "dst": stamped.dst,
                    "bytes": stamped.wire_bytes,
                },
            )
        self.packets_delivered += 1
        self._m_packets.inc()
        self._m_bytes.inc(stamped.wire_bytes)
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.instant(
                "network",
                f"{self.name}.inject",
                {
                    "kind": packet.kind.name,
                    "src": packet.src,
                    "dst": packet.dst,
                    "bytes": stamped.wire_bytes,
                },
            )
        return stamped

    def rx_fifo(self, node: int) -> Fifo:
        """The receive FIFO the NIC of ``node`` polls."""
        return self.rx_fifos[node]

    def subscribe_rx(self, node: int, callback) -> None:
        """Call ``callback(packet)`` whenever a packet lands at ``node``.

        Fires after the packet is pushed into the node's rx FIFO, i.e.
        hardware-side: the NIC uses this for its wakeup kick and for
        replicating match headers into the ALPU's header FIFO.
        """
        self._rx_callbacks[node].append(callback)
