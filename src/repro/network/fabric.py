"""A routed, topology-aware network fabric.

The fabric is an injection front-end over a :class:`~repro.network.
topology.Topology`: every directed physical channel of the topology is
one shared, contended :class:`~repro.sim.link.Link` (Table III wire: 200
ns head latency plus serialization at the channel's bandwidth), and a
packet walks its deterministic minimal route hop by hop, store-and-
forward -- it fully serializes onto each channel in turn, queueing
behind whatever that channel is already carrying.

The default ``crossbar`` preset dedicates one channel per (src, dst)
pair and routes in a single hop, which reproduces the historical
"one wire per pair" fabric bit for bit (pinned by the benchmark
baseline).  The routed presets (``ring`` / ``mesh2d`` / ``torus3d``)
share channels between pairs, so many-rank workloads finally see link
contention and multi-hop distance.

Ordering: routes are fixed per (src, dst) pair and each channel is FIFO
under constant head latency, so packets between a given pair are
delivered in injection order on *every* preset -- the network guarantee
MPI's "messages arrive in send order" semantics build on (pinned by
property test across presets).

Faults: the optional :class:`FaultModel` is consulted once per hop --
per link, not per packet -- so a longer route faces proportionally more
exposure, exactly like a real multi-hop fabric.  On the single-hop
crossbar this degenerates to the historical one-judgement-per-packet
behaviour, keeping seeded fault runs bit-identical.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.network.faults import FaultModel, Verdict
from repro.network.packet import Packet
from repro.network.topology import Topology, TopologyConfig
from repro.proc.params import NETWORK_WIRE_LATENCY_PS
from repro.sim.component import Component
from repro.sim.engine import Engine
from repro.sim.fifo import Fifo
from repro.sim.link import Link


@dataclasses.dataclass(frozen=True)
class FabricConfig:
    """Latency/bandwidth of the interconnect, and its shape."""

    wire_latency_ps: int = NETWORK_WIRE_LATENCY_PS
    #: per-channel bandwidth; 0.002 bytes/ps = 2 GB/s (Red Storm class)
    bandwidth_bytes_per_ps: float = 0.002
    #: which channels exist and how packets route over them
    topology: TopologyConfig = dataclasses.field(default_factory=TopologyConfig)

    def __post_init__(self) -> None:
        if self.wire_latency_ps < 0:
            raise ValueError(
                f"wire_latency_ps must be >= 0, got {self.wire_latency_ps}"
            )
        if self.bandwidth_bytes_per_ps <= 0:
            raise ValueError(
                "bandwidth_bytes_per_ps must be > 0, got "
                f"{self.bandwidth_bytes_per_ps}"
            )

    @staticmethod
    def with_topology(preset: Optional[str]) -> "FabricConfig":
        """Default wire parameters over ``preset`` (None = crossbar)."""
        if preset is None:
            return FabricConfig()
        return FabricConfig(topology=TopologyConfig(preset=preset))


class Fabric(Component):
    """N nodes, routed channels, per-source-pair ordered delivery."""

    def __init__(
        self,
        engine: Engine,
        num_nodes: int,
        config: Optional[FabricConfig] = None,
        name: str = "fabric",
        faults: Optional[FaultModel] = None,
        observe_hops: bool = False,
    ) -> None:
        super().__init__(engine, name)
        if num_nodes <= 0:
            raise ValueError(f"need at least one node, got {num_nodes}")
        self.config = config = config if config is not None else FabricConfig()
        self.num_nodes = num_nodes
        self.topology = Topology.build(config.topology, num_nodes)
        #: optional fault oracle, consulted once per hop; when None (or
        #: idle) every hop is the historical single-send path, bit-for-bit
        self.faults = faults
        #: fabric observability: when True (and a lifecycle recorder is
        #: attached) every hop decomposes into ``hop_wait`` /
        #: ``hop_serialize`` / ``hop_transit`` lifecycle marks whose
        #: residencies telescope exactly over the former ``wire`` stage.
        #: Off by default so the pinned attribution tables keep their
        #: historical single-``wire`` shape.
        self.observe_hops = observe_hops
        #: one receive FIFO per node; the NIC's Rx side drains it
        self.rx_fifos: List[Fifo] = [
            Fifo(name=f"{name}.rx{i}") for i in range(num_nodes)
        ]
        #: per-destination delivery callbacks (NICs hook header replication
        #: to the ALPU and their wakeup kick here)
        self._rx_callbacks: List[List] = [[] for _ in range(num_nodes)]

        # one shared Link per directed physical channel of the topology;
        # the channel's receiving node either delivers (final hop) or
        # forwards (store-and-forward onto the next channel)
        self._links: Dict[Tuple[int, int], Link] = {}
        for src, dst in self.topology.channels:
            self._links[(src, dst)] = Link(
                engine,
                f"{name}.wire{src}->{dst}",
                dest=None,
                latency_ps=config.wire_latency_ps,
                bandwidth_bytes_per_ps=config.bandwidth_bytes_per_ps,
                on_deliver=(lambda hop: (lambda pkt: self._on_hop(hop, pkt)))(
                    dst
                ),
            )
        self._seq: Dict[tuple, int] = {}
        #: packets handed to :meth:`inject` (dropped ones included; a
        #: duplicated packet counts once -- it was injected once)
        self.packets_injected = 0
        #: packets actually landed in a destination's rx FIFO (duplicates
        #: count per landing; dropped packets never count)
        self.packets_delivered = 0
        #: store-and-forward handoffs (multi-hop presets only)
        self.hops_forwarded = 0
        #: fabric-scope fault tallies (plain ints; the metrics counters
        #: mirror them when a registry is enabled)
        self.fault_totals: Dict[str, int] = {
            "dropped": 0, "duplicated": 0, "delayed": 0, "corrupted": 0
        }
        #: per-link fault tallies, keyed by link name -- lets heatmaps
        #: and watchdogs localize a faulty channel instead of seeing one
        #: fabric-wide aggregate (populated lazily, fault runs only)
        self.link_faults: Dict[str, Dict[str, int]] = {}
        #: packets committed to a wire but not yet delivered (duplicates
        #: count twice, dropped packets leave the count) -- a plain
        #: counter kept exact by inject/forward/delivery, probed by the
        #: timeline
        self.in_flight = 0
        # telemetry: totals as counters, per-channel traffic/utilization
        # as snapshot-time collectors over the Link objects' own tallies
        registry = engine.metrics
        self._m_packets = registry.counter(f"{name}/packets")
        self._m_delivered = registry.counter(f"{name}/packets_delivered")
        self._m_bytes = registry.counter(f"{name}/bytes")
        self._m_forwards = registry.counter(f"{name}/hops_forwarded")
        self._m_dropped = registry.counter(f"{name}/faults_dropped")
        self._m_duplicated = registry.counter(f"{name}/faults_duplicated")
        self._m_delayed = registry.counter(f"{name}/faults_delayed")
        self._m_corrupted = registry.counter(f"{name}/faults_corrupted")
        if registry.enabled:
            for link in self._links.values():
                registry.register_collector(
                    f"{link.name}/bytes", lambda lnk=link: lnk.bytes_sent
                )
                registry.register_collector(
                    f"{link.name}/utilization",
                    lambda lnk=link: lnk.utilization(),
                )
            if faults is not None:
                # per-link fault localization (snapshot-time collectors
                # over the lazy tallies; registered only on fault runs so
                # fault-free snapshots keep their historical key set)
                for link in self._links.values():
                    for kind in ("dropped", "duplicated", "delayed", "corrupted"):
                        registry.register_collector(
                            f"{link.name}/faults_{kind}",
                            lambda lnk=link, k=kind: self.link_faults.get(
                                lnk.name, {}
                            ).get(k, 0),
                        )

    # ------------------------------------------------------------ injection
    def _fault(self, link: Link, kind: str, counter) -> None:
        """Count one fault verdict at fabric scope and against ``link``."""
        counter.inc()
        self.fault_totals[kind] += 1
        per_link = self.link_faults.get(link.name)
        if per_link is None:
            per_link = self.link_faults[link.name] = {
                "dropped": 0, "duplicated": 0, "delayed": 0, "corrupted": 0
            }
        per_link[kind] += 1

    def _send_hop(self, link: Link, packet: Packet) -> None:
        """Commit ``packet`` to ``link``; mark the hop when observed.

        The three marks carry *computed* timestamps known at commit time
        (``Link.send`` returns the delivery instant): contention wait
        runs now -> serialization start, serialization start -> end, and
        head latency end -> delivery -- so the hop's budget telescopes
        exactly onto the channel's actual schedule without a single extra
        simulated event (the zero-perturbation guarantee).
        """
        deliver_at = link.send(packet, packet.wire_bytes)
        if self.observe_hops:
            lifecycle = self.engine.lifecycle
            if lifecycle.enabled:
                now = self.engine.now
                occupancy = link.occupancy_ps(packet.wire_bytes)
                start = deliver_at - link.latency_ps - occupancy
                uid = packet.send_id
                lifecycle.mark_uid_clamped(
                    uid,
                    "hop_wait",
                    now,
                    {"link": link.name, "wait_ps": start - now},
                )
                lifecycle.mark_uid_clamped(
                    uid,
                    "hop_serialize",
                    start,
                    {
                        "link": link.name,
                        "serialize_ps": occupancy,
                        "bytes": packet.wire_bytes,
                    },
                )
                lifecycle.mark_uid_clamped(
                    uid,
                    "hop_transit",
                    start + occupancy,
                    {"link": link.name, "transit_ps": link.latency_ps},
                )

    def _mark_fault_delay(self, link: Link, packet: Packet, delay_ps: int) -> None:
        """A reorder-delay verdict held the packet back before this hop."""
        if self.observe_hops:
            lifecycle = self.engine.lifecycle
            if lifecycle.enabled:
                lifecycle.mark_uid_clamped(
                    packet.send_id,
                    "hop_fault_delay",
                    self.engine.now,
                    {"link": link.name, "delay_ps": delay_ps},
                )

    def inject(self, packet: Packet) -> Packet:
        """Send a packet; returns the (sequence-stamped) packet injected."""
        if not 0 <= packet.src < self.num_nodes:
            raise ValueError(f"bad source node {packet.src}")
        if not 0 <= packet.dst < self.num_nodes:
            raise ValueError(f"bad destination node {packet.dst}")
        key = (packet.src, packet.dst)
        seq = self._seq.get(key, 0)
        self._seq[key] = seq + 1
        # seq-stamp without dataclasses.replace: replace() re-runs the full
        # dataclass __init__, and injection is per-packet hot.  Packet has
        # no __post_init__, so a field-for-field clone is equivalent.
        stamped = object.__new__(Packet)
        stamped.__dict__.update(packet.__dict__)
        stamped.__dict__["seq"] = seq
        self.packets_injected += 1
        verdict = Verdict.DELIVER if self.faults is None else self.faults.judge(stamped)
        link = self._links[(packet.src, self.topology.next_hop(packet.src, packet.dst))]
        if verdict is Verdict.DROP:
            # swallowed by the wire: no link traffic, no delivery.  The
            # sender's reliability layer (if any) recovers via timeout.
            self._fault(link, "dropped", self._m_dropped)
            lifecycle = self.engine.lifecycle
            if lifecycle.enabled:
                lifecycle.mark_uid(
                    stamped.send_id,
                    "wire_drop",
                    detail={"kind": stamped.kind.name, "seq": stamped.seq},
                )
            tracer = self.engine.tracer
            if tracer.enabled:
                tracer.instant(
                    "network",
                    f"{self.name}.fault_drop",
                    {"kind": stamped.kind.name, "src": stamped.src, "dst": stamped.dst},
                )
            return stamped
        if verdict is Verdict.CORRUPT:
            # flip match-header bits but leave the checksum stale so the
            # receiver's verification catches it and NACKs
            stamped = dataclasses.replace(
                stamped, match_bits=self.faults.corrupt_bits(stamped.match_bits)
            )
            self._fault(link, "corrupted", self._m_corrupted)
        wire_bytes = stamped.wire_bytes
        # the wire mark lands *before* the hop marks: with fabric
        # observability on its residency collapses to zero and the hop
        # stages carry the decomposed budget (identical timestamp and
        # content either way)
        lifecycle = self.engine.lifecycle
        if lifecycle.enabled:
            lifecycle.mark_uid(
                stamped.send_id,
                "wire",
                detail={
                    "kind": stamped.kind.name,
                    "src": stamped.src,
                    "dst": stamped.dst,
                    "bytes": stamped.wire_bytes,
                },
            )
        if verdict is Verdict.DELAY:
            # hold the packet back long enough for later traffic on the
            # same pair to overtake it: a genuine reorder at the receiver
            self._fault(link, "delayed", self._m_delayed)
            delay_ps = self.faults.config.reorder_delay_ps
            self._mark_fault_delay(link, stamped, delay_ps)
            self.in_flight += 1
            self.engine.schedule(
                delay_ps, lambda p=stamped, lk=link: self._send_hop(lk, p)
            )
        else:
            self.in_flight += 1
            self._send_hop(link, stamped)
            if verdict is Verdict.DUPLICATE:
                self._fault(link, "duplicated", self._m_duplicated)
                self.in_flight += 1
                self._send_hop(link, stamped)
        self._m_packets.inc()
        self._m_bytes.inc(wire_bytes)
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.instant(
                "network",
                f"{self.name}.inject",
                {
                    "kind": packet.kind.name,
                    "src": packet.src,
                    "dst": packet.dst,
                    "bytes": stamped.wire_bytes,
                },
            )
        return stamped

    # -------------------------------------------------------------- routing
    def _on_hop(self, node: int, packet: Packet) -> None:
        """A channel finished serializing ``packet`` into ``node``."""
        if node == packet.dst:
            self.rx_fifos[node].push(packet)
            self._notify(node, packet)
        else:
            self._forward(node, packet)

    def _forward(self, node: int, packet: Packet) -> None:
        """Store-and-forward onto the next channel of the route.

        Each hop faces the fault oracle independently (per-link faults):
        a drop here strands the packet mid-route -- recovered, as at
        injection, by the endpoints' reliability layer.
        """
        link = self._links[(node, self.topology.next_hop(node, packet.dst))]
        verdict = Verdict.DELIVER if self.faults is None else self.faults.judge(packet)
        self._m_forwards.inc()
        self.hops_forwarded += 1
        if verdict is Verdict.DROP:
            self.in_flight -= 1
            self._fault(link, "dropped", self._m_dropped)
            lifecycle = self.engine.lifecycle
            if lifecycle.enabled:
                lifecycle.mark_uid(
                    packet.send_id,
                    "wire_drop",
                    detail={
                        "kind": packet.kind.name,
                        "seq": packet.seq,
                        "at_hop": node,
                    },
                )
            tracer = self.engine.tracer
            if tracer.enabled:
                tracer.instant(
                    "network",
                    f"{self.name}.fault_drop",
                    {
                        "kind": packet.kind.name,
                        "src": packet.src,
                        "dst": packet.dst,
                        "at_hop": node,
                    },
                )
            return
        if verdict is Verdict.CORRUPT:
            packet = dataclasses.replace(
                packet, match_bits=self.faults.corrupt_bits(packet.match_bits)
            )
            self._fault(link, "corrupted", self._m_corrupted)
        if verdict is Verdict.DELAY:
            self._fault(link, "delayed", self._m_delayed)
            delay_ps = self.faults.config.reorder_delay_ps
            self._mark_fault_delay(link, packet, delay_ps)
            self.engine.schedule(
                delay_ps,
                lambda p=packet, lk=link: self._send_hop(lk, p),
            )
        else:
            self._send_hop(link, packet)
            if verdict is Verdict.DUPLICATE:
                self._fault(link, "duplicated", self._m_duplicated)
                self.in_flight += 1
                self._send_hop(link, packet)

    def _notify(self, dst: int, packet: Packet) -> None:
        self.in_flight -= 1
        self.packets_delivered += 1
        self._m_delivered.inc()
        for callback in self._rx_callbacks[dst]:
            callback(packet)

    # -------------------------------------------------------------- surface
    @property
    def links(self) -> List[Link]:
        """The physical channels (self-channels excluded), build order."""
        return [
            link for (u, v), link in self._links.items() if u != v
        ]

    def link(self, src: int, dst: int) -> Link:
        """The channel from ``src`` to adjacent ``dst`` (KeyError if none)."""
        return self._links[(src, dst)]

    def rx_fifo(self, node: int) -> Fifo:
        """The receive FIFO the NIC of ``node`` polls."""
        return self.rx_fifos[node]

    def snapshot(self) -> Dict[str, object]:
        """A JSON-serializable picture of the fabric's state.

        This is the ``fabric`` section of the unified run report: the
        topology, per-link traffic/contention/fault tallies, and the
        per-pair traffic matrix with each pair's pinned route (off the
        topology's shared :meth:`~repro.network.topology.Topology.
        route_table`).  Pure reads; safe to take at any time.
        """
        now = self.engine.now
        links: List[Dict[str, object]] = []
        for (u, v), link in self._links.items():
            if u == v:
                continue
            faults = self.link_faults.get(link.name)
            links.append(
                {
                    "src": u,
                    "dst": v,
                    "name": link.name,
                    "messages": link.messages_sent,
                    "bytes": link.bytes_sent,
                    "busy_ps": link.busy_ps,
                    "wait_ps": link.wait_ps,
                    "utilization": link.utilization(),
                    "peak_queue": link.peak_queue,
                    "faults": dict(faults) if faults else None,
                }
            )
        routes = self.topology.route_table()
        pairs = [
            {
                "src": src,
                "dst": dst,
                "packets": count,
                "hops": len(routes[(src, dst)]) if src != dst else 1,
                "route": list(routes[(src, dst)]) if src != dst else [dst],
            }
            for (src, dst), count in sorted(self._seq.items())
        ]
        topology = self.topology
        return {
            "topology": {
                "preset": topology.preset,
                "dims": list(topology.dims) if topology.dims else None,
                "num_nodes": topology.num_nodes,
                "diameter": topology.diameter(),
                "description": topology.describe(),
            },
            "now_ps": now,
            "packets_injected": self.packets_injected,
            "packets_delivered": self.packets_delivered,
            "hops_forwarded": self.hops_forwarded,
            "in_flight": self.in_flight,
            "wire_bytes": sum(link["bytes"] for link in links),
            "fault_totals": dict(self.fault_totals),
            "links": links,
            "pairs": pairs,
        }

    def subscribe_rx(self, node: int, callback) -> None:
        """Call ``callback(packet)`` whenever a packet lands at ``node``.

        Fires after the packet is pushed into the node's rx FIFO, i.e.
        hardware-side: the NIC uses this for its wakeup kick and for
        replicating match headers into the ALPU's header FIFO.
        """
        self._rx_callbacks[node].append(callback)
