"""A routed, topology-aware network fabric.

The fabric is an injection front-end over a :class:`~repro.network.
topology.Topology`: every directed physical channel of the topology is
one shared, contended :class:`~repro.sim.link.Link` (Table III wire: 200
ns head latency plus serialization at the channel's bandwidth), and a
packet walks its deterministic minimal route hop by hop, store-and-
forward -- it fully serializes onto each channel in turn, queueing
behind whatever that channel is already carrying.

The default ``crossbar`` preset dedicates one channel per (src, dst)
pair and routes in a single hop, which reproduces the historical
"one wire per pair" fabric bit for bit (pinned by the benchmark
baseline).  The routed presets (``ring`` / ``mesh2d`` / ``torus3d``)
share channels between pairs, so many-rank workloads finally see link
contention and multi-hop distance.

Ordering: routes are fixed per (src, dst) pair and each channel is FIFO
under constant head latency, so packets between a given pair are
delivered in injection order on *every* preset -- the network guarantee
MPI's "messages arrive in send order" semantics build on (pinned by
property test across presets).

Faults: the optional :class:`FaultModel` is consulted once per hop --
per link, not per packet -- so a longer route faces proportionally more
exposure, exactly like a real multi-hop fabric.  On the single-hop
crossbar this degenerates to the historical one-judgement-per-packet
behaviour, keeping seeded fault runs bit-identical.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.network.faults import FaultModel, Verdict
from repro.network.packet import Packet
from repro.network.topology import Topology, TopologyConfig
from repro.proc.params import NETWORK_WIRE_LATENCY_PS
from repro.sim.component import Component
from repro.sim.engine import Engine
from repro.sim.fifo import Fifo
from repro.sim.link import Link


@dataclasses.dataclass(frozen=True)
class FabricConfig:
    """Latency/bandwidth of the interconnect, and its shape."""

    wire_latency_ps: int = NETWORK_WIRE_LATENCY_PS
    #: per-channel bandwidth; 0.002 bytes/ps = 2 GB/s (Red Storm class)
    bandwidth_bytes_per_ps: float = 0.002
    #: which channels exist and how packets route over them
    topology: TopologyConfig = dataclasses.field(default_factory=TopologyConfig)

    def __post_init__(self) -> None:
        if self.wire_latency_ps < 0:
            raise ValueError(
                f"wire_latency_ps must be >= 0, got {self.wire_latency_ps}"
            )
        if self.bandwidth_bytes_per_ps <= 0:
            raise ValueError(
                "bandwidth_bytes_per_ps must be > 0, got "
                f"{self.bandwidth_bytes_per_ps}"
            )

    @staticmethod
    def with_topology(preset: Optional[str]) -> "FabricConfig":
        """Default wire parameters over ``preset`` (None = crossbar)."""
        if preset is None:
            return FabricConfig()
        return FabricConfig(topology=TopologyConfig(preset=preset))


class Fabric(Component):
    """N nodes, routed channels, per-source-pair ordered delivery."""

    def __init__(
        self,
        engine: Engine,
        num_nodes: int,
        config: Optional[FabricConfig] = None,
        name: str = "fabric",
        faults: Optional[FaultModel] = None,
    ) -> None:
        super().__init__(engine, name)
        if num_nodes <= 0:
            raise ValueError(f"need at least one node, got {num_nodes}")
        self.config = config = config if config is not None else FabricConfig()
        self.num_nodes = num_nodes
        self.topology = Topology.build(config.topology, num_nodes)
        #: optional fault oracle, consulted once per hop; when None (or
        #: idle) every hop is the historical single-send path, bit-for-bit
        self.faults = faults
        #: one receive FIFO per node; the NIC's Rx side drains it
        self.rx_fifos: List[Fifo] = [
            Fifo(name=f"{name}.rx{i}") for i in range(num_nodes)
        ]
        #: per-destination delivery callbacks (NICs hook header replication
        #: to the ALPU and their wakeup kick here)
        self._rx_callbacks: List[List] = [[] for _ in range(num_nodes)]

        # one shared Link per directed physical channel of the topology;
        # the channel's receiving node either delivers (final hop) or
        # forwards (store-and-forward onto the next channel)
        self._links: Dict[Tuple[int, int], Link] = {}
        for src, dst in self.topology.channels:
            self._links[(src, dst)] = Link(
                engine,
                f"{name}.wire{src}->{dst}",
                dest=None,
                latency_ps=config.wire_latency_ps,
                bandwidth_bytes_per_ps=config.bandwidth_bytes_per_ps,
                on_deliver=(lambda hop: (lambda pkt: self._on_hop(hop, pkt)))(
                    dst
                ),
            )
        self._seq: Dict[tuple, int] = {}
        #: packets handed to :meth:`inject` (dropped ones included; a
        #: duplicated packet counts once -- it was injected once)
        self.packets_injected = 0
        #: packets actually landed in a destination's rx FIFO (duplicates
        #: count per landing; dropped packets never count)
        self.packets_delivered = 0
        #: packets committed to a wire but not yet delivered (duplicates
        #: count twice, dropped packets leave the count) -- a plain
        #: counter kept exact by inject/forward/delivery, probed by the
        #: timeline
        self.in_flight = 0
        # telemetry: totals as counters, per-channel traffic/utilization
        # as snapshot-time collectors over the Link objects' own tallies
        registry = engine.metrics
        self._m_packets = registry.counter(f"{name}/packets")
        self._m_delivered = registry.counter(f"{name}/packets_delivered")
        self._m_bytes = registry.counter(f"{name}/bytes")
        self._m_forwards = registry.counter(f"{name}/hops_forwarded")
        self._m_dropped = registry.counter(f"{name}/faults_dropped")
        self._m_duplicated = registry.counter(f"{name}/faults_duplicated")
        self._m_delayed = registry.counter(f"{name}/faults_delayed")
        self._m_corrupted = registry.counter(f"{name}/faults_corrupted")
        if registry.enabled:
            for link in self._links.values():
                registry.register_collector(
                    f"{link.name}/bytes", lambda lnk=link: lnk.bytes_sent
                )
                registry.register_collector(
                    f"{link.name}/utilization",
                    lambda lnk=link: lnk.utilization(),
                )

    # ------------------------------------------------------------ injection
    def inject(self, packet: Packet) -> Packet:
        """Send a packet; returns the (sequence-stamped) packet injected."""
        if not 0 <= packet.src < self.num_nodes:
            raise ValueError(f"bad source node {packet.src}")
        if not 0 <= packet.dst < self.num_nodes:
            raise ValueError(f"bad destination node {packet.dst}")
        key = (packet.src, packet.dst)
        seq = self._seq.get(key, 0)
        self._seq[key] = seq + 1
        # seq-stamp without dataclasses.replace: replace() re-runs the full
        # dataclass __init__, and injection is per-packet hot.  Packet has
        # no __post_init__, so a field-for-field clone is equivalent.
        stamped = object.__new__(Packet)
        stamped.__dict__.update(packet.__dict__)
        stamped.__dict__["seq"] = seq
        self.packets_injected += 1
        verdict = Verdict.DELIVER if self.faults is None else self.faults.judge(stamped)
        link = self._links[(packet.src, self.topology.next_hop(packet.src, packet.dst))]
        if verdict is Verdict.DROP:
            # swallowed by the wire: no link traffic, no delivery.  The
            # sender's reliability layer (if any) recovers via timeout.
            self._m_dropped.inc()
            lifecycle = self.engine.lifecycle
            if lifecycle.enabled:
                lifecycle.mark_uid(
                    stamped.send_id,
                    "wire_drop",
                    detail={"kind": stamped.kind.name, "seq": stamped.seq},
                )
            tracer = self.engine.tracer
            if tracer.enabled:
                tracer.instant(
                    "network",
                    f"{self.name}.fault_drop",
                    {"kind": stamped.kind.name, "src": stamped.src, "dst": stamped.dst},
                )
            return stamped
        if verdict is Verdict.CORRUPT:
            # flip match-header bits but leave the checksum stale so the
            # receiver's verification catches it and NACKs
            stamped = dataclasses.replace(
                stamped, match_bits=self.faults.corrupt_bits(stamped.match_bits)
            )
            self._m_corrupted.inc()
        wire_bytes = stamped.wire_bytes
        if verdict is Verdict.DELAY:
            # hold the packet back long enough for later traffic on the
            # same pair to overtake it: a genuine reorder at the receiver
            self._m_delayed.inc()
            delay_ps = self.faults.config.reorder_delay_ps
            self.in_flight += 1
            self.engine.schedule(
                delay_ps, lambda p=stamped: link.send(p, p.wire_bytes)
            )
        else:
            self.in_flight += 1
            link.send(stamped, wire_bytes)
            if verdict is Verdict.DUPLICATE:
                self._m_duplicated.inc()
                self.in_flight += 1
                link.send(stamped, wire_bytes)
        lifecycle = self.engine.lifecycle
        if lifecycle.enabled:
            lifecycle.mark_uid(
                stamped.send_id,
                "wire",
                detail={
                    "kind": stamped.kind.name,
                    "src": stamped.src,
                    "dst": stamped.dst,
                    "bytes": stamped.wire_bytes,
                },
            )
        self._m_packets.inc()
        self._m_bytes.inc(wire_bytes)
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.instant(
                "network",
                f"{self.name}.inject",
                {
                    "kind": packet.kind.name,
                    "src": packet.src,
                    "dst": packet.dst,
                    "bytes": stamped.wire_bytes,
                },
            )
        return stamped

    # -------------------------------------------------------------- routing
    def _on_hop(self, node: int, packet: Packet) -> None:
        """A channel finished serializing ``packet`` into ``node``."""
        if node == packet.dst:
            self.rx_fifos[node].push(packet)
            self._notify(node, packet)
        else:
            self._forward(node, packet)

    def _forward(self, node: int, packet: Packet) -> None:
        """Store-and-forward onto the next channel of the route.

        Each hop faces the fault oracle independently (per-link faults):
        a drop here strands the packet mid-route -- recovered, as at
        injection, by the endpoints' reliability layer.
        """
        link = self._links[(node, self.topology.next_hop(node, packet.dst))]
        verdict = Verdict.DELIVER if self.faults is None else self.faults.judge(packet)
        self._m_forwards.inc()
        if verdict is Verdict.DROP:
            self.in_flight -= 1
            self._m_dropped.inc()
            lifecycle = self.engine.lifecycle
            if lifecycle.enabled:
                lifecycle.mark_uid(
                    packet.send_id,
                    "wire_drop",
                    detail={
                        "kind": packet.kind.name,
                        "seq": packet.seq,
                        "at_hop": node,
                    },
                )
            tracer = self.engine.tracer
            if tracer.enabled:
                tracer.instant(
                    "network",
                    f"{self.name}.fault_drop",
                    {
                        "kind": packet.kind.name,
                        "src": packet.src,
                        "dst": packet.dst,
                        "at_hop": node,
                    },
                )
            return
        if verdict is Verdict.CORRUPT:
            packet = dataclasses.replace(
                packet, match_bits=self.faults.corrupt_bits(packet.match_bits)
            )
            self._m_corrupted.inc()
        if verdict is Verdict.DELAY:
            self._m_delayed.inc()
            self.engine.schedule(
                self.faults.config.reorder_delay_ps,
                lambda p=packet: link.send(p, p.wire_bytes),
            )
        else:
            link.send(packet, packet.wire_bytes)
            if verdict is Verdict.DUPLICATE:
                self._m_duplicated.inc()
                self.in_flight += 1
                link.send(packet, packet.wire_bytes)

    def _notify(self, dst: int, packet: Packet) -> None:
        self.in_flight -= 1
        self.packets_delivered += 1
        self._m_delivered.inc()
        for callback in self._rx_callbacks[dst]:
            callback(packet)

    # -------------------------------------------------------------- surface
    @property
    def links(self) -> List[Link]:
        """The physical channels (self-channels excluded), build order."""
        return [
            link for (u, v), link in self._links.items() if u != v
        ]

    def link(self, src: int, dst: int) -> Link:
        """The channel from ``src`` to adjacent ``dst`` (KeyError if none)."""
        return self._links[(src, dst)]

    def rx_fifo(self, node: int) -> Fifo:
        """The receive FIFO the NIC of ``node`` polls."""
        return self.rx_fifos[node]

    def subscribe_rx(self, node: int, callback) -> None:
        """Call ``callback(packet)`` whenever a packet lands at ``node``.

        Fires after the packet is pushed into the node's rx FIFO, i.e.
        hardware-side: the NIC uses this for its wakeup kick and for
        replicating match headers into the ALPU's header FIFO.
        """
        self._rx_callbacks[node].append(callback)
