"""Network topologies and deterministic minimal routing.

The fabric historically wired every (src, dst) pair with a dedicated
link -- a crossbar.  This module generalizes that into a declarative
:class:`Topology`: a set of nodes, the directed physical channels that
exist between them, and a deterministic minimal routing function
(:meth:`Topology.next_hop`).  The fabric walks each packet hop by hop
over *shared* channels, so multi-hop presets exhibit the link contention
and distance effects a crossbar hides.

Presets
-------

``crossbar``
    One dedicated channel per ordered pair, one hop per packet -- the
    historical fabric, bit-identical to the pre-topology code path.
``ring``
    Nodes on a cycle with ±1 channels; packets take the shorter way
    around (ties break toward +1).
``mesh2d``
    A 2-D grid without wraparound; X-then-Y dimension-ordered routing.
``torus3d``
    A 3-D torus with wraparound channels and dimension-ordered routing
    in the APEnet+ style (arXiv:1102.3796): correct dimension 0, then 1,
    then 2, taking the shorter wrap direction (ties toward +1).

Every route is *minimal* and *deterministic*: all packets of a (src,
dst) pair follow one fixed path, so per-channel FIFO serialization
preserves the per-pair in-order delivery MPI's matching semantics build
on -- no adaptive routing, no out-of-order arrival without injected
faults.

Every preset also includes one self-channel (u, u) per node so rank-to-
self traffic keeps the dedicated-wire behaviour of the crossbar.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional, Tuple

#: the supported topology presets
TOPOLOGY_PRESETS = ("crossbar", "ring", "mesh2d", "torus3d")

#: grid dimensionality per preset (None = not grid-shaped)
_GRID_NDIMS = {"ring": 1, "mesh2d": 2, "torus3d": 3}


def _factorizations(n: int, k: int) -> Iterator[Tuple[int, ...]]:
    """All ordered k-way factorizations of ``n`` (small n; exhaustive)."""
    if k == 1:
        yield (n,)
        return
    for d in range(1, n + 1):
        if n % d == 0:
            for rest in _factorizations(n // d, k - 1):
                yield (d,) + rest


def balanced_dims(num_nodes: int, ndims: int) -> Tuple[int, ...]:
    """The most balanced ``ndims``-way factorization of ``num_nodes``.

    Deterministic: among factorizations minimizing the extent spread the
    lexicographically smallest wins (32 nodes in 3-D -> ``(2, 4, 4)``).
    Prime counts degenerate gracefully (13 -> ``(1, 1, 13)``, a ring).
    """
    if num_nodes <= 0:
        raise ValueError(f"need at least one node, got {num_nodes}")
    if ndims <= 0:
        raise ValueError(f"need at least one dimension, got {ndims}")
    return min(
        _factorizations(num_nodes, ndims),
        key=lambda dims: (max(dims) - min(dims), dims),
    )


@dataclasses.dataclass(frozen=True)
class TopologyConfig:
    """Which topology a fabric builds.

    ``dims`` applies to the grid presets only (``ring`` / ``mesh2d`` /
    ``torus3d``); ``None`` auto-factors the node count into the most
    balanced shape.  ``crossbar`` takes no dims.
    """

    preset: str = "crossbar"
    dims: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.preset not in TOPOLOGY_PRESETS:
            raise ValueError(
                f"unknown topology preset {self.preset!r}; "
                f"expected one of {TOPOLOGY_PRESETS}"
            )
        if self.dims is not None:
            dims = tuple(int(d) for d in self.dims)
            if not dims or any(d <= 0 for d in dims):
                raise ValueError(f"dims must be positive, got {self.dims}")
            ndims = _GRID_NDIMS.get(self.preset)
            if ndims is None:
                raise ValueError(f"preset {self.preset!r} takes no dims")
            if len(dims) != ndims:
                raise ValueError(
                    f"preset {self.preset!r} needs {ndims} dims, got {dims}"
                )
            # normalize (JSON round-trips deliver lists)
            object.__setattr__(self, "dims", dims)


class Topology:
    """Nodes, directed channels, and deterministic minimal routing."""

    def __init__(
        self,
        preset: str,
        num_nodes: int,
        dims: Optional[Tuple[int, ...]] = None,
    ) -> None:
        if preset not in TOPOLOGY_PRESETS:
            raise ValueError(f"unknown topology preset {preset!r}")
        if num_nodes <= 0:
            raise ValueError(f"need at least one node, got {num_nodes}")
        self.preset = preset
        self.num_nodes = num_nodes
        ndims = _GRID_NDIMS.get(preset)
        if ndims is None:
            self.dims: Optional[Tuple[int, ...]] = None
        elif dims is None:
            self.dims = balanced_dims(num_nodes, ndims)
        else:
            product = 1
            for d in dims:
                product *= d
            if product != num_nodes:
                raise ValueError(
                    f"dims {dims} hold {product} nodes, fabric has {num_nodes}"
                )
            self.dims = tuple(dims)
        #: wraparound channels? (mesh2d is the only open grid)
        self.wrap = preset in ("ring", "torus3d")
        #: every directed channel, in deterministic build order: for the
        #: crossbar, (src-major, dst-minor) exactly as the historical
        #: fabric built its wires; for grids, per-node self-channel then
        #: sorted neighbours
        self.channels: List[Tuple[int, int]] = self._build_channels()
        # lazy caches: diameter is an O(n * dims) scan and the route table
        # an O(n^2 * diameter) walk; describe()/reports call both freely
        self._diameter: Optional[int] = None
        self._route_table: Optional[Dict[Tuple[int, int], Tuple[int, ...]]] = None

    @staticmethod
    def build(config: TopologyConfig, num_nodes: int) -> "Topology":
        """A topology instance for ``config`` over ``num_nodes`` nodes."""
        return Topology(config.preset, num_nodes, config.dims)

    # -------------------------------------------------------------- geometry
    def coords(self, node: int) -> Tuple[int, ...]:
        """Grid coordinates of ``node`` (dim 0 fastest-varying)."""
        if self.dims is None:
            raise ValueError(f"{self.preset} topology has no grid coordinates")
        out = []
        for extent in self.dims:
            out.append(node % extent)
            node //= extent
        return tuple(out)

    def index(self, coords: Tuple[int, ...]) -> int:
        """Inverse of :meth:`coords`."""
        if self.dims is None:
            raise ValueError(f"{self.preset} topology has no grid coordinates")
        node = 0
        stride = 1
        for c, extent in zip(coords, self.dims):
            node += (c % extent) * stride
            stride *= extent
        return node

    def neighbors(self, node: int) -> Tuple[int, ...]:
        """Physical out-neighbours of ``node`` (sorted, self excluded)."""
        if self.preset == "crossbar":
            return tuple(n for n in range(self.num_nodes) if n != node)
        found = set()
        coords = self.coords(node)
        for axis, extent in enumerate(self.dims):
            if extent <= 1:
                continue
            for step in (1, -1):
                c = list(coords)
                if self.wrap:
                    c[axis] = (coords[axis] + step) % extent
                else:
                    c[axis] = coords[axis] + step
                    if not 0 <= c[axis] < extent:
                        continue
                peer = self.index(tuple(c))
                if peer != node:
                    found.add(peer)
        return tuple(sorted(found))

    def _build_channels(self) -> List[Tuple[int, int]]:
        if self.preset == "crossbar":
            return [
                (src, dst)
                for src in range(self.num_nodes)
                for dst in range(self.num_nodes)
            ]
        channels: List[Tuple[int, int]] = []
        for node in range(self.num_nodes):
            channels.append((node, node))
            channels.extend((node, peer) for peer in self.neighbors(node))
        return channels

    # --------------------------------------------------------------- routing
    def _axis_step(self, axis: int, here: int, there: int) -> int:
        """±1 toward ``there`` along ``axis`` (shorter way; ties -> +1)."""
        extent = self.dims[axis]
        if not self.wrap:
            return 1 if there > here else -1
        forward = (there - here) % extent
        backward = (here - there) % extent
        return 1 if forward <= backward else -1

    def next_hop(self, node: int, dst: int) -> int:
        """The deterministic next node on the minimal route to ``dst``.

        Dimension-ordered: the first unequal coordinate (lowest axis
        first) is corrected before any later one, so every (src, dst)
        pair uses one fixed path -- the APEnet+ discipline that keeps
        multi-hop delivery reordering-free.
        """
        if node == dst:
            return node
        if self.preset == "crossbar":
            return dst
        here = self.coords(node)
        there = self.coords(dst)
        for axis in range(len(self.dims)):
            if here[axis] != there[axis]:
                step = self._axis_step(axis, here[axis], there[axis])
                moved = list(here)
                moved[axis] = (here[axis] + step) % self.dims[axis]
                return self.index(tuple(moved))
        raise AssertionError(f"no route progress from {node} to {dst}")

    def route(self, src: int, dst: int) -> List[int]:
        """Nodes visited after ``src``, ending at ``dst`` (self: one hop)."""
        if src == dst:
            return [dst]
        path = []
        node = src
        while node != dst:
            node = self.next_hop(node, dst)
            path.append(node)
            if len(path) > self.num_nodes:
                raise AssertionError(f"routing loop from {src} to {dst}")
        return path

    def min_hops(self, src: int, dst: int) -> int:
        """Length of a shortest path (routes are pinned minimal by test)."""
        if src == dst:
            return 1
        if self.preset == "crossbar":
            return 1
        total = 0
        here, there = self.coords(src), self.coords(dst)
        for axis, extent in enumerate(self.dims):
            forward = (there[axis] - here[axis]) % extent
            if self.wrap:
                total += min(forward, extent - forward)
            else:
                total += abs(there[axis] - here[axis])
        return total

    def diameter(self) -> int:
        """Worst-case hop count between distinct nodes (cached)."""
        if self._diameter is None:
            if self.num_nodes == 1:
                self._diameter = 0
            elif self.preset == "crossbar":
                self._diameter = 1
            else:
                self._diameter = max(
                    self.min_hops(0, dst) for dst in range(1, self.num_nodes)
                )
        return self._diameter

    def route_table(self) -> Dict[Tuple[int, int], Tuple[int, ...]]:
        """``{(src, dst): route}`` for every distinct ordered pair, cached.

        Each route is the :meth:`route` value -- the nodes visited after
        ``src``, ending at ``dst``.  The fabric CLI and the heatmap
        renderer share this one walk instead of re-deriving the path per
        pair per rendering.
        """
        if self._route_table is None:
            self._route_table = {
                (src, dst): tuple(self.route(src, dst))
                for src in range(self.num_nodes)
                for dst in range(self.num_nodes)
                if src != dst
            }
        return self._route_table

    def describe(self) -> str:
        """One human-readable line (examples / reports)."""
        if self.dims is None:
            return f"{self.preset} over {self.num_nodes} nodes"
        shape = "x".join(str(d) for d in self.dims)
        return (
            f"{self.preset} {shape} over {self.num_nodes} nodes, "
            f"diameter {self.diameter()}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Topology {self.describe()}>"
