"""Network models: packets, point-to-point wires, and a simple fabric.

Table III specifies a 200 ns network wire latency; the paper's simulation
adds "components representing a simple network".  We model a full-duplex
fabric where each NIC has an injection port and packets arrive in order
per (source, destination) pair -- the ordering MPI's matching semantics
rely on.
"""

from repro.network.packet import Packet, PacketKind, HEADER_BYTES
from repro.network.fabric import Fabric, FabricConfig

__all__ = ["Packet", "PacketKind", "HEADER_BYTES", "Fabric", "FabricConfig"]
