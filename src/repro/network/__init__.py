"""Network models: packets, routed topologies, and a contended fabric.

Table III specifies a 200 ns network wire latency; the paper's simulation
adds "components representing a simple network".  We model a routed
fabric over a declarative :class:`Topology` (``crossbar`` / ``ring`` /
``mesh2d`` / ``torus3d``): each NIC has an injection port, packets walk
deterministic minimal routes over shared store-and-forward channels, and
arrivals stay in order per (source, destination) pair -- the ordering
MPI's matching semantics rely on.
"""

from repro.network.packet import Packet, PacketKind, HEADER_BYTES
from repro.network.fabric import Fabric, FabricConfig
from repro.network.topology import (
    TOPOLOGY_PRESETS,
    Topology,
    TopologyConfig,
    balanced_dims,
)

__all__ = [
    "Packet",
    "PacketKind",
    "HEADER_BYTES",
    "Fabric",
    "FabricConfig",
    "Topology",
    "TopologyConfig",
    "TOPOLOGY_PRESETS",
    "balanced_dims",
]
