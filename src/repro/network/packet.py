"""Packets: headers plus payload descriptors.

A packet's header carries exactly what the receive side needs to run the
MPI match: the packed {context, source, tag} bits, the payload length and
protocol bookkeeping.  In a real NIC (Fig. 1) "the header and data are
separated (logically, if not physically)"; we keep the payload as a size
only -- the simulation charges time for moving bytes, never the bytes
themselves.
"""

from __future__ import annotations

import dataclasses
import enum

#: wire overhead per packet (routing + match header + CRC), in bytes
HEADER_BYTES = 32


class PacketKind(enum.Enum):
    """Protocol slots used by the MPI implementation."""

    #: eager message: payload travels with the header
    EAGER = "eager"
    #: rendezvous request-to-send: header only, payload held at sender
    RNDV_RTS = "rndv_rts"
    #: rendezvous clear-to-send: receiver tells sender to stream payload
    RNDV_CTS = "rndv_cts"
    #: rendezvous payload
    RNDV_DATA = "rndv_data"
    #: reliability-layer acknowledgement (``rel_seq`` names the acked packet)
    ACK = "ack"
    #: reliability-layer negative ack: receiver saw a corrupt packet and
    #: asks the sender to retransmit ``rel_seq`` immediately
    NACK = "nack"
    #: admission-control refusal: the receiver's unexpected buffers are
    #: full; sender should retry ``rel_seq`` later (backed off, without
    #: spending retry budget -- the receiver is demonstrably alive)
    NACK_BUSY = "nack_busy"


@dataclasses.dataclass(frozen=True)
class Packet:
    """One unit of network traffic."""

    kind: PacketKind
    src: int
    dst: int
    #: packed {context, source, tag} match bits (EAGER / RNDV_RTS)
    match_bits: int
    #: payload length in bytes (0 for control packets)
    payload_bytes: int
    #: sender-side request identifier (rendezvous handshake / completions)
    send_id: int = 0
    #: receiver-side entry identifier (CTS and RNDV_DATA routing)
    recv_id: int = 0
    #: per-(src, dst) monotone sequence number; lets tests assert ordering
    seq: int = 0
    #: reliability-layer sequence number (per (src, dst), stamped by the
    #: NIC's reliability layer; -1 when the layer is off)
    rel_seq: int = -1
    #: header checksum (see :func:`header_checksum`; 0 when the layer is off)
    checksum: int = 0

    @property
    def wire_bytes(self) -> int:
        """Bytes serialized on the wire."""
        carries_payload = self.kind in (PacketKind.EAGER, PacketKind.RNDV_DATA)
        return HEADER_BYTES + (self.payload_bytes if carries_payload else 0)


def header_checksum(packet: Packet) -> int:
    """FNV-1a over the header fields the receiver acts on.

    Deliberately excludes the fabric's ``seq`` stamp (re-assigned on every
    injection, so a retransmitted copy would never verify) and the
    ``checksum`` field itself.
    """
    digest = 0xCBF29CE484222325
    for word in (
        int.from_bytes(packet.kind.value.encode(), "little"),
        packet.src,
        packet.dst,
        packet.match_bits,
        packet.payload_bytes,
        packet.send_id,
        packet.recv_id,
        packet.rel_seq & 0xFFFFFFFF,
    ):
        digest ^= word
        digest = (digest * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return digest
