"""Deterministic, seeded fault injection for the network fabric.

The fabric consults a :class:`FaultModel` once per injected packet and
receives a :class:`Verdict`: deliver it untouched, drop it, duplicate it,
delay it (re-injecting after a fixed extra latency so it lands *behind*
later traffic -- a reorder), or corrupt its match header (caught at the
receiver by the packet checksum).

Determinism contract: the model owns a private :class:`random.Random`
seeded from :attr:`FaultConfig.seed`, and two models built from equal
configs produce identical verdict sequences for identical packet
sequences.  When every rate is zero :meth:`FaultModel.judge` returns
``DELIVER`` without drawing from the RNG at all, so an attached-but-idle
model is bit-identical to no model.
"""

from __future__ import annotations

import dataclasses
import enum
import random
from typing import Optional

from repro.network.packet import Packet


@dataclasses.dataclass(frozen=True)
class FaultConfig:
    """Per-packet fault probabilities (all independent of packet contents).

    Rates are probabilities in ``[0, 1]`` and must sum to at most 1 -- a
    single uniform draw is partitioned across the fault classes, so one
    packet suffers at most one fault.
    """

    seed: int = 0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    #: extra injection delay applied to a reordered packet (1 us default,
    #: comfortably longer than the 200 ns wire so later packets overtake)
    reorder_delay_ps: int = 1_000_000
    corrupt_rate: float = 0.0

    def __post_init__(self) -> None:
        for field in ("drop_rate", "duplicate_rate", "reorder_rate", "corrupt_rate"):
            rate = getattr(self, field)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{field} must be in [0, 1], got {rate}")
        total = (
            self.drop_rate + self.duplicate_rate + self.reorder_rate + self.corrupt_rate
        )
        if total > 1.0:
            raise ValueError(f"fault rates must sum to <= 1, got {total}")
        if self.reorder_delay_ps < 0:
            raise ValueError(f"reorder_delay_ps must be >= 0, got {self.reorder_delay_ps}")

    @property
    def enabled(self) -> bool:
        """True when any fault class can actually occur."""
        return (
            self.drop_rate > 0
            or self.duplicate_rate > 0
            or self.reorder_rate > 0
            or self.corrupt_rate > 0
        )


class Verdict(enum.Enum):
    """What the fabric should do with one packet."""

    DELIVER = "deliver"
    DROP = "drop"
    DUPLICATE = "duplicate"
    DELAY = "delay"
    CORRUPT = "corrupt"


class FaultModel:
    """Seeded per-packet fault oracle; one verdict per :meth:`judge` call."""

    def __init__(self, config: Optional[FaultConfig] = None) -> None:
        self.config = config if config is not None else FaultConfig()
        self._rng = random.Random(self.config.seed)
        # tallies (also mirrored into fabric counters when metrics are on)
        self.drops = 0
        self.duplicates = 0
        self.delays = 0
        self.corruptions = 0

    def judge(self, packet: Packet) -> Verdict:
        """Decide the fate of ``packet``.

        Draws exactly one uniform sample per call when any rate is
        nonzero, and none at all when the model is idle -- so a
        zero-rate model never perturbs anything, not even its own RNG.
        """
        config = self.config
        if not config.enabled:
            return Verdict.DELIVER
        draw = self._rng.random()
        threshold = config.drop_rate
        if draw < threshold:
            self.drops += 1
            return Verdict.DROP
        threshold += config.duplicate_rate
        if draw < threshold:
            self.duplicates += 1
            return Verdict.DUPLICATE
        threshold += config.reorder_rate
        if draw < threshold:
            self.delays += 1
            return Verdict.DELAY
        threshold += config.corrupt_rate
        if draw < threshold:
            self.corruptions += 1
            return Verdict.CORRUPT
        return Verdict.DELIVER

    def corrupt_bits(self, bits: int) -> int:
        """Flip at least one bit of a match header (deterministic per seed)."""
        mask = 0
        while mask == 0:
            mask = self._rng.getrandbits(16)
        return bits ^ mask
