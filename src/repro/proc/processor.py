"""A processor = clock domain + cost model + memory system.

:class:`Processor` is the execution substrate that firmware/host code
charges time against.  It does not fetch instructions; the Python code
*is* the program, and it calls :meth:`compute` / :meth:`touch` to account
for the cycles and memory stalls that the real instruction stream would
have cost.  Charges are accumulated and drawn down inside simulation
processes with ``yield delay(...)``.
"""

from __future__ import annotations

from typing import Optional

from repro.memory.system import MemorySystem
from repro.sim.component import ClockedComponent
from repro.sim.engine import Engine


class Processor(ClockedComponent):
    """Cycle/stall accounting for one processor."""

    def __init__(
        self,
        engine: Engine,
        name: str,
        clock_hz: float,
        memory: Optional[MemorySystem] = None,
    ) -> None:
        super().__init__(engine, name, clock_hz)
        self.memory = memory
        self.busy_ps = 0
        self.stall_ps = 0
        registry = engine.metrics
        if registry.enabled:
            registry.register_collector(f"{name}/busy_ps", lambda: self.busy_ps)
            registry.register_collector(
                f"{name}/stall_ps", lambda: self.stall_ps
            )
            if memory is not None:
                memory.register_collectors(registry, prefix=f"{name}.mem")

    # ------------------------------------------------------------- charging
    def compute(self, cycles: int) -> int:
        """Charge pure compute time; returns ps to be consumed via delay."""
        cost = self.cycles(cycles)
        self.busy_ps += cost
        return cost

    def touch(self, addr: int, size: int = 8, *, write: bool = False) -> int:
        """Charge a memory reference; returns the stall ps (0 on L1 hit)."""
        if self.memory is None:
            return 0
        stall = self.memory.access(addr, size, write=write)
        self.stall_ps += stall
        return stall

    def compute_and_touch(
        self, cycles: int, addr: int, size: int = 8, *, write: bool = False
    ) -> int:
        """Common case: some ALU work plus one memory reference."""
        return self.compute(cycles) + self.touch(addr, size, write=write)
