"""Per-primitive cycle charges for the two processors.

The cost model assigns a cycle count to each *firmware-level* primitive
(parse a header, compare one queue entry, issue a bus transaction, set up
a DMA, ...).  Cycle counts reflect the Table III issue widths: the NIC
core is dual-issue for integer work, so a ~15-instruction compare-and-
advance loop body retires in ~7 cycles -- which at 500 MHz is the 14-15 ns
per warm entry the paper measures.  Memory stalls are *not* included here;
they come from :class:`repro.memory.system.MemorySystem` per reference.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class NicCostModel:
    """Cycle charges for the 500 MHz NIC processor's firmware primitives.

    The headline calibration: ``entry_compare_cycles=7`` makes warm-cache
    list traversal cost 14 ns/entry (the paper's ~15 ns), and a 64-byte
    L1 miss per entry adds ~50 ns (the paper's ~64 ns/entry cold band,
    together with the compute cycles).
    """

    #: one iteration of the compare-tags-and-chase-pointer traversal loop
    entry_compare_cycles: int = 7
    #: strip and decode an incoming message header
    header_parse_cycles: int = 20
    #: one polling check of an empty/ready FIFO or status register
    poll_cycles: int = 4
    #: allocate + fill a queue entry (excl. memory stalls)
    enqueue_cycles: int = 16
    #: unlink a matched queue entry and update list pointers
    dequeue_cycles: int = 8
    #: program a DMA descriptor (excl. the DMA engine's own time)
    dma_setup_cycles: int = 30
    #: compose and push a completion notification toward the host
    completion_cycles: int = 12
    #: rendezvous bookkeeping (build a reply / clear-to-send record)
    rendezvous_cycles: int = 24
    #: decide what to do with an ALPU response and update the local copy
    alpu_result_handle_cycles: int = 6
    #: queue-entry footprint in NIC memory; the traversal touches the
    #: first cache line (envelope + next pointer); request state lives in
    #: the second line and is touched only on a match
    queue_entry_bytes: int = 128
    #: bytes of each entry actually read while traversing
    entry_touch_bytes: int = 64


@dataclasses.dataclass(frozen=True)
class HostCostModel:
    """Cycle charges for the 2 GHz host CPU.

    The host only dispatches requests to the NIC and waits for
    completions (Section V-C), so its model is small.
    """

    #: build an MPI request and validate arguments
    call_overhead_cycles: int = 60
    #: compose a NIC command in a write-combining window
    command_build_cycles: int = 40
    #: one poll of the completion queue
    poll_cycles: int = 12
    #: process a completion (update request object, return to caller)
    completion_handle_cycles: int = 40
