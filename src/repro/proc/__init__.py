"""Processor timing models.

The paper integrates SimpleScalar's ``sim-outorder`` into its event
framework to model a 2 GHz Opteron-class host CPU and a 500 MHz
PowerPC-440-class NIC processor (Table III).  Instruction-level
out-of-order simulation is far outside what a Python reproduction can
afford per simulated nanosecond, so this subpackage substitutes a
**calibrated cost model**: firmware and host programs are real Python code
whose primitive operations charge cycles, and whose memory references flow
through the :mod:`repro.memory` hierarchy for hit/miss-dependent stalls.

Calibration targets are the paper's own measurements rather than the
microarchitecture: ~15 ns per traversed queue entry while the list is
cache-resident and ~64 ns per entry once it is not (Section VI-B), with
load-to-use latencies in Table III's 30-32 (NIC) and 85-90 (host) cycle
bands.
"""

from repro.proc.params import (
    ProcessorParams,
    CPU_PARAMS,
    NIC_PARAMS,
    TABLE_III_ROWS,
    make_host_memory,
    make_nic_memory,
)
from repro.proc.costmodel import NicCostModel, HostCostModel
from repro.proc.processor import Processor

__all__ = [
    "ProcessorParams",
    "CPU_PARAMS",
    "NIC_PARAMS",
    "TABLE_III_ROWS",
    "make_host_memory",
    "make_nic_memory",
    "NicCostModel",
    "HostCostModel",
    "Processor",
]
