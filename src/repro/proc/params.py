"""Table III: processor simulation parameters.

The structural parameters (fetch queue, issue width, RUU size, ...) are
recorded verbatim for the table-reproduction benchmark; the cost model
consumes the derived quantities (clock, issue width, cache geometry,
memory-latency band).
"""

from __future__ import annotations

import dataclasses

from repro.memory.cache import CacheConfig
from repro.memory.dram import DramConfig
from repro.memory.system import MemorySystem, MemorySystemConfig
from repro.sim.units import ns


@dataclasses.dataclass(frozen=True)
class ProcessorParams:
    """One column of Table III."""

    name: str
    fetch_queue: int
    issue_width: int
    commit_width: int
    ruu_size: int
    integer_units: int
    memory_ports: int
    l1_desc: str
    l2_desc: str
    clock_hz: float
    mem_latency_cycles: str
    isa: str = "PowerPC"


#: Table III, "CPU" column (AMD Opteron-class host processor)
CPU_PARAMS = ProcessorParams(
    name="CPU",
    fetch_queue=4,
    issue_width=8,
    commit_width=4,
    ruu_size=64,
    integer_units=4,
    memory_ports=3,
    l1_desc="64K 2-way",
    l2_desc="512K",
    clock_hz=2e9,
    mem_latency_cycles="85-90",
)

#: Table III, "NIC Processor" column (PowerPC 440-class embedded core)
NIC_PARAMS = ProcessorParams(
    name="NIC Processor",
    fetch_queue=2,
    issue_width=4,
    commit_width=4,
    ruu_size=16,
    integer_units=2,
    memory_ports=1,
    l1_desc="32K 64-way",
    l2_desc="none",
    clock_hz=500e6,
    mem_latency_cycles="30-32",
)

#: network wire latency from the bottom row of Table III
NETWORK_WIRE_LATENCY_PS = ns(200)

#: NIC local bus latency ("This bus was simulated with a 20ns delay")
NIC_BUS_LATENCY_PS = ns(20)


#: rendered rows of Table III for the table-reproduction benchmark
TABLE_III_ROWS = [
    ("Fetch Q", "4", "2"),
    ("Issue Width", "8", "4"),
    ("Commit Width", "4", "4"),
    ("RUU Size", "64", "16"),
    ("Integer Units", "4", "2"),
    ("Memory Ports", "3", "1"),
    ("L1 Caches", "64K 2-way", "32K 64-way"),
    ("L2 Cache", "512K", "none"),
    ("Clock Speed", "2Ghz", "500Mhz"),
    ("Lat. To Main Memory", "85-90 cycles", "30-32 cycles"),
    ("ISA", "PowerPC", "PowerPC"),
    ("Network Wire Lat.", "200 ns", ""),
]


def make_nic_memory() -> MemorySystem:
    """NIC-processor memory hierarchy (32 KB 64-way L1, no L2).

    Load-to-use on a miss = ``miss_base`` + DRAM path: 44 ns + 12 ns CAS
    (open row) = 56 ns, or +4 ns activate = 60 ns (30 cycles), or +14 ns
    precharge on a row conflict = 74 ns (37 cycles).  The common paths
    bracket Table III's 30-32-cycle band; conflicts exceed it, which is
    the row-contention effect the paper models.
    """
    return MemorySystem(
        MemorySystemConfig(
            l1=CacheConfig(size_bytes=32 * 1024, ways=64, line_bytes=64, name="nic-l1"),
            l2=None,
            miss_base_ps=ns(44),
            dram=DramConfig(),
        ),
        name="nic-mem",
    )


def make_host_memory() -> MemorySystem:
    """Host-CPU memory hierarchy (64 KB 2-way L1, 512 KB L2).

    L2 hits stall ~6 ns (12 cycles); the DRAM path costs 30.5 ns + DRAM
    (12-16 ns open-row / activate), i.e. 42.5-46.5 ns = 85-93 host
    cycles, bracketing Table III's 85-90 band; row conflicts land above
    it, which is the contention effect the paper models.
    """
    return MemorySystem(
        MemorySystemConfig(
            l1=CacheConfig(size_bytes=64 * 1024, ways=2, line_bytes=64, name="host-l1"),
            l2=CacheConfig(size_bytes=512 * 1024, ways=8, line_bytes=64, name="host-l2"),
            l2_hit_ps=ns(6),
            miss_base_ps=ns(30.5),
            dram=DramConfig(),
        ),
        name="host-mem",
    )
