"""Address-layout helpers.

The simulated firmware does not store real data; what matters for timing is
*where* its structures live, because the cache and DRAM models key off
addresses.  :class:`AddressAllocator` is a bump allocator that hands out
aligned regions, letting the NIC firmware place queue entries at stable,
realistic addresses (so a long queue genuinely overflows the 32 KB L1 and
different queues genuinely collide in the cache, reproducing the cache
cliff of Figures 5 and 6).
"""

from __future__ import annotations

from typing import Dict, Optional


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to a multiple of ``alignment``."""
    if alignment <= 0 or alignment & (alignment - 1):
        raise ValueError(f"alignment must be a positive power of two: {alignment}")
    return (value + alignment - 1) & ~(alignment - 1)


class AddressAllocator:
    """Bump allocator over a flat address space, with named regions."""

    def __init__(self, base: int = 0x10_0000, size: Optional[int] = None) -> None:
        if base < 0:
            raise ValueError(f"negative base address {base:#x}")
        self.base = base
        self.size = size
        self._next = base
        self._regions: Dict[str, tuple[int, int]] = {}
        self._freelists: Dict[int, list[int]] = {}

    @property
    def bytes_allocated(self) -> int:
        """Bytes consumed by the bump pointer (free lists excluded)."""
        return self._next - self.base

    def alloc(self, size: int, *, alignment: int = 64, label: str = "") -> int:
        """Allocate ``size`` bytes; returns the base address.

        Reuses a freed block of the exact same size when one is available
        (matching the free-list behaviour of the paper's C++ firmware,
        where queue entries are recycled and stay cache-resident).
        """
        if size <= 0:
            raise ValueError(f"allocation size must be positive: {size}")
        freelist = self._freelists.get(size)
        if freelist:
            addr = freelist.pop()
        else:
            addr = align_up(self._next, alignment)
            new_next = addr + size
            if self.size is not None and new_next > self.base + self.size:
                raise MemoryError(
                    f"allocator exhausted: need {size} bytes at {addr:#x}, "
                    f"limit {self.base + self.size:#x}"
                )
            self._next = new_next
        if label:
            self._regions[label] = (addr, size)
        return addr

    def free(self, addr: int, size: int) -> None:
        """Return a block to the size-keyed free list."""
        self._freelists.setdefault(size, []).append(addr)

    def region(self, label: str) -> tuple[int, int]:
        """Look up a labelled region as ``(base, size)``."""
        return self._regions[label]
