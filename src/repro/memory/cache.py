"""Set-associative cache model.

A functional (not cycle-pipelined) cache: each access classifies as hit or
miss, updates LRU state, and reports any dirty eviction so the memory
system can charge a write-back.  Latency is *not* decided here -- the
:class:`~repro.memory.system.MemorySystem` turns hit/miss outcomes into
cycle counts, keeping policy (timing) separate from mechanism (state).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional


@dataclasses.dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level.

    Table III uses: host L1 64 KB 2-way, host L2 512 KB (we model 8-way),
    NIC L1 32 KB 64-way.  Line size defaults to 64 bytes throughout.
    """

    size_bytes: int
    ways: int
    line_bytes: int = 64
    name: str = "L1"

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0 or self.line_bytes <= 0:
            raise ValueError(f"invalid cache geometry: {self}")
        if self.size_bytes % (self.ways * self.line_bytes) != 0:
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"ways*line ({self.ways}*{self.line_bytes})"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes


@dataclasses.dataclass
class AccessResult:
    """Outcome of one cache access."""

    hit: bool
    #: line address written back to the next level (dirty eviction), if any
    writeback_line: Optional[int] = None
    #: line address fetched from the next level on a miss, if any
    fill_line: Optional[int] = None


#: shared result for the (overwhelmingly common) hit case -- callers treat
#: results as read-only, so one allocation serves every hit
_HIT = AccessResult(hit=True)

#: sentinel distinguishing "tag absent" from a clean (False) dirty bit
_ABSENT = object()


class Cache:
    """One level of set-associative cache with true-LRU replacement.

    Each set is a dict mapping ``tag -> dirty`` whose insertion order *is*
    the LRU order (first key = LRU, last = MRU): a hit pops and re-inserts
    the tag, a miss evicts ``next(iter(set))``.  This is behaviourally
    identical to the earlier list-of-lines model but makes the hit path a
    single hash probe instead of an O(ways) scan -- the NIC's 64-way L1
    made that scan the single hottest block in the whole simulator.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        # hoisted geometry: num_sets is a dataclass property (a function
        # call), far too slow to re-derive per access
        self._num_sets = config.num_sets
        self._line_bytes = config.line_bytes
        self._ways = config.ways
        # each set is an LRU-ordered dict: first key = LRU, last = MRU
        self._sets: List[dict] = [{} for _ in range(config.num_sets)]
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    # ------------------------------------------------------------- geometry
    def line_addr(self, addr: int) -> int:
        """Line index containing ``addr``."""
        return addr // self._line_bytes

    def _set_index(self, line: int) -> int:
        return line % self._num_sets

    def _tag(self, line: int) -> int:
        return line // self._num_sets

    # ------------------------------------------------------------- accesses
    def access(self, addr: int, *, write: bool = False) -> AccessResult:
        """Access one address (classified at line granularity)."""
        num_sets = self._num_sets
        line = addr // self._line_bytes
        index = line % num_sets
        tag = line // num_sets
        cache_set = self._sets[index]
        dirty = cache_set.pop(tag, _ABSENT)
        if dirty is not _ABSENT:
            # hit: re-insert at MRU position
            cache_set[tag] = dirty or write
            self.hits += 1
            return _HIT
        # miss: allocate (write-allocate policy)
        self.misses += 1
        writeback = None
        if len(cache_set) >= self._ways:
            victim_tag = next(iter(cache_set))
            if cache_set.pop(victim_tag):
                self.writebacks += 1
                writeback = victim_tag * num_sets + index
        cache_set[tag] = write
        return AccessResult(hit=False, writeback_line=writeback, fill_line=line)

    def fill(self, line: int, *, write: bool = False) -> Optional[int]:
        """Handle a known miss of ``line`` (its tag verified absent).

        The caller has already probed the set and popped nothing; this is
        the miss half of :meth:`access` split out so the memory system
        can inline the hit probe.  Returns the written-back line address
        on a dirty eviction, else ``None``.
        """
        num_sets = self._num_sets
        cache_set = self._sets[line % num_sets]
        self.misses += 1
        writeback = None
        if len(cache_set) >= self._ways:
            victim_tag = next(iter(cache_set))
            if cache_set.pop(victim_tag):
                self.writebacks += 1
                writeback = victim_tag * num_sets + line % num_sets
        cache_set[line // num_sets] = write
        return writeback

    def touch_range(self, addr: int, size: int, *, write: bool = False) -> List[AccessResult]:
        """Access every line overlapped by ``[addr, addr+size)``."""
        if size <= 0:
            return []
        first = self.line_addr(addr)
        last = self.line_addr(addr + size - 1)
        lb = self.config.line_bytes
        return [
            self.access(line * lb, write=write) for line in range(first, last + 1)
        ]

    def contains(self, addr: int) -> bool:
        """Non-mutating presence check (does not update LRU)."""
        line = self.line_addr(addr)
        return self._tag(line) in self._sets[self._set_index(line)]

    def invalidate_all(self) -> int:
        """Flush without write-back; returns the number of lines dropped."""
        dropped = sum(len(s) for s in self._sets)
        self._sets = [{} for _ in range(self._num_sets)]
        return dropped

    # ------------------------------------------------------------ statistics
    @property
    def accesses(self) -> int:
        """Total accesses so far."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit (0.0 when untouched)."""
        total = self.accesses
        return self.hits / total if total else 0.0

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(len(s) for s in self._sets)

    def reset_stats(self) -> None:
        """Zero the counters (contents untouched)."""
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
