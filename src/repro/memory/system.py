"""The composed memory system: caches over DRAM.

:class:`MemorySystem` turns an address stream into **stall time**.  An
access returns the picoseconds of stall *beyond* the pipelined L1-hit path
(an L1 hit costs 0 extra; the per-instruction cost model already covers
it).  Misses walk the hierarchy: optional L2, then the DRAM path with a
fixed controller/bus overhead plus the DRAM's row-state-dependent latency.
Dirty evictions charge a DRAM write-back access, which also perturbs the
open-row state -- this is the "contention for open rows" effect the paper
models.

Default calibrations (see :mod:`repro.proc.params`) land the full
load-to-use path in Table III's bands: 30-32 cycles at 500 MHz for the NIC
(60-64 ns) and 85-90 cycles at 2 GHz for the host (42.5-45 ns).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.memory.cache import _ABSENT, Cache, CacheConfig
from repro.memory.dram import Dram, DramConfig


@dataclasses.dataclass(frozen=True)
class MemorySystemConfig:
    """Hierarchy shape and fixed latencies (picoseconds)."""

    l1: CacheConfig
    l2: Optional[CacheConfig] = None
    #: stall for an L2 hit (beyond the L1-hit path)
    l2_hit_ps: int = 6_000
    #: fixed bus + controller overhead on the DRAM path
    miss_base_ps: int = 44_000
    dram: DramConfig = dataclasses.field(default_factory=DramConfig)

    def __post_init__(self) -> None:
        if self.l2_hit_ps < 0 or self.miss_base_ps < 0:
            raise ValueError(f"negative latency in {self}")


class MemorySystem:
    """Caches + DRAM for one processor."""

    def __init__(self, config: MemorySystemConfig, name: str = "mem") -> None:
        self.config = config
        self.name = name
        self.l1 = Cache(config.l1)
        self.l2 = Cache(config.l2) if config.l2 is not None else None
        self.dram = Dram(config.dram)
        self.total_stall_ps = 0
        self._line_bytes = config.l1.line_bytes

    # -------------------------------------------------------------- accesses
    def access(self, addr: int, size: int = 8, *, write: bool = False) -> int:
        """Access ``[addr, addr+size)``; returns stall time in ps.

        Every cache line the range overlaps is accessed; stalls add up
        (the models here never overlap misses -- the PowerPC 440-class NIC
        core is in-order with a single memory port, and list traversal is a
        dependent pointer chase anyway).
        """
        if size <= 0:
            raise ValueError(f"access size must be positive: {size}")
        line = self._line_bytes
        first = addr // line
        last = (addr + size - 1) // line
        if first == last:
            # Single-line access is the overwhelming case; the L1 probe
            # is inlined (same state updates as Cache.access) so a hit --
            # which stalls 0 ps -- costs one dict pop, not three calls.
            l1 = self.l1
            num_sets = l1._num_sets
            cache_set = l1._sets[first % num_sets]
            tag = first // num_sets
            dirty = cache_set.pop(tag, _ABSENT)
            if dirty is not _ABSENT:
                cache_set[tag] = dirty or write
                l1.hits += 1
                return 0
            stall = self._miss_line(first, write=write)
        else:
            stall = 0
            for line_index in range(first, last + 1):
                stall += self._access_line(line_index * line, write=write)
        self.total_stall_ps += stall
        return stall

    def _access_line(self, line_addr: int, *, write: bool) -> int:
        l1_result = self.l1.access(line_addr, write=write)
        if l1_result.hit:
            return 0
        stall = 0
        if l1_result.writeback_line is not None:
            stall += self._writeback(l1_result.writeback_line)
        return stall + self._lower_levels(line_addr)

    def _miss_line(self, line: int, *, write: bool) -> int:
        """Known L1 miss of line index ``line`` (probe already failed)."""
        writeback = self.l1.fill(line, write=write)
        stall = 0
        if writeback is not None:
            stall += self._writeback(writeback)
        return stall + self._lower_levels(line * self._line_bytes)

    def _lower_levels(self, line_addr: int) -> int:
        """Stall below L1: L2 (if present), then the DRAM path."""
        stall = 0
        if self.l2 is not None:
            l2_result = self.l2.access(line_addr, write=False)
            if l2_result.hit:
                return self.config.l2_hit_ps
            if l2_result.writeback_line is not None:
                stall += self._writeback(l2_result.writeback_line)
        return stall + self.config.miss_base_ps + self.dram.access(line_addr)

    def _writeback(self, victim_line: int) -> int:
        """Write a dirty victim to the next level.

        With an L2 the write-back is absorbed there (cheap, charged as an
        L2 hit); without one it goes to DRAM and disturbs the open row.
        The write-back itself is buffered, so we charge only the DRAM
        row-state perturbation path at half cost (posted write).
        """
        line_bytes = self.l1.config.line_bytes
        addr = victim_line * line_bytes
        if self.l2 is not None:
            self.l2.access(addr, write=True)
            return 0
        return self.dram.access(addr) // 2

    # ------------------------------------------------------------ utilities
    def warm(self, addr: int, size: int) -> None:
        """Pre-load a range into the caches without charging time."""
        line = self.l1.config.line_bytes
        first = addr // line
        last = (addr + size - 1) // line
        for line_index in range(first, last + 1):
            line_addr = line_index * line
            if self.l2 is not None:
                self.l2.access(line_addr)
            self.l1.access(line_addr)

    def reset_stats(self) -> None:
        """Zero every level's counters (contents untouched)."""
        self.l1.reset_stats()
        if self.l2 is not None:
            self.l2.reset_stats()
        self.dram.reset_stats()
        self.total_stall_ps = 0

    def register_collectors(self, registry, prefix: str) -> None:
        """Expose the hierarchy's counters as pull-style metrics.

        The caches and DRAM already count hits/misses/row-buffer states on
        their hot paths; collectors sample those at snapshot time instead
        of adding a second increment per access.
        """
        levels = [("l1", self.l1)]
        if self.l2 is not None:
            levels.append(("l2", self.l2))
        for label, cache in levels:
            registry.register_collector(
                f"{prefix}/{label}/hits", lambda c=cache: c.hits
            )
            registry.register_collector(
                f"{prefix}/{label}/misses", lambda c=cache: c.misses
            )
            registry.register_collector(
                f"{prefix}/{label}/writebacks", lambda c=cache: c.writebacks
            )
            registry.register_collector(
                f"{prefix}/{label}/hit_rate", lambda c=cache: c.hit_rate
            )
        registry.register_collector(
            f"{prefix}/dram/page_hits", lambda: self.dram.page_hits
        )
        registry.register_collector(
            f"{prefix}/dram/page_misses", lambda: self.dram.page_misses
        )
        registry.register_collector(
            f"{prefix}/dram/page_conflicts", lambda: self.dram.page_conflicts
        )
        registry.register_collector(
            f"{prefix}/stall_ps", lambda: self.total_stall_ps
        )
