"""Banked DRAM with open-row (page mode) timing.

The paper: "The memory hierarchy was modeled to include contention for open
rows on the DRAM chips."  We model a set of banks, each remembering its
open row.  An access to the open row is a *page hit* (CAS only); a bank
with no open row pays activate + CAS; a bank holding a different row pays
precharge + activate + CAS.

Timing is expressed in **picoseconds** so the same DRAM can sit behind the
2 GHz host CPU and the 500 MHz NIC processor.  The default numbers are
calibrated so that the full load-to-use path (see
:class:`~repro.memory.system.MemorySystem`) lands in Table III's bands:
30-32 NIC cycles (60-64 ns) and 85-90 host cycles (42.5-45 ns), with
row-buffer conflicts pushing past the top of the band exactly as the
paper's "contention for open rows" does.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple


@dataclasses.dataclass(frozen=True)
class DramConfig:
    """DRAM geometry and timing (picoseconds)."""

    num_banks: int = 4
    row_bytes: int = 2048
    #: column access (page hit pays only this)
    cas_ps: int = 12_000
    #: extra for row activation on an idle bank
    ras_ps: int = 4_000
    #: extra for closing a conflicting open row
    precharge_ps: int = 14_000

    def __post_init__(self) -> None:
        if self.num_banks <= 0 or self.row_bytes <= 0:
            raise ValueError(f"invalid DRAM geometry: {self}")
        if min(self.cas_ps, self.ras_ps, self.precharge_ps) < 0:
            raise ValueError(f"negative DRAM timing: {self}")


class Dram:
    """Open-row DRAM state machine.

    ``access`` returns the access latency in picoseconds and updates the
    bank's open row.  Row-buffer *contention* emerges naturally: streams
    that interleave on the same bank but different rows keep closing each
    other's rows and repeatedly pay the precharge + activate + CAS path.
    """

    def __init__(self, config: Optional[DramConfig] = None) -> None:
        self.config = config if config is not None else DramConfig()
        self._open_rows: Dict[int, int] = {}
        self.page_hits = 0
        self.page_misses = 0
        self.page_conflicts = 0

    def _locate(self, addr: int) -> Tuple[int, int]:
        row = addr // self.config.row_bytes
        bank = row % self.config.num_banks
        return bank, row

    def access(self, addr: int) -> int:
        """Access ``addr``; returns latency in picoseconds."""
        bank, row = self._locate(addr)
        open_row = self._open_rows.get(bank)
        cfg = self.config
        if open_row == row:
            self.page_hits += 1
            return cfg.cas_ps
        if open_row is None:
            self.page_misses += 1
            latency = cfg.ras_ps + cfg.cas_ps
        else:
            self.page_conflicts += 1
            latency = cfg.precharge_ps + cfg.ras_ps + cfg.cas_ps
        self._open_rows[bank] = row
        return latency

    @property
    def accesses(self) -> int:
        """Total accesses so far."""
        return self.page_hits + self.page_misses + self.page_conflicts

    def reset_stats(self) -> None:
        """Zero the counters (open rows untouched)."""
        self.page_hits = 0
        self.page_misses = 0
        self.page_conflicts = 0

    def close_all_rows(self) -> None:
        """Precharge-all (e.g. refresh); subsequent accesses pay activate."""
        self._open_rows.clear()
