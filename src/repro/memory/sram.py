"""Fixed-latency SRAM (the NIC's local scratch memory).

The NIC of Figure 1 has a local SRAM on the processor bus.  Accesses cost a
fixed number of cycles, independent of address history.
"""

from __future__ import annotations


class Sram:
    """A flat, fixed-latency memory."""

    def __init__(self, size_bytes: int, access_cycles: int = 2, name: str = "sram") -> None:
        if size_bytes <= 0:
            raise ValueError(f"invalid SRAM size {size_bytes}")
        if access_cycles < 0:
            raise ValueError(f"negative SRAM latency {access_cycles}")
        self.size_bytes = size_bytes
        self.access_cycles = access_cycles
        self.name = name
        self.accesses = 0

    def access(self, addr: int) -> int:
        """Access ``addr``; returns latency in cycles."""
        if not 0 <= addr < self.size_bytes:
            raise ValueError(
                f"{self.name}: address {addr:#x} out of range "
                f"(size {self.size_bytes:#x})"
            )
        self.accesses += 1
        return self.access_cycles
