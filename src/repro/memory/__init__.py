"""Memory-hierarchy models.

The paper's simulation "modeled the memory hierarchy to include contention
for open rows on the DRAM chips" and gives each processor an L1 cache
(Table III: host 64 KB 2-way + 512 KB L2; NIC 32 KB 64-way, no L2).  This
subpackage provides:

* :class:`~repro.memory.cache.Cache` -- set-associative, LRU, write-back /
  write-allocate.
* :class:`~repro.memory.dram.Dram` -- banked DRAM with open-row (page-mode)
  hit/miss timing.
* :class:`~repro.memory.sram.Sram` -- fixed-latency scratch memory (the NIC
  local SRAM).
* :class:`~repro.memory.system.MemorySystem` -- composes cache levels over
  DRAM and converts an address stream into access latencies in cycles.
* :mod:`~repro.memory.layout` -- address-layout helpers that place queue
  entries in simulated memory so that traversals produce realistic cache
  behaviour.
"""

from repro.memory.cache import Cache, CacheConfig, AccessResult
from repro.memory.dram import Dram, DramConfig
from repro.memory.sram import Sram
from repro.memory.system import MemorySystem, MemorySystemConfig
from repro.memory.layout import AddressAllocator

__all__ = [
    "Cache",
    "CacheConfig",
    "AccessResult",
    "Dram",
    "DramConfig",
    "Sram",
    "MemorySystem",
    "MemorySystemConfig",
    "AddressAllocator",
]
