"""Golden reference: an ordered linear match list.

Every MPI implementation the paper surveys represents the posted-receive
and unexpected queues as linear lists with first-match-wins semantics.
:class:`ReferenceMatchList` is that list.  It serves two purposes:

1. **Differential oracle.**  The ALPU, for any interleaving of inserts and
   matches, must behave exactly like this list.  The hypothesis-based
   property suite drives both with the same traffic and compares.
2. **The software queue.**  The baseline NIC firmware and the "portion of
   the list not yet loaded into the ALPU" in the accelerated firmware both
   search a structure with exactly these semantics.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.core.match import MatchEntry, MatchRequest


class ReferenceMatchList:
    """An ordered list with MPI match semantics (oldest entry first)."""

    def __init__(self) -> None:
        self._entries: List[MatchEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[MatchEntry]:
        return iter(self._entries)

    def append(self, entry: MatchEntry) -> None:
        """Add a new (youngest) entry at the tail."""
        self._entries.append(entry)

    def match(self, request: MatchRequest) -> Tuple[Optional[MatchEntry], int]:
        """Find-and-remove the first (oldest) matching entry.

        Returns ``(entry, entries_traversed)``; ``entry`` is None on a
        failed match, in which case every entry was traversed.  The
        traversal count is what the baseline firmware pays for.
        """
        for index, entry in enumerate(self._entries):
            if entry.matches_request(request):
                del self._entries[index]
                return entry, index + 1
        return None, len(self._entries)

    def peek_match(self, request: MatchRequest) -> Tuple[Optional[MatchEntry], int]:
        """As :meth:`match` but without removing the entry."""
        for index, entry in enumerate(self._entries):
            if entry.matches_request(request):
                return entry, index + 1
        return None, len(self._entries)

    def remove_by_tag(self, tag: int) -> Optional[MatchEntry]:
        """Remove the oldest entry with the given tag (ALPU said it matched)."""
        for index, entry in enumerate(self._entries):
            if entry.tag == tag:
                del self._entries[index]
                return entry
        return None

    def snapshot(self) -> List[MatchEntry]:
        """Copy of the entries, oldest first."""
        return list(self._entries)

    def clear(self) -> None:
        """Drop every entry."""
        self._entries.clear()
