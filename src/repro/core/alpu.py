"""The Associative List Processing Unit (Figure 2d + Figure 3).

The ALPU chains several cell blocks into one large virtual array of cells
and adds the control logic that talks to the rest of the NIC through three
FIFOs (header in, command in, result out).  This module is the
*behavioural* model: transactions (matches, inserts, resets) execute with
exact hardware semantics -- ordering, priority, wildcards, delete-on-match
compaction, insert-mode hold-and-retry -- while the *timing* of those
transactions is layered on separately by
:class:`~repro.core.pipeline.AlpuTimingModel` so the same model serves
both the property-test suite and the system simulation.

Cell ordering convention (matches Fig. 2c): list items are inserted at the
*youngest* end (block 0, local cell 0) and migrate toward the *oldest* end
(last block, highest local cell).  The oldest matching entry wins, because
MPI requires the first matching item in list order to be chosen.

State machine (Fig. 3): the ALPU starts in Match mode.  A command moves it
through Read Command, where only RESET and START INSERT are valid (other
commands are discarded, footnote 3).  In Insert mode, matching continues
between inserts, but a *failed* match is held for retry until inserts
complete -- this closes the race where a header misses the ALPU while the
matching receive is sitting in the command FIFO on its way in.
"""

from __future__ import annotations

import dataclasses
import enum
from collections import deque
from typing import Deque, List, Optional

from repro.obs.metrics import NULL_REGISTRY

from repro.core.block import CellBlock
from repro.core.cell import Cell, CellKind
from repro.core.commands import (
    Command,
    Insert,
    MatchFailure,
    MatchSuccess,
    Reset,
    Response,
    StartAcknowledge,
    StartInsert,
    StopInsert,
)
from repro.core.match import MatchEntry, MatchRequest


class AlpuMode(enum.Enum):
    """States of the controlling state machine (Figure 3)."""

    MATCH = "match"
    READ_COMMAND = "read_command"
    INSERT = "insert"


class CompactionReach(enum.Enum):
    """The "space available" rule used by insert-mode compaction.

    ``BLOCK`` is the paper's FPGA-friendly rule: a cell may shift if a
    higher cell *in its own block* is empty or the lowest cell of the next
    block is empty.  ``GLOBAL`` is the relaxed rule the paper says "could
    easily be expanded" to, modelled as a single global shift register;
    the ablation benchmark compares the two.
    """

    BLOCK = "block"
    GLOBAL = "global"


@dataclasses.dataclass(frozen=True)
class AlpuConfig:
    """ALPU geometry.

    The FPGA prototype swept ``total_cells`` in {128, 256} and
    ``block_size`` in {8, 16, 32} with a 42-bit match width and 16-bit
    tags; those are the defaults here.
    """

    kind: CellKind = CellKind.POSTED_RECEIVE
    total_cells: int = 256
    block_size: int = 16
    match_width: int = 42
    tag_width: int = 16
    compaction_reach: CompactionReach = CompactionReach.BLOCK

    def __post_init__(self) -> None:
        if self.total_cells <= 0 or self.total_cells % self.block_size:
            raise ValueError(
                f"total_cells ({self.total_cells}) must be a positive "
                f"multiple of block_size ({self.block_size})"
            )
        if self.block_size & (self.block_size - 1):
            raise ValueError(f"block_size must be a power of two: {self.block_size}")
        if self.match_width <= 0 or self.tag_width <= 0:
            raise ValueError(f"invalid widths in {self}")

    @property
    def num_blocks(self) -> int:
        """How many cell blocks the chain comprises."""
        return self.total_cells // self.block_size


@dataclasses.dataclass
class AlpuStats:
    """Lifetime counters, used by tests and the ablation benches."""

    matches_attempted: int = 0
    match_successes: int = 0
    match_failures: int = 0
    inserts: int = 0
    insert_stall_cycles: int = 0
    compaction_steps: int = 0
    resets: int = 0
    commands_discarded: int = 0
    held_retries: int = 0


class AlpuError(RuntimeError):
    """Raised on protocol violations the hardware could not absorb."""


class Alpu:
    """Behavioural model of the associative list processing unit."""

    def __init__(
        self,
        config: Optional[AlpuConfig] = None,
        *,
        metrics=None,
        name: str = "alpu",
    ) -> None:
        self.config = config = config if config is not None else AlpuConfig()
        self.blocks: List[CellBlock] = [
            CellBlock(
                config.kind,
                config.block_size,
                index=i,
                match_width=config.match_width,
                tag_width=config.tag_width,
            )
            for i in range(config.num_blocks)
        ]
        self.mode = AlpuMode.MATCH
        #: responses in result-FIFO order
        self.results: Deque[Response] = deque()
        #: header requests not yet resolved (held during insert mode)
        self._pending: Deque[MatchRequest] = deque()
        self.stats = AlpuStats()
        # registry instruments mirror AlpuStats into the shared telemetry
        # namespace; with the default null registry every one of these is
        # a shared no-op, so the uninstrumented path stays free
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._m_matches = registry.counter(f"{name}/matches_attempted")
        self._m_successes = registry.counter(f"{name}/match_successes")
        self._m_failures = registry.counter(f"{name}/match_failures")
        self._m_inserts = registry.counter(f"{name}/inserts")
        self._m_insert_stalls = registry.counter(f"{name}/insert_stall_cycles")
        self._m_compactions = registry.counter(f"{name}/compaction_steps")
        self._m_resets = registry.counter(f"{name}/resets")
        self._m_discarded = registry.counter(f"{name}/commands_discarded")
        self._m_held_retries = registry.counter(f"{name}/held_retries")
        self._g_occupancy = registry.gauge(f"{name}/occupancy")

    # ------------------------------------------------------------- observers
    @property
    def capacity(self) -> int:
        """Total number of cells."""
        return self.config.total_cells

    @property
    def occupancy(self) -> int:
        """Number of valid entries currently stored."""
        return sum(block.occupancy for block in self.blocks)

    @property
    def free_entries(self) -> int:
        """Free slots (what START ACKNOWLEDGE reports)."""
        return self.capacity - self.occupancy

    @property
    def has_held_request(self) -> bool:
        """A failed match is being held for retry (insert mode)."""
        return bool(self._pending)

    def entries(self) -> List[MatchEntry]:
        """Stored entries in priority (oldest-first) order, skipping holes."""
        ordered: List[MatchEntry] = []
        size = self.config.block_size
        for block in reversed(self.blocks):
            for local in range(size - 1, -1, -1):
                snap = block.entry_at(local)
                if snap is not None:
                    ordered.append(snap)
        return ordered

    def _cell(self, global_index: int) -> Cell:
        """Materialized snapshot of one cell (tests/diagnostics only --
        the packed state in :class:`CellBlock` is the model of record)."""
        block_index, local = divmod(global_index, self.config.block_size)
        block = self.blocks[block_index]
        bits, mask, tag, valid = block.cell_tuple(local)
        return Cell(block.kind, bits=bits, mask=mask, tag=tag, valid=valid)

    # =============================================================== headers
    def present_header(self, request: MatchRequest) -> List[Response]:
        """Feed one request from the header FIFO.

        Returns the responses this header produced *now* (possibly none:
        in insert mode a failed match is held for retry and resolves
        later, via :meth:`submit`).
        """
        self._check_widths(request.bits, request.mask)
        self._pending.append(request)
        return self._drain_pending()

    def _drain_pending(self) -> List[Response]:
        """Resolve queued requests in arrival order.

        In MATCH mode every request resolves immediately.  In INSERT mode
        a failing head request blocks the pipe (held for retry); requests
        behind it wait so that result order always equals arrival order.
        """
        emitted: List[Response] = []
        while self._pending:
            head = self._pending[0]
            matched, response = self._match_and_delete(head)
            if matched:
                self._pending.popleft()
                self.results.append(response)
                emitted.append(response)
            elif self.mode is AlpuMode.INSERT:
                break  # held for retry; MATCH FAILURE may not be emitted now
            else:
                self._pending.popleft()
                self.results.append(response)
                emitted.append(response)
        return emitted

    def _match_and_delete(self, request: MatchRequest):
        """One full match pipeline pass: compare, prioritize, delete."""
        self.stats.matches_attempted += 1
        self._m_matches.inc()
        # stage 1: fan the request out; each block registers its own copy
        for block in self.blocks:
            block.register_request(request)
        # stages 2-3: per-cell compares + in-block priority muxing;
        # stage 4: between-block prioritization (oldest block wins)
        found_block = -1
        local_location = -1
        tag = 0
        for block_index in range(len(self.blocks) - 1, -1, -1):
            matched, location, block_tag = self.blocks[block_index].match()
            if matched:
                found_block, local_location, tag = block_index, location, block_tag
                break
        if found_block < 0:
            self.stats.match_failures += 1
            self._m_failures.inc()
            return False, MatchFailure()
        # stages 5-6: broadcast the delete and shift-compact
        self._delete_at(found_block, local_location)
        self.stats.match_successes += 1
        self._m_successes.inc()
        if self._g_occupancy.enabled:
            self._g_occupancy.set(self.occupancy)
        return True, MatchSuccess(tag=tag)

    def _delete_at(self, block_index: int, local_location: int) -> None:
        """Delete-on-match: everything below the match shifts up one.

        "On a successful match ... the match location is broadcast to all
        of the cell blocks.  Cells at, and below, the match location are
        enabled while cells above it are not."  The shift crosses block
        boundaries freely (unlike insert-mode compaction).
        """
        size = self.config.block_size
        for current in range(block_index, -1, -1):
            through = local_location if current == block_index else size - 1
            incoming = self.blocks[current - 1].top_cell() if current > 0 else None
            self.blocks[current].shift_up_through(through, incoming)

    # ============================================================== commands
    def submit(self, command: Command) -> List[Response]:
        """Feed one command from the command FIFO; returns new responses."""
        if self.mode is AlpuMode.INSERT:
            return self._submit_insert_mode(command)
        # MATCH mode -> Read Command transition (Fig. 3): only RESET and
        # START INSERT are valid; others are discarded (footnote 3).
        if isinstance(command, StartInsert):
            self.mode = AlpuMode.INSERT
            response = StartAcknowledge(free_entries=self.free_entries)
            self.results.append(response)
            return [response]
        if isinstance(command, Reset):
            return self._reset()
        self.stats.commands_discarded += 1
        self._m_discarded.inc()
        return []

    def _submit_insert_mode(self, command: Command) -> List[Response]:
        if isinstance(command, Insert):
            self._insert(command)
            # between inserts, matching continues: retry any held request
            # against the (possibly now-matching) new contents
            if self._pending:
                self.stats.held_retries += 1
                self._m_held_retries.inc()
            return self._drain_pending()
        if isinstance(command, StopInsert):
            self.mode = AlpuMode.MATCH
            # resolve the backlog; failures may be emitted again now
            return self._drain_pending()
        if isinstance(command, Reset):
            return self._reset()
        if isinstance(command, StartInsert):
            # redundant START INSERT: re-acknowledge with current free count
            response = StartAcknowledge(free_entries=self.free_entries)
            self.results.append(response)
            return [response]
        self.stats.commands_discarded += 1
        self._m_discarded.inc()
        return []

    def _reset(self) -> List[Response]:
        """RESET: clear every valid flag and return to Match mode.

        Requests in flight resolve against an empty array (all failures),
        preserving one-response-per-header.
        """
        for block in self.blocks:
            block.clear_valid()
        self.mode = AlpuMode.MATCH
        self.stats.resets += 1
        self._m_resets.inc()
        self._g_occupancy.set(0)
        return self._drain_pending()

    # =============================================================== inserts
    def _insert(self, command: Insert) -> None:
        self._check_widths(command.match_bits, command.mask_bits)
        self._check_tag(command.tag)
        if self.free_entries == 0:
            raise AlpuError(
                "INSERT into a full ALPU -- software must honour the free "
                "count from START ACKNOWLEDGE"
            )
        # the insert point is the youngest cell; if occupied, compaction
        # must first migrate a hole down to it (each step is one clock)
        stall = 0
        youngest = self.blocks[0]
        while youngest.bottom_valid:
            if not self.compact_step():
                raise AlpuError("compaction cannot free the insert cell")
            stall += 1
        self.stats.insert_stall_cycles += stall
        self._m_insert_stalls.inc(stall)
        entry = MatchEntry(
            bits=command.match_bits, mask=command.mask_bits, tag=command.tag
        )
        youngest.load(0, entry)
        self.stats.inserts += 1
        self._m_inserts.inc()
        if self._g_occupancy.enabled:
            self._g_occupancy.set(self.occupancy)
        # the pipeline allows inserts every other cycle because data shifts
        # up one position on the intervening clock; model that free step
        self.compact_step()

    # ============================================================ compaction
    def compact_step(self) -> bool:
        """One clock of insert-mode hole compaction.  True if data moved.

        Under the BLOCK reach rule each block decides independently from
        cycle-start state:

        * if the next (older) block's lowest cell is empty, the whole
          block shifts up one, its top cell crossing into that block;
        * otherwise, if the block has an internal hole with valid data
          below it, the run below the lowest such hole shifts up one.

        Under GLOBAL reach the ALPU behaves as a single block.
        """
        self.stats.compaction_steps += 1
        self._m_compactions.inc()
        if self.config.compaction_reach is CompactionReach.GLOBAL:
            return self._compact_step_global()
        return self._compact_step_block()

    @staticmethod
    def _lowest_hole_with_valid_below(valid_mask: int) -> int:
        """Lowest bit position that is 0 with any 1 strictly below it.

        Bit tricks over the valid bitmask: positions below the lowest
        valid bit are holes with nothing beneath them, so the answer is
        the lowest zero above the lowest one.  Returns a position past
        the mask's width when the valid run is hole-free (callers bound
        it); must not be called with an empty mask.
        """
        lowest_valid = (valid_mask & -valid_mask).bit_length() - 1
        above = valid_mask >> lowest_valid
        return lowest_valid + (~above & (above + 1)).bit_length() - 1

    def _compact_step_global(self) -> bool:
        size = self.config.block_size
        # find the globally lowest hole with valid data below it
        combined = 0
        for block_index, block in enumerate(self.blocks):
            combined |= block.valid_mask << (block_index * size)
        if not combined:
            return False
        hole = self._lowest_hole_with_valid_below(combined)
        if hole >= self.capacity:
            return False
        block_index, local = divmod(hole, size)
        self._delete_like_shift(block_index, local)
        return True

    def _compact_step_block(self) -> bool:
        size = self.config.block_size
        blocks = self.blocks
        count = len(blocks)
        start_valid = [block.valid_mask for block in blocks]

        FULL = -1
        plans: List[Optional[int]] = []
        for index in range(count):
            valid_mask = start_valid[index]
            plan: Optional[int] = None
            if valid_mask:
                if index + 1 < count and not start_valid[index + 1] & 1:
                    plan = FULL
                else:
                    hole = self._lowest_hole_with_valid_below(valid_mask)
                    if hole < size:
                        plan = hole
            plans.append(plan)

        if all(plan is None for plan in plans):
            return False

        # apply oldest-first so each block reads its younger neighbour's
        # cycle-start top cell before that neighbour shifts
        for index in range(count - 1, -1, -1):
            plan = plans[index]
            incoming = None
            if index > 0 and plans[index - 1] == FULL:
                incoming = blocks[index - 1].top_cell()
            if plan == FULL:
                blocks[index].shift_up_through(size - 1, incoming)
            elif plan is not None:
                blocks[index].shift_up_through(plan, incoming)
            elif incoming is not None:
                blocks[index].set_bottom(incoming)
        # a FULL block's top was consumed by its older neighbour's cell 0;
        # shift_up_through already rewrote every cell it owned, and the
        # incoming latch above completes the cross-block move, so nothing
        # is left dangling.
        return True

    def _delete_like_shift(self, block_index: int, local_location: int) -> None:
        size = self.config.block_size
        for current in range(block_index, -1, -1):
            through = local_location if current == block_index else size - 1
            incoming = self.blocks[current - 1].top_cell() if current > 0 else None
            self.blocks[current].shift_up_through(through, incoming)

    # ============================================================ validation
    def _check_widths(self, bits: int, mask: int) -> None:
        limit = 1 << self.config.match_width
        if not 0 <= bits < limit or not 0 <= mask < limit:
            raise AlpuError(
                "match/mask bits exceed configured width "
                f"{self.config.match_width}: bits={bits:#x} mask={mask:#x}"
            )

    def _check_tag(self, tag: int) -> None:
        if not 0 <= tag < (1 << self.config.tag_width):
            raise AlpuError(
                f"tag {tag:#x} exceeds configured tag width {self.config.tag_width}"
            )
