"""The ALPU -- Associative List Processing Unit.

This subpackage is the paper's primary contribution: a TCAM-like
associative matching structure augmented with list management so it can
implement MPI's ordered, high-turnover posted-receive and
unexpected-message queues in hardware.

The hierarchy follows Figure 2 of the paper:

* :class:`~repro.core.cell.Cell` -- one match cell: stored match bits,
  (optionally stored) mask bits, valid bit, and a tag that software uses as
  a pointer into NIC memory.  Two flavours exist: the posted-receive cell
  stores its mask (receives carry the wildcards) and the
  unexpected-message cell takes the mask as an input (the receive being
  posted carries the wildcards).
* :class:`~repro.core.block.CellBlock` -- 2^k cells with a registered
  request, per-cell shift enables, compaction control and a binary
  priority-mux tree that selects the *oldest* matching cell.
* :class:`~repro.core.alpu.Alpu` -- chains blocks into one virtual array,
  adds the controlling state machine of Figure 3 (Match / Read Command /
  Insert modes) and the command/response protocol of Tables I and II.
* :class:`~repro.core.pipeline.AlpuTimingModel` -- the pipeline timing of
  Section V-D: a new match every 6-7 clock cycles, inserts every other
  cycle.
* :class:`~repro.core.reference.ReferenceMatchList` -- a golden,
  linear-list matcher with identical semantics, used both for differential
  testing of the ALPU and as the software queue in the baseline NIC.
"""

from repro.core.match import (
    MatchFormat,
    MatchRequest,
    MatchEntry,
    matches,
    ANY_SOURCE,
    ANY_TAG,
)
from repro.core.cell import Cell, CellKind
from repro.core.block import CellBlock
from repro.core.alpu import Alpu, AlpuConfig, AlpuMode
from repro.core.commands import (
    Command,
    StartInsert,
    Insert,
    StopInsert,
    Reset,
    Response,
    StartAcknowledge,
    MatchSuccess,
    MatchFailure,
)
from repro.core.pipeline import AlpuTimingModel
from repro.core.reference import ReferenceMatchList

__all__ = [
    "MatchFormat",
    "MatchRequest",
    "MatchEntry",
    "matches",
    "ANY_SOURCE",
    "ANY_TAG",
    "Cell",
    "CellKind",
    "CellBlock",
    "Alpu",
    "AlpuConfig",
    "AlpuMode",
    "Command",
    "StartInsert",
    "Insert",
    "StopInsert",
    "Reset",
    "Response",
    "StartAcknowledge",
    "MatchSuccess",
    "MatchFailure",
    "AlpuTimingModel",
    "ReferenceMatchList",
]
