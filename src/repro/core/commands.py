"""The ALPU command and response protocol (Tables I and II).

Commands flow processor -> ALPU through the command FIFO; responses flow
back through the result FIFO.  Only INSERT carries parameters.  The paper
calls the response to START INSERT both "START ACKNOWLEDGE" (Table II) and
"INSERT ACKNOWLEDGE" (Section IV-C); they are the same response and we use
the Table II name.

Protocol rules (Section IV-A):

* A START INSERT and its START ACKNOWLEDGE must occur before any INSERT.
* INSERTs may then be performed until a STOP INSERT.
* MATCH SUCCESS can occur at any time.
* MATCH FAILURE cannot occur between a START ACKNOWLEDGE and a STOP
  INSERT (failures are held for retry until inserts complete).
"""

from __future__ import annotations

import dataclasses
from typing import Union


# ----------------------------------------------------------------- commands
@dataclasses.dataclass(frozen=True)
class StartInsert:
    """Instruct the ALPU to enter insert mode.  Inputs: none."""


@dataclasses.dataclass(frozen=True)
class Insert:
    """Insert a new entry.  Inputs: match bits, mask bits (optional), tag."""

    match_bits: int
    mask_bits: int
    tag: int


@dataclasses.dataclass(frozen=True)
class StopInsert:
    """Instruct the ALPU to exit insert mode.  Inputs: none."""


@dataclasses.dataclass(frozen=True)
class Reset:
    """Clear all entries in the ALPU.  Inputs: none."""


Command = Union[StartInsert, Insert, StopInsert, Reset]


# ---------------------------------------------------------------- responses
@dataclasses.dataclass(frozen=True)
class StartAcknowledge:
    """ALPU has entered insert mode.  Outputs: number of free entries."""

    free_entries: int


@dataclasses.dataclass(frozen=True)
class MatchSuccess:
    """Input matched a list item.  Outputs: the tag from the matched item."""

    tag: int


@dataclasses.dataclass(frozen=True)
class MatchFailure:
    """Input did not match any list item.  Outputs: none."""


Response = Union[StartAcknowledge, MatchSuccess, MatchFailure]


#: rendered rows of Table I, used by the table-reproduction benchmark
TABLE_I_ROWS = [
    ("START INSERT", "Instruct the ALPU to enter insert mode", "None"),
    ("INSERT", "Insert a new entry in the ALPU",
     "Match bits, Mask bits (optional), and tag"),
    ("STOP INSERT", "Instruct the ALPU to exit insert mode", "None"),
    ("RESET", "Clear all entries in the ALPU", "None"),
]

#: rendered rows of Table II
TABLE_II_ROWS = [
    ("START ACKNOWLEDGE", "ALPU has entered insert mode",
     "Number of free entries"),
    ("MATCH SUCCESS", "Input matched list item", "Tag from list item matched"),
    ("MATCH FAILURE", "Input did not match list item", "None"),
]
