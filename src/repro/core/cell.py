"""The basic matching cell (Figure 2a/2b).

A cell stores match bits, mask bits, a valid bit and a tag.  Its compare
logic produces ``match AND valid``.  The two flavours of the paper differ
only in where the mask comes from:

* ``CellKind.POSTED_RECEIVE`` (Fig. 2a): the mask is *stored* in the cell,
  because each posted receive carries its own wildcards.
* ``CellKind.UNEXPECTED`` (Fig. 2b): the mask is an *input*, because the
  wildcards belong to the receive being posted (the request), not to the
  stored unexpected-message headers.

Stored data is passed from one cell to the next under shift enables; the
:class:`~repro.core.block.CellBlock` drives those enables.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional

from repro.core.match import MatchEntry, MatchRequest, matches


class CellKind(enum.Enum):
    """Which ALPU flavour a cell belongs to."""

    POSTED_RECEIVE = "posted_receive"
    UNEXPECTED = "unexpected"


@dataclasses.dataclass
class Cell:
    """One match cell.

    An invalid cell can never produce a match (the valid bit is ANDed into
    the match output in hardware).
    """

    kind: CellKind
    bits: int = 0
    mask: int = 0
    tag: int = 0
    valid: bool = False

    # --------------------------------------------------------------- loading
    def load(self, entry: MatchEntry) -> None:
        """Latch a new entry into the cell (an INSERT or a shift-in)."""
        self.bits = entry.bits
        # the unexpected-message cell has no mask storage (Fig. 2b)
        self.mask = entry.mask if self.kind is CellKind.POSTED_RECEIVE else 0
        self.tag = entry.tag
        self.valid = True

    def clear(self) -> None:
        """Drop the valid bit (contents are don't-care afterwards)."""
        self.valid = False

    def copy_from(self, other: "Cell") -> None:
        """Shift-register transfer: latch the neighbour's stored data."""
        self.bits = other.bits
        self.mask = other.mask
        self.tag = other.tag
        self.valid = other.valid

    def snapshot(self) -> Optional[MatchEntry]:
        """The stored entry, or None when invalid (testing/diagnostics)."""
        if not self.valid:
            return None
        return MatchEntry(bits=self.bits, mask=self.mask, tag=self.tag)

    # -------------------------------------------------------------- matching
    def match(self, request: MatchRequest) -> bool:
        """Compare logic output: match AND valid.

        For posted-receive cells the stored mask applies; for unexpected
        cells the request's input mask applies.  (Both are ORed, which is
        also what a combined Portals-style cell would do: a masked bit from
        either side is a don't-care.)
        """
        if not self.valid:
            return False
        effective_mask = self.mask | request.mask
        return matches(self.bits, effective_mask, request.bits)
