"""Pipeline timing of the ALPU (Section V-D).

The FPGA prototype is pipelined into six stages:

1. fan out global signals to the blocks (each block registers its copy);
2. per-cell match / no-match;
3. in-block priority muxing;
4. between-block priority muxing (one *or two* cycles, depending on the
   number of blocks);
5. fan out the delete signals;
6. delete the matched cell.

The pipelining does not allow execution overlap, so the unit accepts a new
match every 6 or 7 clock cycles; inserts can happen every other cycle.
The simulation results in the paper assume a 7-cycle match latency with no
overlap, at a 500 MHz ASIC clock (the 5x-from-FPGA estimate, equal to the
Red Storm NIC core clock); those are the defaults here.

Stage 4 costs two cycles when the between-block tree is deep.  The
published latency column of Tables IV and V is reproduced exactly by
"two cycles when there are more than 8 blocks":

    (cells, block) : blocks : latency  --  256/8:32:7, 256/16:16:7,
    256/32:8:6, 128/8:16:7, 128/16:8:6, 128/32:4:6.
"""

from __future__ import annotations

import dataclasses

from repro.core.alpu import AlpuConfig
from repro.sim.units import cycles_to_ps


def match_latency_cycles(total_cells: int, block_size: int) -> int:
    """Pipeline depth in cycles for a given geometry (Tables IV/V rule)."""
    if total_cells <= 0 or block_size <= 0 or total_cells % block_size:
        raise ValueError(
            f"invalid geometry: {total_cells} cells / block {block_size}"
        )
    num_blocks = total_cells // block_size
    between_block_stage = 2 if num_blocks > 8 else 1
    return 5 + between_block_stage


@dataclasses.dataclass(frozen=True)
class AlpuTimingModel:
    """Transaction durations for an ALPU geometry at a given clock.

    ``conservative_match_cycles`` pins the match latency at 7 cycles
    regardless of geometry, matching the paper's simulation assumption
    ("The simulation results assume a 7 cycle pipelining latency with no
    overlap of execution").
    """

    clock_hz: float = 500e6
    insert_interval_cycles: int = 2
    command_cycles: int = 1
    conservative_match_cycles: bool = True

    def cycle_ps(self) -> int:
        """One ALPU clock period in picoseconds."""
        return cycles_to_ps(1, self.clock_hz)

    def match_cycles(self, config: AlpuConfig) -> int:
        """Pipeline depth for one match under this model."""
        if self.conservative_match_cycles:
            return 7
        return match_latency_cycles(config.total_cells, config.block_size)

    def match_ps(self, config: AlpuConfig) -> int:
        """Time from header acceptance to result availability.

        With no execution overlap this is also the minimum spacing between
        consecutive matches.
        """
        return self.match_cycles(config) * self.cycle_ps()

    def insert_ps(self) -> int:
        """Minimum spacing between consecutive inserts."""
        return self.insert_interval_cycles * self.cycle_ps()

    def command_ps(self) -> int:
        """Processing time for START/STOP INSERT and RESET commands."""
        return self.command_cycles * self.cycle_ps()
