"""A block of cells (Figure 2c).

A cell block groups ``2^k`` cells and contains

* a registered copy of the incoming request (for timing -- one pipeline
  stage of the prototype),
* the priority-mux tree that selects the *highest-order* (oldest) matching
  cell and encodes the match location, and
* the flow-control logic that drives per-cell shift enables during deletes
  and insert-mode compaction.

Cell ordering: local index 0 is the lowest-order (youngest) cell; local
index ``size-1`` is the highest-order (oldest, rightmost in Fig. 2c) cell
and has the highest priority, because MPI requires the *first* matching
item in list order to win.

The block size must be a power of two "to simplify the task of prioritizing
the correct tag and generating a correct match location"; the mux tree here
is written exactly as that ``log2(size)``-level binary tree so that the
encoding logic the paper describes is what actually runs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.cell import Cell, CellKind
from repro.core.match import MatchRequest


def priority_select(
    match_flags: Sequence[bool], tags: Sequence[int]
) -> Tuple[bool, int, int]:
    """The binary priority-mux tree of Section III-B.

    At the first level, the higher cell of each pair selects its own tag if
    it matched, else its partner's; the pair's match bit becomes the lowest
    order bit of the match location.  Each further level ORs the pair of
    match bits and encodes one more location bit.  Returns
    ``(any_match, location, tag)`` where ``location`` is the index of the
    highest-priority (largest-index) matching element.

    Works for any power-of-two length; a single element degenerates to the
    obvious base case.
    """
    n = len(match_flags)
    if n == 0 or n & (n - 1):
        raise ValueError(f"priority_select needs a power-of-two width, got {n}")
    if len(tags) != n:
        raise ValueError("match_flags and tags must have equal length")

    # level 0: leaves
    level = [
        (bool(match_flags[i]), 0, tags[i]) for i in range(n)
    ]  # (matched, location_bits, tag)
    bit = 0
    while len(level) > 1:
        next_level = []
        for pair_index in range(0, len(level), 2):
            low = level[pair_index]
            high = level[pair_index + 1]
            # the higher-order element wins when it matched
            if high[0]:
                matched, location, tag = True, high[1] | (1 << bit), high[2]
            elif low[0]:
                matched, location, tag = True, low[1], low[2]
            else:
                matched, location, tag = False, 0, low[2]
            next_level.append((matched, location, tag))
        level = next_level
        bit += 1
    return level[0]


class CellBlock:
    """A power-of-two group of cells with priority and flow control."""

    def __init__(self, kind: CellKind, size: int, index: int = 0) -> None:
        if size <= 0 or size & (size - 1):
            raise ValueError(f"block size must be a power of two, got {size}")
        self.kind = kind
        self.size = size
        #: position of this block within the ALPU chain (0 = youngest end)
        self.index = index
        self.cells: List[Cell] = [Cell(kind) for _ in range(size)]
        #: registered copy of the incoming request (pipeline stage 1)
        self.registered_request: Optional[MatchRequest] = None

    # ------------------------------------------------------------- observers
    @property
    def occupancy(self) -> int:
        """Number of valid cells in this block."""
        return sum(1 for cell in self.cells if cell.valid)

    @property
    def is_full(self) -> bool:
        """Every cell valid?"""
        return all(cell.valid for cell in self.cells)

    @property
    def bottom_empty(self) -> bool:
        """Is the lowest-order cell free (the insert/shift-in target)?"""
        return not self.cells[0].valid

    def lowest_hole_above(self, local_index: int) -> Optional[int]:
        """Lowest empty cell strictly above ``local_index``, if any."""
        for position in range(local_index + 1, self.size):
            if not self.cells[position].valid:
                return position
        return None

    def lowest_hole(self) -> Optional[int]:
        """Lowest empty cell position in the block, if any."""
        for position, cell in enumerate(self.cells):
            if not cell.valid:
                return position
        return None

    # -------------------------------------------------------------- matching
    def register_request(self, request: MatchRequest) -> None:
        """Pipeline stage 1: latch the block's own copy of the request."""
        self.registered_request = request

    def match(self, request: Optional[MatchRequest] = None) -> Tuple[bool, int, int]:
        """Pipeline stages 2-3: per-cell compares + in-block priority mux.

        Returns ``(matched, local_location, tag)``.  Uses the registered
        request unless one is passed explicitly.

        Implementation note: the hardware evaluates every cell in
        parallel and selects through the :func:`priority_select` mux
        tree; a top-down scan that stops at the first (highest-index)
        match computes the identical result, and the simulator's hot
        loop uses that form.  ``test_block.py`` holds the two equal by
        property test.
        """
        if request is None:
            request = self.registered_request
        if request is None:
            raise RuntimeError("match() with no registered request")
        request_bits = request.bits
        request_mask = request.mask
        for location in range(self.size - 1, -1, -1):
            cell = self.cells[location]
            if cell.valid and (
                (cell.bits ^ request_bits) & ~(cell.mask | request_mask)
            ) == 0:
                return True, location, cell.tag
        return False, 0, self.cells[0].tag

    # ------------------------------------------------------------- shifting
    def shift_up_through(self, local_index: int, incoming: Optional[Cell]) -> Cell:
        """Shift cells ``[0, local_index]`` up by one position.

        ``incoming`` (the top cell of the previous block, or None at the
        chain's youngest end) is latched into local cell 0.  Returns a
        snapshot of what fell out of ``local_index`` *before* the shift
        (the caller discards it on delete, or latches it into the next
        block's bottom during compaction).  Mirrors the delete behaviour:
        "Cells at, and below, the match location are enabled while cells
        above it are not."
        """
        displaced = Cell(self.kind)
        displaced.copy_from(self.cells[local_index])
        for position in range(local_index, 0, -1):
            self.cells[position].copy_from(self.cells[position - 1])
        if incoming is not None:
            self.cells[0].copy_from(incoming)
        else:
            self.cells[0].clear()
        return displaced
