"""A block of cells (Figure 2c), vectorized.

A cell block groups ``2^k`` cells and contains

* a registered copy of the incoming request (for timing -- one pipeline
  stage of the prototype),
* the priority-mux tree that selects the *highest-order* (oldest) matching
  cell and encodes the match location, and
* the flow-control logic that drives per-cell shift enables during deletes
  and insert-mode compaction.

Cell ordering: local index 0 is the lowest-order (youngest) cell; local
index ``size-1`` is the highest-order (oldest, rightmost in Fig. 2c) cell
and has the highest priority, because MPI requires the *first* matching
item in list order to win.

The block size must be a power of two "to simplify the task of prioritizing
the correct tag and generating a correct match location"; the mux tree is
kept here as :func:`priority_select`, written exactly as that
``log2(size)``-level binary tree so the encoding logic the paper describes
stays executable and testable.

Data layout (SWAR)
------------------
The hardware evaluates every cell in a block *in parallel* -- it is a
ternary CAM slice, the same wide bitline-parallel structure as a
bitline-compute SRAM.  The simulator mirrors that with packed-integer
SWAR (SIMD-within-a-register) state instead of per-cell objects:

``_bits`` / ``_mask``
    One Python big-int each, one *lane* per cell at stride
    ``S = match_width + 1``.  The extra top bit per lane is a **guard
    bit** that is always 0 in stored data; it gives lane arithmetic a
    place to borrow/carry without crossing into the neighbour lane.
``_tags``
    Tags packed at stride ``tag_width`` (no guard needed -- tags are
    only ever shifted and extracted, never compared arithmetically).
``_valid_mask`` / ``_valid_guard``
    The valid bits, kept in two synchronized encodings: bit ``i`` per
    lane (for occupancy, holes and compaction planning) and bit
    ``i*S + match_width`` (guard position, for ANDing into the match
    result).

One block-wide match is then five big-int operations (`Figure 2c`'s
compare plane) plus one ``bit_length`` (the priority encoder)::

    x     = (bits ^ repl(req)) & ~(mask | repl(req_mask)) & LANES
    hit   = (HIGH - x) & valid_guard      # guard set <=> lane x == 0
    loc   = (hit.bit_length() - 1 - w) // S

``repl(v) = v * COMB`` replicates a ``w``-bit value into every lane
(``COMB`` has one LSB set per lane).  ``HIGH - x`` cannot borrow across
lanes because each lane's minuend ``2^w`` exceeds any ``w``-bit ``x``
lane; the difference's guard bit survives exactly when the lane was
zero, i.e. when every un-masked bit compared equal.  The highest set
guard bit is the oldest matching cell -- the same answer as the
priority-mux tree, which the property tests in
``tests/core/test_block.py`` and ``tests/core/test_vectorized_block.py``
hold equal cell-for-cell against :func:`priority_select` and the
per-cell :class:`~repro.core.cell.Cell` object model.

Invalid lanes keep their stale contents (hardware clears only the valid
bit), so shifted-out data reappearing at the bottom of a block behaves
exactly like the object model's ``copy_from``/``clear`` semantics --
including the quirk that a failed match reports lane 0's (possibly
stale) tag.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.cell import Cell, CellKind
from repro.core.match import MatchEntry, MatchRequest

#: a cell snapshot travelling between blocks: (bits, mask, tag, valid)
CellTuple = Tuple[int, int, int, bool]


def priority_select(
    match_flags: Sequence[bool], tags: Sequence[int]
) -> Tuple[bool, int, int]:
    """The binary priority-mux tree of Section III-B.

    At the first level, the higher cell of each pair selects its own tag if
    it matched, else its partner's; the pair's match bit becomes the lowest
    order bit of the match location.  Each further level ORs the pair of
    match bits and encodes one more location bit.  Returns
    ``(any_match, location, tag)`` where ``location`` is the index of the
    highest-priority (largest-index) matching element.

    Works for any power-of-two length; a single element degenerates to the
    obvious base case.
    """
    n = len(match_flags)
    if n == 0 or n & (n - 1):
        raise ValueError(f"priority_select needs a power-of-two width, got {n}")
    if len(tags) != n:
        raise ValueError("match_flags and tags must have equal length")

    # level 0: leaves
    level = [
        (bool(match_flags[i]), 0, tags[i]) for i in range(n)
    ]  # (matched, location_bits, tag)
    bit = 0
    while len(level) > 1:
        next_level = []
        for pair_index in range(0, len(level), 2):
            low = level[pair_index]
            high = level[pair_index + 1]
            # the higher-order element wins when it matched
            if high[0]:
                matched, location, tag = True, high[1] | (1 << bit), high[2]
            elif low[0]:
                matched, location, tag = True, low[1], low[2]
            else:
                matched, location, tag = False, 0, low[2]
            next_level.append((matched, location, tag))
        level = next_level
        bit += 1
    return level[0]


class CellBlock:
    """A power-of-two group of cells with priority and flow control.

    State is the packed-integer SWAR layout described in the module
    docstring; :meth:`snapshot_cells` materializes per-cell
    :class:`~repro.core.cell.Cell` objects when tests or diagnostics want
    the object view.
    """

    def __init__(
        self,
        kind: CellKind,
        size: int,
        index: int = 0,
        *,
        match_width: int = 42,
        tag_width: int = 16,
    ) -> None:
        if size <= 0 or size & (size - 1):
            raise ValueError(f"block size must be a power of two, got {size}")
        if match_width <= 0 or tag_width <= 0:
            raise ValueError(
                f"widths must be positive: match={match_width} tag={tag_width}"
            )
        self.kind = kind
        self.size = size
        #: position of this block within the ALPU chain (0 = youngest end)
        self.index = index
        self.match_width = match_width
        self.tag_width = tag_width
        # ------------------------------------------- SWAR lane constants
        w = match_width
        s = w + 1
        self._w = w
        self._s = s
        self._t = tag_width
        #: single-lane value mask / tag mask
        self._lane = (1 << w) - 1
        self._tag_mask = (1 << tag_width) - 1
        #: one LSB per lane: multiplying by this replicates a lane value
        self._comb = sum(1 << (li * s) for li in range(size))
        #: every data bit of every lane (w low bits per lane)
        self._lanes = self._lane * self._comb
        #: every guard bit (bit w of each lane)
        self._high = self._comb << w
        # ------------------------------------------------- packed state
        self._bits = 0
        self._mask = 0
        self._tags = 0
        self._valid_mask = 0
        self._valid_guard = 0
        #: all tag bits / all valid bits (full-block shift masks)
        self._tags_full = (1 << size * tag_width) - 1
        self._valid_full = (1 << size) - 1
        #: region/below mask sets for partial shifts, cached per
        #: ``local_index`` -- deletes hit very few distinct locations, so
        #: building the six big-int masks once per location wins over
        #: rebuilding them on every shift
        self._shift_masks: dict = {}
        #: registered copy of the incoming request (pipeline stage 1)
        self.registered_request: Optional[MatchRequest] = None

    # ------------------------------------------------------------- observers
    @property
    def occupancy(self) -> int:
        """Number of valid cells in this block (a popcount, O(1))."""
        return self._valid_mask.bit_count()

    @property
    def valid_mask(self) -> int:
        """Valid bits as an integer bitmask (bit ``i`` = local cell ``i``)."""
        return self._valid_mask

    @property
    def is_full(self) -> bool:
        """Every cell valid?"""
        return self._valid_mask == (1 << self.size) - 1

    @property
    def bottom_empty(self) -> bool:
        """Is the lowest-order cell free (the insert/shift-in target)?"""
        return not self._valid_mask & 1

    @property
    def bottom_valid(self) -> bool:
        """Is the lowest-order cell occupied?"""
        return bool(self._valid_mask & 1)

    def lowest_hole_above(self, local_index: int) -> Optional[int]:
        """Lowest empty cell strictly above ``local_index``, if any."""
        for position in range(local_index + 1, self.size):
            if not self._valid_mask >> position & 1:
                return position
        return None

    def lowest_hole(self) -> Optional[int]:
        """Lowest empty cell position in the block, if any."""
        inverted = ~self._valid_mask & ((1 << self.size) - 1)
        if not inverted:
            return None
        return (inverted & -inverted).bit_length() - 1

    # ----------------------------------------------------------- cell access
    def cell_tuple(self, local_index: int) -> CellTuple:
        """Snapshot of one cell as ``(bits, mask, tag, valid)``."""
        shift = local_index * self._s
        return (
            self._bits >> shift & self._lane,
            self._mask >> shift & self._lane,
            self._tags >> local_index * self._t & self._tag_mask,
            bool(self._valid_mask >> local_index & 1),
        )

    def top_cell(self) -> CellTuple:
        """Snapshot of the highest-order cell (the cross-block shift-out)."""
        return self.cell_tuple(self.size - 1)

    def entry_at(self, local_index: int) -> Optional[MatchEntry]:
        """The stored entry at ``local_index``, or None when invalid."""
        bits, mask, tag, valid = self.cell_tuple(local_index)
        if not valid:
            return None
        return MatchEntry(bits=bits, mask=mask, tag=tag)

    def snapshot_cells(self) -> List[Cell]:
        """Materialize the object view (tests/diagnostics; not a hot path)."""
        cells = []
        for local_index in range(self.size):
            bits, mask, tag, valid = self.cell_tuple(local_index)
            cells.append(
                Cell(self.kind, bits=bits, mask=mask, tag=tag, valid=valid)
            )
        return cells

    def load(self, local_index: int, entry: MatchEntry) -> None:
        """Latch ``entry`` into one cell (an INSERT or a test fixture).

        The unexpected-message cell has no mask storage (Fig. 2b), so for
        ``CellKind.UNEXPECTED`` the stored mask is forced to zero exactly
        as :meth:`repro.core.cell.Cell.load` does.
        """
        lane = self._lane
        if not 0 <= entry.bits <= lane or not 0 <= entry.mask <= lane:
            raise ValueError(
                f"entry exceeds match width {self._w}: "
                f"bits={entry.bits:#x} mask={entry.mask:#x}"
            )
        if not 0 <= entry.tag <= self._tag_mask:
            raise ValueError(f"tag {entry.tag:#x} exceeds width {self._t}")
        mask = entry.mask if self.kind is CellKind.POSTED_RECEIVE else 0
        shift = local_index * self._s
        tag_shift = local_index * self._t
        self._bits = self._bits & ~(lane << shift) | entry.bits << shift
        self._mask = self._mask & ~(lane << shift) | mask << shift
        self._tags = (
            self._tags & ~(self._tag_mask << tag_shift) | entry.tag << tag_shift
        )
        self._valid_mask |= 1 << local_index
        self._valid_guard |= 1 << shift + self._w

    def set_bottom(self, incoming: CellTuple) -> None:
        """Overwrite cell 0 wholesale (a cross-block compaction latch)."""
        bits, mask, tag, valid = incoming
        lane = self._lane
        self._bits = self._bits & ~lane | bits
        self._mask = self._mask & ~lane | mask
        self._tags = self._tags & ~self._tag_mask | tag
        if valid:
            self._valid_mask |= 1
            self._valid_guard |= 1 << self._w
        else:
            self._valid_mask &= ~1
            self._valid_guard &= ~(1 << self._w)

    def clear_cell(self, local_index: int) -> None:
        """Drop one valid bit (contents become don't-care, and stay put)."""
        self._valid_mask &= ~(1 << local_index)
        self._valid_guard &= ~(1 << local_index * self._s + self._w)

    def clear_valid(self) -> None:
        """RESET: drop every valid bit; stored data is don't-care."""
        self._valid_mask = 0
        self._valid_guard = 0

    # -------------------------------------------------------------- matching
    def register_request(self, request: MatchRequest) -> None:
        """Pipeline stage 1: latch the block's own copy of the request."""
        self.registered_request = request

    def match(self, request: Optional[MatchRequest] = None) -> Tuple[bool, int, int]:
        """Pipeline stages 2-3: block-wide compare + priority encode.

        Returns ``(matched, local_location, tag)``.  Uses the registered
        request unless one is passed explicitly.

        All cells compare at once, exactly as the hardware's parallel
        compare plane does -- see the module docstring for the SWAR
        identity with :func:`priority_select`.
        """
        if request is None:
            request = self.registered_request
            if request is None:
                raise RuntimeError("match() with no registered request")
        comb = self._comb
        x = (
            (self._bits ^ request.bits * comb)
            & ~(self._mask | request.mask * comb)
            & self._lanes
        )
        hit = (self._high - x) & self._valid_guard
        if not hit:
            return False, 0, self._tags & self._tag_mask
        location = (hit.bit_length() - 1 - self._w) // self._s
        return (
            True,
            location,
            self._tags >> location * self._t & self._tag_mask,
        )

    # ------------------------------------------------------------- shifting
    def shift_up_through(
        self, local_index: int, incoming: Optional[CellTuple]
    ) -> CellTuple:
        """Shift cells ``[0, local_index]`` up by one position.

        ``incoming`` (the top cell of the previous block, or None at the
        chain's youngest end) is latched into local cell 0.  Returns a
        snapshot of what fell out of ``local_index`` *before* the shift
        (the caller discards it on delete, or latches it into the next
        block's bottom during compaction).  Mirrors the delete behaviour:
        "Cells at, and below, the match location are enabled while cells
        above it are not."

        The whole region moves in one masked big-int shift per packed
        field: ``new = (X & ~region) | ((X & below) << stride) | lane0``.
        """
        s = self._s
        t = self._t
        displaced = self.cell_tuple(local_index)
        if incoming is not None:
            in_bits, in_mask, in_tag, in_valid = incoming
        else:
            in_bits = in_mask = in_tag = 0
            in_valid = False
        if local_index == self.size - 1:
            # Full-block shift (the common case: a delete above this block
            # or a cross-block compaction step moves the whole block): the
            # region is everything, so no region/below masking is needed --
            # shift, latch the incoming cell into lane 0, drop the top lane.
            self._bits = (self._bits << s) & self._lanes | in_bits
            self._mask = (self._mask << s) & self._lanes | in_mask
            self._tags = (self._tags << t) & self._tags_full | in_tag
            self._valid_guard = (
                (self._valid_guard << s) & self._high | in_valid << self._w
            )
            self._valid_mask = (
                (self._valid_mask << 1) & self._valid_full | in_valid
            )
            return displaced
        masks = self._shift_masks.get(local_index)
        if masks is None:
            masks = (
                (1 << (local_index + 1) * s) - 1,
                (1 << local_index * s) - 1,
                (1 << (local_index + 1) * t) - 1,
                (1 << local_index * t) - 1,
                (1 << local_index + 1) - 1,
                (1 << local_index) - 1,
            )
            self._shift_masks[local_index] = masks
        region_s, below_s, region_t, below_t, region_v, below_v = masks
        self._bits = self._bits & ~region_s | (self._bits & below_s) << s | in_bits
        self._mask = self._mask & ~region_s | (self._mask & below_s) << s | in_mask
        self._tags = self._tags & ~region_t | (self._tags & below_t) << t | in_tag
        self._valid_guard = (
            self._valid_guard & ~region_s
            | (self._valid_guard & below_s) << s
            | in_valid << self._w
        )
        self._valid_mask = (
            self._valid_mask & ~region_v
            | (self._valid_mask & below_v) << 1
            | in_valid
        )
        return displaced
