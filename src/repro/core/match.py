"""Match bits, mask bits and the MPI envelope encoding.

MPI matches on the triple ``{context id, source rank, message tag}``.  A
posted receive must match the context exactly but may *wildcard* the source
(``MPI_ANY_SOURCE``) and/or the tag (``MPI_ANY_TAG``).  In the ALPU this is
expressed as ternary matching: every match bit has a mask bit, and masked
("don't care") positions never affect the comparison:

    match  <=>  ((stored ^ request) & ~mask) == 0      (and the cell is valid)

The paper's prototype uses a 42-bit match width, "adequate to support an
MPI implementation supporting the full specification on a 32K node
system", with a mask bit for every match bit (the worst case; also enough
for Portals).  The default :class:`MatchFormat` splits those 42 bits as
11-bit context + 15-bit source (32K ranks) + 16-bit tag.
"""

from __future__ import annotations

import dataclasses

#: wildcard sentinels, mirroring MPI_ANY_SOURCE / MPI_ANY_TAG
ANY_SOURCE: int = -1
ANY_TAG: int = -1


def matches(stored_bits: int, mask_bits: int, request_bits: int) -> bool:
    """Ternary compare: masked bits are don't-cares (mask bit 1 = ignore)."""
    return ((stored_bits ^ request_bits) & ~mask_bits) == 0


@dataclasses.dataclass(frozen=True)
class MatchFormat:
    """Bit-field layout of the match word.

    Fields are packed tag | source | context (context in the low bits).
    """

    context_bits: int = 11
    source_bits: int = 15
    tag_bits: int = 16

    # Derived geometry, precomputed once in __post_init__ (they were
    # properties, but pack/unpack sit on the firmware's per-message hot
    # path and re-deriving shifts/masks per call measurably slowed it).
    #: total match-word width in bits
    width: int = dataclasses.field(init=False, repr=False, compare=False)
    #: all-ones mask covering the whole match word
    full_mask: int = dataclasses.field(init=False, repr=False, compare=False)
    #: mask bits covering the source field (MPI_ANY_SOURCE)
    source_field_mask: int = dataclasses.field(
        init=False, repr=False, compare=False
    )
    #: mask bits covering the tag field (MPI_ANY_TAG)
    tag_field_mask: int = dataclasses.field(init=False, repr=False, compare=False)
    _source_shift: int = dataclasses.field(init=False, repr=False, compare=False)
    _tag_shift: int = dataclasses.field(init=False, repr=False, compare=False)
    _context_mask: int = dataclasses.field(init=False, repr=False, compare=False)
    _source_mask: int = dataclasses.field(init=False, repr=False, compare=False)
    _tag_mask: int = dataclasses.field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if min(self.context_bits, self.source_bits, self.tag_bits) <= 0:
            raise ValueError(f"all fields need at least one bit: {self}")
        set_attr = object.__setattr__  # frozen dataclass
        set_attr(self, "width", self.context_bits + self.source_bits + self.tag_bits)
        set_attr(self, "full_mask", (1 << self.width) - 1)
        set_attr(self, "_source_shift", self.context_bits)
        set_attr(self, "_tag_shift", self.context_bits + self.source_bits)
        set_attr(self, "_context_mask", (1 << self.context_bits) - 1)
        set_attr(self, "_source_mask", (1 << self.source_bits) - 1)
        set_attr(self, "_tag_mask", (1 << self.tag_bits) - 1)
        set_attr(self, "source_field_mask", self._source_mask << self._source_shift)
        set_attr(self, "tag_field_mask", self._tag_mask << self._tag_shift)

    # ------------------------------------------------------------- packing
    def pack(self, context: int, source: int, tag: int) -> int:
        """Pack an explicit (no-wildcard) triple into match bits."""
        self._check_field("context", context, self.context_bits)
        self._check_field("source", source, self.source_bits)
        self._check_field("tag", tag, self.tag_bits)
        return (
            context
            | (source << self._source_shift)
            | (tag << self._tag_shift)
        )

    def pack_receive(self, context: int, source: int, tag: int) -> tuple[int, int]:
        """Pack a posted receive, honouring wildcards.

        ``source=ANY_SOURCE`` / ``tag=ANY_TAG`` set the corresponding mask
        field (and zero the match field).  Returns ``(bits, mask)``.
        """
        mask = 0
        if source == ANY_SOURCE:
            mask |= self.source_field_mask
            source = 0
        if tag == ANY_TAG:
            mask |= self.tag_field_mask
            tag = 0
        return self.pack(context, source, tag), mask

    def unpack(self, bits: int) -> tuple[int, int, int]:
        """Inverse of :meth:`pack`; returns ``(context, source, tag)``."""
        return (
            bits & self._context_mask,
            (bits >> self._source_shift) & self._source_mask,
            (bits >> self._tag_shift) & self._tag_mask,
        )

    def _check_field(self, name: str, value: int, bits: int) -> None:
        if not 0 <= value < (1 << bits):
            raise ValueError(
                f"{name}={value} does not fit in {bits} bits "
                f"(valid range 0..{(1 << bits) - 1})"
            )


#: the paper's prototype format (42 match bits)
DEFAULT_FORMAT = MatchFormat()


@dataclasses.dataclass(frozen=True, slots=True)
class MatchEntry:
    """A list entry: what gets INSERTed into the ALPU.

    ``tag`` is the software-defined payload returned on MATCH SUCCESS; the
    recommended use (and ours) is a pointer to the corresponding queue
    entry in NIC local RAM (the paper uses a 20-bit pointer).
    """

    bits: int
    mask: int
    tag: int

    def matches_request(self, request: "MatchRequest") -> bool:
        """Ternary compare against a request (both masks honoured)."""
        mask = self.mask | request.mask
        return matches(self.bits, mask, request.bits)


@dataclasses.dataclass(frozen=True, slots=True)
class MatchRequest:
    """What gets presented to the ALPU's header input.

    For the posted-receive ALPU the request is an incoming message header:
    explicit bits, ``mask == 0``.  For the unexpected-message ALPU the
    request is a receive being posted: its wildcards travel *with the
    request* as input mask bits (the cells there store no masks).
    """

    bits: int
    mask: int = 0
