"""Curve analysis: slopes, knees, crossovers.

All functions take parallel sequences ``lengths`` (queue lengths) and
``latencies_ns`` and are deliberately simple -- least-squares lines and
piecewise scans, not smoothing, so a test failure points at the data.
"""

from __future__ import annotations

from typing import Optional, Sequence


def _check(lengths: Sequence[float], latencies_ns: Sequence[float]) -> None:
    if len(lengths) != len(latencies_ns):
        raise ValueError("lengths and latencies differ in size")
    if len(lengths) < 2:
        raise ValueError("need at least two points")


def per_entry_slope_ns(
    lengths: Sequence[float],
    latencies_ns: Sequence[float],
    *,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> float:
    """Least-squares latency slope (ns per queue entry) over [lo, hi]."""
    _check(lengths, latencies_ns)
    points = [
        (x, y)
        for x, y in zip(lengths, latencies_ns)
        if (lo is None or x >= lo) and (hi is None or x <= hi)
    ]
    if len(points) < 2:
        raise ValueError(f"fewer than two points in window [{lo}, {hi}]")
    n = len(points)
    sx = sum(x for x, _ in points)
    sy = sum(y for _, y in points)
    sxx = sum(x * x for x, _ in points)
    sxy = sum(x * y for x, y in points)
    denominator = n * sxx - sx * sx
    if denominator == 0:
        raise ValueError("degenerate x values")
    return (n * sxy - sx * sy) / denominator


def fixed_overhead_ns(
    lengths: Sequence[float], latencies_ns: Sequence[float]
) -> float:
    """Latency extrapolated to queue length 0 (the curve's intercept).

    Uses the first two points, which the sweeps place in the warm region.
    """
    _check(lengths, latencies_ns)
    (x0, y0), (x1, y1) = (lengths[0], latencies_ns[0]), (lengths[1], latencies_ns[1])
    if x1 == x0:
        raise ValueError("first two lengths are equal")
    slope = (y1 - y0) / (x1 - x0)
    return y0 - slope * x0


def detect_knee(
    lengths: Sequence[float],
    latencies_ns: Sequence[float],
    *,
    factor: float = 3.0,
) -> Optional[float]:
    """First length where the local per-entry cost jumps by ``factor``.

    The cache cliff shows up as a segment whose slope is several times
    the preceding segment's.  Returns the left edge of the jump segment,
    or None if the curve never jumps.
    """
    _check(lengths, latencies_ns)
    previous_slope: Optional[float] = None
    for i in range(1, len(lengths)):
        dx = lengths[i] - lengths[i - 1]
        if dx <= 0:
            raise ValueError("lengths must be strictly increasing")
        slope = (latencies_ns[i] - latencies_ns[i - 1]) / dx
        if (
            previous_slope is not None
            and previous_slope > 0
            and slope >= factor * previous_slope
        ):
            return lengths[i - 1]
        # only update the reference once the curve has begun to grow;
        # flat ALPU regions would otherwise make any growth look like a
        # knee
        if slope > 0.5:
            previous_slope = slope
    return None


def crossover_length(
    lengths_a: Sequence[float],
    latencies_a: Sequence[float],
    lengths_b: Sequence[float],
    latencies_b: Sequence[float],
) -> Optional[float]:
    """Where curve A first becomes more expensive than curve B.

    Both curves must be sampled at the same lengths.  Interpolates
    linearly inside the straddling segment.  Returns None if A never
    exceeds B.
    """
    if list(lengths_a) != list(lengths_b):
        raise ValueError("curves must share their sample points")
    _check(lengths_a, latencies_a)
    _check(lengths_b, latencies_b)
    difference = [a - b for a, b in zip(latencies_a, latencies_b)]
    for i, d in enumerate(difference):
        if d > 0:
            if i == 0:
                return float(lengths_a[0])
            x0, x1 = lengths_a[i - 1], lengths_a[i]
            d0, d1 = difference[i - 1], difference[i]
            return float(x0 + (x1 - x0) * (-d0) / (d1 - d0))
    return None
