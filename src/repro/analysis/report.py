"""The unified run report: one artifact, three renderings.

:meth:`repro.obs.telemetry.Telemetry.report` captures everything one run
observed -- metadata, metrics, the windowed timeline, health findings,
raw lifecycles, simulator self-profile -- as a single versioned JSON
document.  This module folds that artifact into human-facing renderings:

* **text** -- a terminal report: verdict and findings up top, per-series
  timeline sparklines, latency attribution (when lifecycles rode along),
  simulator hotspots;
* **json** -- the artifact enriched with the folded attribution, for
  downstream tooling;
* **html** -- a self-contained page (inline CSS/SVG, no external assets)
  suitable for a CI artifact.

Run as a CLI::

    python -m repro.analysis.report --input run.json --html run.html

renders a saved artifact; without ``--input`` it runs one benchmark
point with every collector on (like :mod:`repro.analysis.attribution`)
and reports on that.  Attribution folding happens here, at render time:
:mod:`repro.obs` stays import-free of :mod:`repro.analysis`.
"""

from __future__ import annotations

import argparse
import html as html_mod
import json
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.attribution import (
    AttributionError,
    attribute_run,
    format_report,
)
from repro.obs.health import SEVERITIES, verdict_of
from repro.obs.lifecycle import MessageLifecycle
from repro.obs.telemetry import REPORT_VERSION
from repro.obs.timeline import Timeline

#: sparkline glyphs, lowest to highest
_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"
#: sparkline width (windows are resampled down to this many buckets)
_SPARK_WIDTH = 48


class ReportError(ValueError):
    """A run-report artifact was malformed or unrenderable."""


# ------------------------------------------------------------ load / fold
def load_report(path: str) -> Dict[str, object]:
    """Load one run-report artifact, upgrading v1 shapes in place.

    v1 reports (``{"meta", "metrics"}``) predate the version field; they
    upgrade to the v2 shape with the newer sections empty so every
    renderer handles both.
    """
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or "metrics" not in document:
        raise ReportError(f"{path} is not a run-report artifact")
    version = document.get("version", 1)
    if version > REPORT_VERSION:
        raise ReportError(
            f"{path} is a v{version} report; this tool understands "
            f"up to v{REPORT_VERSION}"
        )
    document.setdefault("version", version)
    document.setdefault("meta", {})
    document.setdefault("timeline", None)
    document.setdefault("health", {"verdict": "healthy", "findings": []})
    document.setdefault("lifecycles", None)
    document.setdefault("profile", None)
    document.setdefault("fabric", None)
    return document


def fold(document: Dict[str, object]) -> Dict[str, object]:
    """The artifact plus the render-time attribution fold.

    Adds an ``attribution`` key: the :func:`~repro.analysis.attribution.
    attribute_run` report when complete lifecycles rode along, else
    ``None``.  Leaves the input untouched.
    """
    enriched = dict(document)
    enriched["attribution"] = None
    lifecycles_obj = document.get("lifecycles")
    if lifecycles_obj:
        lifecycles = [MessageLifecycle.from_obj(o) for o in lifecycles_obj]
        try:
            enriched["attribution"] = attribute_run(lifecycles)
        except AttributionError:
            pass  # no complete messages: the section just stays empty
    return enriched


# -------------------------------------------------------------- sparklines
def _resample(values: Sequence[float], width: int) -> List[float]:
    """Bucket-maximum resample down to at most ``width`` values."""
    if len(values) <= width:
        return list(values)
    out = []
    for bucket in range(width):
        lo = bucket * len(values) // width
        hi = max(lo + 1, (bucket + 1) * len(values) // width)
        out.append(max(values[lo:hi]))
    return out


def sparkline(values: Sequence[float], width: int = _SPARK_WIDTH) -> str:
    """A unicode block-glyph sparkline of a value sequence."""
    if not values:
        return ""
    values = _resample(values, width)
    low, high = min(values), max(values)
    if high == low:
        return _SPARK_GLYPHS[0] * len(values)
    scale = (len(_SPARK_GLYPHS) - 1) / (high - low)
    return "".join(
        _SPARK_GLYPHS[round((value - low) * scale)] for value in values
    )


def _series_rows(document: Dict[str, object]) -> List[Dict[str, object]]:
    """Per-series summary rows off the artifact's timeline section."""
    timeline_obj = document.get("timeline")
    if not timeline_obj:
        return []
    timeline = Timeline.from_obj(timeline_obj)
    rows = []
    for name in timeline.names():
        series = timeline.get(name)
        stat = series.default_stat
        values = [value for _, value in series.points(stat)]
        if not values:
            continue
        rows.append(
            {
                "name": name,
                "mode": series.mode,
                "stat": stat,
                "windows": len(series),
                "window_us": series.window_ps / 1e6,
                "span_us": series.span_ps() / 1e6,
                "min": min(values),
                "max": max(values),
                "last": values[-1],
                "values": values,
            }
        )
    return rows


# ---------------------------------------------------------- fabric render
def _node_coords(node: int, dims: Sequence[int]) -> Tuple[int, ...]:
    """Grid coordinates of ``node`` (dim 0 fastest, as in Topology)."""
    out = []
    for extent in dims:
        out.append(node % extent)
        node //= extent
    return tuple(out)


def node_heat(fabric: Dict[str, object]) -> Dict[int, float]:
    """Per-node heat: the hottest utilization of any incident channel.

    The quantity both heatmap renderings (text glyph grid, SVG node
    fill) color by, computed once here so they cannot disagree.
    """
    heat: Dict[int, float] = {
        node: 0.0 for node in range(fabric["topology"]["num_nodes"])
    }
    for link in fabric["links"]:
        for node in (link["src"], link["dst"]):
            if link["utilization"] > heat[node]:
                heat[node] = link["utilization"]
    return heat


def hottest_links(
    fabric: Dict[str, object], count: int = 8
) -> List[Dict[str, object]]:
    """The ``count`` busiest channels by utilization (ties: by name)."""
    return sorted(
        fabric["links"],
        key=lambda link: (-link["utilization"], link["name"]),
    )[:count]


def _heat_glyph(value: float, top: float) -> str:
    if top <= 0:
        return _SPARK_GLYPHS[0]
    scale = (len(_SPARK_GLYPHS) - 1) / top
    return _SPARK_GLYPHS[round(value * scale)]


def _heat_color(value: float, top: float) -> str:
    """Cold slate-blue to hot red, linear in ``value / top``."""
    fraction = 0.0 if top <= 0 else min(value / top, 1.0)
    red = round(74 + fraction * (197 - 74))
    green = round(85 + fraction * (48 - 85))
    blue = round(104 + fraction * (48 - 104))
    return f"#{red:02x}{green:02x}{blue:02x}"


def _fabric_text_lines(fabric: Dict[str, object]) -> List[str]:
    """The terminal fabric section: totals, hottest links, glyph grid."""
    topology = fabric["topology"]
    lines = [
        f"fabric: {topology['description']}",
        (
            f"  {fabric['packets_injected']} packets injected, "
            f"{fabric['packets_delivered']} delivered, "
            f"{fabric['hops_forwarded']} forwarded, "
            f"{fabric['wire_bytes']} wire bytes"
        ),
    ]
    if any(fabric["fault_totals"].values()):
        lines.append(
            "  faults: "
            + ", ".join(
                f"{kind} {count}"
                for kind, count in sorted(fabric["fault_totals"].items())
                if count
            )
        )
    links = fabric["links"]
    if not links:
        return lines
    top = hottest_links(fabric)
    hottest = top[0]
    if hottest["utilization"] > 0:
        lines.append(
            f"  hottest link: {hottest['name']} "
            f"(utilization {hottest['utilization']:.1%}, "
            f"wait {hottest['wait_ps']} ps, "
            f"peak queue {hottest['peak_queue']})"
        )
    name_width = max(len(link["name"]) for link in top)
    header = (
        f"  {'link':<{name_width}} {'util':>6} {'msgs':>6} "
        f"{'bytes':>9} {'wait ps':>10} {'peak q':>6} {'faults':>6}"
    )
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for link in top:
        faults = sum((link.get("faults") or {}).values())
        lines.append(
            f"  {link['name']:<{name_width}} {link['utilization']:>6.1%} "
            f"{link['messages']:>6} {link['bytes']:>9} "
            f"{link['wait_ps']:>10} {link['peak_queue']:>6} "
            f"{faults:>6}"
        )
    dims = topology.get("dims")
    if dims:
        heat = node_heat(fabric)
        peak = max(heat.values())
        extent_x = dims[0]
        extent_y = dims[1] if len(dims) > 1 else 1
        planes = 1
        for extent in dims[2:]:
            planes *= extent
        lines.append(
            f"  node heatmap (glyph = hottest incident link, "
            f"peak {peak:.1%}):"
        )
        for plane in range(planes):
            if planes > 1:
                lines.append(f"    z={plane}")
            for y in range(extent_y):
                row = []
                for x in range(extent_x):
                    node = x + extent_x * (y + extent_y * plane)
                    row.append(_heat_glyph(heat[node], peak))
                lines.append("    " + " ".join(row))
    return lines


_FABRIC_SVG_CELL = 72
_FABRIC_SVG_PAD = 40


def _fabric_svg(fabric: Dict[str, object]) -> str:
    """An inline-SVG topology heatmap (grid presets only).

    Planes of the (up to 3-D) grid render side by side; intra-plane
    channels draw as lines colored by utilization, nodes as circles
    filled by their hottest incident link; every element carries a
    ``<title>`` tooltip with the exact numbers, so the picture and the
    tables cannot disagree.
    """
    topology = fabric["topology"]
    dims = topology.get("dims")
    if not dims:
        return ""
    extent_x = dims[0]
    extent_y = dims[1] if len(dims) > 1 else 1
    planes = 1
    for extent in dims[2:]:
        planes *= extent
    cell, pad = _FABRIC_SVG_CELL, _FABRIC_SVG_PAD

    def position(node: int) -> Tuple[float, float]:
        coords = _node_coords(node, dims)
        x = coords[0]
        y = coords[1] if len(coords) > 1 else 0
        plane = 0
        stride = 1
        for c, extent in zip(coords[2:], dims[2:]):
            plane += c * stride
            stride *= extent
        return (
            pad + (x + plane * (extent_x + 1)) * cell,
            pad + y * cell,
        )

    width = pad * 2 + cell * (planes * (extent_x + 1) - 1)
    height = pad * 2 + cell * extent_y
    heat = node_heat(fabric)
    peak_util = max((link["utilization"] for link in fabric["links"]), default=0.0)
    parts = [
        f'<svg width="{width}" height="{height}" '
        'font-family="ui-monospace, monospace" font-size="11">'
    ]
    # channels first (under the nodes); wraparound and inter-plane links
    # would cross the picture, so only unit-distance intra-plane pairs
    # draw -- their numbers still appear in the per-link table
    for link in fabric["links"]:
        ax, ay = position(link["src"])
        bx, by = position(link["dst"])
        if abs(ax - bx) > cell or abs(ay - by) > cell or (ax, ay) == (bx, by):
            continue
        # offset the two directions of a pair so both stay visible
        dx, dy = (by - ay) / cell * 3, (bx - ax) / cell * 3
        color = _heat_color(link["utilization"], peak_util)
        stroke = 1.5 + (
            4.5 * link["utilization"] / peak_util if peak_util else 0.0
        )
        title = html_mod.escape(
            f"{link['name']}: utilization {link['utilization']:.1%}, "
            f"{link['messages']} msgs, {link['bytes']} bytes, "
            f"wait {link['wait_ps']} ps, peak queue {link['peak_queue']}"
        )
        parts.append(
            f'<line x1="{ax + dx:.0f}" y1="{ay + dy:.0f}" '
            f'x2="{bx + dx:.0f}" y2="{by + dy:.0f}" '
            f'stroke="{color}" stroke-width="{stroke:.1f}">'
            f"<title>{title}</title></line>"
        )
    peak_heat = max(heat.values(), default=0.0)
    for node in range(topology["num_nodes"]):
        x, y = position(node)
        color = _heat_color(heat[node], peak_heat)
        parts.append(
            f'<circle cx="{x:.0f}" cy="{y:.0f}" r="12" fill="{color}">'
            f"<title>node {node}: hottest incident link "
            f"{heat[node]:.1%}</title></circle>"
        )
        parts.append(
            f'<text x="{x:.0f}" y="{y + 4:.0f}" text-anchor="middle" '
            f'fill="#fff">{node}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _fabric_html_parts(fabric: Dict[str, object]) -> List[str]:
    """The HTML fabric section: totals, SVG heatmap, per-link table."""
    esc = html_mod.escape
    topology = fabric["topology"]
    parts = [
        "<h2>Fabric</h2>",
        f"<p>{esc(topology['description'])}: "
        f"{fabric['packets_injected']} packets injected, "
        f"{fabric['packets_delivered']} delivered, "
        f"{fabric['hops_forwarded']} forwarded, "
        f"{fabric['wire_bytes']} wire bytes.</p>",
    ]
    if any(fabric["fault_totals"].values()):
        parts.append(
            "<p>faults: "
            + ", ".join(
                f"{esc(kind)} {count}"
                for kind, count in sorted(fabric["fault_totals"].items())
                if count
            )
            + "</p>"
        )
    links = fabric["links"]
    if not links:
        return parts
    svg = _fabric_svg(fabric)
    if svg:
        parts.append(svg)
    top = hottest_links(fabric)
    if top[0]["utilization"] > 0:
        parts.append(
            f"<p>hottest link <span class='mono'>{esc(top[0]['name'])}"
            f"</span> at {top[0]['utilization']:.1%} utilization.</p>"
        )
    parts.append(
        "<table><thead><tr><th>link</th><th>util</th><th>msgs</th>"
        "<th>bytes</th><th>wait ps</th><th>peak queue</th><th>faults</th>"
        "</tr></thead><tbody>"
    )
    for link in top:
        faults = sum((link.get("faults") or {}).values())
        parts.append(
            f"<tr><td class='mono'>{esc(link['name'])}</td>"
            f"<td>{link['utilization']:.1%}</td>"
            f"<td>{link['messages']}</td><td>{link['bytes']}</td>"
            f"<td>{link['wait_ps']}</td><td>{link['peak_queue']}</td>"
            f"<td>{faults}</td></tr>"
        )
    parts.append("</tbody></table>")
    return parts


# ------------------------------------------------------------ text render
def queue_high_water(document: Dict[str, object]) -> List[Tuple[str, int]]:
    """Per-queue high-water marks from the metrics snapshot.

    Every NIC queue registers a ``<nic>.<queue>/max_depth`` collector;
    surfacing the marks answers the first capacity question a deep-queue
    run raises -- "how deep did the unexpected queue actually get?" --
    without digging through the raw JSON.
    """
    metrics = document.get("metrics") or {}
    marks = []
    for name, value in metrics.items():
        if name.endswith("/max_depth") and isinstance(value, (int, float)):
            marks.append((name[: -len("/max_depth")], int(value)))
    return sorted(marks)


def render_text(document: Dict[str, object]) -> str:
    """The terminal rendering of one (folded or raw) artifact."""
    document = (
        document if "attribution" in document else fold(document)
    )
    meta = document.get("meta") or {}
    health = document.get("health") or {"verdict": "healthy", "findings": []}
    findings = health.get("findings", [])
    lines: List[str] = []
    title = "run report"
    if meta:
        title += " -- " + ", ".join(f"{k}={v}" for k, v in sorted(meta.items()))
    lines.append(title)
    lines.append("=" * min(len(title), 78))
    verdict = health.get("verdict", verdict_of(findings))
    lines.append(f"health: {verdict} ({len(findings)} finding(s))")
    for finding in findings:
        lines.append(
            f"  [{finding['severity']:>8}] {finding['code']}: "
            f"{finding['message']}"
        )
    rows = _series_rows(document)
    if rows:
        lines.append("")
        lines.append(f"timeline ({len(rows)} series)")
        name_width = max(len(row["name"]) for row in rows)
        for row in rows:
            lines.append(
                f"  {row['name']:<{name_width}} "
                f"{sparkline(row['values']):<{_SPARK_WIDTH}} "
                f"{row['stat']}: min {row['min']:g} max {row['max']:g} "
                f"last {row['last']:g} "
                f"({row['windows']} x {row['window_us']:g} us)"
            )
    fabric = document.get("fabric")
    if fabric:
        lines.append("")
        lines.extend(_fabric_text_lines(fabric))
    attribution = document.get("attribution")
    if attribution:
        lines.append("")
        lines.append(format_report(attribution, title="latency attribution"))
    profile = document.get("profile")
    if profile:
        lines.append("")
        lines.append(
            f"simulator: {profile['events']} events in "
            f"{profile['handler_seconds']:g} s handler time "
            f"({profile['events_per_sec']:g} events/sec)"
        )
        for label, entry in profile.get("top_handlers", {}).items():
            lines.append(
                f"  {label:<40} {entry['events']:>8} events "
                f"{entry['seconds']:>10.6f} s"
            )
    marks = queue_high_water(document)
    if marks:
        lines.append("")
        lines.append(f"queue high-water marks ({len(marks)} queues)")
        name_width = max(len(name) for name, _ in marks)
        for name, value in marks:
            lines.append(f"  {name:<{name_width}} max depth {value}")
    metrics = document.get("metrics") or {}
    lines.append("")
    lines.append(f"metrics snapshot: {len(metrics)} entries (see JSON)")
    return "\n".join(lines)


# ------------------------------------------------------------ html render
_SEVERITY_COLORS = {"info": "#2b6cb0", "warning": "#b7791f", "critical": "#c53030"}
_VERDICT_COLORS = {"healthy": "#2f855a", **_SEVERITY_COLORS}

_HTML_STYLE = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2em auto; max-width: 70em;
       color: #1a202c; padding: 0 1em; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 2em; }
table { border-collapse: collapse; width: 100%; }
th, td { text-align: left; padding: .3em .6em; border-bottom: 1px solid #e2e8f0;
         font-variant-numeric: tabular-nums; }
th { background: #f7fafc; }
.verdict { display: inline-block; padding: .1em .6em; border-radius: 1em;
           color: #fff; font-weight: 600; }
.mono { font-family: ui-monospace, monospace; font-size: .95em; }
svg.spark { vertical-align: middle; }
"""


def _spark_svg(values: Sequence[float], width=160, height=28) -> str:
    """An inline-SVG sparkline polyline (self-contained, no scripts)."""
    values = _resample(values, _SPARK_WIDTH)
    if not values:
        return ""
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    step = width / max(len(values) - 1, 1)
    points = " ".join(
        f"{i * step:.1f},{height - 2 - (v - low) / span * (height - 4):.1f}"
        for i, v in enumerate(values)
    )
    return (
        f'<svg class="spark" width="{width}" height="{height}">'
        f'<polyline fill="none" stroke="#3182ce" stroke-width="1.5" '
        f'points="{points}"/></svg>'
    )


def render_html(document: Dict[str, object]) -> str:
    """A self-contained HTML page for one (folded or raw) artifact."""
    document = (
        document if "attribution" in document else fold(document)
    )
    esc = html_mod.escape
    meta = document.get("meta") or {}
    health = document.get("health") or {"verdict": "healthy", "findings": []}
    findings = health.get("findings", [])
    verdict = health.get("verdict", verdict_of(findings))
    color = _VERDICT_COLORS.get(verdict, "#4a5568")
    parts: List[str] = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        "<title>run report</title>",
        f"<style>{_HTML_STYLE}</style></head><body>",
        "<h1>Run report "
        f"<span class='verdict' style='background:{color}'>{esc(verdict)}"
        "</span></h1>",
    ]
    if meta:
        parts.append("<table><tbody>")
        for key in sorted(meta):
            parts.append(
                f"<tr><th>{esc(str(key))}</th>"
                f"<td class='mono'>{esc(str(meta[key]))}</td></tr>"
            )
        parts.append("</tbody></table>")

    parts.append(f"<h2>Health findings ({len(findings)})</h2>")
    if findings:
        parts.append(
            "<table><thead><tr><th>severity</th><th>code</th><th>series</th>"
            "<th>window</th><th>message</th></tr></thead><tbody>"
        )
        for finding in findings:
            sev = finding["severity"]
            sev_color = _SEVERITY_COLORS.get(sev, "#4a5568")
            window = (
                f"{finding['start_ps'] / 1e6:g}-{finding['end_ps'] / 1e6:g} us"
                if finding.get("end_ps")
                else "end of run"
            )
            parts.append(
                f"<tr><td style='color:{sev_color};font-weight:600'>"
                f"{esc(sev)}</td>"
                f"<td class='mono'>{esc(finding['code'])}</td>"
                f"<td class='mono'>{esc(finding['series'])}</td>"
                f"<td>{esc(window)}</td>"
                f"<td>{esc(finding['message'])}</td></tr>"
            )
        parts.append("</tbody></table>")
    else:
        parts.append("<p>No watchdog fired.</p>")

    rows = _series_rows(document)
    if rows:
        parts.append(f"<h2>Timeline ({len(rows)} series)</h2>")
        parts.append(
            "<table><thead><tr><th>series</th><th>trajectory</th>"
            "<th>stat</th><th>min</th><th>max</th><th>last</th>"
            "<th>windows</th></tr></thead><tbody>"
        )
        for row in rows:
            parts.append(
                f"<tr><td class='mono'>{esc(row['name'])}</td>"
                f"<td>{_spark_svg(row['values'])}</td>"
                f"<td>{esc(row['stat'])}</td>"
                f"<td>{row['min']:g}</td><td>{row['max']:g}</td>"
                f"<td>{row['last']:g}</td>"
                f"<td>{row['windows']} &times; {row['window_us']:g} us</td>"
                "</tr>"
            )
        parts.append("</tbody></table>")

    fabric = document.get("fabric")
    if fabric:
        parts.extend(_fabric_html_parts(fabric))

    attribution = document.get("attribution")
    if attribution:
        agg = attribution["aggregate"]
        parts.append("<h2>Latency attribution</h2>")
        parts.append(
            f"<p>{agg['count']} messages, end-to-end mean "
            f"{agg['end_to_end']['mean_ns']:.1f} ns / p90 "
            f"{agg['end_to_end']['p90_ns']:.1f} ns; dominant stage "
            f"<span class='mono'>{esc(agg['dominant_stage'])}</span>.</p>"
        )
        parts.append(
            "<table><thead><tr><th>stage</th><th>mean ns</th><th>p50 ns</th>"
            "<th>p90 ns</th><th>max ns</th><th>share</th></tr></thead><tbody>"
        )
        for stage, entry in agg["stages"].items():
            parts.append(
                f"<tr><td class='mono'>{esc(stage)}</td>"
                f"<td>{entry['mean_ns']:.1f}</td><td>{entry['p50_ns']:.1f}</td>"
                f"<td>{entry['p90_ns']:.1f}</td><td>{entry['max_ns']:.1f}</td>"
                f"<td>{entry['share']:.1%}</td></tr>"
            )
        parts.append("</tbody></table>")

    profile = document.get("profile")
    if profile:
        parts.append("<h2>Simulator self-profile</h2>")
        parts.append(
            f"<p>{profile['events']} events in "
            f"{profile['handler_seconds']:g} s of handler time "
            f"({profile['events_per_sec']:g} events/sec).</p>"
        )
        top = profile.get("top_handlers", {})
        if top:
            parts.append(
                "<table><thead><tr><th>handler</th><th>events</th>"
                "<th>seconds</th></tr></thead><tbody>"
            )
            for label, entry in top.items():
                parts.append(
                    f"<tr><td class='mono'>{esc(label)}</td>"
                    f"<td>{entry['events']}</td>"
                    f"<td>{entry['seconds']:.6f}</td></tr>"
                )
            parts.append("</tbody></table>")

    marks = queue_high_water(document)
    if marks:
        parts.append(f"<h2>Queue high-water marks ({len(marks)})</h2>")
        parts.append(
            "<table><thead><tr><th>queue</th><th>max depth</th>"
            "</tr></thead><tbody>"
        )
        for name, value in marks:
            parts.append(
                f"<tr><td class='mono'>{esc(name)}</td>"
                f"<td>{value}</td></tr>"
            )
        parts.append("</tbody></table>")

    metrics = document.get("metrics") or {}
    parts.append(
        f"<h2>Metrics</h2><p>{len(metrics)} snapshot entries "
        "(full values in the JSON artifact).</p>"
    )
    parts.append("</body></html>")
    return "\n".join(parts)


def render_json(document: Dict[str, object]) -> str:
    """The folded artifact as indented JSON."""
    document = (
        document if "attribution" in document else fold(document)
    )
    return json.dumps(document, indent=1, sort_keys=True)


def write_artifacts(
    document: Dict[str, object], directory, stem: str = "run_report"
) -> List[str]:
    """Write text/JSON/HTML renderings into ``directory``; returns paths."""
    import os

    os.makedirs(directory, exist_ok=True)
    folded = fold(document) if "attribution" not in document else document
    written = []
    for suffix, renderer in (
        (".txt", render_text),
        (".json", render_json),
        (".html", render_html),
    ):
        path = os.path.join(directory, stem + suffix)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(renderer(folded))
            handle.write("\n")
        written.append(path)
    return written


# --------------------------------------------------------------- the CLI
def _run_benchmark(args) -> Dict[str, object]:
    """One benchmark point with every collector on; returns the report."""
    from repro.nic.nic import NicConfig
    from repro.obs.telemetry import Telemetry
    from repro.workloads.preposted import PrepostedParams, run_preposted
    from repro.workloads.unexpected import UnexpectedParams, run_unexpected

    if args.backend == "alpu":
        nic = NicConfig.with_alpu(total_cells=args.alpu_cells)
    elif args.backend == "list":
        nic = NicConfig.baseline()
    else:
        nic = NicConfig.with_backend(args.backend)
    telemetry = Telemetry(
        tracing=False, lifecycle=True, timeline=True, health=True, profile=True
    )
    meta: Dict[str, object] = {
        "benchmark": args.benchmark,
        "backend": args.backend,
        "queue_length": args.queue_length,
        "iterations": args.iterations,
    }
    if args.benchmark == "preposted":
        result = run_preposted(
            nic,
            PrepostedParams(
                queue_length=args.queue_length,
                iterations=args.iterations,
                warmup=args.warmup,
            ),
            telemetry=telemetry,
        )
    else:
        result = run_unexpected(
            nic,
            UnexpectedParams(
                queue_length=args.queue_length,
                iterations=args.iterations,
                warmup=args.warmup,
            ),
            telemetry=telemetry,
        )
    meta["mean_latency_ns"] = round(result.mean_ns, 3)
    return telemetry.report(**meta)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.report",
        description="Render a unified run report (text/JSON/HTML)",
    )
    parser.add_argument(
        "--input",
        metavar="PATH",
        help="a saved Telemetry.report() JSON artifact; omit to run one "
        "benchmark point with all collectors on",
    )
    parser.add_argument(
        "--benchmark",
        choices=("preposted", "unexpected"),
        default="preposted",
    )
    parser.add_argument("--backend", default="list")
    parser.add_argument("--queue-length", type=int, default=50)
    parser.add_argument("--iterations", type=int, default=8)
    parser.add_argument("--warmup", type=int, default=2)
    parser.add_argument(
        "--alpu-cells", type=int, default=256, help="ALPU size for --backend alpu"
    )
    parser.add_argument(
        "--json", action="store_true", help="print JSON instead of text"
    )
    parser.add_argument(
        "--html", metavar="PATH", help="also write the HTML rendering"
    )
    parser.add_argument(
        "--out", metavar="PATH", help="also write the JSON artifact"
    )
    args = parser.parse_args(argv)

    if args.input:
        document = load_report(args.input)
    else:
        document = _run_benchmark(args)
    folded = fold(document)
    if args.html:
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(render_html(folded))
            handle.write("\n")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(render_json(folded))
            handle.write("\n")
    print(render_json(folded) if args.json else render_text(folded))
    return 0


if __name__ == "__main__":
    sys.exit(main())
