"""Analysis helpers: slope fits, knee detection, crossovers, tables.

The paper summarizes its curves with a handful of derived quantities --
nanoseconds per traversed entry (warm and cold), where the cache knee
sits, the ALPU's fixed overhead, and the queue length at which the ALPU
breaks even.  These helpers compute the same quantities from sweep rows
so EXPERIMENTS.md and the benchmark harness can report paper-vs-measured
side by side.

:mod:`repro.analysis.attribution` goes one level deeper: it folds the
flight-recorder lifecycles (:mod:`repro.obs.lifecycle`) into per-message
stage-residency budgets that sum exactly to each message's end-to-end
latency, aggregates percentile breakdowns, and finds the dominant stage
and software/ALPU search crossover.  It is also a CLI
(``python -m repro.analysis.attribution``).

:mod:`repro.analysis.report` folds one run's whole telemetry artifact
(metrics, timeline, health findings, lifecycles, self-profile) into
text/JSON/HTML renderings -- the unified run report
(``python -m repro.analysis.report``).
"""

from repro.analysis.curves import (
    per_entry_slope_ns,
    detect_knee,
    crossover_length,
    fixed_overhead_ns,
)
from repro.analysis.tables import format_rows, format_curve
from repro.analysis.telemetry import (
    healthy_rows,
    histogram_stats,
    load_report,
    mean_sampled_depth,
    metric_across_rows,
    metric_value,
    row_findings,
    row_verdict,
    rows_with_finding,
    unhealthy_rows,
)

# attribution's and report's names resolve lazily so `python -m
# repro.analysis.<mod>` does not re-import the module runpy is about to
# execute
_ATTRIBUTION_NAMES = frozenset(
    {
        "aggregate",
        "attribute_run",
        "budget_rows",
        "crossover_queue_length",
        "dominant_stage",
        "end_to_end_ps",
        "format_report",
        "stage_budget",
        "stage_series",
    }
)

_REPORT_NAMES = frozenset(
    {"fold", "render_html", "render_json", "render_text", "sparkline"}
)


def __getattr__(name):
    if name in _ATTRIBUTION_NAMES:
        from repro.analysis import attribution

        return getattr(attribution, name)
    if name in _REPORT_NAMES:
        from repro.analysis import report

        return getattr(report, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "aggregate",
    "attribute_run",
    "budget_rows",
    "crossover_queue_length",
    "dominant_stage",
    "end_to_end_ps",
    "format_report",
    "stage_budget",
    "stage_series",
    "per_entry_slope_ns",
    "detect_knee",
    "crossover_length",
    "fixed_overhead_ns",
    "format_rows",
    "format_curve",
    "histogram_stats",
    "load_report",
    "mean_sampled_depth",
    "metric_across_rows",
    "metric_value",
    "healthy_rows",
    "unhealthy_rows",
    "row_findings",
    "row_verdict",
    "rows_with_finding",
    "fold",
    "render_html",
    "render_json",
    "render_text",
    "sparkline",
]
