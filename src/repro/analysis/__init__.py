"""Analysis helpers: slope fits, knee detection, crossovers, tables.

The paper summarizes its curves with a handful of derived quantities --
nanoseconds per traversed entry (warm and cold), where the cache knee
sits, the ALPU's fixed overhead, and the queue length at which the ALPU
breaks even.  These helpers compute the same quantities from sweep rows
so EXPERIMENTS.md and the benchmark harness can report paper-vs-measured
side by side.
"""

from repro.analysis.curves import (
    per_entry_slope_ns,
    detect_knee,
    crossover_length,
    fixed_overhead_ns,
)
from repro.analysis.tables import format_rows, format_curve
from repro.analysis.telemetry import (
    histogram_stats,
    load_report,
    mean_sampled_depth,
    metric_across_rows,
    metric_value,
)

__all__ = [
    "per_entry_slope_ns",
    "detect_knee",
    "crossover_length",
    "fixed_overhead_ns",
    "format_rows",
    "format_curve",
    "histogram_stats",
    "load_report",
    "mean_sampled_depth",
    "metric_across_rows",
    "metric_value",
]
