"""Load and query the telemetry reports the sweep runner writes.

:func:`repro.workloads.runner.dump_telemetry` serializes sweep rows plus
their per-run metrics snapshots; these helpers read that JSON back and
pull out the quantities the analysis layer cares about -- a named metric
across the sweep, or the mean of a sampled histogram (queue depth, ALPU
occupancy) per row.

Snapshot value shapes (see :meth:`repro.obs.MetricsRegistry.snapshot`):
counters flatten to a number; gauges to ``{"value", "high_water"}``;
histograms to ``{"count", "sum", "min", "max", "mean", "buckets"}``.

Dumps are versioned: v1 predates the ``version`` field and carries no
health data, v2 rows also hold ``health`` (``{"verdict", "findings"}``)
from the watchdog battery.  :func:`load_report` upgrades v1 in place so
the health helpers (:func:`row_verdict`, :func:`healthy_rows`,
:func:`rows_with_finding`) work on either vintage.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.health import has_finding

#: the newest dump schema this loader understands
MAX_DUMP_VERSION = 2


def load_report(path: str) -> Dict[str, object]:
    """Read a report written by :func:`repro.workloads.runner.dump_telemetry`.

    Accepts v1 (no ``version`` key, no health) and v2 dumps; anything
    newer is refused rather than misread.
    """
    with open(path, "r", encoding="utf-8") as fh:
        report = json.load(fh)
    if not isinstance(report, dict) or "rows" not in report:
        raise ValueError(f"{path} is not a telemetry report (no 'rows' key)")
    version = report.setdefault("version", 1)
    if version > MAX_DUMP_VERSION:
        raise ValueError(
            f"{path} is a v{version} telemetry dump; this loader "
            f"understands up to v{MAX_DUMP_VERSION}"
        )
    return report


# ----------------------------------------------------------------- health
def row_verdict(row: Dict[str, object]) -> str:
    """The watchdog verdict of one row (``"healthy"`` when none rode)."""
    health = row.get("health")
    if not health:
        return "healthy"
    return health.get("verdict", "healthy")


def row_findings(row: Dict[str, object]) -> List[Dict[str, object]]:
    """The finding dicts of one row ([] when none rode)."""
    health = row.get("health")
    if not health:
        return []
    return list(health.get("findings", []))


def healthy_rows(rows: List[Dict[str, object]]) -> List[Dict[str, object]]:
    """Rows whose watchdogs stayed silent."""
    return [row for row in rows if row_verdict(row) == "healthy"]


def unhealthy_rows(rows: List[Dict[str, object]]) -> List[Dict[str, object]]:
    """Rows with at least one finding, in row order."""
    return [row for row in rows if row_verdict(row) != "healthy"]


def rows_with_finding(
    rows: List[Dict[str, object]], code: str
) -> List[Dict[str, object]]:
    """Rows carrying a finding with ``code`` (e.g. ``retransmit_storm``)."""
    return [row for row in rows if has_finding(row_findings(row), code)]


def metric_value(snapshot: Optional[Dict[str, object]], name: str):
    """One metric from a snapshot; None when absent or telemetry was off.

    Counters and collectors come back as plain numbers, gauges as their
    current value, histograms as their mean.
    """
    if not snapshot:
        return None
    entry = snapshot.get(name)
    if isinstance(entry, dict):
        if "mean" in entry:
            return entry["mean"]
        return entry.get("value")
    return entry


def metric_across_rows(rows: List[Dict[str, object]], name: str) -> List[object]:
    """The same metric from every row's snapshot, in row order."""
    return [metric_value(row.get("metrics"), name) for row in rows]


def histogram_stats(
    snapshot: Optional[Dict[str, object]], name: str
) -> Optional[Dict[str, object]]:
    """The full histogram entry for ``name``, or None if not a histogram."""
    if not snapshot:
        return None
    entry = snapshot.get(name)
    if isinstance(entry, dict) and "buckets" in entry:
        return entry
    return None


def mean_sampled_depth(
    snapshot: Optional[Dict[str, object]], queue_name: str
) -> Optional[float]:
    """Mean sampled depth of a NIC queue, e.g. ``"nic1.postedRecvQ"``."""
    stats = histogram_stats(snapshot, f"{queue_name}/depth_samples")
    if stats is None or not stats["count"]:
        return None
    return stats["mean"]
