"""Load and query the telemetry reports the sweep runner writes.

:func:`repro.workloads.runner.dump_telemetry` serializes sweep rows plus
their per-run metrics snapshots; these helpers read that JSON back and
pull out the quantities the analysis layer cares about -- a named metric
across the sweep, or the mean of a sampled histogram (queue depth, ALPU
occupancy) per row.

Snapshot value shapes (see :meth:`repro.obs.MetricsRegistry.snapshot`):
counters flatten to a number; gauges to ``{"value", "high_water"}``;
histograms to ``{"count", "sum", "min", "max", "mean", "buckets"}``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional


def load_report(path: str) -> Dict[str, object]:
    """Read a report written by :func:`repro.workloads.runner.dump_telemetry`."""
    with open(path, "r", encoding="utf-8") as fh:
        report = json.load(fh)
    if not isinstance(report, dict) or "rows" not in report:
        raise ValueError(f"{path} is not a telemetry report (no 'rows' key)")
    return report


def metric_value(snapshot: Optional[Dict[str, object]], name: str):
    """One metric from a snapshot; None when absent or telemetry was off.

    Counters and collectors come back as plain numbers, gauges as their
    current value, histograms as their mean.
    """
    if not snapshot:
        return None
    entry = snapshot.get(name)
    if isinstance(entry, dict):
        if "mean" in entry:
            return entry["mean"]
        return entry.get("value")
    return entry


def metric_across_rows(rows: List[Dict[str, object]], name: str) -> List[object]:
    """The same metric from every row's snapshot, in row order."""
    return [metric_value(row.get("metrics"), name) for row in rows]


def histogram_stats(
    snapshot: Optional[Dict[str, object]], name: str
) -> Optional[Dict[str, object]]:
    """The full histogram entry for ``name``, or None if not a histogram."""
    if not snapshot:
        return None
    entry = snapshot.get(name)
    if isinstance(entry, dict) and "buckets" in entry:
        return entry
    return None


def mean_sampled_depth(
    snapshot: Optional[Dict[str, object]], queue_name: str
) -> Optional[float]:
    """Mean sampled depth of a NIC queue, e.g. ``"nic1.postedRecvQ"``."""
    stats = histogram_stats(snapshot, f"{queue_name}/depth_samples")
    if stats is None or not stats["count"]:
        return None
    return stats["mean"]
