"""Per-link and per-route fabric tables for any run or sweep row.

The terminal view of the fabric-observability layer: given a fabric
snapshot (see :meth:`repro.network.fabric.Fabric.snapshot`) this module
prints the per-link traffic/contention/fault table, the per-route
traffic matrix, and -- when per-hop lifecycle marks rode along -- the
per-link attribution budget (:func:`repro.analysis.attribution.
link_budgets`): how many picoseconds every channel cost in contention
wait, serialization, and transit.

Run as a CLI::

    python -m repro.analysis.fabric --input run_report.json
    python -m repro.analysis.fabric --input sweep_dump.json --row 3
    python -m repro.analysis.fabric --ranks 16 --topology torus3d \
        --hotspot 0

The first form reads a saved :meth:`Telemetry.report` artifact, the
second one row of a sweep telemetry dump (``fabric=True`` sweeps), and
the third runs one halo-exchange point live with the full observability
stack on (``--hotspot`` injects the incast-contention scenario).
``--json`` emits the machine-readable document instead of tables.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence

from repro.analysis.attribution import link_budgets
from repro.analysis.report import hottest_links, node_heat  # noqa: F401
from repro.obs.lifecycle import MessageLifecycle


class FabricAnalysisError(ValueError):
    """The input carried no fabric snapshot to analyze."""


# -------------------------------------------------------------- rendering
def format_links(fabric: Dict[str, object]) -> str:
    """Fixed-width per-link table, hottest channels first."""
    links = sorted(
        fabric["links"],
        key=lambda link: (-link["utilization"], link["name"]),
    )
    if not links:
        return "no inter-node channels (single-node fabric)"
    name_width = max(len(link["name"]) for link in links)
    header = (
        f"{'link':<{name_width}} {'util':>6} {'msgs':>6} {'bytes':>10} "
        f"{'busy ps':>12} {'wait ps':>12} {'peak q':>6} {'faults':>6}"
    )
    lines = [header, "-" * len(header)]
    for link in links:
        faults = sum((link.get("faults") or {}).values())
        lines.append(
            f"{link['name']:<{name_width}} {link['utilization']:>6.1%} "
            f"{link['messages']:>6} {link['bytes']:>10} "
            f"{link['busy_ps']:>12} {link['wait_ps']:>12} "
            f"{link['peak_queue']:>6} {faults:>6}"
        )
    return "\n".join(lines)


def format_routes(fabric: Dict[str, object], limit: int = 24) -> str:
    """Per-pair traffic matrix, busiest routes first."""
    pairs = sorted(
        fabric["pairs"],
        key=lambda pair: (-pair["packets"], pair["src"], pair["dst"]),
    )
    if not pairs:
        return "no traffic"
    shown = pairs[:limit]
    header = f"{'route':<12} {'packets':>8} {'hops':>5}  path"
    lines = [header, "-" * len(header)]
    for pair in shown:
        path = " -> ".join(
            str(node) for node in [pair["src"]] + list(pair["route"])
        )
        lines.append(
            f"{pair['src']:>4} -> {pair['dst']:<4} {pair['packets']:>8} "
            f"{pair['hops']:>5}  {path}"
        )
    if len(pairs) > limit:
        lines.append(f"... {len(pairs) - limit} more pairs")
    return "\n".join(lines)


def format_budgets(budgets: Dict[str, Dict[str, int]]) -> str:
    """Per-link attribution table off the per-hop lifecycle marks."""
    if not budgets:
        return "no per-hop marks recorded (fabric observability off?)"
    name_width = max(len(name) for name in budgets)
    header = (
        f"{'link':<{name_width}} {'pkts':>6} {'bytes':>10} "
        f"{'wait ps':>12} {'serialize ps':>13} {'transit ps':>12} "
        f"{'delay ps':>10}"
    )
    lines = [header, "-" * len(header)]
    for name in sorted(
        budgets, key=lambda n: -budgets[n]["wait_ps"]
    ):
        entry = budgets[name]
        lines.append(
            f"{name:<{name_width}} {entry['packets']:>6} "
            f"{entry['bytes']:>10} {entry['wait_ps']:>12} "
            f"{entry['serialize_ps']:>13} {entry['transit_ps']:>12} "
            f"{entry['fault_delay_ps']:>10}"
        )
    totals = {
        key: sum(entry[key] for entry in budgets.values())
        for key in ("packets", "bytes", "wait_ps", "serialize_ps",
                    "transit_ps", "fault_delay_ps")
    }
    lines.append("-" * len(header))
    lines.append(
        f"{'total':<{name_width}} {totals['packets']:>6} "
        f"{totals['bytes']:>10} {totals['wait_ps']:>12} "
        f"{totals['serialize_ps']:>13} {totals['transit_ps']:>12} "
        f"{totals['fault_delay_ps']:>10}"
    )
    return "\n".join(lines)


def format_fabric(
    fabric: Dict[str, object],
    *,
    budgets: Optional[Dict[str, Dict[str, int]]] = None,
    title: Optional[str] = None,
) -> str:
    """The full terminal rendering: summary, links, routes, budgets."""
    topology = fabric["topology"]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(topology["description"])
    lines.append(
        f"{fabric['packets_injected']} packets injected, "
        f"{fabric['packets_delivered']} delivered, "
        f"{fabric['hops_forwarded']} forwarded, "
        f"{fabric['wire_bytes']} wire bytes, "
        f"{fabric['in_flight']} in flight"
    )
    if any(fabric["fault_totals"].values()):
        lines.append(
            "faults: "
            + ", ".join(
                f"{kind} {count}"
                for kind, count in sorted(fabric["fault_totals"].items())
                if count
            )
        )
    lines.append("")
    lines.append("per-link traffic")
    lines.append(format_links(fabric))
    lines.append("")
    lines.append("per-route traffic")
    lines.append(format_routes(fabric))
    if budgets is not None:
        lines.append("")
        lines.append("per-link attribution (from per-hop lifecycle marks)")
        lines.append(format_budgets(budgets))
    return "\n".join(lines)


# ------------------------------------------------------------------ inputs
def _from_document(document: Dict[str, object], row: Optional[int]):
    """``(fabric, lifecycles)`` out of a report artifact or sweep dump."""
    if "rows" in document:
        rows = document["rows"]
        index = 0 if row is None else row
        if not 0 <= index < len(rows):
            raise FabricAnalysisError(
                f"--row {index} out of range ({len(rows)} rows in dump)"
            )
        fabric = rows[index].get("fabric")
        if fabric is None:
            raise FabricAnalysisError(
                f"row {index} carries no fabric snapshot "
                "(re-run the sweep with fabric=True)"
            )
        return fabric, []
    fabric = document.get("fabric")
    if fabric is None:
        raise FabricAnalysisError(
            "the artifact carries no fabric section "
            "(re-run with Telemetry(fabric=True))"
        )
    lifecycles_obj = document.get("lifecycles") or []
    return fabric, [MessageLifecycle.from_obj(o) for o in lifecycles_obj]


def _run_live(args):
    """One halo point with the full observability stack; returns
    ``(fabric, lifecycles, telemetry)``."""
    from repro.obs.telemetry import Telemetry
    from repro.workloads.halo import HaloParams, run_halo
    from repro.workloads.sweep import nic_preset

    telemetry = Telemetry(
        tracing=False,
        lifecycle=True,
        timeline=True,
        health=True,
        fabric=True,
    )
    params = HaloParams(
        ranks=args.ranks,
        topology=args.topology,
        message_size=args.message_size,
        iterations=args.iterations,
        warmup=args.warmup,
        hotspot_rank=args.hotspot,
        hotspot_size=args.hotspot_size,
    )
    run_halo(nic_preset(args.preset), params, telemetry=telemetry)
    return telemetry.fabric_snapshot(), telemetry.lifecycle.lifecycles, telemetry


# --------------------------------------------------------------- the CLI
def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.fabric",
        description="Per-link / per-route fabric tables for a run or sweep row",
    )
    parser.add_argument(
        "--input",
        metavar="PATH",
        help="a Telemetry.report() artifact or a sweep telemetry dump; "
        "omit to run one halo point live",
    )
    parser.add_argument(
        "--row",
        type=int,
        default=None,
        help="row index when --input is a sweep dump (default 0)",
    )
    parser.add_argument("--ranks", type=int, default=16)
    parser.add_argument("--topology", default="torus3d")
    parser.add_argument("--preset", default="alpu128")
    parser.add_argument("--message-size", type=int, default=512)
    parser.add_argument("--iterations", type=int, default=3)
    parser.add_argument("--warmup", type=int, default=1)
    parser.add_argument(
        "--hotspot",
        type=int,
        default=None,
        metavar="RANK",
        help="inject incast contention toward this rank (live runs)",
    )
    parser.add_argument("--hotspot-size", type=int, default=4096)
    parser.add_argument(
        "--json", action="store_true", help="emit JSON instead of tables"
    )
    parser.add_argument(
        "--html",
        metavar="PATH",
        help="also write the full HTML run report (live runs only)",
    )
    args = parser.parse_args(argv)

    telemetry = None
    if args.input:
        with open(args.input, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        try:
            fabric, lifecycles = _from_document(document, args.row)
        except FabricAnalysisError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        title = f"fabric of {args.input}" + (
            f" row {args.row}" if args.row is not None else ""
        )
    else:
        fabric, lifecycles, telemetry = _run_live(args)
        title = (
            f"fabric of halo {args.preset}, {args.ranks} ranks, "
            f"{args.topology}"
            + (f", hotspot rank {args.hotspot}" if args.hotspot is not None
               else "")
        )
    budgets = link_budgets(lifecycles) if lifecycles else None
    if args.html:
        if telemetry is None:
            print("error: --html needs a live run (no --input)", file=sys.stderr)
            return 2
        from repro.analysis.report import render_html

        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(render_html(telemetry.report()))
            handle.write("\n")
    if args.json:
        print(
            json.dumps(
                {"fabric": fabric, "link_budgets": budgets},
                indent=1,
                sort_keys=True,
            )
        )
    else:
        print(format_fabric(fabric, budgets=budgets, title=title))
    return 0


if __name__ == "__main__":
    sys.exit(main())
