"""Plain-text table formatting for benchmark output.

The benchmark harness prints paper-style rows; these helpers keep the
formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_rows(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    min_width: int = 8,
) -> str:
    """Fixed-width table with a header rule."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [max(min_width, len(h)) for h in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in materialized)
    return "\n".join(lines)


def format_curve(
    label: str,
    lengths: Sequence[float],
    latencies_ns: Sequence[float],
) -> str:
    """One labelled (length -> latency) series, paper-figure style."""
    pairs = "  ".join(
        f"{int(x)}:{y:,.0f}" for x, y in zip(lengths, latencies_ns)
    )
    return f"{label:>10}  {pairs}"
