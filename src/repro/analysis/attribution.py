"""End-to-end latency attribution from per-message lifecycles.

Folds the flight-recorder output (:mod:`repro.obs.lifecycle`) into
per-message **stage-residency budgets** and aggregates them into the
percentile breakdowns the paper's argument needs: which stage dominates
a configuration's latency, and where the software search term crosses
over as the queue grows.

The fold is the telescoping invariant: residency of stage ``i`` is
``marks[i+1].time_ps - marks[i].time_ps``, repeated stage names (the
rendezvous round trips) summing, so every budget adds up *exactly* to the
message's end-to-end latency -- asserted here, not merely hoped.

Run as a CLI::

    python -m repro.analysis.attribution --benchmark preposted \
        --backend list --queue-length 50 --iterations 8

runs one benchmark point with the recorder on and prints the budget
table (``--json`` for machine-readable output, ``--chrome trace.json``
for a per-message Perfetto track file, ``--dump lifecycles.json`` to
save the raw lifecycles; ``--input lifecycles.json`` analyzes a prior
dump instead of running the simulator).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.lifecycle import (
    MessageLifecycle,
    TERMINAL_STAGE,
    lifecycle_chrome_events,
)
from repro.sim.units import ps_to_ns

#: rendering order for known stages (unknown ones append in first-seen
#: order); roughly the journey order of an eager message
STAGE_ORDER: Tuple[str, ...] = (
    "api_post",
    "host_issue",
    "nic_post",
    "tx_dma",
    "rndv_cts",
    "rndv_data_dma",
    "wire",
    "hop_fault_delay",
    "hop_wait",
    "hop_serialize",
    "hop_transit",
    "wire_drop",
    "retransmit",
    "admission_refused",
    "backend_degraded",
    "rx_queue",
    "nic_rx",
    "match_search",
    "unexpected_queue",
    "unexpected_search",
    "posted_wait",
    "matched",
    "deliver",
    "rx_dma",
    "completion",
)


#: the per-hop decomposition stages fabric observability adds inside a
#: ``wire`` segment (see repro.network.fabric); with observability on
#: the ``wire`` mark's own residency collapses to zero and these carry
#: the decomposed budget
HOP_STAGES: Tuple[str, ...] = (
    "hop_fault_delay",
    "hop_wait",
    "hop_serialize",
    "hop_transit",
)


class AttributionError(ValueError):
    """A lifecycle violated the invariants attribution relies on."""


# ----------------------------------------------------------- per message
def end_to_end_ps(lifecycle: MessageLifecycle) -> int:
    """Terminal time minus first-mark time of a complete lifecycle."""
    if not lifecycle.complete:
        raise AttributionError(
            f"lifecycle mid={lifecycle.mid} is incomplete "
            f"(last stage {lifecycle.marks[-1].stage if lifecycle.marks else None!r})"
        )
    return lifecycle.end_ps - lifecycle.start_ps


def stage_budget(lifecycle: MessageLifecycle) -> Dict[str, int]:
    """Fold one complete lifecycle into ``{stage: residency_ps}``.

    Residency of stage ``i`` runs until mark ``i+1``; repeated stage
    names sum.  The budget's total equals :func:`end_to_end_ps` by
    construction -- asserted anyway so a broken recorder cannot produce
    a quietly wrong decomposition.
    """
    if not lifecycle.complete:
        raise AttributionError(
            f"lifecycle mid={lifecycle.mid} is incomplete"
        )
    budget: Dict[str, int] = {}
    marks = lifecycle.marks
    previous = marks[0]
    for mark in marks[1:]:
        if mark.time_ps < previous.time_ps:
            raise AttributionError(
                f"lifecycle mid={lifecycle.mid} is non-monotone at "
                f"{mark.stage} ({mark.time_ps} < {previous.time_ps})"
            )
        budget[previous.stage] = (
            budget.get(previous.stage, 0) + mark.time_ps - previous.time_ps
        )
        previous = mark
    total = sum(budget.values())
    span = end_to_end_ps(lifecycle)
    if total != span:  # pragma: no cover - telescoping identity
        raise AttributionError(
            f"budget of mid={lifecycle.mid} sums to {total} ps, "
            f"span is {span} ps"
        )
    return budget


def select(
    lifecycles: Iterable[MessageLifecycle],
    *,
    kind: Optional[str] = "send",
    label: Optional[str] = None,
    timed_only: bool = False,
) -> List[MessageLifecycle]:
    """Filter lifecycles by kind / workload label / the ``timed`` flag."""
    picked = []
    for lifecycle in lifecycles:
        if kind is not None and lifecycle.kind != kind:
            continue
        if label is not None and lifecycle.label != label:
            continue
        if timed_only and not lifecycle.meta.get("timed"):
            continue
        picked.append(lifecycle)
    return picked


def budget_rows(
    lifecycles: Sequence[MessageLifecycle],
) -> List[Dict[str, object]]:
    """Per-message budget records (the ``messages`` part of a report)."""
    rows = []
    for lifecycle in lifecycles:
        budget = stage_budget(lifecycle)
        rows.append(
            {
                "mid": lifecycle.mid,
                "label": lifecycle.label,
                "meta": dict(lifecycle.meta),
                "stages_ps": budget,
                "end_to_end_ps": end_to_end_ps(lifecycle),
                "end_to_end_ns": ps_to_ns(end_to_end_ps(lifecycle)),
            }
        )
    return rows


# ---------------------------------------------------------- fabric hops
def wire_segments(lifecycle: MessageLifecycle) -> List[Dict[str, object]]:
    """Per wire traversal: the segment span and its per-hop budget.

    A *segment* runs from a ``wire`` mark to the first following mark
    that is neither ``wire`` nor a hop stage.  Each segment reports

    - ``span_ps``: wall time of the whole traversal (injection to exit),
    - ``wire_ps``: the ``wire`` mark's own residency (zero with fabric
      observability on -- the hops carry the budget),
    - ``hops_ps``: summed residency of all hop marks inside the segment,
    - ``hops``: per-hop-mark rows ``{stage, link, residency_ps}``.

    The telescoping decomposition invariant is ``wire_ps + hops_ps ==
    span_ps`` for every segment -- residencies are consecutive mark
    deltas, so it holds by construction; asserted anyway (and property-
    tested) so a reordered recorder cannot decompose quietly wrong.
    """
    if not lifecycle.complete:
        raise AttributionError(
            f"lifecycle mid={lifecycle.mid} is incomplete"
        )
    marks = lifecycle.marks
    hop_stages = set(HOP_STAGES)
    segments: List[Dict[str, object]] = []
    i = 0
    while i < len(marks) - 1:
        if marks[i].stage != "wire":
            i += 1
            continue
        start = marks[i].time_ps
        wire_ps = marks[i + 1].time_ps - start
        hops: List[Dict[str, object]] = []
        hops_ps = 0
        j = i + 1
        while j < len(marks) - 1 and marks[j].stage in hop_stages:
            residency = marks[j + 1].time_ps - marks[j].time_ps
            detail = marks[j].detail or {}
            hops.append(
                {
                    "stage": marks[j].stage,
                    "link": detail.get("link"),
                    "residency_ps": residency,
                }
            )
            hops_ps += residency
            j += 1
        span_ps = marks[j].time_ps - start
        if wire_ps + hops_ps != span_ps:  # pragma: no cover - telescoping
            raise AttributionError(
                f"wire segment of mid={lifecycle.mid} decomposes to "
                f"{wire_ps} + {hops_ps} ps, span is {span_ps} ps"
            )
        segments.append(
            {
                "start_ps": start,
                "end_ps": marks[j].time_ps,
                "span_ps": span_ps,
                "wire_ps": wire_ps,
                "hops_ps": hops_ps,
                "hops": hops,
            }
        )
        i = j
    return segments


def link_budgets(
    lifecycles: Iterable[MessageLifecycle],
) -> Dict[str, Dict[str, int]]:
    """Fold hop marks into ``{link name: per-link budget}``.

    Each budget carries ``packets`` (hop traversals, counted at the
    serialize mark), ``bytes``, and the summed ``wait_ps`` /
    ``serialize_ps`` / ``transit_ps`` / ``fault_delay_ps`` residencies
    -- the congestion-attribution table the fabric CLI and the heatmap
    caption print.  Residencies come from mark deltas, so the table's
    grand total telescopes into the runs' end-to-end budgets.
    """
    field = {
        "hop_wait": "wait_ps",
        "hop_serialize": "serialize_ps",
        "hop_transit": "transit_ps",
        "hop_fault_delay": "fault_delay_ps",
    }
    budgets: Dict[str, Dict[str, int]] = {}
    for lifecycle in lifecycles:
        marks = lifecycle.marks
        for index, mark in enumerate(marks[:-1]):
            key = field.get(mark.stage)
            if key is None:
                continue
            detail = mark.detail or {}
            link = detail.get("link")
            if link is None:
                continue
            entry = budgets.get(link)
            if entry is None:
                entry = budgets[link] = {
                    "packets": 0,
                    "bytes": 0,
                    "wait_ps": 0,
                    "serialize_ps": 0,
                    "transit_ps": 0,
                    "fault_delay_ps": 0,
                }
            entry[key] += marks[index + 1].time_ps - mark.time_ps
            if mark.stage == "hop_serialize":
                entry["packets"] += 1
                entry["bytes"] += detail.get("bytes", 0)
    return budgets


# ------------------------------------------------------------- aggregate
def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of an ascending sequence."""
    if not sorted_values:
        raise AttributionError("percentile of an empty sequence")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return (
        sorted_values[low] * (1.0 - fraction) + sorted_values[high] * fraction
    )


def _stats_ns(values_ps: Sequence[int]) -> Dict[str, float]:
    ordered = sorted(values_ps)
    return {
        "mean_ns": ps_to_ns(statistics.fmean(ordered)),
        "p50_ns": ps_to_ns(_percentile(ordered, 0.50)),
        "p90_ns": ps_to_ns(_percentile(ordered, 0.90)),
        "max_ns": ps_to_ns(ordered[-1]),
    }


def aggregate(lifecycles: Sequence[MessageLifecycle]) -> Dict[str, object]:
    """Percentile breakdown per stage over a set of complete lifecycles.

    Returns ``{"count", "stages", "end_to_end", "dominant_stage"}``;
    ``stages`` maps stage name to mean/p50/p90/max residency in ns plus
    its mean ``share`` of end-to-end latency.  A stage absent from some
    message counts as zero there, so shares sum to 1 across stages.
    """
    if not lifecycles:
        raise AttributionError("no lifecycles to aggregate")
    budgets = [stage_budget(lifecycle) for lifecycle in lifecycles]
    spans = [end_to_end_ps(lifecycle) for lifecycle in lifecycles]
    stages: List[str] = []
    for budget in budgets:
        for stage in budget:
            if stage not in stages:
                stages.append(stage)
    ordered = [s for s in STAGE_ORDER if s in stages]
    ordered += [s for s in stages if s not in ordered]
    total_span = sum(spans)
    report_stages: Dict[str, Dict[str, float]] = {}
    for stage in ordered:
        values = [budget.get(stage, 0) for budget in budgets]
        entry = _stats_ns(values)
        entry["share"] = (sum(values) / total_span) if total_span else 0.0
        report_stages[stage] = entry
    dominant = max(
        report_stages, key=lambda stage: report_stages[stage]["mean_ns"]
    )
    return {
        "count": len(lifecycles),
        "stages": report_stages,
        "end_to_end": _stats_ns(spans),
        "dominant_stage": dominant,
    }


def dominant_stage(lifecycles: Sequence[MessageLifecycle]) -> str:
    """The stage with the largest mean residency."""
    return aggregate(lifecycles)["dominant_stage"]


def attribute_run(
    lifecycles: Iterable[MessageLifecycle],
    *,
    label: Optional[str] = "ping",
    timed_only: bool = True,
) -> Dict[str, object]:
    """The full report for one run: per-message rows + the aggregate.

    This is what sweep rows carry when lifecycle recording is on, and
    what the CLI renders.
    """
    picked = select(lifecycles, label=label, timed_only=timed_only)
    if not picked:
        # benchmarks that label nothing still get the message journeys
        picked = [
            lifecycle
            for lifecycle in select(lifecycles, label=None, timed_only=False)
            if lifecycle.complete
        ]
    return {
        "messages": budget_rows(picked),
        "aggregate": aggregate(picked),
    }


# ------------------------------------------------------------- crossover
def stage_series(
    points: Sequence[Tuple[int, Dict[str, object]]], stage: str
) -> List[Tuple[int, float]]:
    """``(queue_length, mean stage residency ns)`` from aggregate reports."""
    series = []
    for queue_length, report in points:
        stages = report["stages"]
        mean = stages[stage]["mean_ns"] if stage in stages else 0.0
        series.append((queue_length, mean))
    return series


def crossover_queue_length(
    software: Sequence[Tuple[int, float]],
    accelerated: Sequence[Tuple[int, float]],
) -> Optional[int]:
    """First queue length where the software residency exceeds the
    accelerated one -- the attribution-level version of the paper's
    break-even point.  Both series must share their queue-length axis;
    returns None when the software curve never crosses above.
    """
    accelerated_at = dict(accelerated)
    for queue_length, value in sorted(software):
        other = accelerated_at.get(queue_length)
        if other is not None and value > other:
            return queue_length
    return None


# -------------------------------------------------------------- rendering
def format_report(
    report: Dict[str, object], *, title: Optional[str] = None
) -> str:
    """Fixed-width text table of an :func:`attribute_run` report."""
    lines: List[str] = []
    if title:
        lines.append(title)
    agg = report["aggregate"]
    lines.append(
        f"{agg['count']} messages, end-to-end "
        f"mean {agg['end_to_end']['mean_ns']:.1f} ns / "
        f"p90 {agg['end_to_end']['p90_ns']:.1f} ns "
        f"(dominant stage: {agg['dominant_stage']})"
    )
    header = (
        f"{'stage':<18} {'mean ns':>9} {'p50 ns':>9} "
        f"{'p90 ns':>9} {'max ns':>9} {'share':>7}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for stage, entry in agg["stages"].items():
        lines.append(
            f"{stage:<18} {entry['mean_ns']:>9.1f} {entry['p50_ns']:>9.1f} "
            f"{entry['p90_ns']:>9.1f} {entry['max_ns']:>9.1f} "
            f"{entry['share']:>6.1%}"
        )
    lines.append("-" * len(header))
    lines.append(
        f"{'total':<18} {agg['end_to_end']['mean_ns']:>9.1f}"
        "  (stages sum exactly to end-to-end, per message)"
    )
    return "\n".join(lines)


# --------------------------------------------------------------- the CLI
def _load_lifecycles(path: str) -> List[MessageLifecycle]:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return [MessageLifecycle.from_obj(obj) for obj in payload["lifecycles"]]


def _run_benchmark(args) -> "object":
    """Run one benchmark point with the recorder on; returns Telemetry."""
    # workloads import repro.analysis consumers; keep the dependency lazy
    from repro.nic.nic import NicConfig
    from repro.obs.telemetry import Telemetry
    from repro.workloads.preposted import PrepostedParams, run_preposted
    from repro.workloads.unexpected import UnexpectedParams, run_unexpected

    if args.backend == "alpu":
        nic = NicConfig.with_alpu(total_cells=args.alpu_cells)
    elif args.backend == "list":
        nic = NicConfig.baseline()
    else:
        nic = NicConfig.with_backend(args.backend)
    telemetry = Telemetry(tracing=False, lifecycle=True)
    if args.benchmark == "preposted":
        run_preposted(
            nic,
            PrepostedParams(
                queue_length=args.queue_length,
                traverse_fraction=args.fraction,
                message_size=args.size,
                iterations=args.iterations,
                warmup=args.warmup,
            ),
            telemetry=telemetry,
        )
    else:
        run_unexpected(
            nic,
            UnexpectedParams(
                queue_length=args.queue_length,
                message_size=args.size,
                iterations=args.iterations,
                warmup=args.warmup,
            ),
            telemetry=telemetry,
        )
    return telemetry


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.attribution",
        description="Per-message latency attribution for one benchmark point",
    )
    parser.add_argument(
        "--benchmark",
        choices=("preposted", "unexpected"),
        default="preposted",
        help="which Section V-A benchmark to run (default preposted)",
    )
    parser.add_argument(
        "--backend",
        default="list",
        help="matching backend: list, hash, alpu, or any registered name",
    )
    parser.add_argument("--queue-length", type=int, default=50)
    parser.add_argument(
        "--fraction",
        type=float,
        default=1.0,
        help="preposted traverse fraction (ignored for unexpected)",
    )
    parser.add_argument("--size", type=int, default=0, help="message bytes")
    parser.add_argument("--iterations", type=int, default=8)
    parser.add_argument("--warmup", type=int, default=2)
    parser.add_argument(
        "--alpu-cells", type=int, default=256, help="ALPU size for --backend alpu"
    )
    parser.add_argument(
        "--input",
        metavar="PATH",
        help="analyze a lifecycle JSON dump instead of running the simulator",
    )
    parser.add_argument(
        "--all-messages",
        action="store_true",
        help="include warmup/control messages, not just timed pings",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    parser.add_argument(
        "--dump", metavar="PATH", help="also write the raw lifecycles as JSON"
    )
    parser.add_argument(
        "--chrome",
        metavar="PATH",
        help="also write a per-message-track Chrome trace",
    )
    args = parser.parse_args(argv)

    if args.input:
        lifecycles = _load_lifecycles(args.input)
        title = f"attribution of {args.input}"
    else:
        telemetry = _run_benchmark(args)
        lifecycles = telemetry.lifecycles()
        title = (
            f"{args.benchmark} / {args.backend} backend, "
            f"queue_length={args.queue_length}"
        )
    if args.dump:
        with open(args.dump, "w", encoding="utf-8") as handle:
            json.dump(
                {"lifecycles": [lc.to_obj() for lc in lifecycles]},
                handle,
                indent=1,
            )
    if args.chrome:
        with open(args.chrome, "w", encoding="utf-8") as handle:
            json.dump(
                {"traceEvents": lifecycle_chrome_events(lifecycles)}, handle
            )
    if args.all_messages:
        report = attribute_run(lifecycles, label=None, timed_only=False)
    else:
        report = attribute_run(lifecycles)
    if args.json:
        print(json.dumps(report, indent=1))
    else:
        print(format_report(report, title=title))
    return 0


if __name__ == "__main__":
    sys.exit(main())
