"""A Portals-style matching interface on the ALPU (Section VIII).

The paper's future work: "Another area of research will focus on how to
offload significant portions of the Portals interface to enable support
of MPI, run-time software, and I/O."  Portals 3.0 [17, 22, 23] is the
protocol-building-block layer under the Red Storm MPI; its match list
entries carry *64-bit match bits with per-bit ignore bits* -- exactly the
full-width ternary matching the ALPU's cells were sized for ("The set of
match bits can range from a pair of bits ... to a full width mask as is
needed by the Portals interface").

:class:`~repro.portals.table.PortalTable` implements the match-list
subset that MPI and friends sit on: ordered match entries with ignore
bits, use-once vs persistent entries, and first-match-wins traversal --
with interchangeable software (linear list) and ALPU backends that tests
hold differentially equal.
"""

from repro.portals.table import (
    MatchListEntry,
    PortalTable,
    PortalsMatcher,
    PORTALS_MATCH_WIDTH,
    PORTALS_MATCHERS,
)

__all__ = [
    "MatchListEntry",
    "PortalTable",
    "PortalsMatcher",
    "PORTALS_MATCH_WIDTH",
    "PORTALS_MATCHERS",
]
