"""Portals-style match lists, software and ALPU-backed.

The subset modelled here is the matching core of Portals 3.0's match
list:

* each **match list entry** (ME) carries 64 match bits and 64 *ignore*
  bits (1 = don't care), plus a user pointer (here: any Python object);
* an incoming operation carries 64 match bits; it matches the *first*
  entry in list order whose non-ignored bits agree;
* entries are ``use_once`` (unlinked by a match -- MPI receives) or
  ``persistent`` (stay linked -- e.g. an unexpected-message overflow ME
  or an I/O doorbell).

The matchers sit behind the same swappable-engine seam the NIC firmware
uses (:mod:`repro.nic.backends`): a :class:`PortalsMatcher` protocol --
the untimed, ME-flavoured sibling of
:class:`~repro.nic.backends.MatchBackend` -- and a
:class:`~repro.nic.backends.registry.Registry` instance resolving
backend names, so new Portals offload designs register alongside the
two stock ones:

* ``"software"`` -- linear list traversal;
* ``"alpu"`` -- a 64-bit-wide posted-receive-flavour ALPU mirrors the
  list (ignore bits are the mask bits); the software copy remains
  authoritative, as Section IV-B prescribes.  The one wrinkle the
  hardware does not do natively is persistent entries: the ALPU always
  deletes on match, and a plain tail re-insert would break Portals
  ordering if an equal-priority duplicate existed, so the matcher
  rebuilds the whole mirror in list order after a persistent hit.  (In
  a real design this is the kind of policy the paper leaves to "the
  processor [which] should maintain a copy of each list".)
"""

from __future__ import annotations

import abc
import dataclasses
import itertools
from typing import Any, Dict, List, Optional

from repro.core.alpu import Alpu, AlpuConfig
from repro.core.cell import CellKind
from repro.core.commands import (
    Insert,
    MatchSuccess,
    Reset,
    StartInsert,
    StopInsert,
)
from repro.core.match import MatchRequest
from repro.nic.backends.registry import Registry
from repro.obs.lifecycle import NULL_LIFECYCLE, TERMINAL_STAGE

#: Portals match/ignore width
PORTALS_MATCH_WIDTH = 64

_me_ids = itertools.count(1)


@dataclasses.dataclass
class MatchListEntry:
    """One Portals ME."""

    match_bits: int
    ignore_bits: int = 0
    use_once: bool = True
    user_ptr: Any = None
    me_id: int = dataclasses.field(default_factory=lambda: next(_me_ids))

    def __post_init__(self) -> None:
        limit = 1 << PORTALS_MATCH_WIDTH
        if not 0 <= self.match_bits < limit or not 0 <= self.ignore_bits < limit:
            raise ValueError("match/ignore bits exceed the 64-bit Portals width")

    def accepts(self, bits: int) -> bool:
        """Ternary compare: ignored bits are don't-cares."""
        return ((self.match_bits ^ bits) & ~self.ignore_bits) == 0


class PortalsMatcher(abc.ABC):
    """The pluggable matching engine behind one :class:`PortalTable`.

    The untimed Portals flavour of the NIC's
    :class:`~repro.nic.backends.MatchBackend` protocol: ``append`` /
    ``unlink`` index mutations, ``deliver`` the match path.  The table's
    ``_entries`` list stays the authoritative copy; matchers mirror it.
    """

    name: str = "?"

    def __init__(self, table: "PortalTable", *, alpu_cells: int = 128) -> None:
        self.table = table

    @abc.abstractmethod
    def append(self, entry: MatchListEntry) -> None:
        """Link an ME at the tail of the match list."""

    def unlink(self, entry: MatchListEntry) -> None:
        """Explicitly unlink an ME (PtlMEUnlink)."""
        self.table._entries.remove(entry)

    @abc.abstractmethod
    def deliver(self, match_bits: int) -> Optional[MatchListEntry]:
        """An incoming operation traverses the list; returns the ME hit."""


class SoftwarePortalsMatcher(PortalsMatcher):
    """Linear traversal of the authoritative list."""

    name = "software"

    def append(self, entry: MatchListEntry) -> None:
        self.table._entries.append(entry)

    def deliver(self, match_bits: int) -> Optional[MatchListEntry]:
        for entry in self.table._entries:
            if entry.accepts(match_bits):
                if entry.use_once:
                    self.table._entries.remove(entry)
                return entry
        return None


class AlpuPortalsMatcher(PortalsMatcher):
    """A full-width ALPU mirror of the match list."""

    name = "alpu"

    def __init__(self, table: "PortalTable", *, alpu_cells: int = 128) -> None:
        super().__init__(table, alpu_cells=alpu_cells)
        self._alpu = Alpu(
            AlpuConfig(
                kind=CellKind.POSTED_RECEIVE,
                total_cells=alpu_cells,
                block_size=16,
                match_width=PORTALS_MATCH_WIDTH,
                tag_width=16,
            )
        )
        self._tags: Dict[int, MatchListEntry] = {}

    def append(self, entry: MatchListEntry) -> None:
        if len(self.table._entries) >= self._alpu.capacity:
            raise RuntimeError(
                "ALPU-backed portal table is full; a real implementation "
                "would overflow to a software suffix (see repro.nic.driver)"
            )
        self.table._entries.append(entry)
        self._hw_insert([entry])

    def unlink(self, entry: MatchListEntry) -> None:
        super().unlink(entry)
        self._hw_rebuild()

    def deliver(self, match_bits: int) -> Optional[MatchListEntry]:
        responses = self._alpu.present_header(MatchRequest(bits=match_bits))
        assert len(responses) == 1
        response = responses[0]
        if not isinstance(response, MatchSuccess):
            return None
        matched = self._tag_entry(response.tag)
        if matched.use_once:
            # the hardware already deleted the cell; retire the software
            # copy and the tag
            self.table._entries.remove(matched)
            del self._tags[response.tag]
        else:
            # persistent ME: the ALPU's delete-on-match removed it, and a
            # plain tail re-insert would put it *behind* younger entries.
            # Rebuild the mirror in list order (the software copy is
            # authoritative, Section IV-B).
            self._hw_rebuild()
        return matched

    # ----------------------------------------------------------- ALPU mirror
    def _hw_insert(self, entries: List[MatchListEntry]) -> None:
        self._alpu.submit(StartInsert())
        for entry in entries:
            tag = entry.me_id % (1 << 16)
            self._tags[tag] = entry
            self._alpu.submit(
                Insert(
                    match_bits=entry.match_bits,
                    mask_bits=entry.ignore_bits,
                    tag=tag,
                )
            )
        self._alpu.submit(StopInsert())

    def _hw_rebuild(self) -> None:
        """Re-mirror the whole list (unlink / persistent-match repair)."""
        self._alpu.submit(Reset())
        self._tags.clear()
        self._hw_insert(self.table._entries)

    def _tag_entry(self, tag: int) -> MatchListEntry:
        entry = self._tags.get(tag)
        if entry is None:  # pragma: no cover - mirror desync would be a bug
            raise KeyError(f"ALPU returned unknown tag {tag}")
        return entry


#: registry of Portals matcher backends (same machinery as the NIC's)
PORTALS_MATCHERS: Registry = Registry("portals matcher backend")
PORTALS_MATCHERS.register("software", SoftwarePortalsMatcher)
PORTALS_MATCHERS.register("alpu", AlpuPortalsMatcher)


class PortalTable:
    """An ordered Portals match list.

    Parameters
    ----------
    backend:
        Any name registered in :data:`PORTALS_MATCHERS` -- stock values
        are ``"software"`` (linear list) and ``"alpu"``.
    lifecycle:
        An optional :class:`~repro.obs.lifecycle.LifecycleRecorder`.
        The table is untimed, so each ME's lifecycle ticks on a local
        operation counter instead of simulated time: ``me_linked`` at
        append, ``matched`` on persistent hits, and the terminal stage
        when the ME leaves the list (use-once match or explicit unlink,
        with the outcome in the terminal mark's detail).
    """

    def __init__(
        self,
        backend: str = "software",
        *,
        alpu_cells: int = 128,
        lifecycle=None,
    ) -> None:
        matcher_cls = PORTALS_MATCHERS.get(backend)
        self.backend = backend
        self.lifecycle = lifecycle if lifecycle is not None else NULL_LIFECYCLE
        self._ops = 0
        self._entries: List[MatchListEntry] = []
        self._matcher: PortalsMatcher = matcher_cls(self, alpu_cells=alpu_cells)

    # ------------------------------------------------------------- list ops
    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[MatchListEntry]:
        """Copy of the list, first-match-priority order."""
        return list(self._entries)

    def append(self, entry: MatchListEntry) -> None:
        """Link an ME at the tail of the match list."""
        self._ops += 1
        if self.lifecycle.enabled:
            self.lifecycle.begin(
                "me",
                0,
                entry.me_id,
                time_ps=self._ops,
                detail={"use_once": entry.use_once, "depth": len(self._entries)},
                stage="me_linked",
            )
        self._matcher.append(entry)

    def unlink(self, entry: MatchListEntry) -> None:
        """Explicitly unlink an ME (PtlMEUnlink)."""
        self._ops += 1
        self._matcher.unlink(entry)
        if self.lifecycle.enabled:
            self.lifecycle.mark_request(
                0,
                entry.me_id,
                TERMINAL_STAGE,
                time_ps=self._ops,
                detail={"outcome": "unlinked"},
            )

    # ------------------------------------------------------------- matching
    def deliver(self, match_bits: int) -> Optional[MatchListEntry]:
        """An incoming operation traverses the list; returns the ME hit.

        ``use_once`` winners are unlinked; persistent winners stay, in
        place.
        """
        self._ops += 1
        entry = self._matcher.deliver(match_bits)
        if entry is not None and self.lifecycle.enabled:
            if entry.use_once:
                self.lifecycle.mark_request(
                    0,
                    entry.me_id,
                    TERMINAL_STAGE,
                    time_ps=self._ops,
                    detail={"outcome": "matched"},
                )
            else:
                self.lifecycle.mark_request(
                    0, entry.me_id, "matched", time_ps=self._ops
                )
        return entry
