"""Portals-style match lists, software and ALPU-backed.

The subset modelled here is the matching core of Portals 3.0's match
list:

* each **match list entry** (ME) carries 64 match bits and 64 *ignore*
  bits (1 = don't care), plus a user pointer (here: any Python object);
* an incoming operation carries 64 match bits; it matches the *first*
  entry in list order whose non-ignored bits agree;
* entries are ``use_once`` (unlinked by a match -- MPI receives) or
  ``persistent`` (stay linked -- e.g. an unexpected-message overflow ME
  or an I/O doorbell).

The ALPU backend maps MEs straight onto cells (ignore bits are the mask
bits) and handles the one wrinkle the hardware does not do natively:
persistent entries.  The ALPU always deletes on match, so the backend
re-inserts a matched persistent entry -- *at the tail*, which would break
Portals ordering if an equal-priority duplicate existed; it therefore
re-inserts the whole ALPU-resident suffix after it, preserving list
order exactly.  (In a real design this is the kind of policy the paper
leaves to "the processor [which] should maintain a copy of each list".)
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, List, Optional

from repro.core.alpu import Alpu, AlpuConfig
from repro.core.cell import CellKind
from repro.core.commands import (
    Insert,
    MatchSuccess,
    Reset,
    StartInsert,
    StopInsert,
)
from repro.core.match import MatchRequest

#: Portals match/ignore width
PORTALS_MATCH_WIDTH = 64

_me_ids = itertools.count(1)


@dataclasses.dataclass
class MatchListEntry:
    """One Portals ME."""

    match_bits: int
    ignore_bits: int = 0
    use_once: bool = True
    user_ptr: Any = None
    me_id: int = dataclasses.field(default_factory=lambda: next(_me_ids))

    def __post_init__(self) -> None:
        limit = 1 << PORTALS_MATCH_WIDTH
        if not 0 <= self.match_bits < limit or not 0 <= self.ignore_bits < limit:
            raise ValueError("match/ignore bits exceed the 64-bit Portals width")

    def accepts(self, bits: int) -> bool:
        """Ternary compare: ignored bits are don't-cares."""
        return ((self.match_bits ^ bits) & ~self.ignore_bits) == 0


class PortalTable:
    """An ordered Portals match list.

    Parameters
    ----------
    backend:
        ``"software"`` (linear list) or ``"alpu"`` (a 64-bit-wide
        posted-receive-flavour ALPU mirrors the list; the software copy
        remains authoritative, as Section IV-B prescribes).
    """

    def __init__(self, backend: str = "software", *, alpu_cells: int = 128) -> None:
        if backend not in ("software", "alpu"):
            raise ValueError(f"unknown backend {backend!r}")
        self.backend = backend
        self._entries: List[MatchListEntry] = []
        self._alpu: Optional[Alpu] = None
        self._tags: dict[int, MatchListEntry] = {}
        if backend == "alpu":
            self._alpu = Alpu(
                AlpuConfig(
                    kind=CellKind.POSTED_RECEIVE,
                    total_cells=alpu_cells,
                    block_size=16,
                    match_width=PORTALS_MATCH_WIDTH,
                    tag_width=16,
                )
            )

    # ------------------------------------------------------------- list ops
    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[MatchListEntry]:
        """Copy of the list, first-match-priority order."""
        return list(self._entries)

    def append(self, entry: MatchListEntry) -> None:
        """Link an ME at the tail of the match list."""
        if self._alpu is not None and len(self._entries) >= self._alpu.capacity:
            raise RuntimeError(
                "ALPU-backed portal table is full; a real implementation "
                "would overflow to a software suffix (see repro.nic.driver)"
            )
        self._entries.append(entry)
        if self._alpu is not None:
            self._hw_insert([entry])

    def unlink(self, entry: MatchListEntry) -> None:
        """Explicitly unlink an ME (PtlMEUnlink)."""
        self._entries.remove(entry)
        if self._alpu is not None:
            self._hw_rebuild()

    # ------------------------------------------------------------- matching
    def deliver(self, match_bits: int) -> Optional[MatchListEntry]:
        """An incoming operation traverses the list; returns the ME hit.

        ``use_once`` winners are unlinked; persistent winners stay, in
        place.
        """
        if self._alpu is None:
            return self._deliver_software(match_bits)
        return self._deliver_alpu(match_bits)

    def _deliver_software(self, match_bits: int) -> Optional[MatchListEntry]:
        for entry in self._entries:
            if entry.accepts(match_bits):
                if entry.use_once:
                    self._entries.remove(entry)
                return entry
        return None

    def _deliver_alpu(self, match_bits: int) -> Optional[MatchListEntry]:
        responses = self._alpu.present_header(MatchRequest(bits=match_bits))
        assert len(responses) == 1
        response = responses[0]
        if not isinstance(response, MatchSuccess):
            return None
        matched = self._tag_entry(response.tag)
        if matched.use_once:
            # the hardware already deleted the cell; retire the software
            # copy and the tag
            self._entries.remove(matched)
            del self._tags[response.tag]
        else:
            # persistent ME: the ALPU's delete-on-match removed it, and a
            # plain tail re-insert would put it *behind* younger entries.
            # Rebuild the mirror in list order (the software copy is
            # authoritative, Section IV-B).
            self._hw_rebuild()
        return matched

    # ----------------------------------------------------------- ALPU mirror
    def _hw_insert(self, entries: List[MatchListEntry]) -> None:
        self._alpu.submit(StartInsert())
        for entry in entries:
            tag = entry.me_id % (1 << 16)
            self._tags[tag] = entry
            self._alpu.submit(
                Insert(
                    match_bits=entry.match_bits,
                    mask_bits=entry.ignore_bits,
                    tag=tag,
                )
            )
        self._alpu.submit(StopInsert())

    def _hw_rebuild(self) -> None:
        """Re-mirror the whole list (unlink / persistent-match repair)."""
        self._alpu.submit(Reset())
        self._tags.clear()
        self._hw_insert(self._entries)

    def _tag_entry(self, tag: int) -> MatchListEntry:
        entry = self._tags.get(tag)
        if entry is None:  # pragma: no cover - mirror desync would be a bug
            raise KeyError(f"ALPU returned unknown tag {tag}")
        return entry
