"""MPI requests: the handles returned by Isend/Irecv.

A request completes when the NIC's completion (carrying the request id)
arrives back at the host.  ``MPI_Wait`` blocks the host program until
then.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional


class RequestKind(enum.Enum):
    """Which direction a request moves data."""

    SEND = "send"
    RECV = "recv"


@dataclasses.dataclass(frozen=True, slots=True)
class MpiStatus:
    """The MPI_Status of a completed receive.

    Wildcard receives learn the actual source and tag of the message they
    matched from here; ``count`` is the received payload length in bytes.
    """

    source: int
    tag: int
    count: int


@dataclasses.dataclass(slots=True)
class MpiRequest:
    """One outstanding nonblocking operation."""

    req_id: int
    kind: RequestKind
    rank: int
    peer: int
    tag: int
    context: int
    size: int
    done: bool = False
    #: simulated time (ps) the request was posted / completed
    posted_at: int = 0
    completed_at: int = 0
    #: matched-message envelope (receives only; None until completion)
    status: Optional[MpiStatus] = None

    @property
    def latency_ps(self) -> int:
        """Post-to-completion time; valid once ``done``."""
        if not self.done:
            raise RuntimeError(f"request {self.req_id} still in flight")
        return self.completed_at - self.posted_at
