"""MPI_* calls as host-side operations (the Fig. 4 subset).

Each method is a generator driven inside the host program's simulation
process.  A call charges host-CPU cycles, pushes a command across the
host->NIC link, and (for the blocking forms) waits for the completion to
come back.  "The main processor is only required to dispatch message
requests to the NIC and wait for request completion" (Section V-C).

Wildcards: ``source=ANY_SOURCE`` and/or ``tag=ANY_TAG`` on receives are
passed through to the NIC, which packs them into ALPU mask bits.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from repro.core.match import ANY_SOURCE, ANY_TAG
from repro.mpi.communicator import COLLECTIVE_CONTEXT, Communicator
from repro.mpi.request import MpiRequest, MpiStatus, RequestKind
from repro.nic.host_interface import Completion, PostRecv, PostSend
from repro.proc.costmodel import HostCostModel
from repro.sim.process import delay, now, wait_on


class MpiError(RuntimeError):
    """Illegal MPI usage (call before Init, bad rank, ...)."""


class MpiProcess:
    """The MPI library instance bound to one rank's host CPU."""

    def __init__(self, world, rank: int) -> None:
        # `world` is a repro.mpi.world.MpiWorld; typed loosely (cycle)
        self.world = world
        self.rank = rank
        self.host = world.hosts[rank]
        self.proc = self.host.proc
        self.cost: HostCostModel = world.config.host_cost
        self.comm_world: Communicator = world.comm_world
        self._req_ids = itertools.count(1)
        self._inflight: Dict[int, MpiRequest] = {}
        self._initialized = False
        self._finalized = False
        #: the per-message flight recorder (no-op unless the world's
        #: telemetry bundle enabled it); public so benchmark harnesses can
        #: label requests of interest (e.g. the timed pings)
        self.lifecycle = world.engine.lifecycle
        self._lifecycle = self.lifecycle
        #: host buffer allocator cursor (receives/sends get distinct buffers)
        self._buffer_cursor = 0x4000_0000 + rank * 0x100_0000

    # ------------------------------------------------------------ lifecycle
    def init(self):
        """MPI_Init: bring the library up (charges setup time)."""
        if self._initialized:
            raise MpiError("MPI_Init called twice")
        yield delay(self.proc.compute(10 * self.cost.call_overhead_cycles))
        self._initialized = True

    def finalize(self):
        """MPI_Finalize: all outstanding requests must be complete."""
        self._require_init()
        pending = [r for r in self._inflight.values() if not r.done]
        if pending:
            raise MpiError(
                f"rank {self.rank}: MPI_Finalize with {len(pending)} "
                "incomplete requests"
            )
        yield delay(self.proc.compute(4 * self.cost.call_overhead_cycles))
        self._finalized = True

    # ------------------------------------------------------------- queries
    def comm_rank(self, comm: Optional[Communicator] = None) -> int:
        """MPI_Comm_rank (no simulated cost: a local read)."""
        self._require_init()
        return self.rank

    def comm_size(self, comm: Optional[Communicator] = None) -> int:
        """MPI_Comm_size."""
        self._require_init()
        return (comm or self.comm_world).size

    # ------------------------------------------------------ point to point
    def isend(
        self,
        dest: int,
        tag: int,
        size: int = 0,
        comm: Optional[Communicator] = None,
    ):
        """MPI_Isend: returns an :class:`MpiRequest` (yields sim commands)."""
        self._require_init()
        comm = comm or self.comm_world
        comm.check_rank(dest)
        if tag < 0:
            raise MpiError(f"send tag must be non-negative, got {tag}")
        request = self._new_request(RequestKind.SEND, dest, tag, comm, size)
        request.posted_at = yield now()
        rec = self._lifecycle
        if rec.enabled:
            rec.begin(
                "send",
                self.rank,
                request.req_id,
                request.posted_at,
                {"dest": dest, "tag": tag, "size": size},
            )
        yield delay(
            self.proc.compute(
                self.cost.call_overhead_cycles + self.cost.command_build_cycles
            )
        )
        if rec.enabled:
            rec.mark_request(self.rank, request.req_id, "host_issue")
        self.host.send_command(
            PostSend(
                req_id=request.req_id,
                dest=dest,
                context=comm.context,
                tag=tag,
                size=size,
                buffer_addr=self._alloc_buffer(size),
                rank=self.rank,
            )
        )
        return request

    def irecv(
        self,
        source: int,
        tag: int,
        size: int = 0,
        comm: Optional[Communicator] = None,
    ):
        """MPI_Irecv: source/tag may be ANY_SOURCE/ANY_TAG."""
        self._require_init()
        comm = comm or self.comm_world
        if source != ANY_SOURCE:
            comm.check_rank(source)
        if tag < 0 and tag != ANY_TAG:
            raise MpiError(f"recv tag must be non-negative or ANY_TAG, got {tag}")
        request = self._new_request(RequestKind.RECV, source, tag, comm, size)
        request.posted_at = yield now()
        rec = self._lifecycle
        if rec.enabled:
            rec.begin(
                "recv",
                self.rank,
                request.req_id,
                request.posted_at,
                {"source": source, "tag": tag, "size": size},
            )
        yield delay(
            self.proc.compute(
                self.cost.call_overhead_cycles + self.cost.command_build_cycles
            )
        )
        if rec.enabled:
            rec.mark_request(self.rank, request.req_id, "host_issue")
        self.host.send_command(
            PostRecv(
                req_id=request.req_id,
                context=comm.context,
                source=source,
                tag=tag,
                size=size,
                buffer_addr=self._alloc_buffer(size),
                rank=self.rank,
            )
        )
        return request

    def wait(self, request: MpiRequest):
        """MPI_Wait: block until the request's completion arrives."""
        self._require_init()
        while not request.done:
            drained = yield from self._drain_completions()
            if not request.done and not drained:
                yield wait_on(self.host.completion_fifo.not_empty)
        self._inflight.pop(request.req_id, None)
        return request

    def waitall(self, requests: List[MpiRequest]):
        """MPI_Waitall (built from MPI_Wait, as in Fig. 4)."""
        for request in requests:
            yield from self.wait(request)
        return requests

    def send(self, dest: int, tag: int, size: int = 0, comm=None):
        """MPI_Send (built from Isend + Wait)."""
        request = yield from self.isend(dest, tag, size, comm)
        yield from self.wait(request)
        return request

    def recv(self, source: int, tag: int, size: int = 0, comm=None):
        """MPI_Recv (built from Irecv + Wait)."""
        request = yield from self.irecv(source, tag, size, comm)
        yield from self.wait(request)
        return request

    # ----------------------------------------------------------- collective
    def barrier(self, comm: Optional[Communicator] = None):
        """MPI_Barrier: dissemination algorithm on the reserved context.

        ceil(log2(P)) rounds; in round k, send to (rank + 2^k) mod P and
        receive from (rank - 2^k) mod P.  Tags encode the round so
        consecutive barriers cannot interfere.
        """
        self._require_init()
        comm = comm or self.comm_world
        size = comm.size
        if size == 1:
            yield delay(self.proc.compute(self.cost.call_overhead_cycles))
            return
        collective = Communicator(context=COLLECTIVE_CONTEXT, size=size)
        round_index = 0
        distance = 1
        while distance < size:
            to = (self.rank + distance) % size
            frm = (self.rank - distance) % size
            send_req = yield from self.isend(
                to, tag=round_index, size=0, comm=collective
            )
            recv_req = yield from self.irecv(
                frm, tag=round_index, size=0, comm=collective
            )
            yield from self.wait(recv_req)
            yield from self.wait(send_req)
            distance <<= 1
            round_index += 1

    # ------------------------------------------------------------ internals
    def _require_init(self) -> None:
        if not self._initialized:
            raise MpiError("MPI call before MPI_Init")
        if self._finalized:
            raise MpiError("MPI call after MPI_Finalize")

    def _new_request(
        self,
        kind: RequestKind,
        peer: int,
        tag: int,
        comm: Communicator,
        size: int,
    ) -> MpiRequest:
        request = MpiRequest(
            req_id=next(self._req_ids),
            kind=kind,
            rank=self.rank,
            peer=peer,
            tag=tag,
            context=comm.context,
            size=size,
        )
        self._inflight[request.req_id] = request
        return request

    def _alloc_buffer(self, size: int) -> int:
        addr = self._buffer_cursor
        self._buffer_cursor += max(size, 64)
        return addr

    def _drain_completions(self):
        """Consume everything in the completion FIFO; returns the count."""
        drained = 0
        while True:
            completion: Optional[Completion] = self.host.completion_fifo.try_pop()
            if completion is None:
                break
            drained += 1
            yield delay(
                self.proc.compute(
                    self.cost.poll_cycles + self.cost.completion_handle_cycles
                )
            )
            request = self._inflight.get(completion.req_id)
            if request is None:
                raise MpiError(
                    f"rank {self.rank}: completion for unknown request "
                    f"{completion.req_id}"
                )
            request.done = True
            request.completed_at = yield now()
            if self._lifecycle.enabled:
                self._lifecycle.complete_request(
                    self.rank,
                    request.req_id,
                    request.completed_at,
                    recv=request.kind is RequestKind.RECV,
                )
            if request.kind is RequestKind.RECV:
                request.status = MpiStatus(
                    source=completion.source,
                    tag=completion.tag,
                    count=completion.size,
                )
        return drained
