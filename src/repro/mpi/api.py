"""MPI_* calls as host-side operations (the Fig. 4 subset).

Each method is a generator driven inside the host program's simulation
process.  A call charges host-CPU cycles, pushes a command across the
host->NIC link, and (for the blocking forms) waits for the completion to
come back.  "The main processor is only required to dispatch message
requests to the NIC and wait for request completion" (Section V-C).

Wildcards: ``source=ANY_SOURCE`` and/or ``tag=ANY_TAG`` on receives are
passed through to the NIC, which packs them into ALPU mask bits.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from repro.core.match import ANY_SOURCE, ANY_TAG
from repro.mpi.communicator import COLLECTIVE_CONTEXT, Communicator
from repro.mpi.request import MpiRequest, MpiStatus, RequestKind
from repro.nic.host_interface import Completion, PostRecv, PostSend
from repro.proc.costmodel import HostCostModel
from repro.sim.process import delay, now, wait_on


class MpiError(RuntimeError):
    """Illegal MPI usage (call before Init, bad rank, ...)."""


#: reduction operators for :meth:`MpiProcess.allreduce`; applied in rank
#: order (lower-rank partial first) so floating-point results are
#: deterministic across runs
_REDUCE_OPS = {
    "sum": lambda a, b: a + b,
    "prod": lambda a, b: a * b,
    "max": max,
    "min": min,
}


class MpiProcess:
    """The MPI library instance bound to one rank's host CPU."""

    def __init__(self, world, rank: int) -> None:
        # `world` is a repro.mpi.world.MpiWorld; typed loosely (cycle)
        self.world = world
        self.rank = rank
        self.host = world.hosts[rank]
        self.proc = self.host.proc
        self.cost: HostCostModel = world.config.host_cost
        self.comm_world: Communicator = world.comm_world
        self._req_ids = itertools.count(1)
        self._inflight: Dict[int, MpiRequest] = {}
        self._initialized = False
        self._finalized = False
        #: the per-message flight recorder (no-op unless the world's
        #: telemetry bundle enabled it); public so benchmark harnesses can
        #: label requests of interest (e.g. the timed pings)
        self.lifecycle = world.engine.lifecycle
        self._lifecycle = self.lifecycle
        #: host buffer allocator cursor (receives/sends get distinct buffers)
        self._buffer_cursor = 0x4000_0000 + rank * 0x100_0000
        #: per-context collective sequence numbers; every rank calls
        #: collectives on a communicator in the same order (an MPI
        #: requirement), so these counters advance in lockstep and carve
        #: out collision-free tag blocks
        self._coll_seq: Dict[int, int] = {}

    # ------------------------------------------------------------ lifecycle
    def init(self):
        """MPI_Init: bring the library up (charges setup time)."""
        if self._initialized:
            raise MpiError("MPI_Init called twice")
        yield delay(self.proc.compute(10 * self.cost.call_overhead_cycles))
        self._initialized = True

    def finalize(self):
        """MPI_Finalize: all outstanding requests must be complete."""
        self._require_init()
        pending = [r for r in self._inflight.values() if not r.done]
        if pending:
            raise MpiError(
                f"rank {self.rank}: MPI_Finalize with {len(pending)} "
                "incomplete requests"
            )
        yield delay(self.proc.compute(4 * self.cost.call_overhead_cycles))
        self._finalized = True

    # ------------------------------------------------------------- queries
    def comm_rank(self, comm: Optional[Communicator] = None) -> int:
        """MPI_Comm_rank (no simulated cost: a local read)."""
        self._require_init()
        return self.rank

    def comm_size(self, comm: Optional[Communicator] = None) -> int:
        """MPI_Comm_size."""
        self._require_init()
        return (comm or self.comm_world).size

    # ------------------------------------------------------ point to point
    def isend(
        self,
        dest: int,
        tag: int,
        size: int = 0,
        comm: Optional[Communicator] = None,
    ):
        """MPI_Isend: returns an :class:`MpiRequest` (yields sim commands)."""
        self._require_init()
        comm = comm or self.comm_world
        comm.check_rank(dest)
        if tag < 0:
            raise MpiError(f"send tag must be non-negative, got {tag}")
        request = self._new_request(RequestKind.SEND, dest, tag, comm, size)
        request.posted_at = yield now()
        rec = self._lifecycle
        if rec.enabled:
            rec.begin(
                "send",
                self.rank,
                request.req_id,
                request.posted_at,
                {"dest": dest, "tag": tag, "size": size},
            )
        yield delay(
            self.proc.compute(
                self.cost.call_overhead_cycles + self.cost.command_build_cycles
            )
        )
        if rec.enabled:
            rec.mark_request(self.rank, request.req_id, "host_issue")
        self.host.send_command(
            PostSend(
                req_id=request.req_id,
                dest=dest,
                context=comm.context,
                tag=tag,
                size=size,
                buffer_addr=self._alloc_buffer(size),
                rank=self.rank,
            )
        )
        return request

    def irecv(
        self,
        source: int,
        tag: int,
        size: int = 0,
        comm: Optional[Communicator] = None,
    ):
        """MPI_Irecv: source/tag may be ANY_SOURCE/ANY_TAG."""
        self._require_init()
        comm = comm or self.comm_world
        if source != ANY_SOURCE:
            comm.check_rank(source)
        if tag < 0 and tag != ANY_TAG:
            raise MpiError(f"recv tag must be non-negative or ANY_TAG, got {tag}")
        request = self._new_request(RequestKind.RECV, source, tag, comm, size)
        request.posted_at = yield now()
        rec = self._lifecycle
        if rec.enabled:
            rec.begin(
                "recv",
                self.rank,
                request.req_id,
                request.posted_at,
                {"source": source, "tag": tag, "size": size},
            )
        yield delay(
            self.proc.compute(
                self.cost.call_overhead_cycles + self.cost.command_build_cycles
            )
        )
        if rec.enabled:
            rec.mark_request(self.rank, request.req_id, "host_issue")
        self.host.send_command(
            PostRecv(
                req_id=request.req_id,
                context=comm.context,
                source=source,
                tag=tag,
                size=size,
                buffer_addr=self._alloc_buffer(size),
                rank=self.rank,
            )
        )
        return request

    def wait(self, request: MpiRequest):
        """MPI_Wait: block until the request's completion arrives."""
        self._require_init()
        fifo = self.host.completion_fifo
        while not request.done:
            # Entering _drain_completions on an empty FIFO would allocate
            # a generator just to return 0; the length check is the same
            # condition its first try_pop would hit.
            if len(fifo):
                yield from self._drain_completions()
            if not request.done and not len(fifo):
                yield wait_on(fifo.not_empty)
        self._inflight.pop(request.req_id, None)
        return request

    def waitall(self, requests: List[MpiRequest]):
        """MPI_Waitall (built from MPI_Wait, as in Fig. 4)."""
        for request in requests:
            yield from self.wait(request)
        return requests

    def send(self, dest: int, tag: int, size: int = 0, comm=None):
        """MPI_Send (built from Isend + Wait)."""
        request = yield from self.isend(dest, tag, size, comm)
        yield from self.wait(request)
        return request

    def recv(self, source: int, tag: int, size: int = 0, comm=None):
        """MPI_Recv (built from Irecv + Wait)."""
        request = yield from self.irecv(source, tag, size, comm)
        yield from self.wait(request)
        return request

    # ----------------------------------------------------------- collective
    #
    # Host-staged collectives: schedules built from the point-to-point
    # layer, run on the reserved COLLECTIVE_CONTEXT.  Each collective
    # claims a 64-tag block via :meth:`_collective_tags` (the per-context
    # sequence counters advance in lockstep across ranks), so back-to-
    # back collectives cannot cross-match even with deep pipelining.
    #
    # The simulator moves *sizes*, not payload bytes, so reduction /
    # broadcast values travel out-of-band on the world's collective
    # board: a sender publishes the value under a unique key before
    # injecting the matching send, and the receiver reads it only after
    # the matching receive completes -- the message's arrival is the
    # happens-before edge that makes the board read safe.

    def _collective_tags(self, comm: Communicator):
        """Claim this collective's (sequence, tag-block base) pair.

        Tags are 16 bits wide (MatchFormat); blocks of 64 rounds from a
        512-entry rotation keep the maximum tag at 32767.  The rotation
        is safe because collectives on a communicator are globally
        ordered: a tag can only be reused 512 collectives later, long
        after its messages drained.
        """
        seq = self._coll_seq.get(comm.context, 0)
        self._coll_seq[comm.context] = seq + 1
        return seq, (seq % 512) * 64

    def _publish(self, comm: Communicator, seq: int, round_index: int, value):
        """Stage ``value`` for the peer of (round, sender) on the board."""
        key = (comm.context, seq, self.rank, round_index)
        self.world.collective_board[key] = value

    def _collect(self, comm: Communicator, seq: int, round_index: int, src: int):
        """Read (and consume) the value ``src`` staged for us."""
        key = (comm.context, seq, src, round_index)
        try:
            return self.world.collective_board.pop(key)
        except KeyError:
            raise MpiError(
                f"rank {self.rank}: no staged collective value for {key}; "
                "collective schedule out of step"
            ) from None

    def barrier(self, comm: Optional[Communicator] = None):
        """MPI_Barrier: dissemination algorithm on the reserved context.

        ceil(log2(P)) rounds; in round k, send to (rank + 2^k) mod P and
        receive from (rank - 2^k) mod P.  Tags come from this barrier's
        claimed block so consecutive collectives cannot interfere.
        """
        self._require_init()
        comm = comm or self.comm_world
        size = comm.size
        _, base = self._collective_tags(comm)
        if size == 1:
            yield delay(self.proc.compute(self.cost.call_overhead_cycles))
            return
        collective = Communicator(context=COLLECTIVE_CONTEXT, size=size)
        round_index = 0
        distance = 1
        while distance < size:
            to = (self.rank + distance) % size
            frm = (self.rank - distance) % size
            send_req = yield from self.isend(
                to, tag=base + round_index, size=0, comm=collective
            )
            recv_req = yield from self.irecv(
                frm, tag=base + round_index, size=0, comm=collective
            )
            yield from self.wait(recv_req)
            yield from self.wait(send_req)
            distance <<= 1
            round_index += 1

    def bcast(
        self,
        value=None,
        root: int = 0,
        size: int = 0,
        comm: Optional[Communicator] = None,
    ):
        """MPI_Bcast: binomial tree rooted at ``root``; returns the value.

        Non-roots receive from the parent given by the lowest set bit of
        their root-relative rank, then forward to children in largest-
        offset-first order (the MPICH schedule).  ``size`` is the wire
        payload each tree edge carries.
        """
        self._require_init()
        comm = comm or self.comm_world
        comm.check_rank(root)
        p = comm.size
        seq, base = self._collective_tags(comm)
        if p == 1:
            yield delay(self.proc.compute(self.cost.call_overhead_cycles))
            return value
        collective = Communicator(context=COLLECTIVE_CONTEXT, size=p)
        relrank = (self.rank - root) % p
        # receive from the parent (lowest set bit of relrank)
        mask = 1
        while mask < p:
            if relrank & mask:
                parent = (relrank - mask + root) % p
                tag = base + mask.bit_length() - 1
                yield from self.recv(parent, tag=tag, size=size, comm=collective)
                value = self._collect(comm, seq, mask.bit_length() - 1, parent)
                break
            mask <<= 1
        # forward to children, largest offset first
        mask >>= 1
        while mask > 0:
            if relrank + mask < p:
                child = (relrank + mask + root) % p
                round_index = mask.bit_length() - 1
                self._publish(comm, seq, round_index, value)
                yield from self.send(
                    child, tag=base + round_index, size=size, comm=collective
                )
            mask >>= 1
        return value

    def allreduce(
        self,
        value,
        op: str = "sum",
        size: int = 0,
        comm: Optional[Communicator] = None,
    ):
        """MPI_Allreduce: recursive doubling; returns the reduced value.

        Non-power-of-2 counts use the standard fold: the first 2*rem
        ranks pre-combine pairwise (evens into odds) so a power-of-2 core
        runs the doubling, then folded-out evens get the result back.
        Partials combine lower-rank-first, so non-commutative rounding
        (floats) is deterministic.  ``size`` is the payload bytes each
        exchange carries.
        """
        self._require_init()
        if op not in _REDUCE_OPS:
            raise MpiError(
                f"unknown reduction {op!r}; expected one of {sorted(_REDUCE_OPS)}"
            )
        reduce_op = _REDUCE_OPS[op]
        comm = comm or self.comm_world
        p = comm.size
        seq, base = self._collective_tags(comm)
        if p == 1:
            yield delay(self.proc.compute(self.cost.call_overhead_cycles))
            return value
        collective = Communicator(context=COLLECTIVE_CONTEXT, size=p)
        pof2 = 1 << (p.bit_length() - 1)
        rem = p - pof2
        round_index = 0
        # fold phase: evens among the first 2*rem ranks hand their value
        # to the odd neighbour and sit out the doubling
        if self.rank < 2 * rem and self.rank % 2 == 0:
            self._publish(comm, seq, round_index, value)
            yield from self.send(
                self.rank + 1, tag=base + round_index, size=size, comm=collective
            )
            newrank = -1
        elif self.rank < 2 * rem:
            yield from self.recv(
                self.rank - 1, tag=base + round_index, size=size, comm=collective
            )
            folded = self._collect(comm, seq, round_index, self.rank - 1)
            value = reduce_op(folded, value)  # lower rank first
            newrank = self.rank // 2
        else:
            newrank = self.rank - rem
        round_index += 1
        # recursive doubling among the power-of-two core
        if newrank >= 0:
            mask = 1
            while mask < pof2:
                newpartner = newrank ^ mask
                partner = (
                    newpartner * 2 + 1 if newpartner < rem else newpartner + rem
                )
                self._publish(comm, seq, round_index, value)
                send_req = yield from self.isend(
                    partner, tag=base + round_index, size=size, comm=collective
                )
                recv_req = yield from self.irecv(
                    partner, tag=base + round_index, size=size, comm=collective
                )
                yield from self.wait(recv_req)
                yield from self.wait(send_req)
                theirs = self._collect(comm, seq, round_index, partner)
                if partner < self.rank:
                    value = reduce_op(theirs, value)
                else:
                    value = reduce_op(value, theirs)
                mask <<= 1
                round_index += 1
        else:
            round_index += pof2.bit_length() - 1
        # unfold phase: odds return the final value to the folded evens
        if self.rank < 2 * rem:
            if self.rank % 2:
                self._publish(comm, seq, round_index, value)
                yield from self.send(
                    self.rank - 1,
                    tag=base + round_index,
                    size=size,
                    comm=collective,
                )
            else:
                yield from self.recv(
                    self.rank + 1,
                    tag=base + round_index,
                    size=size,
                    comm=collective,
                )
                value = self._collect(comm, seq, round_index, self.rank + 1)
        return value

    # ------------------------------------------------------------ internals
    def _require_init(self) -> None:
        if not self._initialized:
            raise MpiError("MPI call before MPI_Init")
        if self._finalized:
            raise MpiError("MPI call after MPI_Finalize")

    def _new_request(
        self,
        kind: RequestKind,
        peer: int,
        tag: int,
        comm: Communicator,
        size: int,
    ) -> MpiRequest:
        request = MpiRequest(
            req_id=next(self._req_ids),
            kind=kind,
            rank=self.rank,
            peer=peer,
            tag=tag,
            context=comm.context,
            size=size,
        )
        self._inflight[request.req_id] = request
        return request

    def _alloc_buffer(self, size: int) -> int:
        addr = self._buffer_cursor
        self._buffer_cursor += max(size, 64)
        return addr

    def _drain_completions(self):
        """Consume everything in the completion FIFO; returns the count."""
        drained = 0
        while True:
            completion: Optional[Completion] = self.host.completion_fifo.try_pop()
            if completion is None:
                break
            drained += 1
            yield delay(
                self.proc.compute(
                    self.cost.poll_cycles + self.cost.completion_handle_cycles
                )
            )
            request = self._inflight.get(completion.req_id)
            if request is None:
                raise MpiError(
                    f"rank {self.rank}: completion for unknown request "
                    f"{completion.req_id}"
                )
            request.done = True
            request.completed_at = yield now()
            if self._lifecycle.enabled:
                self._lifecycle.complete_request(
                    self.rank,
                    request.req_id,
                    request.completed_at,
                    recv=request.kind is RequestKind.RECV,
                )
            if request.kind is RequestKind.RECV:
                request.status = MpiStatus(
                    source=completion.source,
                    tag=completion.tag,
                    count=completion.size,
                )
        return drained
