"""System assembly: hosts + NICs + fabric = a runnable MPI job.

:class:`MpiWorld` builds one simulated node per rank (host CPU with its
memory hierarchy, NIC per :class:`~repro.nic.nic.NicConfig`, the
host<->NIC links) over a shared :class:`~repro.network.fabric.Fabric`,
then runs user-supplied host programs to completion.

Host programs are generator functions taking an
:class:`~repro.mpi.api.MpiProcess`; their return values are collected per
rank:

    world = MpiWorld(WorldConfig(num_ranks=2, nic=NicConfig.baseline()))
    results = world.run({0: sender_program, 1: receiver_program})
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional

from repro.mpi.api import MpiProcess
from repro.mpi.communicator import Communicator, world as make_world_comm
from repro.network.fabric import Fabric, FabricConfig
from repro.network.faults import FaultConfig, FaultModel
from repro.obs.health import RETRANSMIT_WINDOW_PS
from repro.obs.probe import SamplingProbe
from repro.obs.tracer import NULL_TRACER
from repro.nic.host_interface import HOST_NIC_LATENCY_PS
from repro.nic.nic import Nic, NicConfig
from repro.proc.costmodel import HostCostModel
from repro.proc.params import CPU_PARAMS, make_host_memory
from repro.proc.processor import Processor
from repro.sim.engine import Engine
from repro.sim.fifo import Fifo
from repro.sim.link import Link
from repro.sim.process import Process


@dataclasses.dataclass(frozen=True)
class WorldConfig:
    """Shape of the simulated job."""

    num_ranks: int = 2
    #: MPI processes per node (>1 enables the footnote-1 shared-NIC mode)
    ranks_per_node: int = 1
    nic: NicConfig = dataclasses.field(default_factory=NicConfig)
    fabric: FabricConfig = dataclasses.field(default_factory=FabricConfig)
    host_cost: HostCostModel = dataclasses.field(default_factory=HostCostModel)
    #: per-rank NIC overrides (rank -> NicConfig); others use ``nic``
    nic_overrides: Optional[Dict[int, NicConfig]] = None
    #: seeded fault injection on the fabric (None = the perfect wire)
    faults: Optional[FaultConfig] = None

    @property
    def num_nodes(self) -> int:
        if self.num_ranks % self.ranks_per_node:
            raise ValueError(
                f"{self.num_ranks} ranks do not fill nodes of "
                f"{self.ranks_per_node}"
            )
        return self.num_ranks // self.ranks_per_node

    def nic_for(self, node: int) -> NicConfig:
        """The NIC configuration this node uses."""
        base = self.nic
        if self.nic_overrides and node in self.nic_overrides:
            base = self.nic_overrides[node]
        if self.ranks_per_node != 1:
            base = dataclasses.replace(base, ranks_per_node=self.ranks_per_node)
        return base


class Host:
    """One rank's slice of the main processor and its NIC attachment.

    With one rank per node this is simply the node's host CPU.  With
    several, each rank gets its own command link and completion FIFO on
    the shared NIC (cores sharing a NIC through independent doorbells).
    """

    def __init__(
        self, engine: Engine, rank: int, nic: Nic, completion_fifo: Fifo
    ) -> None:
        self.rank = rank
        self.proc = Processor(
            engine, f"host{rank}", CPU_PARAMS.clock_hz, make_host_memory()
        )
        self.nic = nic
        #: completions from the NIC land here (nic links into it)
        self.completion_fifo = completion_fifo
        self._cmd_link = Link(
            engine,
            f"host{rank}.cmds",
            dest=nic.host_cmd_fifo,
            latency_ps=HOST_NIC_LATENCY_PS,
            on_deliver=nic.deliver_host_command,
        )

    def send_command(self, command) -> None:
        """Posted write across the host->NIC link."""
        self._cmd_link.send(command)


class MpiWorld:
    """A complete simulated system plus its MPI job harness."""

    def __init__(
        self, config: Optional[WorldConfig] = None, *, telemetry=None
    ) -> None:
        """``telemetry``: an optional :class:`repro.obs.Telemetry` bundle.

        When given, its registry/tracer ride on the engine (so every
        component self-instruments) and a :class:`SamplingProbe` samples
        each NIC's posted/unexpected queue depths and ALPU occupancies on
        ``telemetry.probe_interval_ps``.  A Telemetry object is per-run;
        do not share one across worlds.
        """
        self.config = config = config if config is not None else WorldConfig()
        self.telemetry = telemetry
        #: out-of-band staging for collective values: the simulator moves
        #: packet *sizes*, so reduction/broadcast payloads ride here,
        #: keyed (context, collective-seq, sender, round).  Safe because
        #: a value is published before its matching send is injected and
        #: read only after the matching receive completes.
        self.collective_board: Dict[tuple, object] = {}
        if telemetry is not None:
            self.engine = Engine(
                tracer=telemetry.tracer,
                metrics=telemetry.metrics,
                lifecycle=getattr(telemetry, "lifecycle", None),
                profiler=getattr(telemetry, "profiler", None),
            )
        else:
            self.engine = Engine()
        num_nodes = config.num_nodes
        self.fault_model: Optional[FaultModel] = (
            FaultModel(config.faults) if config.faults is not None else None
        )
        self.fabric = Fabric(
            self.engine,
            num_nodes,
            config.fabric,
            faults=self.fault_model,
            observe_hops=getattr(telemetry, "fabric_obs", False),
        )
        if telemetry is not None and hasattr(telemetry, "attach_fabric_source"):
            telemetry.attach_fabric_source(self.fabric.snapshot)
        self.comm_world: Communicator = make_world_comm(config.num_ranks)
        self.nics: List[Nic] = []
        self.hosts: List[Host] = []
        for node in range(num_nodes):
            fifo0 = Fifo(name=f"node{node}.completions0")
            nic = Nic(
                self.engine, node, self.fabric, fifo0, config.nic_for(node)
            )
            self.nics.append(nic)
        for rank in range(config.num_ranks):
            node = rank // config.ranks_per_node
            lproc = rank % config.ranks_per_node
            nic = self.nics[node]
            if lproc == 0:
                fifo = nic.host_completion_link.dest
            else:
                fifo = Fifo(name=f"host{rank}.completions")
                nic.attach_completion_fifo(lproc, fifo)
            self.hosts.append(Host(self.engine, rank, nic, fifo))
        self.probe: Optional[SamplingProbe] = None
        if telemetry is not None and telemetry.probe_interval_ps:
            self.probe = self._build_probe(telemetry)
            self.probe.start()

    def _build_probe(self, telemetry) -> SamplingProbe:
        """Periodic sampling of queue depths, occupancies, reliability
        state, fabric in-flight packets and engine throughput.

        Every sampler feeds the metrics histograms (as before) and, when
        the bundle carries a :class:`~repro.obs.timeline.Timeline`, a
        windowed series under the matching metric-style name -- the
        substrate the health watchdogs evaluate.
        """
        registry = telemetry.metrics
        probe = SamplingProbe(
            self.engine,
            telemetry.probe_interval_ps,
            tracer=telemetry.tracer if telemetry.tracer is not None else NULL_TRACER,
            timeline=getattr(telemetry, "timeline", None),
        )

        def hist(name):
            return registry.histogram(name) if registry is not None else None

        for nic in self.nics:
            for queue in (nic.posted_recv_q, nic.unexpected_q):
                probe.add(
                    "nic",
                    f"{queue.name}.depth",
                    (lambda q=queue: len(q)),
                    hist(f"{queue.name}/depth_samples"),
                    series=f"{queue.name}/depth",
                )
            # software-only backends assemble no ALPUs; the tuple is empty
            for device in nic.alpu_devices:
                probe.add(
                    "alpu",
                    f"{device.name}.occupancy",
                    (lambda d=device: d.alpu.occupancy),
                    hist(f"{device.name}/occupancy_samples"),
                    series=f"{device.name}/occupancy",
                )
            if nic.reliability is not None:
                rel = nic.reliability
                probe.add(
                    "nic",
                    f"{nic.name}.rel.unacked",
                    (lambda r=rel: r.unacked_count),
                    hist(f"{nic.name}.rel/unacked_samples"),
                    series=f"{nic.name}.rel/unacked",
                )
                probe.add(
                    "nic",
                    f"{nic.name}.rel.reorder_held",
                    (lambda r=rel: r.reorder_held),
                    hist(f"{nic.name}.rel/reorder_held_samples"),
                    series=f"{nic.name}.rel/reorder_held",
                )
                probe.add(
                    "nic",
                    f"{nic.name}.rel.retransmits",
                    (lambda r=rel: r.retransmits),
                    series=f"{nic.name}.rel/retransmits",
                    mode="cumulative",
                    # storm-width windows: see the watchdog's definition
                    window_ps=RETRANSMIT_WINDOW_PS,
                )
            if nic.admission is not None:
                adm = nic.admission
                probe.add(
                    "nic",
                    f"{nic.name}.adm.refused",
                    (lambda a=adm: a.refused),
                    series=f"{nic.name}.adm/refused",
                    mode="cumulative",
                    # refusals are bursty like retransmit storms; share
                    # the window so the pressure watchdog sees per-window
                    # refusal rates
                    window_ps=RETRANSMIT_WINDOW_PS,
                )
            probe.add(
                "nic",
                f"{nic.name}.fw.completions",
                (lambda n=nic: n.firmware.completions_sent),
                series=f"{nic.name}.fw/completions",
                mode="cumulative",
            )
        probe.add(
            "network",
            f"{self.fabric.name}.in_flight",
            (lambda: self.fabric.in_flight),
            hist(f"{self.fabric.name}/in_flight_samples"),
            series=f"{self.fabric.name}/in_flight",
        )
        if self.fabric.topology.preset != "crossbar":
            # routed presets share channels, so per-link utilization is
            # the congestion signal worth windowing; the crossbar's
            # dedicated wires skip this (and keep its pinned telemetry
            # documents bit-identical to the pre-topology fabric)
            fabric_obs = getattr(telemetry, "fabric_obs", False)
            for link in self.fabric.links:
                probe.add(
                    "network",
                    f"{link.name}.utilization",
                    (lambda lnk=link: lnk.utilization()),
                    series=f"{link.name}/util",
                )
                if fabric_obs:
                    # congestion substrate for the fabric watchdogs:
                    # instantaneous backlog and cumulative contention
                    # wait per channel (opt-in with fabric observability
                    # so pre-existing timeline documents keep their
                    # series set)
                    probe.add(
                        "network",
                        f"{link.name}.queue",
                        (lambda lnk=link: lnk.queue_depth),
                        series=f"{link.name}/queue",
                    )
                    probe.add(
                        "network",
                        f"{link.name}.wait",
                        (lambda lnk=link: lnk.wait_ps),
                        series=f"{link.name}/wait",
                        mode="cumulative",
                    )
        probe.add(
            "engine",
            "events",
            (lambda: self.engine.events_fired),
            series="engine/events",
            mode="cumulative",
        )
        return probe

    def reset_queue_stats(self) -> None:
        """Re-arm every NIC queue's high-water mark (between phases)."""
        for nic in self.nics:
            nic.reset_queue_stats()

    # ----------------------------------------------------------------- run
    def run(
        self,
        programs: Dict[int, Callable],
        *,
        deadline_us: float = 1_000_000.0,
    ) -> Dict[int, object]:
        """Run one host program per rank until all of them return.

        Returns ``{rank: program return value}``.  Raises if a program
        failed or the deadline passed with programs still running (a
        deadlock in the modelled protocol).
        """
        missing = set(range(self.config.num_ranks)) - set(programs)
        if missing:
            raise ValueError(f"no program for ranks {sorted(missing)}")

        processes: Dict[int, Process] = {}
        for rank, program in programs.items():
            mpi = MpiProcess(self, rank)
            processes[rank] = Process(
                self.engine, program(mpi), name=f"rank{rank}", start=False
            )

        remaining = len(processes)

        def on_done() -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                self.engine.stop()

        for process in processes.values():
            process.done.observe(on_done)
            process.start()

        self.engine.run(until=round(deadline_us * 1_000_000))
        for rank, process in processes.items():
            if process.error is not None:
                raise RuntimeError(f"rank {rank} failed") from process.error
            if not process.finished:
                raise RuntimeError(
                    f"rank {rank} did not finish by the deadline "
                    f"({deadline_us} us) -- protocol deadlock?"
                )
        return {rank: process.result for rank, process in processes.items()}

    @property
    def now_ps(self) -> int:
        """Current simulated time in picoseconds."""
        return self.engine.now
