"""Basic MPI datatypes.

"Only support for basic MPI Datatypes is included" (Section V-C).  A
datatype here is just a name and an extent; message sizes are
``count * extent`` bytes, which is all the timing model needs.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class Datatype:
    """A basic (contiguous) MPI datatype."""

    name: str
    extent: int

    def __post_init__(self) -> None:
        if self.extent <= 0:
            raise ValueError(f"datatype extent must be positive: {self}")

    def size_bytes(self, count: int) -> int:
        """Message size of ``count`` elements of this type."""
        if count < 0:
            raise ValueError(f"negative element count {count}")
        return count * self.extent


MPI_BYTE = Datatype("MPI_BYTE", 1)
MPI_CHAR = Datatype("MPI_CHAR", 1)
MPI_INT = Datatype("MPI_INT", 4)
MPI_FLOAT = Datatype("MPI_FLOAT", 4)
MPI_DOUBLE = Datatype("MPI_DOUBLE", 8)
MPI_LONG = Datatype("MPI_LONG", 8)

BASIC_DATATYPES = (
    MPI_BYTE,
    MPI_CHAR,
    MPI_INT,
    MPI_FLOAT,
    MPI_DOUBLE,
    MPI_LONG,
)
