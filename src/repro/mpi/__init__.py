"""The MPI-1.2 subset of Figure 4, running on simulated nodes.

"The prototype MPI implements a subset of MPI-1.2.  With the exception of
MPI_Barrier(), only basic point-to-point communication and basic support
functions were implemented. ... MPI_COMM_WORLD is the only group."
(Section V-C.)  Functions marked with a dagger in Fig. 4 are built from
other MPI functions; we follow that: Send/Recv wrap Isend/Irecv + Wait,
Waitall wraps Wait, and Barrier is a dissemination exchange of zero-byte
messages on a reserved context.

The API is exposed through :class:`~repro.mpi.api.MpiProcess`, whose
methods are generators driven inside a host-program simulation process:

    def program(mpi):
        yield from mpi.init()
        if mpi.rank == 0:
            yield from mpi.send(dest=1, tag=7, size=0)
        else:
            status = yield from mpi.recv(source=0, tag=7)
        yield from mpi.barrier()
        yield from mpi.finalize()

:mod:`repro.mpi.world` assembles hosts, NICs and the fabric into a
runnable system; :mod:`repro.mpi.matching` is the pure (untimed) model of
MPI matching semantics used as a test oracle.
"""

from repro.mpi.datatypes import Datatype, MPI_BYTE, MPI_INT, MPI_DOUBLE
from repro.mpi.communicator import Communicator, COLLECTIVE_CONTEXT, WORLD_CONTEXT
from repro.mpi.request import MpiRequest, MpiStatus, RequestKind
from repro.mpi.api import MpiProcess, MpiError
from repro.mpi.world import MpiWorld, WorldConfig
from repro.mpi.matching import MatchingOracle

__all__ = [
    "Datatype",
    "MPI_BYTE",
    "MPI_INT",
    "MPI_DOUBLE",
    "Communicator",
    "COLLECTIVE_CONTEXT",
    "WORLD_CONTEXT",
    "MpiRequest",
    "MpiStatus",
    "RequestKind",
    "MpiProcess",
    "MpiError",
    "MpiWorld",
    "WorldConfig",
    "MatchingOracle",
]
