"""Communicators and context ids.

"The context identifier represents an MPI communicator object.  This
system-assigned message tag provides a safe message passing context so
that messages from one context do not interfere with messages from other
contexts" (Section II).  MPI_COMM_WORLD is the only *group* the paper's
prototype supports; we additionally allow duplication (new context, same
group), which exercises the context-matching path without adding groups.

Context 0 is reserved for library-internal traffic (the Barrier
implementation), so user point-to-point traffic can never collide with
collective traffic -- the standard trick.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import ClassVar

#: context id reserved for library collectives (Barrier)
COLLECTIVE_CONTEXT = 0
#: context id of MPI_COMM_WORLD's point-to-point space
WORLD_CONTEXT = 1


@dataclasses.dataclass(frozen=True)
class Communicator:
    """A communication context over the world group."""

    context: int
    size: int

    _next_context: ClassVar[itertools.count] = itertools.count(2)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"communicator needs at least one rank: {self}")
        if self.context < 0:
            raise ValueError(f"negative context id: {self}")

    def check_rank(self, rank: int) -> None:
        """Validate a peer rank against this communicator's group."""
        if not 0 <= rank < self.size:
            raise ValueError(
                f"rank {rank} out of range for communicator of size {self.size}"
            )

    def dup(self) -> "Communicator":
        """MPI_Comm_dup: same group, fresh context."""
        return Communicator(context=next(self._next_context), size=self.size)


def world(size: int) -> Communicator:
    """MPI_COMM_WORLD for a job of ``size`` ranks."""
    return Communicator(context=WORLD_CONTEXT, size=size)
