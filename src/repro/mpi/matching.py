"""The pure (untimed) model of MPI matching semantics -- the test oracle.

:class:`MatchingOracle` implements Section II exactly, with no hardware,
no timing, and no queue-length effects:

* incoming messages traverse the posted-receive list (oldest first) and
  land on the unexpected list if nothing matches;
* posting a receive first searches the unexpected list (oldest first),
  atomically, then appends to the posted list;
* receives match on {context, source, tag} with optional wildcards on
  source and tag;
* per (source, context) arrival order is preserved.

Integration and property tests drive a simulated system and this oracle
with the same traffic and require identical pairings.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.core.match import ANY_SOURCE, ANY_TAG


@dataclasses.dataclass
class OracleRecv:
    """A posted receive in the oracle."""

    recv_id: int
    context: int
    source: int  # may be ANY_SOURCE
    tag: int  # may be ANY_TAG

    def accepts(self, context: int, source: int, tag: int) -> bool:
        """Would this receive match that envelope?"""
        if self.context != context:
            return False
        if self.source != ANY_SOURCE and self.source != source:
            return False
        if self.tag != ANY_TAG and self.tag != tag:
            return False
        return True


@dataclasses.dataclass
class OracleMessage:
    """An arrived message in the oracle."""

    msg_id: int
    context: int
    source: int
    tag: int


class MatchingOracle:
    """Reference matching semantics for one receiving process."""

    def __init__(self) -> None:
        self.posted: List[OracleRecv] = []
        self.unexpected: List[OracleMessage] = []
        #: (recv_id, msg_id) pairs, in pairing order
        self.pairings: List[Tuple[int, int]] = []

    def message_arrives(self, message: OracleMessage) -> Optional[int]:
        """An incoming message traverses the posted receive queue.

        Returns the matched recv_id, or None (message became unexpected).
        """
        for index, recv in enumerate(self.posted):
            if recv.accepts(message.context, message.source, message.tag):
                del self.posted[index]
                self.pairings.append((recv.recv_id, message.msg_id))
                return recv.recv_id
        self.unexpected.append(message)
        return None

    def post_receive(self, recv: OracleRecv) -> Optional[int]:
        """Posting a receive searches the unexpected queue atomically.

        Returns the matched msg_id, or None (receive was posted).
        """
        for index, message in enumerate(self.unexpected):
            if recv.accepts(message.context, message.source, message.tag):
                del self.unexpected[index]
                self.pairings.append((recv.recv_id, message.msg_id))
                return message.msg_id
        self.posted.append(recv)
        return None
