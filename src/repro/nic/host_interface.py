"""The host <-> NIC boundary.

"The main processor is only required to dispatch message requests to the
NIC and wait for request completion" (Section V-C).  Commands travel
host -> NIC over an I/O link (HyperTransport-class latency); completions
travel back the same way.  Both are small writes; serialization is
negligible next to the per-transaction latency, so the links are pure
latency pipes.
"""

from __future__ import annotations

import dataclasses
from typing import Union

from repro.sim.units import ns

#: one-way host<->NIC command/completion latency (HyperTransport class)
HOST_NIC_LATENCY_PS = ns(100)


@dataclasses.dataclass(frozen=True, slots=True)
class PostRecv:
    """Host asks the NIC to post a receive.

    ``source``/``tag`` may be the wildcard sentinels (ANY_SOURCE/ANY_TAG);
    the NIC packs them into match/mask bits.  ``rank`` identifies the
    issuing MPI process when several share the NIC (the paper's footnote
    1 extension); the NIC folds its local process id into the match word
    so co-located processes can never cross-match.
    """

    req_id: int
    context: int
    source: int
    tag: int
    size: int
    #: host memory address of the destination buffer
    buffer_addr: int
    #: global rank of the issuing process
    rank: int = 0


@dataclasses.dataclass(frozen=True, slots=True)
class PostSend:
    """Host asks the NIC to send a message."""

    req_id: int
    dest: int
    context: int
    tag: int
    size: int
    #: host memory address of the source buffer
    buffer_addr: int
    #: global rank of the issuing process
    rank: int = 0


HostCommand = Union[PostRecv, PostSend]


@dataclasses.dataclass(frozen=True, slots=True)
class Completion:
    """NIC tells the host a request finished.

    For receives the NIC fills in the matched message's envelope and
    payload length -- the wire format behind ``MPI_Status`` (a wildcard
    receive cannot otherwise learn who it matched).  Sends leave the
    status fields at their defaults.
    """

    req_id: int
    #: matched message's source rank (receives; -1 for sends)
    source: int = -1
    #: matched message's tag (receives; -1 for sends)
    tag: int = -1
    #: matched message's payload length in bytes
    size: int = 0
