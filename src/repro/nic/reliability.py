"""Link-level retransmission: the NIC's answer to a lossy fabric.

Modelled on the hardware retransmission units of APEnet+-class NICs: a
thin layer between the firmware's packet injection and the fabric that

* stamps every outgoing data packet with a per-destination sequence
  number (``rel_seq``) and a header checksum;
* keeps a per-destination retransmit record until the receiver's ACK
  arrives, re-injecting on a timeout with exponential backoff and a
  bounded retry budget (:class:`RetryExhaustedError` when exhausted);
* on the receive side verifies the checksum (NACKing corrupt packets),
  ACKs every valid data packet, drops duplicates, and holds out-of-order
  packets in a reorder buffer so the NIC firmware still observes the
  per-(src, dst) in-order delivery MPI's ordering semantics build on.

ACK/NACK generation and verification are hardware-assisted (link-level,
like the CRC engines they model): they cost no NIC-processor cycles,
only wire traffic.  The layer is entirely inert unless
:attr:`ReliabilityConfig.enabled` is set -- a disabled NIC never routes a
packet through it, keeping the zero-fault benchmarks bit-identical.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from repro.network.packet import Packet, PacketKind, header_checksum
from repro.sim.engine import SimulationError
from repro.sim.timerwheel import TimerHandle, TimerWheel
from repro.sim.units import us


class RetryExhaustedError(SimulationError):
    """A packet went unacknowledged through the whole retry budget."""


@dataclasses.dataclass(frozen=True)
class ReliabilityConfig:
    """Retransmission tunables (per NIC)."""

    enabled: bool = False
    #: time to wait for an ACK before the first retransmission; one RTT
    #: is ~400 ns wire + serialization, so 2 us rides out fabric jitter
    ack_timeout_ps: int = us(2)
    #: timeout multiplier per successive retry of one packet
    backoff: float = 2.0
    #: retransmissions allowed per packet before giving up
    max_retries: int = 8
    #: ceiling for the NACK_BUSY defer interval; without it a sender
    #: parked behind a long-lived flood backs off geometrically forever
    #: and outlives the receiver's drain by whole simulated seconds
    busy_backoff_cap_ps: int = us(64)

    def __post_init__(self) -> None:
        if self.ack_timeout_ps <= 0:
            raise ValueError(f"ack_timeout_ps must be > 0, got {self.ack_timeout_ps}")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.busy_backoff_cap_ps < self.ack_timeout_ps:
            raise ValueError(
                "busy_backoff_cap_ps must be >= ack_timeout_ps, got "
                f"{self.busy_backoff_cap_ps}"
            )


class _TxRecord:
    """One unacknowledged packet awaiting its ACK."""

    __slots__ = ("packet", "retries", "timeout_ps", "timer")

    def __init__(self, packet: Packet, timeout_ps: int) -> None:
        self.packet = packet
        self.retries = 0
        self.timeout_ps = timeout_ps
        self.timer: Optional[TimerHandle] = None


class ReliabilityLayer:
    """Per-NIC sequence/ACK/retransmit state machine."""

    def __init__(self, nic, config: ReliabilityConfig) -> None:
        # `nic` is a repro.nic.nic.Nic; typed loosely to avoid the cycle
        self.nic = nic
        self.engine = nic.engine
        self.config = config
        #: next outgoing rel_seq, per destination node
        self._next_tx_seq: Dict[int, int] = {}
        #: next in-order rel_seq expected, per source node
        self._expected_rx: Dict[int, int] = {}
        #: in-flight unacknowledged packets, keyed (dst, rel_seq)
        self._unacked: Dict[Tuple[int, int], _TxRecord] = {}
        #: early (out-of-order) arrivals, keyed (src, rel_seq)
        self._reorder: Dict[Tuple[int, int], Packet] = {}
        #: retransmit timers -- a wheel, because nearly every timer is
        #: cancelled by its ACK before firing: wheel cancels are O(1)
        #: dict deletes that never leave tombstones in the engine heap,
        #: and same-deadline bursts share one engine event
        self._timers = TimerWheel(nic.engine)
        registry = self.engine.metrics
        prefix = f"{nic.name}.rel"
        self._m_retransmits = registry.counter(f"{prefix}/retransmits")
        self._m_duplicates = registry.counter(f"{prefix}/duplicates_dropped")
        self._m_corrupt = registry.counter(f"{prefix}/corrupt_dropped")
        self._m_acks = registry.counter(f"{prefix}/acks_sent")
        self._m_nacks = registry.counter(f"{prefix}/nacks_sent")
        self._m_buffered = registry.counter(f"{prefix}/reordered_held")
        self._m_busy = registry.counter(f"{prefix}/busy_deferrals")
        self.retransmits = 0
        self.busy_deferrals = 0

    # ------------------------------------------------------- probe surface
    @property
    def unacked_count(self) -> int:
        """In-flight unacknowledged packets (the timeline probe reads it)."""
        return len(self._unacked)

    @property
    def reorder_held(self) -> int:
        """Out-of-order packets currently parked in the reorder buffer."""
        return len(self._reorder)

    def is_rx_head(self, packet: Packet) -> bool:
        """Is this arrival the next in-order packet from its source?

        Admission control treats the head specially: refusing it cannot
        shed load (its ACKed successors already sit in the reorder
        buffer) and can livelock the flow -- see
        :meth:`repro.nic.qdisc.AdmissionControl.admits`.
        """
        return packet.rel_seq == self._expected_rx.get(packet.src, 0)

    # --------------------------------------------------------------- tx side
    def send(self, packet: Packet) -> None:
        """Stamp, track, and inject one firmware data packet."""
        seq = self._next_tx_seq.get(packet.dst, 0)
        self._next_tx_seq[packet.dst] = seq + 1
        stamped = dataclasses.replace(packet, rel_seq=seq)
        stamped = dataclasses.replace(stamped, checksum=header_checksum(stamped))
        record = _TxRecord(stamped, self.config.ack_timeout_ps)
        self._unacked[(stamped.dst, seq)] = record
        self.nic.fabric.inject(stamped)
        self._arm_timer(record)

    def _arm_timer(self, record: _TxRecord) -> None:
        key = (record.packet.dst, record.packet.rel_seq)
        record.timer = self._timers.schedule(
            record.timeout_ps, lambda: self._on_timeout(key)
        )

    def _on_timeout(self, key: Tuple[int, int]) -> None:
        record = self._unacked.get(key)
        if record is None:  # ACKed between scheduling and firing
            return
        self._retransmit(record, reason="timeout")

    def _retransmit(self, record: _TxRecord, reason: str) -> None:
        packet = record.packet
        if record.timer is not None:
            record.timer.cancel()
        if record.retries >= self.config.max_retries:
            raise RetryExhaustedError(
                f"{self.nic.name}: {packet.kind.name} rel_seq={packet.rel_seq} "
                f"to node {packet.dst} unacknowledged after "
                f"{record.retries} retries"
            )
        record.retries += 1
        record.timeout_ps = round(record.timeout_ps * self.config.backoff)
        self.retransmits += 1
        self._m_retransmits.inc()
        lifecycle = self.engine.lifecycle
        if lifecycle.enabled:
            lifecycle.mark_uid(
                packet.send_id,
                "retransmit",
                detail={
                    "rel_seq": packet.rel_seq,
                    "attempt": record.retries,
                    "reason": reason,
                },
            )
        if self.engine.tracer.enabled:
            self.engine.tracer.instant(
                "network",
                f"{self.nic.name}.retransmit",
                {"dst": packet.dst, "rel_seq": packet.rel_seq, "reason": reason},
            )
        self.nic.fabric.inject(packet)
        self._arm_timer(record)

    def _defer_retransmit(self, record: _TxRecord) -> None:
        """Receiver alive but full (NACK_BUSY): back off, retry later.

        Resets the retry budget -- the budget guards against a dead peer
        or link, and a NACK_BUSY is proof of liveness -- but keeps
        multiplying the timeout, so a persistently full receiver sees an
        exponentially calmer sender instead of a wire-RTT ping-pong.
        """
        if record.timer is not None:
            record.timer.cancel()
        record.retries = 0
        record.timeout_ps = min(
            round(record.timeout_ps * self.config.backoff),
            self.config.busy_backoff_cap_ps,
        )
        self.busy_deferrals += 1
        self._m_busy.inc()
        if self.engine.tracer.enabled:
            self.engine.tracer.instant(
                "network",
                f"{self.nic.name}.busy_defer",
                {
                    "dst": record.packet.dst,
                    "rel_seq": record.packet.rel_seq,
                    "next_try_ps": record.timeout_ps,
                },
            )
        self._arm_timer(record)

    # --------------------------------------------------------------- rx side
    def on_wire_arrival(self, packet: Packet) -> None:
        """Everything that lands on the wire passes through here."""
        if header_checksum(packet) != packet.checksum:
            # corrupt header: drop it and (for data) ask for a resend now
            # rather than waiting out the sender's timeout.  A corrupt
            # ACK/NACK is just dropped -- the retransmit timer covers it.
            self._m_corrupt.inc()
            if packet.kind not in (
                PacketKind.ACK,
                PacketKind.NACK,
                PacketKind.NACK_BUSY,
            ):
                self._send_control(PacketKind.NACK, packet)
                self._m_nacks.inc()
            return
        if packet.kind is PacketKind.ACK:
            record = self._unacked.pop((packet.src, packet.rel_seq), None)
            if record is not None and record.timer is not None:
                record.timer.cancel()
            return
        if packet.kind is PacketKind.NACK:
            record = self._unacked.get((packet.src, packet.rel_seq))
            if record is not None:
                self._retransmit(record, reason="nack")
            return
        if packet.kind is PacketKind.NACK_BUSY:
            record = self._unacked.get((packet.src, packet.rel_seq))
            if record is not None:
                self._defer_retransmit(record)
            return
        # valid data packet
        expected = self._expected_rx.get(packet.src, 0)
        if packet.rel_seq < expected:
            # duplicate: our first ACK was lost, so the re-ACK is the
            # recovery (duplicates bypass admission -- the original was
            # already accepted and delivered)
            self._send_control(PacketKind.ACK, packet)
            self._m_acks.inc()
            self._m_duplicates.inc()
            return
        admission = self.nic.admission
        if admission is not None and not admission.admits(packet):
            # refused *before* the ACK: the sender keeps ownership and
            # retries once the buffers drain -- via its timeout under
            # the "drop" policy, via the NACK_BUSY schedule under "nack".
            # The packet is not parked in the reorder buffer either; a
            # flood must not hide there.
            if admission.policy == "nack":
                self._send_control(PacketKind.NACK_BUSY, packet)
                self._m_nacks.inc()
                admission.note_refused(packet, nacked=True)
            else:
                admission.note_refused(packet, nacked=False)
            return
        self._send_control(PacketKind.ACK, packet)
        self._m_acks.inc()
        if packet.rel_seq > expected:
            # early: hold until the gap fills so the firmware still sees
            # per-pair in-order delivery
            self._reorder[(packet.src, packet.rel_seq)] = packet
            self._m_buffered.inc()
            return
        self._deliver(packet)
        expected += 1
        while (held := self._reorder.pop((packet.src, expected), None)) is not None:
            self._deliver(held)
            expected += 1
        self._expected_rx[packet.src] = expected

    def _deliver(self, packet: Packet) -> None:
        self.nic.accept_packet(packet)

    def _send_control(self, kind: PacketKind, about: Packet) -> None:
        """Inject a link-level ACK/NACK (no processor involvement)."""
        control = Packet(
            kind=kind,
            src=self.nic.node_id,
            dst=about.src,
            match_bits=0,
            payload_bytes=0,
            rel_seq=about.rel_seq,
        )
        control = dataclasses.replace(control, checksum=header_checksum(control))
        self.nic.fabric.inject(control)
