"""Tx/Rx DMA engines.

The NIC of Figure 1 has send and receive DMA capabilities coupled to the
network FIFOs.  A transfer costs a fixed engine setup plus size/bandwidth,
and transfers on one engine serialize.  The firmware charges its *own*
descriptor-programming cycles separately (see
:class:`repro.proc.costmodel.NicCostModel`); this class models only the
engine.

Completion is exposed as a :class:`~repro.sim.signal.Signal` pulse plus a
completed-transfer queue the firmware drains -- the usual
doorbell/completion-ring split.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Any, Deque

from repro.sim.component import Component
from repro.sim.engine import Engine
from repro.sim.signal import Signal
from repro.sim.units import ns


@dataclasses.dataclass(frozen=True)
class DmaConfig:
    """Engine timing: setup + per-byte streaming."""

    setup_ps: int = ns(50)
    #: 0.004 bytes/ps = 4 GB/s (local bus side, faster than the wire)
    bandwidth_bytes_per_ps: float = 0.004


class DmaEngine(Component):
    """One DMA channel; transfers serialize in issue order."""

    def __init__(
        self,
        engine: Engine,
        name: str,
        config: Optional[DmaConfig] = None,
    ) -> None:
        super().__init__(engine, name)
        self.config = config if config is not None else DmaConfig()
        self._busy_until = 0
        #: pulses on every completed transfer
        self.done = Signal(f"{name}.done")
        #: cookies of completed transfers, in completion order
        self.completed: Deque[Any] = deque()
        self.transfers = 0
        self.bytes_moved = 0

    @property
    def busy(self) -> bool:
        """Is a transfer in flight right now?"""
        return self.now < self._busy_until

    def transfer_time_ps(self, size_bytes: int) -> int:
        """Engine occupancy for one transfer: setup + streaming."""
        return self.config.setup_ps + round(
            size_bytes / self.config.bandwidth_bytes_per_ps
        )

    def start(self, size_bytes: int, cookie: Any) -> int:
        """Queue a transfer; returns its completion timestamp (ps).

        ``cookie`` is handed back through :attr:`completed` so the
        firmware can associate the completion with its request.
        """
        if size_bytes < 0:
            raise ValueError(f"negative DMA size {size_bytes}")
        begin = max(self.now, self._busy_until)
        finish = begin + self.transfer_time_ps(size_bytes)
        self._busy_until = finish
        self.transfers += 1
        self.bytes_moved += size_bytes

        def complete() -> None:
            self.completed.append(cookie)
            self.done.pulse()

        self.engine.schedule_at(finish, complete)
        return finish
