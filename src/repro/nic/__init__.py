"""The NIC: firmware, queues, DMA engines and the ALPU integration.

The paper's MPI processing happens almost entirely on the NIC (Section
V-C): the host only dispatches requests and waits for completions.  The
NIC's embedded processor "continually executes a loop that performs four
actions: checking the network for new incoming messages; checking for any
new requests from the main processor; advancing active requests; and
updating the ALPU."

* :mod:`repro.nic.queues` -- the five firmware linked lists.
* :mod:`repro.nic.host_interface` -- commands/completions crossing the
  host-NIC boundary.
* :mod:`repro.nic.dma` -- Tx/Rx DMA engines.
* :mod:`repro.nic.alpu_device` -- the ALPU as a bus device: header,
  command and result FIFOs with event-driven pipeline timing.
* :mod:`repro.nic.driver` -- the Section IV software heuristics: when to
  start using the ALPU, batched inserts, result handling, and the
  software search of the not-yet-inserted list suffix.
* :mod:`repro.nic.firmware` -- the progress loop, in baseline
  (list-traversal) and ALPU-accelerated variants.
* :mod:`repro.nic.nic` -- the assembled NIC.
"""

from repro.nic.queues import QueueEntry, NicQueue, EntryKind
from repro.nic.host_interface import (
    PostRecv,
    PostSend,
    Completion,
    HostCommand,
)
from repro.nic.dma import DmaEngine, DmaConfig
from repro.nic.alpu_device import AlpuDevice
from repro.nic.driver import AlpuQueueDriver, DriverConfig
from repro.nic.firmware import NicFirmware, FirmwareConfig
from repro.nic.nic import Nic, NicConfig

__all__ = [
    "QueueEntry",
    "NicQueue",
    "EntryKind",
    "PostRecv",
    "PostSend",
    "Completion",
    "HostCommand",
    "DmaEngine",
    "DmaConfig",
    "AlpuDevice",
    "AlpuQueueDriver",
    "DriverConfig",
    "NicFirmware",
    "FirmwareConfig",
    "Nic",
    "NicConfig",
]
