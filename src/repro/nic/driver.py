"""The Section IV software heuristics: driving an ALPU from firmware.

One :class:`AlpuQueueDriver` pairs one ALPU device with one firmware
queue and implements the paper's management rules:

* the processor keeps the authoritative copy of the list; the ALPU's tag
  is a handle back into it (Section IV-B);
* a pointer (``NicQueue.alpu_count``) separates the ALPU-mirrored prefix
  from the software-only suffix;
* inserts are *conglomerated*: one START INSERT / INSERT* / STOP INSERT
  batch moves as much of the suffix as fits (Section IV-C);
* while waiting for the START ACKNOWLEDGE, match responses that drain
  from the result FIFO are buffered and handed to later result reads in
  order (Section IV-C/D);
* the driver only engages the ALPU once the queue reaches a configurable
  threshold ("the software must only use it when the queue is adequately
  long" -- the paper finds break-even near 5 entries; the default here is
  1, i.e. always engage, which is what the paper's own simulations do).

All public methods are generators meant to be driven from the firmware's
simulation process (``yield from driver.update()``); they charge processor
and bus time as they go.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Deque, Dict, Optional

from repro.core.commands import (
    Insert,
    MatchFailure,
    MatchSuccess,
    Response,
    StartAcknowledge,
    StartInsert,
    StopInsert,
)
from repro.nic.alpu_device import AlpuDevice
from repro.nic.queues import NicQueue, QueueEntry
from repro.proc.costmodel import NicCostModel
from repro.proc.processor import Processor
from repro.sim.engine import SimulationError
from repro.sim.process import delay, wait_on
from repro.sim.units import us


class AlpuStallError(SimulationError):
    """The ALPU result FIFO stayed empty past the driver's stall budget.

    Raised instead of silently re-arming the poll timeout forever; the
    firmware catches it to degrade onto a software backend.
    """


@dataclasses.dataclass(frozen=True)
class DriverConfig:
    """Tunables for the list-management heuristics."""

    #: engage the ALPU only when the queue has at least this many entries
    use_threshold: int = 1
    #: cap on entries moved per insert batch (None = as many as fit)
    max_batch: Optional[int] = None
    #: how long one blocking result read waits before its timeout expires
    result_timeout_ps: int = us(100)
    #: consecutive timeout expiries tolerated on one blocking read before
    #: the device is declared stalled (:class:`AlpuStallError`)
    stall_budget: int = 50


class AlpuQueueDriver:
    """Firmware-side management of one ALPU + its queue."""

    def __init__(
        self,
        device: AlpuDevice,
        queue: NicQueue,
        proc: Processor,
        cost: NicCostModel,
        config: Optional[DriverConfig] = None,
    ) -> None:
        self.device = device
        self.queue = queue
        self.proc = proc
        self.cost = cost
        self.config = config = config if config is not None else DriverConfig()
        #: match responses drained while waiting for a START ACKNOWLEDGE
        self._buffered: Deque[Response] = deque()
        #: 16-bit hardware tags in flight -> queue entries
        self._tag_table: Dict[int, QueueEntry] = {}
        # Tag allocation is lazy: fresh tags come from a counter (0, 1, 2,
        # ...) and recycled tags from a LIFO free list, which issues the
        # exact sequence an eagerly built ``list(range(max_tag, -1, -1))``
        # pool would without materialising 2**tag_width integers up front.
        self._recycled_tags: list = []
        self._next_fresh_tag = 0
        self._num_tags = 1 << device.alpu.config.tag_width
        #: software's tracked ALPU occupancy (Section IV-C "optimal
        #: implementation will also track this number")
        self.tracked_occupancy = 0
        self.batches = 0
        self.entries_inserted = 0
        self.aborted_batches = 0
        #: total result-read timeout expiries (healthy devices: 0)
        self.result_timeouts = 0
        self._m_result_timeouts = device.engine.metrics.counter(
            f"{device.name}/result_timeouts"
        )
        # with a threshold above 1, the driver starts disengaged: header
        # replication stays off so short queues pay zero ALPU overhead
        # (Section IV-C's delivery disable)
        if config.use_threshold > 1:
            device.hw_delivery_enabled = False

    @property
    def engaged(self) -> bool:
        """Is the hardware currently replicating headers to this ALPU?"""
        return self.device.hw_delivery_enabled

    @property
    def free_tag_count(self) -> int:
        """How many hardware tags are still available to hand out."""
        return len(self._recycled_tags) + self._num_tags - self._next_fresh_tag

    # ------------------------------------------------------------- results
    def read_result(self):
        """Blocking read of the next match response (oldest first).

        Consumes the driver's buffer before touching the bus.  Yields
        simulation commands; evaluates to a :class:`Response`.
        """
        if self._buffered:
            yield delay(self.proc.compute(self.cost.alpu_result_handle_cycles))
            return self._buffered.popleft()
        response = yield from self._read_result_raw()
        return response

    def _read_result_raw(self):
        """Blocking read straight from the device, bypassing the buffer.

        Used by the insert batch's acknowledge drain, which *fills* the
        buffer and must not consume it.

        A healthy device answers well inside one poll timeout.  Each
        expiry is counted (telemetry + trace instant); after
        ``stall_budget`` *consecutive* expiries the device is declared
        stuck and :class:`AlpuStallError` is raised rather than silently
        re-arming the wait forever.
        """
        expiries = 0
        while True:
            cost, response = self.device.bus_read_result()
            yield delay(cost)
            if response is not None:
                return response
            arrived = yield wait_on(
                self.device.result_fifo.not_empty,
                timeout_ps=self.config.result_timeout_ps,
            )
            if arrived:
                expiries = 0
                continue
            expiries += 1
            self.result_timeouts += 1
            self._m_result_timeouts.inc()
            engine = self.device.engine
            if engine.tracer.enabled:
                engine.tracer.instant(
                    "alpu",
                    f"{self.device.name}.result_timeout",
                    {"consecutive": expiries},
                )
            if expiries >= self.config.stall_budget:
                raise AlpuStallError(
                    f"{self.device.name}: result FIFO empty through "
                    f"{expiries} consecutive {self.config.result_timeout_ps} ps "
                    "poll timeouts -- device stalled"
                )

    def take_matched_entry(self, response: MatchSuccess) -> QueueEntry:
        """Resolve a MATCH SUCCESS tag to the queue entry and retire it."""
        entry = self._tag_table.pop(response.tag)
        self._recycled_tags.append(response.tag)
        self.tracked_occupancy -= 1
        return entry

    # -------------------------------------------------------------- update
    def update(self):
        """One "update the ALPU" step of the firmware loop.

        Batch-inserts the software suffix (as much as fits).  Evaluates to
        the number of entries moved.
        """
        if not self.engaged:
            if len(self.queue) < self.config.use_threshold:
                return 0
            # the queue got adequately long: turn header replication on
            # and start mirroring (a control-register write)
            yield delay(self.device.bus_write_delivery_enable(True))
        elif (
            self.config.use_threshold > 1
            and self.tracked_occupancy == 0
            and len(self.queue) < self.config.use_threshold
        ):
            # drained back below the threshold with nothing mirrored:
            # disengage so short-queue traffic pays no ALPU overhead
            yield delay(self.device.bus_write_delivery_enable(False))
            return 0
        suffix_len = len(self.queue) - self.queue.alpu_count
        if suffix_len == 0:
            return 0
        if self.tracked_occupancy >= self.device.alpu.capacity:
            return 0
        if not self.free_tag_count:
            return 0
        if any(isinstance(r, MatchFailure) for r in self._buffered):
            # an earlier drain parked MATCH FAILURE responses that the
            # firmware has not handled yet; their software-suffix searches
            # must run against the suffix as it stood, so no entry may
            # move into the ALPU until they are consumed (Section IV-C/D)
            return 0

        # START INSERT, then drain the result FIFO until the acknowledge
        # arrives, buffering any match responses that precede it
        yield delay(self.device.bus_write_command(StartInsert()))
        saw_failure = False
        while True:
            response = yield from self._read_result_raw()
            if isinstance(response, StartAcknowledge):
                free = response.free_entries
                break
            if isinstance(response, MatchFailure):
                saw_failure = True
            self._buffered.append(response)

        if saw_failure:
            # A match failed in the window before the ALPU entered insert
            # mode.  Its header must be searched against the suffix *as it
            # stands*; inserting first would hide the entry from that
            # search (the race of Section IV-C).  Abort the batch; the
            # failure is handled by the firmware, and the next loop
            # iteration retries the insert.
            yield delay(self.device.bus_write_command(StopInsert()))
            self.aborted_batches += 1
            return 0

        batch = min(suffix_len, free, self.free_tag_count)
        if self.config.max_batch is not None:
            batch = min(batch, self.config.max_batch)
        # inserts are posted writes; the command FIFO decouples us from
        # the ALPU's every-other-cycle insert rate
        insert_cost = 0
        batch_entries = self.queue.peek_software_suffix(batch)
        for entry in batch_entries:
            if self._recycled_tags:
                tag = self._recycled_tags.pop()
            else:
                tag = self._next_fresh_tag
                self._next_fresh_tag += 1
            self._tag_table[tag] = entry
            insert_cost += self.device.bus_write_command(
                Insert(match_bits=entry.bits, mask_bits=entry.mask, tag=tag)
            )
        if insert_cost:
            yield delay(insert_cost)
        yield delay(self.device.bus_write_command(StopInsert()))
        self.queue.mark_alpu_mirrored(batch_entries)
        self.tracked_occupancy += batch
        self.batches += 1
        self.entries_inserted += batch
        return batch

    # ----------------------------------------------------------- accounting
    def forget_software_removal(self, entry: QueueEntry) -> None:
        """A suffix entry was matched in software; nothing to do in the
        ALPU, but keep the hook for symmetry/diagnostics."""
        # entry was never inserted: no tag to free
        assert all(candidate is not entry for candidate in self._tag_table.values()), (
            f"{self.queue.name}: software removal of an ALPU-resident entry"
        )
