"""The NIC firmware progress loop (Section V-C).

"The NIC continually executes a loop that performs four actions: checking
the network for new incoming messages; checking for any new requests from
the main processor; advancing active requests; and updating the ALPU."

The loop is engine-agnostic: *how* the posted-receive and unexpected
queues are searched lives in a pluggable
:class:`~repro.nic.backends.MatchBackend` resolved by name from the
backend registry.  ``FirmwareConfig.matching`` selects it -- ``"list"``
(linear traversal, the Red Storm-like NIC of the paper's Figure 5(a,b)
and Figure 6 baseline), ``"hash"`` (the Section II alternative),
``"alpu"`` (the paper's accelerator; also selected by the legacy
``use_alpu=True`` flag), or any name registered via
:func:`repro.nic.backends.register_backend`.

Message protocol: eager for payloads up to ``eager_threshold`` (payload
travels with the header; unexpected payloads park in NIC memory), and a
rendezvous RTS/CTS/DATA handshake above it.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

from repro.core.match import MatchFormat, MatchRequest
from repro.network.packet import Packet, PacketKind
from repro.nic.backends import backend_spec, create_backend
from repro.nic.driver import AlpuStallError
from repro.nic.host_interface import Completion, PostRecv, PostSend
from repro.nic.queues import (
    ENTRY_BYTES,
    EntryKind,
    NicQueue,
    QueueEntry,
)
from repro.proc.costmodel import NicCostModel
from repro.sim.process import delay, wait_on
from repro.sim.units import us


@dataclasses.dataclass(frozen=True)
class FirmwareConfig:
    """Firmware behaviour knobs."""

    #: legacy switch for the ALPU engine; ``True`` resolves the backend
    #: to ``"alpu"`` regardless of ``matching`` (which must stay at its
    #: software default) -- kept for config back-compat
    use_alpu: bool = False
    #: matching engine, by backend-registry name: "list" (linear
    #: traversal, what every surveyed MPI uses), "hash" (the Section II
    #: alternative), "alpu", or any custom registered backend
    matching: str = "list"
    #: eager/rendezvous protocol switch (bytes)
    eager_threshold: int = 4096
    #: match-bit packing of the {context, source, tag} triple
    match_format: MatchFormat = dataclasses.field(default_factory=MatchFormat)

    def __post_init__(self) -> None:
        backend_spec(self.matching)  # raises ValueError when unknown
        if self.use_alpu and self.matching not in ("list", "alpu"):
            raise ValueError(
                f"matching={self.matching!r} conflicts with use_alpu=True: "
                "the legacy flag forces the 'alpu' backend and would "
                "silently override the requested software engine -- drop "
                "use_alpu or set matching='alpu'"
            )

    @property
    def backend_name(self) -> str:
        """The resolved backend-registry name for this configuration."""
        return "alpu" if self.use_alpu else self.matching

    @property
    def backend(self):
        """The resolved :class:`BackendSpec` (hardware needs included)."""
        return backend_spec(self.backend_name)


class NicFirmware:
    """The progress engine; runs as one simulation process per NIC."""

    def __init__(self, nic) -> None:
        # `nic` is a repro.nic.nic.Nic; typed loosely to avoid the cycle
        self.nic = nic
        self.cfg: FirmwareConfig = nic.config.firmware
        self.cost: NicCostModel = nic.cost
        self.proc = nic.proc
        self.fmt = self.cfg.match_format
        # the five primary data structures (Section V-C)
        self.posted_recv_q: NicQueue = nic.posted_recv_q
        self.unexpected_q: NicQueue = nic.unexpected_q
        self.send_q: NicQueue = nic.send_q
        #: active receives awaiting rendezvous data, keyed by entry uid
        self.active_recv_q: Dict[int, QueueEntry] = {}
        #: sends awaiting CTS, keyed by send uid
        self.pending_rndv_sends: Dict[int, Tuple[QueueEntry, int]] = {}
        # statistics the benchmarks report
        self.headers_matched = 0
        self.headers_unexpected = 0
        self.entries_traversed = 0
        self.loop_iterations = 0
        #: host completions delivered (send + receive); the timeline's
        #: progress series -- flat while the engine stays busy means a
        #: livelocked protocol
        self.completions_sent = 0
        # telemetry: the same tallies mirrored into the shared registry
        # (no-ops by default), a per-search traversal-length histogram,
        # and the tracer for search spans / queue events
        registry = nic.engine.metrics
        self.tracer = nic.engine.tracer
        #: the per-message flight recorder (no-op unless enabled); marks
        #: are plain calls and never charge simulated time
        self.lifecycle = nic.engine.lifecycle
        prefix = f"{nic.name}.fw"
        self._m_headers_matched = registry.counter(f"{prefix}/headers_matched")
        self._m_headers_unexpected = registry.counter(
            f"{prefix}/headers_unexpected"
        )
        self._m_entries_traversed = registry.counter(
            f"{prefix}/entries_traversed"
        )
        self._h_traversal = registry.histogram(f"{prefix}/traversal_length")
        registry.register_collector(
            f"{prefix}/loop_iterations", lambda: self.loop_iterations
        )
        #: (recv host_req_id, sender send uid) in pairing order -- the
        #: observable record tests compare against the matching oracle
        self.pairings: list = []
        #: the pluggable matching engine this firmware dispatches to
        self.backend = create_backend(self.cfg.backend_name)
        self.backend.attach(self)
        #: True once a stalled ALPU forced the fall-back to software
        self.degraded = False
        self._m_backend_degraded = registry.counter(f"{prefix}/backend_degraded")

    def record_traversal(self, visited: int) -> None:
        """Backends report per-search traversal work through this hook."""
        self.entries_traversed += visited
        self._m_entries_traversed.inc(visited)
        self._h_traversal.record(visited)

    # -------------------------------------------------- graceful degradation
    def _degrade(self, err: AlpuStallError, uid: int = 0) -> None:
        """A stalled ALPU took down the hardware backend: fall back to
        the software list engine, mid-run.

        Switching is instantaneous in simulated time (the recovery path
        is a handful of register writes and pointer updates next to the
        100 us-scale stall that triggered it).  The processor's
        authoritative queue copies make this safe: the ALPU only ever
        held redundant mirrors, so resetting each queue's mirrored-prefix
        pointer to zero re-exposes every entry to the software search.
        """
        if self.degraded:  # the fall-back engine cannot stall again
            raise err
        self.degraded = True
        nic = self.nic
        # stop hardware header replication (and the aligned flag records)
        nic.alpu_offline = True
        for device in nic.alpu_devices:
            device.hw_delivery_enabled = False
        nic.posted_pushed_flags.clear()
        nic.unexpected_pushed_flags.clear()
        # every entry is software-searchable again
        self.posted_recv_q.alpu_count = 0
        self.unexpected_q.alpu_count = 0
        self.backend = create_backend("list")
        self.backend.attach(self)
        self._m_backend_degraded.inc()
        if self.tracer.enabled:
            self.tracer.instant(
                "nic", f"{nic.name}.backend_degraded", {"error": str(err)}
            )
        if self.lifecycle.enabled and uid:
            self.lifecycle.mark_uid(
                uid, "backend_degraded", detail={"error": str(err)}
            )

    # ------------------------------------------------------------ main loop
    def run(self):
        """The four-action progress loop (Section V-C), forever.

        Each action's generator is only entered when its input source is
        non-empty; an empty source is exactly the case where the action
        would have returned False without yielding, so skipping the call
        changes no simulated behaviour, only Python overhead.
        """
        nic = self.nic
        rx_fifo = nic.rx_fifo
        cmd_fifo = nic.host_cmd_fifo
        tx_dma = nic.tx_dma
        rx_dma = nic.rx_dma
        kick = nic.kick
        idle_timeout = us(10)
        # priority scheduling (repro.nic.qdisc): host commands drain the
        # matching queues while network arrivals fill them, so under an
        # unexpected flood servicing the host first keeps receives flowing
        host_first = nic.config.qdisc.host_priority
        while True:
            self.loop_iterations += 1
            progress = False
            if host_first and len(cmd_fifo):
                yield from self._check_host()
                progress = True
            if len(rx_fifo):
                yield from self._check_network()
                progress = True
            if not host_first and len(cmd_fifo):
                yield from self._check_host()
                progress = True
            if tx_dma.completed or rx_dma.completed:
                progress |= yield from self._advance_active()
            backend = self.backend
            if backend.has_update:
                try:
                    progress |= yield from backend.update()
                except AlpuStallError as err:
                    self._degrade(err)
                    progress |= yield from self.backend.update()
            if not progress:
                yield wait_on(kick, timeout_ps=idle_timeout)

    # ======================================================== network input
    def _check_network(self):
        packet = self.nic.rx_fifo.try_pop()
        if packet is None:
            return False
        yield delay(
            self.proc.compute(self.cost.poll_cycles + self.cost.header_parse_cycles)
        )
        if self.lifecycle.enabled:
            self.lifecycle.mark_uid(
                packet.send_id, "nic_rx", detail={"kind": packet.kind.name}
            )
        if packet.kind in (PacketKind.EAGER, PacketKind.RNDV_RTS):
            yield from self._handle_match_packet(packet)
        elif packet.kind is PacketKind.RNDV_CTS:
            yield from self._handle_cts(packet)
        elif packet.kind is PacketKind.RNDV_DATA:
            yield from self._handle_rndv_data(packet)
        return True

    def _handle_match_packet(self, packet: Packet):
        """Run the incoming header against the posted receive queue."""
        request = MatchRequest(bits=packet.match_bits)
        rec = self.lifecycle
        if rec.enabled:
            visited_before = self.entries_traversed
            rec.mark_uid(
                packet.send_id,
                "match_search",
                detail={
                    "queue": self.posted_recv_q.name,
                    "depth": len(self.posted_recv_q),
                },
            )
        try:
            entry = yield from self.backend.match_arrival(request)
        except AlpuStallError as err:
            self._degrade(err, uid=packet.send_id)
            entry = yield from self.backend.match_arrival(request)
        if rec.enabled:
            rec.annotate_uid(
                packet.send_id,
                visited=self.entries_traversed - visited_before,
                hit=entry is not None,
                **rec.pop_search_notes(),
            )
        if entry is not None:
            self.headers_matched += 1
            self._m_headers_matched.inc()
            self.pairings.append((entry.host_req_id, packet.send_id))
            if rec.enabled:
                # the receive-side entry now carries the message through
                # delivery/DMA/completion; its host receive's completion
                # is the message's terminal event
                rec.alias_uid(entry.uid, packet.send_id)
                rec.mark_request(
                    entry.owner_rank,
                    entry.host_req_id,
                    "matched",
                    detail={"via": "arrival"},
                )
                rec.watch_completion(
                    entry.owner_rank, entry.host_req_id, packet.send_id
                )
            yield from self._deliver_to_receive(packet, entry)
        else:
            self.headers_unexpected += 1
            self._m_headers_unexpected.inc()
            yield from self._enqueue_unexpected(packet)

    def _deliver_to_receive(self, packet: Packet, entry: QueueEntry):
        """A header matched a posted receive: move the data, complete."""
        _, source, tag = self.fmt.unpack(packet.match_bits)
        entry.matched_source = source
        entry.matched_tag = tag
        entry.matched_size = packet.payload_bytes
        if packet.kind is PacketKind.EAGER:
            yield from self._start_recv_payload(entry, packet.payload_bytes)
        else:  # RNDV_RTS: grant the sender a clear-to-send
            if self.lifecycle.enabled:
                self.lifecycle.mark_uid(packet.send_id, "rndv_cts")
            yield delay(self.proc.compute(self.cost.rendezvous_cycles))
            self.active_recv_q[entry.uid] = entry
            self.nic.inject(
                Packet(
                    kind=PacketKind.RNDV_CTS,
                    src=self.nic.node_id,
                    dst=packet.src,
                    match_bits=0,
                    payload_bytes=0,
                    send_id=packet.send_id,
                    recv_id=entry.uid,
                )
            )

    def _start_recv_payload(self, entry: QueueEntry, payload_bytes: int):
        """DMA arrived payload to the host buffer, then complete."""
        if self.lifecycle.enabled:
            self.lifecycle.mark_uid(
                entry.uid, "deliver", detail={"bytes": payload_bytes}
            )
        if payload_bytes == 0:
            yield from self._complete_recv(entry)
            self._release(entry)
            return
        yield delay(self.proc.compute(self.cost.dma_setup_cycles))
        if self.lifecycle.enabled:
            self.lifecycle.mark_uid(entry.uid, "rx_dma")
        self.nic.rx_dma.start(payload_bytes, ("recv_done", entry))

    def _complete_recv(self, entry: QueueEntry):
        """Completion carrying the matched envelope (MPI_Status)."""
        if self.lifecycle.enabled:
            self.lifecycle.mark_uid(entry.uid, "completion")
        yield delay(self.proc.compute(self.cost.completion_cycles))
        self.completions_sent += 1
        link = self.nic.completion_link(self.nic.lproc_of(entry.owner_rank))
        link.send(
            Completion(
                req_id=entry.host_req_id,
                source=entry.matched_source,
                tag=entry.matched_tag,
                size=entry.matched_size,
            )
        )

    def _release(self, entry: QueueEntry) -> None:
        """Return an entry's block to the NIC allocator (any queue)."""
        if entry.addr:
            self.nic.allocator.free(entry.addr, ENTRY_BYTES)

    def _enqueue_unexpected(self, packet: Packet):
        """No posted receive matched: park the header (Section V-C)."""
        kind = (
            EntryKind.UNEXPECTED_EAGER
            if packet.kind is PacketKind.EAGER
            else EntryKind.UNEXPECTED_RNDV
        )
        if self.lifecycle.enabled:
            # post-append depth, matching the tracer instant below and
            # the posted_wait mark's convention (the entry being parked
            # counts itself); the mark just precedes the actual append
            self.lifecycle.mark_uid(
                packet.send_id,
                "unexpected_queue",
                detail={"depth": len(self.unexpected_q) + 1},
            )
        entry = self.unexpected_q.allocate_entry(
            kind=kind,
            bits=packet.match_bits,
            mask=0,
            size=packet.payload_bytes,
            peer_send_id=packet.send_id,
            src_node=packet.src,
        )
        cost = self.proc.compute(self.cost.enqueue_cycles)
        cost += self.proc.touch(entry.addr, ENTRY_BYTES, write=True)
        yield delay(cost)
        self.unexpected_q.append(entry)
        if self.tracer.enabled:
            self.tracer.instant(
                "nic",
                f"{self.nic.name}.unexpected_enqueue",
                {"depth": len(self.unexpected_q), "src": packet.src},
            )
        yield from self.backend.note_unexpected(entry)

    # ===================================================== rendezvous flows
    def _handle_cts(self, packet: Packet):
        """Sender side: receiver granted clear-to-send; stream the data."""
        record = self.pending_rndv_sends.pop(packet.send_id, None)
        if record is None:
            raise RuntimeError(
                f"nic{self.nic.node_id}: CTS for unknown send {packet.send_id}"
            )
        entry, dest = record
        if self.lifecycle.enabled:
            self.lifecycle.mark_uid(entry.uid, "rndv_data_dma")
        yield delay(self.proc.compute(self.cost.dma_setup_cycles))
        data = Packet(
            kind=PacketKind.RNDV_DATA,
            src=self.nic.node_id,
            dst=dest,
            match_bits=0,
            payload_bytes=entry.size,
            send_id=entry.uid,
            recv_id=packet.recv_id,
        )
        self.nic.tx_dma.start(entry.size, ("send_out", data, entry))

    def _handle_rndv_data(self, packet: Packet):
        """Receiver side: rendezvous payload arrived for an active recv."""
        entry = self.active_recv_q.pop(packet.recv_id, None)
        if entry is None:
            raise RuntimeError(
                f"nic{self.nic.node_id}: RNDV_DATA for unknown recv "
                f"{packet.recv_id}"
            )
        yield from self._start_recv_payload(entry, packet.payload_bytes)

    # ========================================================== host input
    def _check_host(self):
        command = self.nic.host_cmd_fifo.try_pop()
        if command is None:
            return False
        yield delay(self.proc.compute(self.cost.poll_cycles))
        if isinstance(command, PostRecv):
            yield from self._post_receive(command)
        elif isinstance(command, PostSend):
            yield from self._post_send(command)
        return True

    def _post_receive(self, command: PostRecv):
        """Search the unexpected queue, else post (Section II atomicity
        comes free: this loop is the only matching agent)."""
        bits, mask = self.fmt.pack_receive(
            self.nic.effective_context(command.context, command.rank),
            command.source,
            command.tag,
        )
        request = MatchRequest(bits=bits, mask=mask)
        rec = self.lifecycle
        if rec.enabled:
            search_began = self.nic.engine.now
            visited_before = self.entries_traversed
            rec.mark_request(
                command.rank,
                command.req_id,
                "unexpected_search",
                search_began,
                {
                    "queue": self.unexpected_q.name,
                    "depth": len(self.unexpected_q),
                },
            )
        try:
            unexpected = yield from self.backend.consume_unexpected(request)
        except AlpuStallError as err:
            self._degrade(err)
            unexpected = yield from self.backend.consume_unexpected(request)
        if rec.enabled:
            search_facts = dict(
                visited=self.entries_traversed - visited_before,
                hit=unexpected is not None,
                **rec.pop_search_notes(),
            )
            rec.annotate_request(command.rank, command.req_id, **search_facts)
        if unexpected is not None:
            self.pairings.append((command.req_id, unexpected.peer_send_id))
            if rec.enabled:
                rec.mark_request(
                    command.rank,
                    command.req_id,
                    "matched",
                    detail={"via": "unexpected"},
                )
                # retroactive message attribution: only now do we know
                # which parked message this search served.  Stamping the
                # search's start time keeps the mark monotone -- the
                # message was enqueued before the search began.
                rec.mark_uid(
                    unexpected.peer_send_id,
                    "unexpected_search",
                    search_began,
                    search_facts,
                )
                rec.alias_uid(unexpected.uid, unexpected.peer_send_id)
                rec.watch_completion(
                    command.rank, command.req_id, unexpected.peer_send_id
                )
            yield from self._consume_unexpected(command, unexpected)
            return
        entry = self.posted_recv_q.allocate_entry(
            kind=EntryKind.POSTED_RECV,
            bits=bits,
            mask=mask,
            size=command.size,
            host_req_id=command.req_id,
            owner_rank=command.rank,
        )
        cost = self.proc.compute(self.cost.enqueue_cycles)
        cost += self.proc.touch(entry.addr, ENTRY_BYTES, write=True)
        yield delay(cost)
        self.posted_recv_q.append(entry)
        if rec.enabled:
            rec.mark_request(
                command.rank,
                command.req_id,
                "posted_wait",
                detail={"depth": len(self.posted_recv_q)},
            )
        yield from self.backend.post_receive(entry)

    def _consume_unexpected(self, command: PostRecv, unexpected: QueueEntry):
        """The posted receive matched an already-arrived message.

        The unexpected entry itself becomes the active receive record; its
        block is released once the payload lands in the host buffer.
        """
        unexpected.host_req_id = command.req_id
        unexpected.owner_rank = command.rank
        _, source, tag = self.fmt.unpack(unexpected.bits)
        unexpected.matched_source = source
        unexpected.matched_tag = tag
        unexpected.matched_size = unexpected.size
        if unexpected.kind is EntryKind.UNEXPECTED_EAGER:
            # payload is parked in NIC memory; move it to the host buffer
            yield from self._start_recv_payload(unexpected, unexpected.size)
        else:  # rendezvous: grant the sender a CTS now
            if self.lifecycle.enabled:
                self.lifecycle.mark_uid(unexpected.uid, "rndv_cts")
            yield delay(self.proc.compute(self.cost.rendezvous_cycles))
            self.active_recv_q[unexpected.uid] = unexpected
            self.nic.inject(
                Packet(
                    kind=PacketKind.RNDV_CTS,
                    src=self.nic.node_id,
                    dst=unexpected.src_node,
                    match_bits=0,
                    payload_bytes=0,
                    send_id=unexpected.peer_send_id,
                    recv_id=unexpected.uid,
                )
            )

    def _post_send(self, command: PostSend):
        # the match word carries the *destination's* folded context and
        # the sender's global rank as the source field
        rec = self.lifecycle
        if rec.enabled:
            rec.mark_request(
                command.rank,
                command.req_id,
                "nic_post",
                detail={"size": command.size},
            )
        bits = self.fmt.pack(
            self.nic.effective_context(command.context, command.dest),
            command.rank,
            command.tag,
        )
        dest_node = self.nic.node_of(command.dest)
        entry = self.send_q.allocate_entry(
            kind=EntryKind.SEND,
            bits=bits,
            mask=0,
            size=command.size,
            host_req_id=command.req_id,
            owner_rank=command.rank,
        )
        if rec.enabled:
            # the lifecycle follows the wire entity from here on: packets
            # carry ``send_id=entry.uid``, so bind it to the send request
            rec.bind_uid(command.rank, command.req_id, entry.uid)
        cost = self.proc.compute(self.cost.enqueue_cycles)
        cost += self.proc.touch(entry.addr, ENTRY_BYTES, write=True)
        yield delay(cost)
        self.send_q.append(entry)
        if command.size <= self.cfg.eager_threshold:
            packet = Packet(
                kind=PacketKind.EAGER,
                src=self.nic.node_id,
                dst=dest_node,
                match_bits=bits,
                payload_bytes=command.size,
                send_id=entry.uid,
            )
            if command.size == 0:
                self.nic.inject(packet)
                yield from self._complete_to_host(command.req_id, command.rank)
                self.send_q.remove(entry)
                self._release(entry)
            else:
                yield delay(self.proc.compute(self.cost.dma_setup_cycles))
                if rec.enabled:
                    rec.mark_uid(entry.uid, "tx_dma")
                self.nic.tx_dma.start(command.size, ("send_out", packet, entry))
        else:
            self.pending_rndv_sends[entry.uid] = (entry, dest_node)
            self.nic.inject(
                Packet(
                    kind=PacketKind.RNDV_RTS,
                    src=self.nic.node_id,
                    dst=dest_node,
                    match_bits=bits,
                    payload_bytes=command.size,
                    send_id=entry.uid,
                )
            )

    # ===================================================== active requests
    def _advance_active(self):
        """Drain DMA completions: inject fetched sends, complete receives."""
        progress = False
        for dma in (self.nic.tx_dma, self.nic.rx_dma):
            while dma.completed:
                cookie = dma.completed.popleft()
                progress = True
                yield delay(self.proc.compute(self.cost.poll_cycles))
                if cookie[0] == "send_out":
                    _, packet, entry = cookie
                    self.nic.inject(packet)
                    yield from self._complete_to_host(
                        entry.host_req_id, entry.owner_rank
                    )
                    self.send_q.remove(entry)
                    self._release(entry)
                elif cookie[0] == "recv_done":
                    entry = cookie[1]
                    yield from self._complete_recv(entry)
                    self._release(entry)
                else:  # pragma: no cover - cookie protocol violation
                    raise RuntimeError(f"unknown DMA cookie {cookie!r}")
        return progress

    def _complete_to_host(self, req_id: int, owner_rank: int = 0):
        yield delay(self.proc.compute(self.cost.completion_cycles))
        self.completions_sent += 1
        link = self.nic.completion_link(self.nic.lproc_of(owner_rank))
        link.send(Completion(req_id=req_id))
