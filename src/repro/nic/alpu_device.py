"""The ALPU as a NIC bus device (Figure 1).

Wraps the behavioural :class:`~repro.core.alpu.Alpu` with the three
decoupling FIFOs and the pipeline timing of Section V-D:

* **header FIFO** -- fed *by hardware* when match-relevant packets arrive
  (posted-receive ALPU) or when receives are posted (unexpected ALPU);
  costs the processor nothing.
* **command FIFO** -- written by the processor over the 20 ns local bus.
* **result FIFO** -- read by the processor over the bus (a read is a
  request/response round trip: 40 ns).

A device process drains headers and commands: each match occupies the
pipeline for 7 ALPU cycles (14 ns at the 500 MHz ASIC-projected clock,
with no execution overlap), inserts occupy 2 cycles, and commands 1.
Responses appear in the result FIFO in protocol order.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from repro.core.alpu import Alpu, AlpuConfig
from repro.core.commands import Command, Insert, Response
from repro.core.match import MatchRequest
from repro.core.pipeline import AlpuTimingModel
from repro.proc.params import NIC_BUS_LATENCY_PS
from repro.sim.component import Component
from repro.sim.engine import Engine
from repro.sim.fifo import Fifo
from repro.sim.process import Process, delay, wait_on
from repro.sim.signal import Signal


@dataclasses.dataclass(frozen=True)
class AlpuFaultConfig:
    """Injectable device failure for recovery testing.

    ``mode="stall"`` freezes the device pipeline at ``at_ps``: headers and
    commands keep accumulating in the FIFOs but the result FIFO stops
    producing -- the stuck-device scenario the driver's stall budget and
    the firmware's backend degradation are built to survive.  The default
    ``mode="none"`` schedules nothing and changes nothing.
    """

    mode: str = "none"
    #: simulated time at which the fault trips
    at_ps: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ("none", "stall"):
            raise ValueError(f"unknown ALPU fault mode {self.mode!r}")
        if self.at_ps < 0:
            raise ValueError(f"at_ps must be >= 0, got {self.at_ps}")


class AlpuDevice(Component):
    """Event-driven ALPU with bus-visible FIFOs."""

    def __init__(
        self,
        engine: Engine,
        name: str,
        config: AlpuConfig,
        timing: Optional[AlpuTimingModel] = None,
        bus_latency_ps: int = NIC_BUS_LATENCY_PS,
        fault: Optional[AlpuFaultConfig] = None,
    ) -> None:
        super().__init__(engine, name)
        timing = timing if timing is not None else AlpuTimingModel()
        fault = fault if fault is not None else AlpuFaultConfig()
        self.alpu = Alpu(config, metrics=engine.metrics, name=name)
        self.timing = timing
        self.bus_latency_ps = bus_latency_ps
        self.header_fifo: Fifo[MatchRequest] = Fifo(name=f"{name}.headers")
        self.command_fifo: Fifo[Command] = Fifo(name=f"{name}.commands")
        self.result_fifo: Fifo[Response] = Fifo(name=f"{name}.results")
        #: hardware header-replication enable (Section IV-C: "the
        #: processor can disable the delivery of duplicate information
        #: ... to the ALPU until it is initialized").  The NIC's arrival
        #: hooks consult this before copying headers in; the driver
        #: toggles it through :meth:`bus_write_delivery_enable`.
        self.hw_delivery_enabled = True
        self._kick = Signal(f"{name}.kick")
        #: True once an injected fault froze the pipeline
        self.stalled = False
        #: a signal nobody ever pulses: the stalled pipeline parks on it
        self._stall_hold = Signal(f"{name}.stall_hold")
        self.fault = fault
        if fault.mode == "stall":
            engine.schedule(fault.at_ps, self._trip_stall)
        self._proc = Process(engine, self._run(), name=f"{name}.pipeline")

    def _trip_stall(self) -> None:
        """The injected fault fires: freeze the pipeline from now on."""
        self.stalled = True
        if self.engine.tracer.enabled:
            self.engine.tracer.instant("alpu", f"{self.name}.stall")
        # wake the pipeline so an idle device parks on the stall hold
        # instead of the kick (purely cosmetic; any later kick would park
        # it just the same)
        self._kick.pulse()

    # ----------------------------------------------------- hardware inputs
    def hw_push_header(self, request: MatchRequest) -> None:
        """Hardware-side header replication (free for the processor)."""
        self.header_fifo.push(request)
        self._kick.pulse()

    # --------------------------------------------------------- bus accesses
    def bus_write_command(self, command: Command) -> int:
        """Posted write of one command; returns the processor-side cost."""

        def deliver() -> None:
            self.command_fifo.push(command)
            self._kick.pulse()

        self.engine.schedule(self.bus_latency_ps, deliver)
        return self.bus_latency_ps

    def bus_write_delivery_enable(self, enabled: bool) -> int:
        """Toggle hardware header replication; returns processor cost.

        Modelled as a posted control-register write taking effect
        immediately (the register sits on the header path, not behind the
        command FIFO, so no in-flight header can observe a torn state:
        every header pushed before the write has a result coming, every
        later one does not).
        """
        self.hw_delivery_enabled = enabled
        return self.bus_latency_ps

    def bus_read_result(self) -> Tuple[int, Optional[Response]]:
        """Read the result FIFO head: a full bus round trip.

        Returns ``(cost_ps, response-or-None)``.  The cost is charged even
        when the FIFO turns out to be empty -- polling is not free.
        """
        cost = 2 * self.bus_latency_ps
        return cost, self.result_fifo.try_pop()

    # ------------------------------------------------------ device pipeline
    def _run(self):
        """The control loop: commands preempt headers between matches."""
        tracer = self.engine.tracer
        alpu = self.alpu
        command_fifo = self.command_fifo
        header_fifo = self.header_fifo
        result_push = self.result_fifo.push
        kick_wait = wait_on(self._kick)
        match_ps = self.timing.match_ps(alpu.config)
        while True:
            if self.stalled:
                # stuck device: FIFOs fill, results never come.  Park on a
                # signal that is never pulsed.
                yield wait_on(self._stall_hold)
                continue
            if len(command_fifo):
                command = command_fifo.pop()
                if tracer.enabled:
                    tracer.begin(
                        "alpu",
                        f"{self.name}.command",
                        {"command": type(command).__name__},
                    )
                yield delay(self._command_occupancy_ps(command))
                for response in alpu.submit(command):
                    result_push(response)
                if tracer.enabled:
                    tracer.end("alpu", f"{self.name}.command")
            elif len(header_fifo):
                request = header_fifo.pop()
                if tracer.enabled:
                    tracer.begin("alpu", f"{self.name}.match")
                yield delay(match_ps)
                responses = alpu.present_header(request)
                for response in responses:
                    result_push(response)
                if tracer.enabled:
                    tracer.end(
                        "alpu",
                        f"{self.name}.match",
                        {
                            "resolved": len(responses),
                            "occupancy": alpu.occupancy,
                        },
                    )
            else:
                yield kick_wait

    def _command_occupancy_ps(self, command: Command) -> int:
        if isinstance(command, Insert):
            occupancy = self.timing.insert_ps()
            # "Matches are stopped temporarily for each insert": a held
            # retry against the new entry costs one match pass
            if self.alpu.has_held_request:
                occupancy += self.timing.match_ps(self.alpu.config)
            return occupancy
        return self.timing.command_ps()
