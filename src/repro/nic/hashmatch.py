"""Deprecated location -- moved to :mod:`repro.nic.backends.hashmatch`.

The hash-based matching structures live with the other matching engines
under :mod:`repro.nic.backends` since the backend layer became pluggable.
This shim re-exports the public names so old imports keep working; new
code should import from the backends package.
"""

from __future__ import annotations

import warnings

from repro.nic.backends.hashmatch import (  # noqa: F401
    HashCosts,
    HashMatchTable,
    OpCost,
)

warnings.warn(
    "repro.nic.hashmatch moved to repro.nic.backends.hashmatch; "
    "this compatibility shim will be removed",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["HashCosts", "HashMatchTable", "OpCost"]
