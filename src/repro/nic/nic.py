"""The assembled NIC (Figure 1).

One :class:`Nic` bundles the embedded processor (500 MHz, 32 KB L1), local
memory allocator, Tx/Rx DMA engines, the host command/completion links,
and -- when enabled -- the two ALPU devices (posted-receive and
unexpected-message) with their drivers, all hanging off the 20 ns local
bus.  Hardware-side header replication is wired here:

* match-relevant packets (EAGER / RNDV_RTS) are copied into the
  posted-receive ALPU's header FIFO the moment they arrive;
* PostRecv commands are copied into the unexpected ALPU's header FIFO
  (with their wildcard mask as the input mask) the moment they arrive.

Neither copy costs the processor anything; that decoupling is the point
of the added FIFOs in the paper's Figure 1.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Optional

from repro.core.alpu import AlpuConfig
from repro.core.cell import CellKind
from repro.core.match import MatchRequest
from repro.core.pipeline import AlpuTimingModel
from repro.memory.layout import AddressAllocator
from repro.network.fabric import Fabric
from repro.network.packet import Packet, PacketKind
from repro.nic.alpu_device import AlpuDevice, AlpuFaultConfig
from repro.nic.dma import DmaConfig, DmaEngine
from repro.nic.driver import AlpuQueueDriver, DriverConfig
from repro.nic.firmware import FirmwareConfig, NicFirmware
from repro.nic.qdisc import AdmissionControl, QdiscConfig, create_discipline
from repro.nic.reliability import ReliabilityConfig, ReliabilityLayer
from repro.nic.host_interface import HOST_NIC_LATENCY_PS, PostRecv
from repro.nic.queues import NicQueue
from repro.proc.costmodel import NicCostModel
from repro.proc.params import NIC_PARAMS, make_nic_memory
from repro.proc.processor import Processor
from repro.sim.component import Component
from repro.sim.engine import Engine
from repro.sim.fifo import Fifo
from repro.sim.link import Link
from repro.sim.process import Process
from repro.sim.signal import Signal


@dataclasses.dataclass(frozen=True)
class NicConfig:
    """Everything configurable about one NIC."""

    firmware: FirmwareConfig = dataclasses.field(default_factory=FirmwareConfig)
    #: geometry of the posted-receive ALPU (None = per-kind default)
    alpu_posted: Optional[AlpuConfig] = None
    #: geometry of the unexpected-message ALPU
    alpu_unexpected: Optional[AlpuConfig] = None
    alpu_timing: AlpuTimingModel = dataclasses.field(default_factory=AlpuTimingModel)
    posted_driver: DriverConfig = dataclasses.field(default_factory=DriverConfig)
    unexpected_driver: DriverConfig = dataclasses.field(default_factory=DriverConfig)
    dma: DmaConfig = dataclasses.field(default_factory=DmaConfig)
    cost: NicCostModel = dataclasses.field(default_factory=NicCostModel)
    #: link-level retransmission (off by default: the zero-fault
    #: benchmarks never route packets through the reliability layer)
    reliability: ReliabilityConfig = dataclasses.field(
        default_factory=ReliabilityConfig
    )
    #: injectable ALPU device failure (recovery testing; default inert)
    alpu_fault: AlpuFaultConfig = dataclasses.field(
        default_factory=AlpuFaultConfig
    )
    #: queue discipline + admission control (repro.nic.qdisc); the
    #: default FIFO discipline is bit-identical to the historical queues
    qdisc: QdiscConfig = dataclasses.field(default_factory=QdiscConfig)
    #: MPI processes sharing this NIC (the paper's footnote 1: "extending
    #: it to support a limited number of processes is straightforward").
    #: With more than one, the NIC folds each local process id into the
    #: context field of the match word, so co-located processes share the
    #: queues and the ALPUs without ever cross-matching.
    ranks_per_node: int = 1

    def __post_init__(self) -> None:
        if self.qdisc.max_unexpected > 0 and not self.reliability.enabled:
            raise ValueError(
                "qdisc.max_unexpected needs the reliability layer: a "
                "refused packet is recovered by the sender's retransmit "
                "machinery, which only exists with "
                "reliability=ReliabilityConfig(enabled=True)"
            )

    @staticmethod
    def baseline() -> "NicConfig":
        """The Red Storm-like NIC: embedded processor only."""
        return NicConfig(firmware=FirmwareConfig(use_alpu=False))

    @staticmethod
    def with_backend(name: str, **firmware_kwargs) -> "NicConfig":
        """A NIC using any registered matching backend, by name.

        ``name`` must be registered with
        :func:`repro.nic.backends.register_backend`; backends registered
        with ``needs_alpu=True`` get default-geometry ALPUs (use
        :meth:`with_alpu` to size them).
        """
        return NicConfig(
            firmware=FirmwareConfig(matching=name, **firmware_kwargs)
        )

    @staticmethod
    def with_alpu(total_cells: int = 256, block_size: int = 16) -> "NicConfig":
        """A NIC with posted-receive and unexpected ALPUs of equal size."""
        return NicConfig(
            firmware=FirmwareConfig(use_alpu=True),
            alpu_posted=AlpuConfig(
                kind=CellKind.POSTED_RECEIVE,
                total_cells=total_cells,
                block_size=block_size,
            ),
            alpu_unexpected=AlpuConfig(
                kind=CellKind.UNEXPECTED,
                total_cells=total_cells,
                block_size=block_size,
            ),
        )


class Nic(Component):
    """One network interface with its firmware process."""

    def __init__(
        self,
        engine: Engine,
        node_id: int,
        fabric: Fabric,
        host_completion_fifo: Fifo,
        config: Optional[NicConfig] = None,
    ) -> None:
        super().__init__(engine, f"nic{node_id}")
        self.node_id = node_id
        self.fabric = fabric
        self.config = config = config if config is not None else NicConfig()
        self.cost = config.cost
        self.proc = Processor(
            engine, f"{self.name}.proc", NIC_PARAMS.clock_hz, make_nic_memory()
        )
        self.allocator = AddressAllocator(base=0x10_0000)
        #: anything-to-do wakeup for the firmware loop
        self.kick = Signal(f"{self.name}.kick")

        # the five primary data structures live in NIC memory; the two
        # matching queues carry the configured discipline (one instance
        # each -- disciplines hold per-queue shard state), the send queue
        # is always plain FIFO
        fmt = config.firmware.match_format
        self.posted_recv_q = NicQueue(
            f"{self.name}.postedRecvQ",
            self.allocator,
            discipline=create_discipline(config.qdisc, fmt),
        )
        self.unexpected_q = NicQueue(
            f"{self.name}.unexpectedQ",
            self.allocator,
            discipline=create_discipline(config.qdisc, fmt),
        )
        self.send_q = NicQueue(f"{self.name}.sendQ", self.allocator)
        if engine.metrics.enabled:
            for queue in (self.posted_recv_q, self.unexpected_q, self.send_q):
                queue.attach_depth_gauge(
                    engine.metrics.gauge(f"{queue.name}/depth")
                )
                # high-water marks ride every telemetry snapshot
                engine.metrics.register_collector(
                    f"{queue.name}/max_depth", (lambda q=queue: q.max_length)
                )
        #: buffer-occupancy admission control (None = everything admitted);
        #: consulted by the reliability layer's receive path
        self.admission: Optional[AdmissionControl] = (
            AdmissionControl(self, config.qdisc)
            if config.qdisc.max_unexpected > 0
            else None
        )

        # network side.  Without the reliability layer the NIC polls the
        # fabric's rx FIFO directly (the historical, bit-identical path);
        # with it, wire arrivals are filtered (checksum / duplicate /
        # reorder) and only accepted in-order packets reach the firmware.
        self.reliability: Optional[ReliabilityLayer] = None
        if config.reliability.enabled:
            self._wire_fifo = fabric.rx_fifo(node_id)
            self.rx_fifo = Fifo(name=f"{self.name}.rxaccepted")
            self.reliability = ReliabilityLayer(self, config.reliability)
            fabric.subscribe_rx(node_id, self._on_wire_packet)
        else:
            self.rx_fifo = fabric.rx_fifo(node_id)
            fabric.subscribe_rx(node_id, self._on_packet_arrival)
        #: set by the firmware when a stalled ALPU forces software-only
        #: matching; gates hardware header replication
        self.alpu_offline = False

        # DMA engines (Fig. 1: logically separate Tx and Rx)
        self.tx_dma = DmaEngine(engine, f"{self.name}.txdma", config.dma)
        self.rx_dma = DmaEngine(engine, f"{self.name}.rxdma", config.dma)
        self.tx_dma.done.observe(self.kick.pulse)
        self.rx_dma.done.observe(self.kick.pulse)

        # host side: commands arrive here; completions leave through one
        # link per local process (lproc 0 attaches at construction)
        self.host_cmd_fifo: Fifo = Fifo(name=f"{self.name}.hostcmd")
        self.host_completion_link = Link(
            engine,
            f"{self.name}.completions",
            dest=host_completion_fifo,
            latency_ps=HOST_NIC_LATENCY_PS,
        )
        self._completion_links = {0: self.host_completion_link}

        # the ALPUs and their drivers, built whenever the resolved
        # matching backend declares it needs them (needs_alpu=True in the
        # backend registry; the stock "alpu" backend does)
        self.posted_device: Optional[AlpuDevice] = None
        self.unexpected_device: Optional[AlpuDevice] = None
        self.posted_driver: Optional[AlpuQueueDriver] = None
        self.unexpected_driver: Optional[AlpuQueueDriver] = None
        if config.firmware.backend.needs_alpu:
            posted_cfg = config.alpu_posted or AlpuConfig(
                kind=CellKind.POSTED_RECEIVE
            )
            unexpected_cfg = config.alpu_unexpected or AlpuConfig(
                kind=CellKind.UNEXPECTED
            )
            self.posted_device = AlpuDevice(
                engine,
                f"{self.name}.alpu.posted",
                posted_cfg,
                config.alpu_timing,
                fault=config.alpu_fault,
            )
            self.unexpected_device = AlpuDevice(
                engine,
                f"{self.name}.alpu.unexpected",
                unexpected_cfg,
                config.alpu_timing,
                fault=config.alpu_fault,
            )
            self.posted_driver = AlpuQueueDriver(
                self.posted_device,
                self.posted_recv_q,
                self.proc,
                self.cost,
                config.posted_driver,
            )
            self.unexpected_driver = AlpuQueueDriver(
                self.unexpected_device,
                self.unexpected_q,
                self.proc,
                self.cost,
                config.unexpected_driver,
            )

        # per-arrival records of whether the hardware replicated the
        # header into each ALPU (aligned FIFO-for-FIFO with the packets /
        # commands the firmware will process; needed because the driver
        # can disable replication while the queue is short)
        self.posted_pushed_flags = deque()
        self.unexpected_pushed_flags = deque()

        self.firmware = NicFirmware(self)
        self._proc = Process(engine, self.firmware.run(), name=f"{self.name}.fw")

    @property
    def alpu_devices(self) -> tuple:
        """The assembled ALPU devices (empty for software-only backends)."""
        return tuple(
            device
            for device in (self.posted_device, self.unexpected_device)
            if device is not None
        )

    def reset_queue_stats(self) -> None:
        """Re-arm every queue's high-water mark at its current depth.

        Call between measurement phases (e.g. after a warmup) so the
        ``<queue>/max_depth`` telemetry reflects only the phase under
        study rather than the whole process lifetime.
        """
        for queue in (self.posted_recv_q, self.unexpected_q, self.send_q):
            queue.reset_stats()

    # -------------------------------------------------------- hardware hooks
    def _on_wire_packet(self, packet: Packet) -> None:
        """Wire delivery with the reliability layer in front.

        Drains the fabric's rx FIFO (one packet per callback, so the pop
        is exactly the delivered packet) and lets the layer decide what
        the firmware gets to see.
        """
        popped = self._wire_fifo.try_pop()
        assert popped is packet, "wire FIFO / delivery callback misaligned"
        self.reliability.on_wire_arrival(packet)

    def accept_packet(self, packet: Packet) -> None:
        """Reliability layer verdict: this packet reaches the firmware."""
        self.rx_fifo.push(packet)
        self._on_packet_arrival(packet)

    def _on_packet_arrival(self, packet: Packet) -> None:
        """Hardware actions at packet delivery (no processor involvement)."""
        lifecycle = self.engine.lifecycle
        if lifecycle.enabled:
            lifecycle.mark_uid(
                packet.send_id,
                "rx_queue",
                detail={"node": self.node_id, "kind": packet.kind.name},
            )
        if (
            self.posted_device is not None
            and not self.alpu_offline
            and packet.kind
            in (
                PacketKind.EAGER,
                PacketKind.RNDV_RTS,
            )
        ):
            pushed = self.posted_device.hw_delivery_enabled
            if pushed:
                self.posted_device.hw_push_header(
                    MatchRequest(bits=packet.match_bits)
                )
            self.posted_pushed_flags.append(pushed)
        self.kick.pulse()

    def deliver_host_command(self, command) -> None:
        """Called by the host->NIC link when a command lands."""
        if (
            self.unexpected_device is not None
            and not self.alpu_offline
            and isinstance(command, PostRecv)
        ):
            pushed = self.unexpected_device.hw_delivery_enabled
            if pushed:
                fmt = self.config.firmware.match_format
                bits, mask = fmt.pack_receive(
                    self.effective_context(command.context, command.rank),
                    command.source,
                    command.tag,
                )
                self.unexpected_device.hw_push_header(
                    MatchRequest(bits=bits, mask=mask)
                )
            self.unexpected_pushed_flags.append(pushed)
        self.kick.pulse()

    def inject(self, packet: Packet) -> None:
        """Hand a packet to the Tx FIFO / wire (tracked when reliable)."""
        if self.reliability is not None:
            self.reliability.send(packet)
        else:
            self.fabric.inject(packet)

    # ------------------------------------------------------- multi-process
    #: context-field bits below the folded local process id
    PID_CONTEXT_SHIFT = 8

    def attach_completion_fifo(self, lproc: int, fifo: Fifo) -> None:
        """Attach one more local process's completion path (lproc > 0)."""
        if not 0 < lproc < self.config.ranks_per_node:
            raise ValueError(f"bad local process id {lproc}")
        self._completion_links[lproc] = Link(
            self.engine,
            f"{self.name}.completions{lproc}",
            dest=fifo,
            latency_ps=HOST_NIC_LATENCY_PS,
        )

    def completion_link(self, lproc: int) -> Link:
        """The completion link of one local process."""
        return self._completion_links[lproc]

    def lproc_of(self, rank: int) -> int:
        """Local process index of a global rank (on whichever node).

        The world maps rank r to node ``r // ranks_per_node``, local
        process ``r % ranks_per_node``; senders use this to fold the
        *destination's* process id into outgoing match bits.
        """
        return rank % self.config.ranks_per_node

    def node_of(self, rank: int) -> int:
        """Node hosting a global rank."""
        return rank // self.config.ranks_per_node

    def effective_context(self, context: int, owner_rank: int) -> int:
        """Fold the owner's local process id into the context field.

        With one process per node this is the identity.  With several,
        the id occupies the context field's high bits -- the "straight-
        forward" hardware extension of the paper's footnote 1: the same
        cells and the same compare logic, with part of the match word
        spent on process isolation.
        """
        rpn = self.config.ranks_per_node
        if rpn == 1:
            return context
        lproc = self.lproc_of(owner_rank)
        limit = 1 << self.PID_CONTEXT_SHIFT
        if context >= limit:
            raise ValueError(
                f"context {context} needs the bits reserved for process "
                f"ids (< {limit} with ranks_per_node={rpn})"
            )
        return context + (lproc << self.PID_CONTEXT_SHIFT)
