"""The baseline linear-list matching engine.

"Typically, MPI implementations search these queues linearly" -- the Red
Storm-like NIC of the paper's Figure 5(a,b) and Figure 6 baseline.  Both
queues are searched by traversing the linked lists, with every entry
visit charging compute cycles and a cache-modelled memory access.
"""

from __future__ import annotations

from repro.core.match import MatchRequest
from repro.nic.backends.base import MatchBackend


class ListSearchBackend(MatchBackend):
    """Linear traversal of both queues (the ``"list"`` engine)."""

    name = "list"

    def match_arrival(self, request: MatchRequest):
        entry = yield from self.software_search(self.posted_q, request)
        return entry

    def consume_unexpected(self, request: MatchRequest):
        entry = yield from self.software_search(self.unexpected_q, request)
        return entry
