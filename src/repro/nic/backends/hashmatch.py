"""Hash-based software matching -- the alternative Section II dismisses.

"In order to reduce the search cost, approaches using hash tables have
been explored.  Hash tables can significantly reduce the time needed to
find a matching entry, but can also significantly increase the time
needed to insert an entry into the list. ... Hashing is also complicated
by the need to support wildcard matching and maintain ordering
semantics."

This module implements that alternative faithfully so the repository can
measure the trade-off the paper argues from:

* **Posted-receive side.**  Receives are stored in buckets keyed by their
  own wildcard class: (context, source, tag), (context, *, tag),
  (context, source, *), (context, *, *).  An incoming message probes all
  four classes and takes the candidate with the lowest global sequence
  number -- that is the only way a hash can preserve MPI's ordered
  first-match semantics when wildcards are present, and it is why the
  "fast" path still costs four probes.
* **Unexpected side.**  Arrived headers are exact, so they hash on the
  full triple.  A receive *without* wildcards probes one bucket; a
  receive with ANY_SOURCE (the common wildcard, per the paper's survey)
  cannot be bucket-addressed and must fall back to scanning -- the
  reverse-lookup problem of Section II.

Every operation returns the memory lines it touched and the cycles it
burned so the firmware charges honest time: inserts pay a hash + two
scattered line writes (vs. one sequential write for the list), which is
exactly the regression "especially noticeable in the zero-length
ping-pong latency test".
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.core.match import MatchFormat, MatchRequest
from repro.nic.queues import QueueEntry

#: wildcard-class keys for the posted-receive table
EXACT = 0
ANY_SRC = 1
ANY_TAG_CLASS = 2
ANY_BOTH = 3


@dataclasses.dataclass(frozen=True)
class HashCosts:
    """Cycle charges for hash-engine primitives (NIC processor)."""

    #: compute one hash and locate the bucket head
    probe_cycles: int = 12
    #: compare one candidate within a bucket (same work as a list visit)
    compare_cycles: int = 7
    #: link an entry into a bucket (hash + pointer splice + seq update)
    insert_cycles: int = 24
    #: unlink an entry from its bucket
    remove_cycles: int = 10


@dataclasses.dataclass
class OpCost:
    """What an operation cost: cycles plus the memory lines touched."""

    cycles: int = 0
    touches: List[Tuple[int, int, bool]] = dataclasses.field(default_factory=list)

    def add_touch(self, addr: int, size: int = 64, write: bool = False) -> None:
        """Record one memory reference this operation performed."""
        self.touches.append((addr, size, write))


class HashMatchTable:
    """One hashed match structure (posted-receive or unexpected side)."""

    def __init__(
        self,
        fmt: MatchFormat,
        *,
        num_buckets: int = 64,
        bucket_base_addr: int = 0x80_0000,
        costs: HashCosts = HashCosts(),
    ) -> None:
        self.fmt = fmt
        self.num_buckets = num_buckets
        self.bucket_base_addr = bucket_base_addr
        self.costs = costs
        self._seq = 0
        #: (wildcard_class, bucket_index) -> ordered [(seq, entry), ...]
        self._buckets: Dict[Tuple[int, int], List[Tuple[int, QueueEntry]]] = {}
        self._sequence_of: Dict[int, int] = {}  # entry uid -> seq
        self.inserts = 0
        self.probes = 0

    # ------------------------------------------------------------- hashing
    def _bucket_index(self, context: int, source: int, tag: int) -> int:
        # a multiplicative hash; quality barely matters at these sizes
        key = (context * 0x9E3779B1 + source * 0x85EBCA77 + tag * 0xC2B2AE3D)
        return (key >> 7) % self.num_buckets

    def _bucket_addr(self, wildcard_class: int, index: int) -> int:
        return self.bucket_base_addr + (wildcard_class * self.num_buckets + index) * 64

    def _classify(self, entry: QueueEntry) -> Tuple[int, int, int, int]:
        """Wildcard class + the key fields of a stored entry."""
        context, source, tag = self.fmt.unpack(entry.bits)
        source_wild = bool(entry.mask & self.fmt.source_field_mask)
        tag_wild = bool(entry.mask & self.fmt.tag_field_mask)
        if source_wild and tag_wild:
            return ANY_BOTH, context, 0, 0
        if source_wild:
            return ANY_SRC, context, 0, tag
        if tag_wild:
            return ANY_TAG_CLASS, context, source, 0
        return EXACT, context, source, tag

    # ------------------------------------------------------------- inserts
    def insert(self, entry: QueueEntry) -> OpCost:
        """Add an entry; returns the cost the firmware must charge."""
        wildcard_class, context, source, tag = self._classify(entry)
        index = self._bucket_index(context, source, tag)
        bucket = self._buckets.setdefault((wildcard_class, index), [])
        bucket.append((self._seq, entry))
        self._sequence_of[entry.uid] = self._seq
        self._seq += 1
        self.inserts += 1
        cost = OpCost(cycles=self.costs.insert_cycles)
        cost.add_touch(self._bucket_addr(wildcard_class, index), write=True)
        cost.add_touch(entry.addr, 128, write=True)
        return cost

    def remove(self, entry: QueueEntry) -> OpCost:
        """Unlink an entry (it matched, or was cancelled)."""
        wildcard_class, context, source, tag = self._classify(entry)
        index = self._bucket_index(context, source, tag)
        bucket = self._buckets.get((wildcard_class, index), [])
        for position, (_, candidate) in enumerate(bucket):
            if candidate is entry:
                del bucket[position]
                break
        else:  # pragma: no cover - table/queue desync would be a bug
            raise KeyError(f"entry {entry.uid} not in hash table")
        self._sequence_of.pop(entry.uid, None)
        cost = OpCost(cycles=self.costs.remove_cycles)
        cost.add_touch(self._bucket_addr(wildcard_class, index), write=True)
        return cost

    # ----------------------------------------------------- posted-side match
    def match_incoming(self, request: MatchRequest) -> Tuple[Optional[QueueEntry], OpCost]:
        """An incoming message probes all four wildcard classes.

        MPI ordering: among every candidate whose pattern accepts the
        message, the lowest global sequence number (the oldest posted
        receive) wins -- bucket locality cannot shortcut that.
        """
        context, source, tag = self.fmt.unpack(request.bits)
        probes = [
            (EXACT, self._bucket_index(context, source, tag)),
            (ANY_SRC, self._bucket_index(context, 0, tag)),
            (ANY_TAG_CLASS, self._bucket_index(context, source, 0)),
            (ANY_BOTH, self._bucket_index(context, 0, 0)),
        ]
        cost = OpCost()
        best: Optional[Tuple[int, QueueEntry]] = None
        for wildcard_class, index in probes:
            cost.cycles += self.costs.probe_cycles
            cost.add_touch(self._bucket_addr(wildcard_class, index))
            self.probes += 1
            for seq, entry in self._buckets.get((wildcard_class, index), []):
                cost.cycles += self.costs.compare_cycles
                cost.add_touch(entry.addr)
                if entry.matches(request) and (best is None or seq < best[0]):
                    best = (seq, entry)
                    break  # within a bucket, entries are seq-ordered
        if best is None:
            return None, cost
        entry = best[1]
        removal = self.remove(entry)
        cost.cycles += removal.cycles
        cost.touches.extend(removal.touches)
        return entry, cost

    # -------------------------------------------------- unexpected-side match
    def match_posted_receive(
        self, request: MatchRequest
    ) -> Tuple[Optional[QueueEntry], OpCost]:
        """A receive being posted searches stored *exact* headers.

        Without wildcards: one bucket probe.  With ANY_SOURCE or ANY_TAG
        the bucket address is unknowable -- "unexpected messages actually
        require a reverse lookup" -- and the table degenerates to a full
        scan in sequence order.
        """
        cost = OpCost()
        source_wild = bool(request.mask & self.fmt.source_field_mask)
        tag_wild = bool(request.mask & self.fmt.tag_field_mask)
        if not source_wild and not tag_wild:
            context, source, tag = self.fmt.unpack(request.bits)
            index = self._bucket_index(context, source, tag)
            cost.cycles += self.costs.probe_cycles
            cost.add_touch(self._bucket_addr(EXACT, index))
            self.probes += 1
            for seq, entry in self._buckets.get((EXACT, index), []):
                cost.cycles += self.costs.compare_cycles
                cost.add_touch(entry.addr)
                if entry.matches(request):
                    removal = self.remove(entry)
                    cost.cycles += removal.cycles
                    cost.touches.extend(removal.touches)
                    return entry, cost
            return None, cost
        # wildcard reverse lookup: scan everything, oldest first
        candidates: List[Tuple[int, QueueEntry]] = []
        for (wildcard_class, index), bucket in self._buckets.items():
            cost.cycles += self.costs.probe_cycles
            cost.add_touch(self._bucket_addr(wildcard_class, index))
            self.probes += 1
            candidates.extend(bucket)
        candidates.sort(key=lambda pair: pair[0])
        for seq, entry in candidates:
            cost.cycles += self.costs.compare_cycles
            cost.add_touch(entry.addr)
            if entry.matches(request):
                removal = self.remove(entry)
                cost.cycles += removal.cycles
                cost.touches.extend(removal.touches)
                return entry, cost
        return None, cost

    # ------------------------------------------------------------ observers
    def __len__(self) -> int:
        return len(self._sequence_of)

    def entries_in_order(self) -> List[QueueEntry]:
        """All entries, oldest first (diagnostics/differential tests)."""
        everything: List[Tuple[int, QueueEntry]] = []
        for bucket in self._buckets.values():
            everything.extend(bucket)
        everything.sort(key=lambda pair: pair[0])
        return [entry for _, entry in everything]
