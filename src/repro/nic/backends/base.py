"""The matching-backend protocol the NIC firmware dispatches through.

A :class:`MatchBackend` owns *how* the posted-receive and unexpected
queues are searched and indexed; the firmware
(:class:`~repro.nic.firmware.NicFirmware`) owns everything else -- the
progress loop, the eager/rendezvous protocol, DMA and completions.  The
split follows the queue-management literature's treatment of the
queue-manipulation engine as a swappable unit behind a fixed interface.

All protocol methods are **simulation generators**: they are driven from
the firmware's process with ``yield from`` and charge processor cycles,
cache-modelled memory touches (via the
:class:`~repro.nic.backends.hashmatch.OpCost` path) and bus time as they
go.  A method that costs nothing simply returns without yielding.

The four core operations (plus two indexing hooks and a maintenance
hook):

``match_arrival(request)``
    An incoming header searches the posted-receive queue.  On a hit the
    backend unlinks the entry from the queue (charging dequeue costs)
    and evaluates to it; otherwise evaluates to ``None``.
``consume_unexpected(request)``
    A receive being posted searches the unexpected queue, same contract.
``post_receive(entry)``
    A receive that matched nothing was appended to the posted queue;
    index it (hash insert, ALPU mirror bookkeeping, or nothing).
``note_unexpected(entry)``
    An arrived header was parked on the unexpected queue; index it.
``remove(entry, queue)``
    Explicitly unlink an entry (cancellation and diagnostics).
``update()``
    One "update the engine" step of the firmware loop (the ALPU's batch
    inserts live here).  Evaluates to True when it made progress.

Backends are created through the registry
(:func:`~repro.nic.backends.registry.register_backend`) and wired to one
firmware via :meth:`MatchBackend.attach`.
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.core.match import MatchRequest
from repro.nic.queues import ENTRY_TOUCH_BYTES, NicQueue, QueueEntry
from repro.sim.process import delay


class MatchBackend(abc.ABC):
    """One NIC's pluggable matching engine (see module docstring)."""

    #: registry name; informational (set by subclasses)
    name: str = "?"
    #: True when :meth:`update` does real per-loop maintenance; the
    #: firmware skips the call (and the generator it would allocate)
    #: every loop iteration when this is False
    has_update: bool = False

    # ------------------------------------------------------------- wiring
    def attach(self, firmware) -> None:
        """Bind this backend to one firmware's queues and cost models."""
        self.fw = firmware
        self.nic = firmware.nic
        self.proc = firmware.proc
        self.cost = firmware.cost
        self.fmt = firmware.fmt
        self.posted_q: NicQueue = firmware.posted_recv_q
        self.unexpected_q: NicQueue = firmware.unexpected_q
        self._setup()

    def _setup(self) -> None:
        """Subclass hook run once the firmware references are in place."""

    # ----------------------------------------------------------- protocol
    @abc.abstractmethod
    def match_arrival(self, request: MatchRequest):
        """Search the posted-receive queue for an incoming header."""

    @abc.abstractmethod
    def consume_unexpected(self, request: MatchRequest):
        """Search the unexpected queue for a receive being posted."""

    def post_receive(self, entry: QueueEntry):
        """Index a receive just appended to the posted queue (no-op)."""
        return None
        yield  # pragma: no cover - makes this a generator

    def note_unexpected(self, entry: QueueEntry):
        """Index a header just parked on the unexpected queue (no-op)."""
        return None
        yield  # pragma: no cover - makes this a generator

    def remove(self, entry: QueueEntry, queue: NicQueue):
        """Explicitly unlink an entry from one of the two queues."""
        queue.remove(entry)
        return None
        yield  # pragma: no cover - makes this a generator

    def update(self):
        """Per-loop maintenance; evaluates to True on progress (no-op)."""
        return False
        yield  # pragma: no cover - makes this a generator

    # ------------------------------------------------------ shared helpers
    def charge_ps(self, op_cost) -> int:
        """Charge an :class:`OpCost` against the processor; returns the ps.

        Not a generator: callers ``yield delay(...)`` the result themselves
        (usually folded into one delay with neighbouring charges), so the
        per-operation generator that ``charge`` used to allocate is gone
        from the hash backend's hot path.
        """
        proc = self.proc
        touch = proc.touch
        total = proc.compute(op_cost.cycles)
        for addr, size, write in op_cost.touches:
            total += touch(addr, size, write=write)
        return total

    def charge(self, op_cost):
        """Charge an :class:`OpCost`: cycles plus cache-modelled lines."""
        total = self.charge_ps(op_cost)
        if total:
            yield delay(total)

    def retire(self, entry: QueueEntry, queue: NicQueue):
        """Unlink a matched entry, charging the dequeue + state-line cost.

        The matched entry's request state lives in its second cache line.
        """
        queue.remove(entry)
        yield delay(
            self.proc.compute(self.cost.dequeue_cycles)
            + self.proc.touch(entry.addr + 64, 64, write=True)
        )

    def software_search(
        self,
        queue: NicQueue,
        request: MatchRequest,
        *,
        suffix_only: bool = False,
    ):
        """Linear traversal with per-entry compute + cache charges.

        The engines every surveyed MPI uses (and the ALPU's MATCH FAILURE
        fallback, with ``suffix_only=True``).  Evaluates to the matched
        entry (already unlinked) or ``None``.

        *Which* entries are visited, and in what order, comes from the
        queue's discipline (:mod:`repro.nic.qdisc`): plain append order
        under the default FIFO discipline (bit-identical to the
        historical list walk), shard-narrowed under ``"sharded"``.
        """
        tracer = self.fw.tracer
        tracing = tracer.enabled
        if tracing:
            tracer.begin("nic", f"{self.nic.name}.search.{queue.name}")
        entries = queue.search_candidates(request, suffix_only=suffix_only)
        cost = 0
        found: Optional[QueueEntry] = None
        visited = 0
        proc = self.proc
        touch = proc.touch
        req_bits = request.bits
        req_mask = request.mask
        for entry in entries:
            # per-visit charge: one cache line; the compare is the ternary
            # rule of repro.core.match.matches with both masks honoured
            cost += touch(entry.addr, ENTRY_TOUCH_BYTES)
            visited += 1
            if not (entry.bits ^ req_bits) & ~(entry.mask | req_mask):
                found = entry
                break
        # compare cycles are linear in visits (cycles() is exact integer
        # ps-per-cycle), so one compute() call charges the identical total
        cost += proc.compute(visited * self.cost.entry_compare_cycles)
        self.fw.record_traversal(visited)
        if cost:
            yield delay(cost)
        if found is not None:
            yield from self.retire(found, queue)
        if tracing:
            tracer.end(
                "nic",
                f"{self.nic.name}.search.{queue.name}",
                {"visited": visited, "hit": found is not None},
            )
        return found
