"""Named-factory registries for pluggable engines.

:class:`Registry` is a tiny generic name -> value store with uniform
error reporting; the module-level functions wrap one instance of it as
*the* matching-backend registry used by
:class:`~repro.nic.firmware.FirmwareConfig` and
:class:`~repro.nic.nic.Nic`.  Other pluggable seams (the Portals-lite
matchers in :mod:`repro.portals.table`) reuse :class:`Registry` with
their own instances.

Registering a backend makes its name a valid ``FirmwareConfig.matching``
value; ``needs_alpu=True`` additionally tells the NIC assembly to build
the two ALPU devices and their drivers before the firmware starts.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Generic, Tuple, TypeVar

T = TypeVar("T")


class Registry(Generic[T]):
    """A name -> value registry with helpful unknown-name errors."""

    def __init__(self, kind: str) -> None:
        #: human label used in error messages ("matching engine", ...)
        self.kind = kind
        self._values: Dict[str, T] = {}

    def register(self, name: str, value: T, *, replace: bool = False) -> None:
        """Bind ``name``; refuses silent overwrites unless ``replace``."""
        if not replace and name in self._values:
            raise ValueError(f"{self.kind} {name!r} is already registered")
        self._values[name] = value

    def unregister(self, name: str) -> None:
        """Drop a binding (tests registering throwaway backends)."""
        self._values.pop(name, None)

    def get(self, name: str) -> T:
        try:
            return self._values[name]
        except KeyError:
            known = ", ".join(sorted(self._values)) or "<none>"
            raise ValueError(
                f"unknown {self.kind} {name!r}; registered: {known}"
            ) from None

    def names(self) -> Tuple[str, ...]:
        """Registered names, insertion-ordered."""
        return tuple(self._values)

    def __contains__(self, name: object) -> bool:
        return name in self._values


@dataclasses.dataclass(frozen=True)
class BackendSpec:
    """How to build one matching backend, plus its hardware needs."""

    name: str
    factory: Callable[[], "object"]
    #: the NIC must assemble ALPU devices + drivers for this backend
    needs_alpu: bool = False


#: the match-backend registry (``FirmwareConfig.matching`` values)
BACKENDS: Registry[BackendSpec] = Registry("matching engine")


def register_backend(
    name: str,
    factory: Callable[[], "object"],
    *,
    needs_alpu: bool = False,
    replace: bool = False,
) -> None:
    """Make ``name`` a valid ``FirmwareConfig.matching`` value.

    ``factory`` is called once per NIC firmware instance and must return
    a fresh :class:`~repro.nic.backends.base.MatchBackend`.
    """
    BACKENDS.register(
        name, BackendSpec(name=name, factory=factory, needs_alpu=needs_alpu),
        replace=replace,
    )


def unregister_backend(name: str) -> None:
    """Remove a backend registration (primarily for tests)."""
    BACKENDS.unregister(name)


def backend_spec(name: str) -> BackendSpec:
    """Resolve a backend name; raises ``ValueError`` when unknown."""
    return BACKENDS.get(name)


def create_backend(name: str):
    """Instantiate a fresh backend for one firmware."""
    return backend_spec(name).factory()


def registered_backends() -> Tuple[str, ...]:
    """All registered backend names."""
    return BACKENDS.names()
