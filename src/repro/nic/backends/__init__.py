"""Pluggable matching backends for the NIC firmware.

The firmware's progress loop is engine-agnostic: all queue searching and
indexing goes through one :class:`MatchBackend` resolved by name from
the registry.  Shipped engines:

* ``"list"`` -- linear traversal (:class:`ListSearchBackend`), the
  baseline every surveyed MPI uses;
* ``"hash"`` -- the Section II hash-table alternative
  (:class:`HashTableBackend`), software-only;
* ``"alpu"`` -- the paper's ALPU with software-suffix fallback
  (:class:`AlpuMatchBackend`); registered with ``needs_alpu=True`` so
  the NIC assembly builds the devices and drivers.

Adding an engine is one registration::

    from repro.nic.backends import MatchBackend, register_backend

    class MyBackend(MatchBackend):
        name = "mine"
        def match_arrival(self, request): ...
        def consume_unexpected(self, request): ...

    register_backend("mine", MyBackend)
    NicConfig(firmware=FirmwareConfig(matching="mine"))  # just works

``FirmwareConfig.matching`` accepts any registered name; the legacy
values ``"list"``/``"hash"`` and the ``use_alpu=True`` flag (which
resolves to the ``"alpu"`` backend) keep working unchanged.
"""

from repro.nic.backends.alpumatch import AlpuMatchBackend
from repro.nic.backends.base import MatchBackend
from repro.nic.backends.hashtable import HashTableBackend
from repro.nic.backends.listsearch import ListSearchBackend
from repro.nic.backends.registry import (
    BackendSpec,
    Registry,
    backend_spec,
    create_backend,
    register_backend,
    registered_backends,
    unregister_backend,
)

register_backend("list", ListSearchBackend)
register_backend("hash", HashTableBackend)
register_backend("alpu", AlpuMatchBackend, needs_alpu=True)

__all__ = [
    "AlpuMatchBackend",
    "BackendSpec",
    "HashTableBackend",
    "ListSearchBackend",
    "MatchBackend",
    "Registry",
    "backend_spec",
    "create_backend",
    "register_backend",
    "registered_backends",
    "unregister_backend",
]
