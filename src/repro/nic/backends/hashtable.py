"""The Section II hash-table matching engine (software-only).

Wraps two :class:`~repro.nic.backends.hashmatch.HashMatchTable`
structures (one per queue side) behind the :class:`MatchBackend`
protocol, charging every probe, compare, insert and removal through the
firmware's cost model.
"""

from __future__ import annotations

from repro.core.match import MatchRequest
from repro.nic.backends.base import MatchBackend
from repro.nic.backends.hashmatch import HashMatchTable
from repro.nic.queues import NicQueue, QueueEntry
from repro.sim.process import delay


class HashTableBackend(MatchBackend):
    """Wildcard-class hash tables over both queues (the ``"hash"`` engine)."""

    name = "hash"

    def _setup(self) -> None:
        self.posted_table = HashMatchTable(self.fmt, bucket_base_addr=0x80_0000)
        self.unexpected_table = HashMatchTable(
            self.fmt, bucket_base_addr=0x90_0000
        )

    def _table_for(self, queue: NicQueue) -> HashMatchTable:
        return (
            self.posted_table if queue is self.posted_q else self.unexpected_table
        )

    # ----------------------------------------------------------- indexing
    def post_receive(self, entry: QueueEntry):
        total = self.charge_ps(self.posted_table.insert(entry))
        if total:
            yield delay(total)

    def note_unexpected(self, entry: QueueEntry):
        total = self.charge_ps(self.unexpected_table.insert(entry))
        if total:
            yield delay(total)

    def remove(self, entry: QueueEntry, queue: NicQueue):
        total = self.charge_ps(self._table_for(queue).remove(entry))
        if total:
            yield delay(total)
        queue.remove(entry)

    # ----------------------------------------------------------- matching
    def match_arrival(self, request: MatchRequest):
        entry = yield from self._search(
            self.posted_table, self.posted_q, request, incoming=True
        )
        return entry

    def consume_unexpected(self, request: MatchRequest):
        entry = yield from self._search(
            self.unexpected_table, self.unexpected_q, request, incoming=False
        )
        return entry

    def _search(
        self,
        table: HashMatchTable,
        queue: NicQueue,
        request: MatchRequest,
        *,
        incoming: bool,
    ):
        """Search one table, charging its costs; removal is table-internal."""
        probes_before = table.probes
        if incoming:
            entry, op_cost = table.match_incoming(request)
        else:
            entry, op_cost = table.match_posted_receive(request)
        # lines examined is the traversal metric comparable to the list's
        lines_examined = len(op_cost.touches)
        self.fw.record_traversal(lines_examined)
        rec = self.fw.lifecycle
        if rec.enabled:
            rec.search_note(hash_probes=table.probes - probes_before)
        total = self.charge_ps(op_cost)
        if total:
            yield delay(total)
        if entry is not None:
            yield from self.retire(entry, queue)
        return entry
