"""The ALPU matching engine -- the paper's contribution as a backend.

Match-relevant headers are replicated in hardware to the posted-receive
ALPU and posted receives to the unexpected ALPU; the firmware consumes
results through :class:`~repro.nic.driver.AlpuQueueDriver`, falling back
to a software search of only the not-yet-inserted suffix on MATCH
FAILURE (Section IV-D).  The per-loop ``update()`` step batch-inserts the
software suffix into each ALPU (Section IV-C).

The backend requires the NIC assembly to have built the two ALPU devices
and drivers (it is registered with ``needs_alpu=True``).
"""

from __future__ import annotations

from repro.core.commands import MatchSuccess
from repro.core.match import MatchRequest
from repro.nic.backends.base import MatchBackend
from repro.nic.driver import AlpuQueueDriver
from repro.nic.queues import NicQueue
from repro.sim.process import delay


class AlpuMatchBackend(MatchBackend):
    """Two ALPUs + software-suffix fallback (the ``"alpu"`` engine)."""

    name = "alpu"
    has_update = True

    def _setup(self) -> None:
        self.posted_driver: AlpuQueueDriver = self.nic.posted_driver
        self.unexpected_driver: AlpuQueueDriver = self.nic.unexpected_driver
        if self.posted_driver is None or self.unexpected_driver is None:
            raise RuntimeError(
                "the alpu backend needs ALPU devices; build the NIC with "
                "a backend registered as needs_alpu=True "
                "(e.g. NicConfig.with_alpu())"
            )

    # ----------------------------------------------------------- matching
    def match_arrival(self, request: MatchRequest):
        was_replicated = self.nic.posted_pushed_flags.popleft()
        if was_replicated:
            entry = yield from self._alpu_match(
                self.posted_driver, self.posted_q, request
            )
        else:
            # the driver had replication disabled (queue below the
            # engagement threshold): plain software matching, with the
            # ALPU guaranteed empty
            entry = yield from self.software_search(self.posted_q, request)
        return entry

    def consume_unexpected(self, request: MatchRequest):
        was_replicated = self.nic.unexpected_pushed_flags.popleft()
        if was_replicated:
            entry = yield from self._alpu_match(
                self.unexpected_driver, self.unexpected_q, request
            )
        else:
            entry = yield from self.software_search(self.unexpected_q, request)
        return entry

    def _alpu_match(
        self,
        driver: AlpuQueueDriver,
        queue: NicQueue,
        request: MatchRequest,
    ):
        """Section IV-D result handling: ALPU response, then the software
        suffix on MATCH FAILURE."""
        rec = self.fw.lifecycle
        if rec.enabled:
            rec.search_note(
                alpu=driver.device.name,
                alpu_occupancy=driver.device.alpu.occupancy,
            )
        # "the processor should first retrieve the copy of the data
        # provided to it and then retrieve the response": one bus read for
        # the replicated header copy, then the result-FIFO read
        yield delay(driver.device.bus_latency_ps)
        response = yield from driver.read_result()
        yield delay(self.proc.compute(self.cost.alpu_result_handle_cycles))
        if isinstance(response, MatchSuccess):
            entry = driver.take_matched_entry(response)
            queue.remove(entry)
            # the matched entry's request state lives in its second line
            # (read-only here: the driver's tag table held the live state)
            yield delay(
                self.proc.compute(self.cost.dequeue_cycles)
                + self.proc.touch(entry.addr + 64, 64)
            )
            return entry
        entry = yield from self.software_search(queue, request, suffix_only=True)
        if entry is not None:
            driver.forget_software_removal(entry)
        return entry

    # -------------------------------------------------------- maintenance
    def update(self):
        """One "update the ALPU" step per driver (batched inserts)."""
        moved = yield from self.posted_driver.update()
        moved += yield from self.unexpected_driver.update()
        return moved > 0
