"""Pluggable queue disciplines and admission control for the NIC queues.

The paper's firmware keeps postedRecvQ/unexpectedQ as plain FIFO lists
(Section V-C), but the network-processor queue-management literature
puts the interesting behaviour -- floods, priority inversion, buffer
exhaustion -- in the queue *discipline*, not the list.  This module
makes that policy layer pluggable behind :class:`~repro.nic.queues.NicQueue`:

``"fifo"`` (default)
    Plain append-order traversal; bit-identical to the historical
    behaviour (pinned against the benchmark baseline).

``"sharded"``
    Entries are binned by a shard key derived from the match word
    (``shard_key="source"``: {context, source}; ``"flow"``: the full
    {context, source, tag} word).  A search with a concrete key visits
    only its own shard merged with the wildcard shard, oldest-first by
    the queue's global append sequence -- so the *first* hit in merged
    order is exactly the entry plain FIFO traversal would have matched
    (MPI per-pair ordering and wildcard semantics preserved), while the
    visit count collapses from queue depth to shard depth.  A request
    that wildcards part of the shard key (e.g. ``MPI_ANY_SOURCE`` under
    ``"source"``) falls back to the full append-order walk.

Disciplines shape the *software* search path
(:meth:`repro.nic.backends.base.MatchBackend.software_search`: the list
backend and the ALPU's software-suffix fallback); the hash backend keeps
its own table-driven index and is unaffected.

:class:`AdmissionControl` adds buffer-occupancy admission for unexpected
floods: when the unexpected queue sits at or above ``max_unexpected``,
arriving match packets (EAGER / RNDV_RTS) are refused *before* the
reliability layer acknowledges them -- either silently dropped (the
sender's retransmit timer recovers) or answered with a ``NACK_BUSY``
that schedules a backed-off retransmit without burning retry budget.
Refusals feed the ``<nic>.adm/*`` counters, an ``admission_refused``
lifecycle mark, and the ``unexpected_admission_pressure`` health
watchdog.

All knobs live on :class:`QdiscConfig`, selected via
``NicConfig(qdisc=...)`` and keyed into the sweep cache.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Iterator

from repro.core.match import MatchFormat, MatchRequest
from repro.network.packet import PacketKind
from repro.nic.backends.registry import Registry
from repro.nic.queues import QueueEntry

#: shard-key choices -> which match-word fields form the key
SHARD_KEYS = ("source", "flow")
#: what to do with a refused unexpected packet
ADMISSION_POLICIES = ("drop", "nack")


@dataclasses.dataclass(frozen=True)
class QdiscConfig:
    """Queue-discipline and admission knobs (per NIC)."""

    #: discipline registry name: "fifo" (default, bit-identical to the
    #: historical traversal) or "sharded"
    discipline: str = "fifo"
    #: sharded only: "source" bins on {context, source} (per-peer
    #: queues), "flow" on the full match word (per-(peer, tag) flows)
    shard_key: str = "source"
    #: unexpected-queue occupancy at which arriving match packets are
    #: refused (0 disables admission control); requires the reliability
    #: layer, which carries the refusal/retransmit protocol
    max_unexpected: int = 0
    #: refusal policy: "drop" (no ACK; the sender's retransmit timer
    #: recovers, spending retry budget) or "nack" (a NACK_BUSY schedules
    #: a backed-off retransmit without consuming retries)
    admission_policy: str = "drop"
    #: service host commands (which drain the queues) before network
    #: arrivals (which fill them) in the firmware loop -- priority for
    #: expected traffic over unexpected floods
    host_priority: bool = False

    def __post_init__(self) -> None:
        if self.discipline not in DISCIPLINES:
            known = ", ".join(sorted(DISCIPLINES.names()))
            raise ValueError(
                f"unknown discipline {self.discipline!r}; registered: {known}"
            )
        if self.shard_key not in SHARD_KEYS:
            raise ValueError(
                f"shard_key must be one of {SHARD_KEYS}, got {self.shard_key!r}"
            )
        if self.max_unexpected < 0:
            raise ValueError(
                f"max_unexpected must be >= 0, got {self.max_unexpected}"
            )
        if self.admission_policy not in ADMISSION_POLICIES:
            raise ValueError(
                f"admission_policy must be one of {ADMISSION_POLICIES}, "
                f"got {self.admission_policy!r}"
            )


def shard_mask(config: QdiscConfig, fmt: MatchFormat) -> int:
    """The match-word bits forming the shard key."""
    if config.shard_key == "flow":
        return fmt.full_mask
    # "source": everything but the tag field, i.e. {context, source}
    return fmt.full_mask & ~fmt.tag_field_mask


class QueueDiscipline:
    """Search-order / sharding policy for one :class:`NicQueue`.

    Hooks are plain calls from the queue's ``append``/``remove`` and
    never charge simulated time: the discipline decides *which* entries
    a search visits; the per-visit cost model stays in the backend.
    """

    #: registry name (informational)
    name = "?"

    def attach(self, queue) -> None:
        """Bind to the queue this instance indexes (one queue each)."""
        self.queue = queue

    def on_append(self, entry: QueueEntry) -> None:
        """An entry was linked at the tail."""

    def on_remove(self, entry: QueueEntry) -> None:
        """An entry was unlinked (match, cancel, or degrade)."""

    def candidates(
        self, request: MatchRequest, *, suffix_only: bool = False
    ) -> Iterable[QueueEntry]:
        """Entries a software search for ``request`` must visit, oldest
        first; ``suffix_only`` excludes the ALPU-mirrored prefix."""
        raise NotImplementedError


class FifoDiscipline(QueueDiscipline):
    """Plain append-order traversal (the historical behaviour)."""

    name = "fifo"

    def candidates(
        self, request: MatchRequest, *, suffix_only: bool = False
    ) -> Iterable[QueueEntry]:
        return self.queue.iter_fifo(suffix_only=suffix_only)


class ShardedDiscipline(QueueDiscipline):
    """Per-key shards merged oldest-first (see module docstring).

    Entries whose own mask wildcards any shard-key bit (wildcard posted
    receives) live in a dedicated wildcard shard that every concrete
    search merges in, so a concrete header still matches the globally
    oldest compatible entry -- identical match *outcome* to FIFO, fewer
    visits.
    """

    name = "sharded"

    def __init__(self, shard_mask: int) -> None:
        self.shard_mask = shard_mask
        #: concrete shard key -> insertion-ordered uid -> entry
        self._shards: Dict[int, Dict[int, QueueEntry]] = {}
        #: entries wildcarding part of the shard key, in append order
        self._wild: Dict[int, QueueEntry] = {}

    def on_append(self, entry: QueueEntry) -> None:
        if entry.mask & self.shard_mask:
            self._wild[entry.uid] = entry
        else:
            key = entry.bits & self.shard_mask
            shard = self._shards.get(key)
            if shard is None:
                shard = self._shards[key] = {}
            shard[entry.uid] = entry

    def on_remove(self, entry: QueueEntry) -> None:
        if entry.mask & self.shard_mask:
            del self._wild[entry.uid]
        else:
            key = entry.bits & self.shard_mask
            shard = self._shards[key]
            del shard[entry.uid]
            if not shard:
                del self._shards[key]

    def candidates(
        self, request: MatchRequest, *, suffix_only: bool = False
    ) -> Iterable[QueueEntry]:
        if request.mask & self.shard_mask:
            # the request wildcards part of the key (MPI_ANY_SOURCE /
            # MPI_ANY_TAG): any shard could hold the oldest match, so
            # only the global walk is correct
            return self.queue.iter_fifo(suffix_only=suffix_only)
        shard = self._shards.get(request.bits & self.shard_mask)
        return self._merged(shard, suffix_only)

    def _merged(self, shard, suffix_only: bool) -> Iterator[QueueEntry]:
        """Merge one shard with the wildcard shard by append sequence.

        Both maps iterate in insertion order, which is ascending
        ``seq``, so a two-way merge yields global age order.
        """
        it_a = iter(shard.values()) if shard else iter(())
        it_b = iter(self._wild.values())
        ea = next(it_a, None)
        eb = next(it_b, None)
        while ea is not None or eb is not None:
            if eb is None or (ea is not None and ea.seq < eb.seq):
                out, ea = ea, next(it_a, None)
            else:
                out, eb = eb, next(it_b, None)
            if suffix_only and out.in_alpu:
                continue
            yield out


#: the discipline registry (``QdiscConfig.discipline`` values)
DISCIPLINES: Registry = Registry("queue discipline")
DISCIPLINES.register("fifo", lambda config, mask: FifoDiscipline())
DISCIPLINES.register("sharded", lambda config, mask: ShardedDiscipline(mask))


def create_discipline(config: QdiscConfig, fmt: MatchFormat) -> QueueDiscipline:
    """Build one fresh discipline instance (one per queue)."""
    factory = DISCIPLINES.get(config.discipline)
    return factory(config, shard_mask(config, fmt))


class AdmissionControl:
    """Buffer-occupancy gate on arriving match packets (one per NIC).

    Consulted by the reliability layer's receive path *before* the ACK:
    a refused packet is never acknowledged (and never parked in the
    reorder buffer), so the sender's retransmission machinery -- timer
    under ``"drop"``, NACK_BUSY-scheduled under ``"nack"`` -- retries it
    once the queue has drained.  CTS/DATA/control packets are always
    admitted: they *drain* buffers, and refusing them could deadlock the
    rendezvous protocol.
    """

    def __init__(self, nic, config: QdiscConfig) -> None:
        self.nic = nic
        self.config = config
        self.policy = config.admission_policy
        self.threshold = config.max_unexpected
        self.queue = nic.unexpected_q
        #: total refusals (the probe's ``<nic>.adm/refused`` series)
        self.refused = 0
        registry = nic.engine.metrics
        prefix = f"{nic.name}.adm"
        self._m_refused = registry.counter(f"{prefix}/refused")
        self._m_dropped = registry.counter(f"{prefix}/dropped")
        self._m_nacked = registry.counter(f"{prefix}/nacked")

    def admits(self, packet) -> bool:
        """May this wire arrival proceed into the NIC?

        Occupancy counts every place an admitted-but-unmatched packet
        can sit, not just the unexpected queue itself: the reliability
        layer's reorder buffer (once one packet of a flow is refused,
        its successors arrive "early" and would otherwise be ACKed into
        it) and the NIC's accepted-rx FIFO (ACKed arrivals the firmware
        has not yet classified).  Both are unbounded hiding places for
        the very flood the threshold is supposed to bound.
        """
        if packet.kind not in (PacketKind.EAGER, PacketKind.RNDV_RTS):
            return True
        occupancy = len(self.queue) + len(self.nic.rx_fifo)
        reliability = self.nic.reliability
        if reliability is None:
            return occupancy < self.threshold
        if reliability.is_rx_head(packet):
            # the in-order head is exempt from the reorder-held share:
            # its successors are *already* ACKed and parked, so refusing
            # it sheds no memory -- and because held packets only drain
            # when their head is delivered, counting them against the
            # head livelocks the flow at `held == threshold` (refusals
            # forever, queue empty).  Admitting it merely converts held
            # packets into queue entries; held < threshold by induction,
            # so total footprint stays < 2 * threshold.
            return occupancy < self.threshold
        return occupancy + reliability.reorder_held < self.threshold

    def note_refused(self, packet, *, nacked: bool) -> None:
        """Account one refusal (metrics + lifecycle + trace)."""
        self.refused += 1
        self._m_refused.inc()
        if nacked:
            self._m_nacked.inc()
        else:
            self._m_dropped.inc()
        engine = self.nic.engine
        if engine.lifecycle.enabled:
            engine.lifecycle.mark_uid(
                packet.send_id,
                "admission_refused",
                detail={
                    "depth": len(self.queue),
                    "policy": self.policy,
                    "rel_seq": packet.rel_seq,
                },
            )
        if engine.tracer.enabled:
            engine.tracer.instant(
                "nic",
                f"{self.nic.name}.admission_refused",
                {"depth": len(self.queue), "policy": self.policy},
            )
