"""The firmware's queue data structures.

"The primary data structures are a series of linked lists to contain
requests and the state required to advance them" (Section V-C):
postedRecvQ, activeRecvQ, unexpectedQ, unexpectedActiveQ and sendQ, all
resident in NIC memory.

Entries occupy real (simulated) addresses so traversals produce genuine
cache behaviour: each entry is a 128-byte block whose *first* cache line
holds the envelope and next pointer (touched by every traversal step) and
whose second line holds request state (touched only when the entry
matches or is being advanced).  Entries are recycled through the
allocator's free list, as the C++ firmware's allocator would, keeping a
steady-state queue at stable addresses.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
from typing import Iterator, List, Optional

from repro.core.match import MatchEntry, MatchRequest
from repro.memory.layout import AddressAllocator
from repro.obs.metrics import NULL_GAUGE


class EntryKind(enum.Enum):
    """What a queue entry represents."""

    POSTED_RECV = "posted_recv"
    UNEXPECTED_EAGER = "unexpected_eager"
    UNEXPECTED_RNDV = "unexpected_rndv"
    SEND = "send"


_entry_ids = itertools.count(1)


@dataclasses.dataclass(eq=False, slots=True)
class QueueEntry:
    """One list entry in NIC memory.

    ``eq=False``: every entry carries a unique ``uid``, so field equality
    could only ever hold between an entry and itself -- identity equality
    is the same relation, and it keeps ``list.remove``/``list.index`` in
    the queue-churn path from field-comparing every earlier entry.
    """

    kind: EntryKind
    #: packed {context, source, tag} match bits
    bits: int
    #: wildcard mask (posted receives only; 0 for headers)
    mask: int
    #: base address of this entry's 128-byte block in NIC memory
    addr: int
    #: payload length in bytes
    size: int
    #: host-side request id (posted receives and sends)
    host_req_id: int = 0
    #: global rank that owns this request (completion routing when
    #: several processes share the NIC)
    owner_rank: int = 0
    #: peer's send id (unexpected entries: needed for the rendezvous CTS)
    peer_send_id: int = 0
    #: source node of an unexpected message
    src_node: int = 0
    #: matched message envelope, filled at pairing time so the receive's
    #: completion can report MPI_Status to the host
    matched_source: int = -1
    matched_tag: int = -1
    matched_size: int = 0
    #: unique id; doubles as the ALPU tag via the driver's tag table
    uid: int = dataclasses.field(default_factory=lambda: next(_entry_ids))

    def as_match_entry(self) -> MatchEntry:
        """The ALPU/list view of this entry (tag = uid)."""
        return MatchEntry(bits=self.bits, mask=self.mask, tag=self.uid)

    def matches(self, request: MatchRequest) -> bool:
        """Ternary compare against a request (wildcards honoured).

        Same rule as :func:`repro.core.match.matches` with both masks
        honoured, evaluated directly so the linear-search hot loop does
        not allocate a :class:`MatchEntry` per visited entry.
        """
        return ((self.bits ^ request.bits) & ~(self.mask | request.mask)) == 0


#: per-entry footprint in NIC memory (two cache lines)
ENTRY_BYTES = 128
#: bytes read per traversal step (envelope + next pointer: one line)
ENTRY_TOUCH_BYTES = 64


class NicQueue:
    """An ordered list of entries with an ALPU-loaded prefix.

    The first ``alpu_count`` entries (the *oldest*) are mirrored in the
    ALPU; the suffix is software-only.  "A pointer is kept to indicate
    which portions of the postedRecvQ and unexpectedQ have been
    transferred to the ALPU and which have not" -- ``alpu_count`` is that
    pointer.
    """

    def __init__(self, name: str, allocator: AddressAllocator) -> None:
        self.name = name
        self.allocator = allocator
        self.entries: List[QueueEntry] = []
        self.alpu_count = 0
        self.max_length = 0
        #: telemetry depth gauge (no-op unless the NIC attaches a real one)
        self._depth_gauge = NULL_GAUGE

    def attach_depth_gauge(self, gauge) -> None:
        """Mirror this queue's length into a registry gauge on mutation."""
        self._depth_gauge = gauge
        gauge.set(len(self.entries))

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[QueueEntry]:
        return iter(self.entries)

    # ------------------------------------------------------------ mutation
    def allocate_entry(
        self,
        kind: EntryKind,
        bits: int,
        mask: int,
        size: int,
        **fields,
    ) -> QueueEntry:
        """Carve an entry block out of NIC memory (recycled when possible)."""
        addr = self.allocator.alloc(ENTRY_BYTES, alignment=ENTRY_BYTES)
        entry = QueueEntry(
            kind=kind, bits=bits, mask=mask, addr=addr, size=size, **fields
        )
        return entry

    def append(self, entry: QueueEntry) -> None:
        """Link an entry at the tail (the youngest end)."""
        self.entries.append(entry)
        self.max_length = max(self.max_length, len(self.entries))
        self._depth_gauge.set(len(self.entries))

    def remove(self, entry: QueueEntry) -> None:
        """Unlink an entry; adjusts the ALPU-prefix pointer if needed."""
        index = self.entries.index(entry)
        del self.entries[index]
        if index < self.alpu_count:
            self.alpu_count -= 1
        self._depth_gauge.set(len(self.entries))

    def release(self, entry: QueueEntry) -> None:
        """Return the entry's block to the allocator free list."""
        self.allocator.free(entry.addr, ENTRY_BYTES)

    # ------------------------------------------------------------- lookups
    def software_suffix(self) -> List[QueueEntry]:
        """Entries not (yet) mirrored in the ALPU."""
        return self.entries[self.alpu_count:]

    def find_by_uid(self, uid: int) -> Optional[QueueEntry]:
        """Linear lookup by unique id (diagnostics only)."""
        for entry in self.entries:
            if entry.uid == uid:
                return entry
        return None
