"""The firmware's queue data structures.

"The primary data structures are a series of linked lists to contain
requests and the state required to advance them" (Section V-C):
postedRecvQ, activeRecvQ, unexpectedQ, unexpectedActiveQ and sendQ, all
resident in NIC memory.

Entries occupy real (simulated) addresses so traversals produce genuine
cache behaviour: each entry is a 128-byte block whose *first* cache line
holds the envelope and next pointer (touched by every traversal step) and
whose second line holds request state (touched only when the entry
matches or is being advanced).  Entries are recycled through the
allocator's free list, as the C++ firmware's allocator would, keeping a
steady-state queue at stable addresses.

The store is an insertion-ordered map keyed by entry uid, so ``append``,
``remove`` and ``find_by_uid`` are all O(1) while iteration still walks
FIFO order -- the million-message workloads churn these queues hard
enough that the old ``list.index`` unlink turned quadratic.  *Which*
entries a search visits (and in what order) is delegated to a pluggable
:class:`~repro.nic.qdisc.QueueDiscipline`; the default FIFO discipline
reproduces plain linear traversal bit-for-bit.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
from typing import Dict, Iterable, Iterator, List, Optional

from repro.core.match import MatchEntry, MatchRequest
from repro.memory.layout import AddressAllocator
from repro.obs.metrics import NULL_GAUGE


class EntryKind(enum.Enum):
    """What a queue entry represents."""

    POSTED_RECV = "posted_recv"
    UNEXPECTED_EAGER = "unexpected_eager"
    UNEXPECTED_RNDV = "unexpected_rndv"
    SEND = "send"


_entry_ids = itertools.count(1)


@dataclasses.dataclass(eq=False, slots=True)
class QueueEntry:
    """One list entry in NIC memory.

    ``eq=False``: every entry carries a unique ``uid``, so field equality
    could only ever hold between an entry and itself -- identity equality
    is the same relation.
    """

    kind: EntryKind
    #: packed {context, source, tag} match bits
    bits: int
    #: wildcard mask (posted receives only; 0 for headers)
    mask: int
    #: base address of this entry's 128-byte block in NIC memory
    addr: int
    #: payload length in bytes
    size: int
    #: host-side request id (posted receives and sends)
    host_req_id: int = 0
    #: global rank that owns this request (completion routing when
    #: several processes share the NIC)
    owner_rank: int = 0
    #: peer's send id (unexpected entries: needed for the rendezvous CTS)
    peer_send_id: int = 0
    #: source node of an unexpected message
    src_node: int = 0
    #: matched message envelope, filled at pairing time so the receive's
    #: completion can report MPI_Status to the host
    matched_source: int = -1
    matched_tag: int = -1
    matched_size: int = 0
    #: queue-global append order (assigned by :meth:`NicQueue.append`);
    #: sharded disciplines merge shards on it to recover FIFO age order
    seq: int = 0
    #: True while this entry is mirrored in the ALPU (the prefix); the
    #: mirrored entries always form a prefix of the append order
    in_alpu: bool = False
    #: unique id; doubles as the ALPU tag via the driver's tag table
    uid: int = dataclasses.field(default_factory=lambda: next(_entry_ids))

    def as_match_entry(self) -> MatchEntry:
        """The ALPU/list view of this entry (tag = uid)."""
        return MatchEntry(bits=self.bits, mask=self.mask, tag=self.uid)

    def matches(self, request: MatchRequest) -> bool:
        """Ternary compare against a request (wildcards honoured).

        Same rule as :func:`repro.core.match.matches` with both masks
        honoured, evaluated directly so the linear-search hot loop does
        not allocate a :class:`MatchEntry` per visited entry.
        """
        return ((self.bits ^ request.bits) & ~(self.mask | request.mask)) == 0


#: per-entry footprint in NIC memory (two cache lines)
ENTRY_BYTES = 128
#: bytes read per traversal step (envelope + next pointer: one line)
ENTRY_TOUCH_BYTES = 64


class NicQueue:
    """An ordered set of entries with an ALPU-loaded prefix.

    The oldest ``alpu_count`` entries are mirrored in the ALPU; the
    suffix is software-only.  "A pointer is kept to indicate which
    portions of the postedRecvQ and unexpectedQ have been transferred to
    the ALPU and which have not" -- here that pointer is the per-entry
    ``in_alpu`` flag plus the ``alpu_count`` tally, which survives O(1)
    mid-queue removals (the flagged entries always form a prefix of the
    append order, because the driver only ever flags the oldest
    unflagged entries).
    """

    def __init__(self, name: str, allocator: AddressAllocator, discipline=None) -> None:
        self.name = name
        self.allocator = allocator
        #: insertion-ordered uid -> entry map; dict order IS queue order
        self._entries: Dict[int, QueueEntry] = {}
        self._alpu_count = 0
        self._next_seq = 0
        self.max_length = 0
        #: telemetry depth gauge (no-op unless the NIC attaches a real one)
        self._depth_gauge = NULL_GAUGE
        if discipline is None:
            from repro.nic.qdisc import FifoDiscipline

            discipline = FifoDiscipline()
        #: the pluggable search/ordering policy (repro.nic.qdisc)
        self.discipline = discipline
        discipline.attach(self)

    def attach_depth_gauge(self, gauge) -> None:
        """Mirror this queue's length into a registry gauge on mutation."""
        self._depth_gauge = gauge
        gauge.set(len(self._entries))

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[QueueEntry]:
        return iter(self._entries.values())

    @property
    def entries(self) -> List[QueueEntry]:
        """The queue in FIFO order, as a list (tests and diagnostics;
        hot paths iterate the queue object itself instead)."""
        return list(self._entries.values())

    # ------------------------------------------------------- ALPU prefix
    @property
    def alpu_count(self) -> int:
        """How many of the oldest entries are mirrored in the ALPU."""
        return self._alpu_count

    @alpu_count.setter
    def alpu_count(self, value: int) -> None:
        """Re-derive the mirrored prefix to exactly ``value`` entries.

        O(n): this is the recovery/diagnostic path (firmware degrade
        resets it to 0; tests pin arbitrary prefixes).  The driver's hot
        path extends the prefix with :meth:`mark_alpu_mirrored` instead.
        """
        count = 0
        for entry in self._entries.values():
            entry.in_alpu = count < value
            count += 1
        self._alpu_count = min(value, count)

    def peek_software_suffix(self, limit: int) -> List[QueueEntry]:
        """The oldest ``limit`` not-yet-mirrored entries, in FIFO order.

        O(prefix + limit): the mirrored entries form a prefix of the
        append order, so the scan stops as soon as the batch is full.
        """
        batch: List[QueueEntry] = []
        for entry in self._entries.values():
            if entry.in_alpu:
                continue
            batch.append(entry)
            if len(batch) >= limit:
                break
        return batch

    def mark_alpu_mirrored(self, batch: Iterable[QueueEntry]) -> None:
        """Flag a just-inserted driver batch as ALPU-resident.

        The batch must be the oldest unflagged entries (what
        :meth:`peek_software_suffix` returned), preserving the
        prefix invariant.
        """
        moved = 0
        for entry in batch:
            entry.in_alpu = True
            moved += 1
        self._alpu_count += moved

    # ------------------------------------------------------------ mutation
    def allocate_entry(
        self,
        kind: EntryKind,
        bits: int,
        mask: int,
        size: int,
        **fields,
    ) -> QueueEntry:
        """Carve an entry block out of NIC memory (recycled when possible)."""
        addr = self.allocator.alloc(ENTRY_BYTES, alignment=ENTRY_BYTES)
        entry = QueueEntry(
            kind=kind, bits=bits, mask=mask, addr=addr, size=size, **fields
        )
        return entry

    def append(self, entry: QueueEntry) -> None:
        """Link an entry at the tail (the youngest end)."""
        entry.seq = self._next_seq
        self._next_seq += 1
        entry.in_alpu = False
        self._entries[entry.uid] = entry
        depth = len(self._entries)
        if depth > self.max_length:
            self.max_length = depth
        self._depth_gauge.set(depth)
        self.discipline.on_append(entry)

    def remove(self, entry: QueueEntry) -> None:
        """Unlink an entry in O(1); adjusts the ALPU-prefix tally."""
        del self._entries[entry.uid]
        if entry.in_alpu:
            entry.in_alpu = False
            self._alpu_count -= 1
        self._depth_gauge.set(len(self._entries))
        self.discipline.on_remove(entry)

    def release(self, entry: QueueEntry) -> None:
        """Return the entry's block to the allocator free list."""
        self.allocator.free(entry.addr, ENTRY_BYTES)

    def reset_stats(self) -> None:
        """Zero the high-water mark (between benchmark phases/runs)."""
        self.max_length = len(self._entries)

    # ------------------------------------------------------------- lookups
    def search_candidates(
        self, request: MatchRequest, *, suffix_only: bool = False
    ) -> Iterable[QueueEntry]:
        """The entries a software search must visit, in discipline order.

        The FIFO discipline yields plain append order (the historical
        traversal, bit-identical); sharded disciplines narrow the walk
        to the shards the request can possibly match, oldest first.
        """
        return self.discipline.candidates(request, suffix_only=suffix_only)

    def iter_fifo(self, *, suffix_only: bool = False) -> Iterable[QueueEntry]:
        """Append-order iteration, optionally skipping the ALPU prefix.

        With no prefix to skip this returns the raw store view (no
        generator frame on the search hot path).
        """
        if suffix_only and self._alpu_count:
            return self._iter_suffix()
        return self._entries.values()

    def _iter_suffix(self) -> Iterator[QueueEntry]:
        for entry in self._entries.values():
            if not entry.in_alpu:
                yield entry

    def software_suffix(self) -> List[QueueEntry]:
        """Entries not (yet) mirrored in the ALPU."""
        return list(self.iter_fifo(suffix_only=True))

    def find_by_uid(self, uid: int) -> Optional[QueueEntry]:
        """O(1) lookup by unique id (diagnostics only)."""
        return self._entries.get(uid)
