"""Windowed timeseries over simulated time, with bounded memory.

End-of-run snapshots collapse dynamics: a retransmit storm that resolves
and a steady trickle of retries produce identical counters.  A
:class:`Timeline` keeps the *trajectory*: every observed quantity is
folded into fixed simulated-time windows (default: the sampling probe's
period), each window accumulating ``count/sum/min/max/first/last`` of
the samples that landed in it.

Two observation modes per series:

* ``"sample"`` -- the observed value is a state (queue depth, occupancy,
  in-flight packets); window statistics describe the state inside the
  window.
* ``"cumulative"`` -- the observed value is a monotone counter
  (retransmits, events fired, completions); the interesting per-window
  quantity is the *increase* within the window, exposed as the
  ``"delta"`` statistic.

Memory is bounded: each series is a ring of at most ``max_windows``
windows.  When a run outgrows the ring, the series *downsamples* --
window width doubles and adjacent window pairs merge -- so a timeline
always covers the whole run at the finest resolution that fits.  Long
campaigns therefore degrade resolution, never correctness or memory.

Timelines are pure observers with the same zero-perturbation guarantee
as the rest of :mod:`repro.obs`: ``observe`` reads state and appends to
Python lists, schedules nothing, and charges no simulated time, so
results are bit-identical with the timeline on or off (pinned by
``tests/obs/test_zero_perturbation.py``).

This module is dependency-free within :mod:`repro` (only
:mod:`repro.obs.probe` and :mod:`repro.obs.telemetry` feed it).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: default window width: the sampling probe's 1 us period, so each probe
#: tick lands in its own window until downsampling widens them
DEFAULT_WINDOW_PS = 1_000_000

#: default ring capacity per series; 256 windows at 1 us cover 256 us of
#: run before the first downsample, and memory stays O(1) regardless
DEFAULT_MAX_WINDOWS = 256

#: window tuple slots (a list per window, mutated in place)
_IDX, _COUNT, _SUM, _MIN, _MAX, _FIRST, _LAST = range(7)

#: the statistics :meth:`Series.points` can extract per window
STATS = ("last", "first", "min", "max", "mean", "sum", "count", "delta")


class Series:
    """One named quantity folded into fixed simulated-time windows."""

    __slots__ = ("name", "mode", "window_ps", "max_windows", "_windows")

    def __init__(
        self,
        name: str,
        *,
        mode: str = "sample",
        window_ps: int = DEFAULT_WINDOW_PS,
        max_windows: int = DEFAULT_MAX_WINDOWS,
    ) -> None:
        if mode not in ("sample", "cumulative"):
            raise ValueError(f"unknown series mode {mode!r}")
        if window_ps <= 0:
            raise ValueError(f"window width must be positive: {window_ps}")
        if max_windows < 2:
            raise ValueError(f"need at least 2 windows, got {max_windows}")
        self.name = name
        self.mode = mode
        self.window_ps = window_ps
        self.max_windows = max_windows
        #: windows in ascending index order; observation times are
        #: monotone (the engine clock), so appends suffice
        self._windows: List[list] = []

    def __len__(self) -> int:
        return len(self._windows)

    # ------------------------------------------------------------ recording
    def observe(self, time_ps: int, value: float) -> None:
        """Fold one observation at ``time_ps`` into its window.

        Observation times must be non-decreasing (they come from the
        simulation clock); a sample at an exact window boundary ``k*w``
        opens window ``k`` (windows are ``[k*w, (k+1)*w)``).
        """
        index = time_ps // self.window_ps
        windows = self._windows
        if windows and windows[-1][_IDX] == index:
            window = windows[-1]
            window[_COUNT] += 1
            window[_SUM] += value
            if value < window[_MIN]:
                window[_MIN] = value
            if value > window[_MAX]:
                window[_MAX] = value
            window[_LAST] = value
        else:
            windows.append([index, 1, value, value, value, value, value])
            if len(windows) > self.max_windows:
                self._downsample()

    def _downsample(self) -> None:
        """Double the window width; merge adjacent index pairs."""
        self.window_ps *= 2
        merged: List[list] = []
        for window in self._windows:
            index = window[_IDX] // 2
            if merged and merged[-1][_IDX] == index:
                target = merged[-1]
                target[_COUNT] += window[_COUNT]
                target[_SUM] += window[_SUM]
                if window[_MIN] < target[_MIN]:
                    target[_MIN] = window[_MIN]
                if window[_MAX] > target[_MAX]:
                    target[_MAX] = window[_MAX]
                target[_LAST] = window[_LAST]
            else:
                merged.append(
                    [index] + window[1:]  # reindexed copy, stats intact
                )
        self._windows = merged

    # -------------------------------------------------------------- reading
    def points(self, stat: str = "last") -> List[Tuple[int, float]]:
        """``(window_start_ps, value)`` per window, ascending.

        ``stat`` picks the per-window value (:data:`STATS`).  ``"delta"``
        is the increase of the ``last`` statistic against the previous
        window (against the window's own ``first`` for the first window)
        -- the per-window rate of a ``"cumulative"`` series.
        """
        if stat not in STATS:
            raise ValueError(f"unknown stat {stat!r}; expected one of {STATS}")
        out: List[Tuple[int, float]] = []
        previous_last: Optional[float] = None
        for window in self._windows:
            start_ps = window[_IDX] * self.window_ps
            if stat == "delta":
                base = window[_FIRST] if previous_last is None else previous_last
                value = window[_LAST] - base
                previous_last = window[_LAST]
            elif stat == "mean":
                value = window[_SUM] / window[_COUNT]
            elif stat == "count":
                value = window[_COUNT]
            elif stat == "sum":
                value = window[_SUM]
            elif stat == "first":
                value = window[_FIRST]
            elif stat == "min":
                value = window[_MIN]
            elif stat == "max":
                value = window[_MAX]
            else:
                value = window[_LAST]
            out.append((start_ps, value))
        return out

    @property
    def default_stat(self) -> str:
        """The statistic that best summarizes this series' mode."""
        return "delta" if self.mode == "cumulative" else "last"

    def span_ps(self) -> int:
        """Simulated time covered, first window start to last window end."""
        if not self._windows:
            return 0
        first = self._windows[0][_IDX] * self.window_ps
        last = (self._windows[-1][_IDX] + 1) * self.window_ps
        return last - first

    # -------------------------------------------------------- serialization
    def to_obj(self) -> Dict[str, object]:
        """A JSON-serializable dump (windows as parallel-field rows)."""
        return {
            "mode": self.mode,
            "window_ps": self.window_ps,
            "windows": [list(window) for window in self._windows],
        }

    @staticmethod
    def from_obj(name: str, obj: Dict[str, object]) -> "Series":
        """Rebuild a series from :meth:`to_obj` output."""
        series = Series(
            name, mode=obj["mode"], window_ps=obj["window_ps"]
        )
        series._windows = [list(window) for window in obj["windows"]]
        return series


class Timeline:
    """A named registry of :class:`Series` for one run."""

    enabled = True

    def __init__(
        self,
        *,
        window_ps: int = DEFAULT_WINDOW_PS,
        max_windows: int = DEFAULT_MAX_WINDOWS,
    ) -> None:
        self.window_ps = window_ps
        self.max_windows = max_windows
        self._series: Dict[str, Series] = {}

    def series(
        self, name: str, *, mode: str = "sample", window_ps: Optional[int] = None
    ) -> Series:
        """Get or create the series called ``name``.

        ``window_ps`` overrides the timeline's default window width at
        creation (e.g. the retransmit series uses a wider window so a
        *burst* is visible as one large per-window delta); it is ignored
        for a series that already exists.
        """
        series = self._series.get(name)
        if series is None:
            series = Series(
                name,
                mode=mode,
                window_ps=window_ps if window_ps else self.window_ps,
                max_windows=self.max_windows,
            )
            self._series[name] = series
        elif series.mode != mode:
            raise ValueError(
                f"series {name!r} already registered as {series.mode!r}, "
                f"requested {mode!r}"
            )
        return series

    def observe(self, name: str, time_ps: int, value: float) -> None:
        """Fold one observation into an existing-or-new sample series."""
        self.series(name).observe(time_ps, value)

    def names(self) -> List[str]:
        """Registered series names, sorted."""
        return sorted(self._series)

    def get(self, name: str) -> Optional[Series]:
        """The series called ``name``, or None."""
        return self._series.get(name)

    def __len__(self) -> int:
        return len(self._series)

    def to_obj(self) -> Dict[str, object]:
        """JSON-serializable dump of every series, name-sorted."""
        return {
            "window_ps": self.window_ps,
            "series": {
                name: self._series[name].to_obj() for name in self.names()
            },
        }

    @staticmethod
    def from_obj(obj: Dict[str, object]) -> "Timeline":
        """Rebuild a timeline from :meth:`to_obj` output."""
        timeline = Timeline(window_ps=obj.get("window_ps", DEFAULT_WINDOW_PS))
        for name, payload in obj.get("series", {}).items():
            timeline._series[name] = Series.from_obj(name, payload)
        return timeline
