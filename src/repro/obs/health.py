"""Declarative health watchdogs over run timelines.

Thousand-point sweep campaigns cannot be eyeballed; they need verdicts.
A :class:`HealthMonitor` holds a set of declarative watchdogs, each
watching timeline series (by glob pattern, so ``*.rel/retransmits``
covers every NIC) or end-of-run metrics, and :meth:`~HealthMonitor.
evaluate` folds them into a deterministic list of structured
:class:`HealthFinding` records that rides on run results, sweep rows and
the unified run report.

Three detector shapes (the issue's threshold / sustained-derivative /
stall taxonomy):

* :class:`ThresholdWatchdog` -- a window statistic at or above a
  threshold, either in any window or sustained over a simulated-time
  span;
* :class:`DerivativeWatchdog` -- a statistic rising monotonically across
  a sustained span with at least a minimum net rise (backlog growth);
* :class:`StallWatchdog` -- an *activity* series showing work per window
  while a *progress* series stays flat across a sustained span
  (livelock / stuck-gap detection);
* :class:`MetricWatchdog` -- an end-of-run metrics counter at or above a
  threshold (for events too rare or too structural to need a series).

Sustains are expressed in **picoseconds of simulated time**, not window
counts, so downsampled (wider-window) timelines fire the same way.

:func:`default_watchdogs` is the standard battery -- ``retransmit_storm``,
``unexpected_backlog_growth``, ``reorder_stall``, ``backend_degraded``,
``sim_livelock`` -- tuned so the zero-fault benchmark points come back
clean while seeded fault runs produce deterministic findings (pinned by
``tests/obs/test_health.py`` and the CI fault smoke).

Evaluation is pull-style and end-of-run: watchdogs read the finished
timeline and metrics snapshot, so enabling them cannot perturb simulated
results.
"""

from __future__ import annotations

import dataclasses
import fnmatch
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.timeline import Timeline

#: finding severities, mild to fatal
SEVERITIES = ("info", "warning", "critical")


@dataclasses.dataclass(frozen=True)
class HealthFinding:
    """One structured verdict about a run."""

    #: stable machine-readable code (``retransmit_storm``, ...)
    code: str
    severity: str
    #: the series (or metric) that tripped the detector
    series: str
    #: simulated-time span of the offending evidence
    start_ps: int
    end_ps: int
    #: the observed value that crossed the line, and the line itself
    value: float
    threshold: float
    #: one human-readable sentence
    message: str

    def to_obj(self) -> Dict[str, object]:
        """JSON-serializable record (what sweep rows / reports carry)."""
        return dataclasses.asdict(self)

    @staticmethod
    def from_obj(obj: Dict[str, object]) -> "HealthFinding":
        return HealthFinding(**obj)


def _match_series(timeline: Timeline, pattern: str) -> List[str]:
    """Timeline series names matching a glob pattern, sorted."""
    return [
        name for name in timeline.names() if fnmatch.fnmatchcase(name, pattern)
    ]


def _sustained_runs(
    points: Sequence[Tuple[int, float]],
    window_ps: int,
    predicate,
) -> List[Tuple[int, int, List[float]]]:
    """Maximal runs of consecutive windows satisfying ``predicate``.

    Returns ``(start_ps, end_ps, values)`` per run.  Windows are
    consecutive when adjacent in the stored sequence *and* contiguous in
    time -- an unobserved gap breaks the run.
    """
    runs: List[Tuple[int, int, List[float]]] = []
    run_start: Optional[int] = None
    run_end = 0
    values: List[float] = []
    for start_ps, value in points:
        contiguous = run_start is not None and start_ps == run_end
        if predicate(value):
            if not contiguous:
                if run_start is not None:
                    runs.append((run_start, run_end, values))
                run_start, values = start_ps, []
            run_end = start_ps + window_ps
            values.append(value)
        else:
            if run_start is not None:
                runs.append((run_start, run_end, values))
            run_start, values = None, []
    if run_start is not None:
        runs.append((run_start, run_end, values))
    return runs


class Watchdog:
    """Base detector: subclasses implement :meth:`evaluate`."""

    def __init__(self, code: str, severity: str = "warning") -> None:
        if severity not in SEVERITIES:
            raise ValueError(f"unknown severity {severity!r}")
        self.code = code
        self.severity = severity

    def evaluate(
        self, timeline: Timeline, metrics: Dict[str, object]
    ) -> List[HealthFinding]:
        raise NotImplementedError


class ThresholdWatchdog(Watchdog):
    """A window statistic at/above ``threshold``.

    With ``sustain_ps == 0`` a single offending window fires; otherwise
    the condition must hold over at least ``sustain_ps`` of contiguous
    simulated time.
    """

    def __init__(
        self,
        code: str,
        pattern: str,
        *,
        stat: str = "last",
        threshold: float,
        sustain_ps: int = 0,
        severity: str = "warning",
    ) -> None:
        super().__init__(code, severity)
        self.pattern = pattern
        self.stat = stat
        self.threshold = threshold
        self.sustain_ps = sustain_ps

    def evaluate(self, timeline, metrics) -> List[HealthFinding]:
        findings = []
        for name in _match_series(timeline, self.pattern):
            series = timeline.get(name)
            runs = _sustained_runs(
                series.points(self.stat),
                series.window_ps,
                lambda v: v >= self.threshold,
            )
            for start_ps, end_ps, values in runs:
                if end_ps - start_ps < max(self.sustain_ps, series.window_ps):
                    continue
                peak = max(values)
                findings.append(
                    HealthFinding(
                        code=self.code,
                        severity=self.severity,
                        series=name,
                        start_ps=start_ps,
                        end_ps=end_ps,
                        value=peak,
                        threshold=self.threshold,
                        message=(
                            f"{name} {self.stat} reached {peak:g} "
                            f"(>= {self.threshold:g}) for "
                            f"{(end_ps - start_ps) / 1e6:g} us"
                        ),
                    )
                )
                break  # one finding per series: the first offending run
        return findings


class DerivativeWatchdog(Watchdog):
    """Sustained growth: the statistic rises window over window.

    Fires when the statistic increases monotonically (allowing plateaus
    when ``strict`` is False) across at least ``sustain_ps`` of
    contiguous time with a net rise of at least ``min_rise``.
    """

    def __init__(
        self,
        code: str,
        pattern: str,
        *,
        stat: str = "last",
        min_rise: float,
        sustain_ps: int,
        strict: bool = True,
        severity: str = "warning",
    ) -> None:
        super().__init__(code, severity)
        self.pattern = pattern
        self.stat = stat
        self.min_rise = min_rise
        self.sustain_ps = sustain_ps
        self.strict = strict

    def _rising_runs(self, points, window_ps):
        """Maximal contiguous runs where the value never falls."""
        runs = []
        run: List[Tuple[int, float]] = []
        for start_ps, value in points:
            if run:
                contiguous = start_ps == run[-1][0] + window_ps
                rising = (
                    value > run[-1][1] if self.strict else value >= run[-1][1]
                )
                if contiguous and rising:
                    run.append((start_ps, value))
                    continue
                runs.append(run)
                run = []
            run = [(start_ps, value)]
        if run:
            runs.append(run)
        return runs

    def evaluate(self, timeline, metrics) -> List[HealthFinding]:
        findings = []
        for name in _match_series(timeline, self.pattern):
            series = timeline.get(name)
            for run in self._rising_runs(
                series.points(self.stat), series.window_ps
            ):
                span = run[-1][0] + series.window_ps - run[0][0]
                rise = run[-1][1] - run[0][1]
                if span >= self.sustain_ps and rise >= self.min_rise:
                    findings.append(
                        HealthFinding(
                            code=self.code,
                            severity=self.severity,
                            series=name,
                            start_ps=run[0][0],
                            end_ps=run[-1][0] + series.window_ps,
                            value=rise,
                            threshold=self.min_rise,
                            message=(
                                f"{name} {self.stat} grew by {rise:g} "
                                f"(>= {self.min_rise:g}) over "
                                f"{span / 1e6:g} us without falling"
                            ),
                        )
                    )
                    break
        return findings


class StallWatchdog(Watchdog):
    """Activity without progress.

    Watches one *progress* series (cumulative; its per-window ``delta``
    should be positive in a healthy run) against one *activity* series:
    fires when, over at least ``sustain_ps`` of contiguous time, every
    window shows activity but zero progress.  ``sim_livelock`` is this
    with engine events as activity and firmware completions as progress.
    """

    def __init__(
        self,
        code: str,
        progress_pattern: str,
        activity_pattern: str,
        *,
        sustain_ps: int,
        severity: str = "critical",
    ) -> None:
        super().__init__(code, severity)
        self.progress_pattern = progress_pattern
        self.activity_pattern = activity_pattern
        self.sustain_ps = sustain_ps

    def evaluate(self, timeline, metrics) -> List[HealthFinding]:
        activity: Dict[int, float] = {}
        window_ps = None
        for name in _match_series(timeline, self.activity_pattern):
            series = timeline.get(name)
            window_ps = series.window_ps
            for start_ps, value in series.points("delta"):
                activity[start_ps] = activity.get(start_ps, 0.0) + value
        if not activity or window_ps is None:
            return []
        progress: Dict[int, float] = {}
        for name in _match_series(timeline, self.progress_pattern):
            series = timeline.get(name)
            if series.window_ps != window_ps:
                # resolution drifted apart mid-downsample; comparing
                # differently-sized windows would fabricate stalls
                return []
            for start_ps, value in series.points("delta"):
                progress[start_ps] = progress.get(start_ps, 0.0) + value
        stalled = [
            (start_ps, activity[start_ps])
            for start_ps in sorted(activity)
            if activity[start_ps] > 0 and progress.get(start_ps, 0.0) <= 0
        ]
        runs = _sustained_runs(stalled, window_ps, lambda v: True)
        for start_ps, end_ps, values in runs:
            if end_ps - start_ps < self.sustain_ps:
                continue
            return [
                HealthFinding(
                    code=self.code,
                    severity=self.severity,
                    series=self.progress_pattern,
                    start_ps=start_ps,
                    end_ps=end_ps,
                    value=sum(values),
                    threshold=0.0,
                    message=(
                        f"{sum(values):g} events of activity "
                        f"({self.activity_pattern}) over "
                        f"{(end_ps - start_ps) / 1e6:g} us with no "
                        f"progress on {self.progress_pattern}"
                    ),
                )
            ]
        return []


class ImbalanceWatchdog(Watchdog):
    """Cross-series skew: one series carries far more than its peers.

    Compares the end-of-run ``stat`` value *across* every series
    matching ``pattern`` (at least ``min_series`` of them, so a 2-rank
    ring cannot trip it): fires when the hottest series reaches at least
    ``ratio`` times the mean of all matched series and at least
    ``floor`` absolutely.  With per-link utilization series this is the
    route-imbalance detector: dimension-ordered routing concentrating
    traffic onto one channel while its peers idle.
    """

    def __init__(
        self,
        code: str,
        pattern: str,
        *,
        stat: str = "last",
        ratio: float,
        floor: float = 0.0,
        min_series: int = 4,
        severity: str = "warning",
    ) -> None:
        super().__init__(code, severity)
        self.pattern = pattern
        self.stat = stat
        self.ratio = ratio
        self.floor = floor
        self.min_series = min_series

    def evaluate(self, timeline, metrics) -> List[HealthFinding]:
        names = _match_series(timeline, self.pattern)
        if len(names) < self.min_series:
            return []
        finals: List[Tuple[str, float, int]] = []
        for name in names:
            series = timeline.get(name)
            points = series.points(self.stat)
            if points:
                finals.append((name, points[-1][1], points[-1][0]))
        if len(finals) < self.min_series:
            return []
        mean = sum(value for _, value, _ in finals) / len(finals)
        name, top, start_ps = max(finals, key=lambda item: item[1])
        if mean <= 0 or top < self.floor or top < self.ratio * mean:
            return []
        window = timeline.get(name).window_ps
        return [
            HealthFinding(
                code=self.code,
                severity=self.severity,
                series=name,
                start_ps=start_ps,
                end_ps=start_ps + window,
                value=top,
                threshold=self.ratio * mean,
                message=(
                    f"{name} {self.stat} = {top:g}, "
                    f"{top / mean:.1f}x the mean of {len(finals)} "
                    f"peer series (>= {self.ratio:g}x)"
                ),
            )
        ]


class MetricWatchdog(Watchdog):
    """An end-of-run metrics value at/above ``threshold``.

    For events that are structural rather than temporal (a backend
    degradation either happened or did not) or too rare to need a
    series.  Counter/collector values compare directly; gauge dicts
    compare their ``value``.
    """

    def __init__(
        self,
        code: str,
        pattern: str,
        *,
        threshold: float = 1.0,
        severity: str = "warning",
    ) -> None:
        super().__init__(code, severity)
        self.pattern = pattern
        self.threshold = threshold

    def evaluate(self, timeline, metrics) -> List[HealthFinding]:
        findings = []
        for name in sorted(metrics):
            if not fnmatch.fnmatchcase(name, self.pattern):
                continue
            value = metrics[name]
            if isinstance(value, dict):
                value = value.get("value")
            if not isinstance(value, (int, float)):
                continue
            if value >= self.threshold:
                findings.append(
                    HealthFinding(
                        code=self.code,
                        severity=self.severity,
                        series=name,
                        start_ps=0,
                        end_ps=0,
                        value=float(value),
                        threshold=self.threshold,
                        message=(
                            f"metric {name} = {value:g} "
                            f"(>= {self.threshold:g})"
                        ),
                    )
                )
        return findings


# -------------------------------------------------------- the standard set
#: window width of the ``*.rel/retransmits`` series (the probe builds it
#: with this override): wide enough that a *burst* of retransmissions
#: lands in one window as one large delta, while a trickle of isolated
#: singles never exceeds one per window
RETRANSMIT_WINDOW_PS = 10_000_000
#: retransmissions inside one such window that count as a storm
RETRANSMIT_STORM_RATE = 2.0
#: net unexpected-queue growth that counts as a backlog (entries)
BACKLOG_MIN_RISE = 24.0
#: how long the unexpected queue must grow without draining (ps)
BACKLOG_SUSTAIN_PS = 8_000_000
#: how long the reorder buffer may hold a gap before it is a stall (ps)
REORDER_STALL_PS = 12_000_000
#: how long the engine may fire events with zero completions (ps)
LIVELOCK_SUSTAIN_PS = 500_000_000
#: per-link utilization that makes a channel a hotspot when sustained
#: (clean halo traffic is bursty: links idle between iterations, so
#: sustained near-saturation means an incast is parked on the channel)
HOTSPOT_UTILIZATION = 0.6
#: how long a link must stay that hot (ps)
HOTSPOT_SUSTAIN_PS = 3_000_000
#: link backlog (messages queued on one channel) that counts as
#: contention when it never drains below this across the sustain span
CONTENTION_QUEUE_DEPTH = 3.0
#: how long the backlog must persist (ps)
CONTENTION_SUSTAIN_PS = 3_000_000
#: hottest-link utilization vs the fleet mean that counts as imbalance
IMBALANCE_RATIO = 4.0
#: ... provided the hot link is actually busy (absolute floor)
IMBALANCE_FLOOR = 0.25
#: and there are enough channels for "imbalance" to mean anything
IMBALANCE_MIN_SERIES = 8
#: admission refusals inside one RETRANSMIT_WINDOW_PS window that count
#: as sustained pressure (a draining queue refuses at most a straggler
#: or two per window; a flood refuses every arrival)
ADMISSION_PRESSURE_RATE = 4.0


def default_watchdogs() -> List[Watchdog]:
    """The standard battery every telemetry-carrying run evaluates."""
    return [
        # a storm is *bursty*: several retransmits inside one window,
        # where a healthy lossy run shows isolated singles
        ThresholdWatchdog(
            "retransmit_storm",
            "*.rel/retransmits",
            stat="delta",
            threshold=RETRANSMIT_STORM_RATE,
            severity="warning",
        ),
        DerivativeWatchdog(
            "unexpected_backlog_growth",
            "*.unexpectedQ/depth",
            stat="last",
            min_rise=BACKLOG_MIN_RISE,
            sustain_ps=BACKLOG_SUSTAIN_PS,
            strict=False,
            severity="warning",
        ),
        # a healthy reorder buffer fills and drains within an RTT; a gap
        # held across many windows means the missing packet never came
        ThresholdWatchdog(
            "reorder_stall",
            "*.rel/reorder_held",
            stat="min",
            threshold=1.0,
            sustain_ps=REORDER_STALL_PS,
            severity="warning",
        ),
        MetricWatchdog(
            "backend_degraded",
            "*.fw/backend_degraded",
            threshold=1.0,
            severity="critical",
        ),
        # admission control refusing unexpected arrivals in bursts: the
        # ``*.adm/refused`` series only exists on NICs with
        # ``qdisc.max_unexpected`` set, so ordinary runs cannot trip it
        ThresholdWatchdog(
            "unexpected_admission_pressure",
            "*.adm/refused",
            stat="delta",
            threshold=ADMISSION_PRESSURE_RATE,
            severity="warning",
        ),
        StallWatchdog(
            "sim_livelock",
            "*.fw/completions",
            "engine/events",
            sustain_ps=LIVELOCK_SUSTAIN_PS,
            severity="critical",
        ),
        # fabric congestion battery: the ``*.wire*/util`` series exist on
        # routed presets only and ``*.wire*/queue`` only with fabric
        # observability on, so crossbar / legacy runs cannot trip these
        ThresholdWatchdog(
            "hotspot_link",
            "*.wire*/util",
            stat="last",
            threshold=HOTSPOT_UTILIZATION,
            sustain_ps=HOTSPOT_SUSTAIN_PS,
            severity="warning",
        ),
        ThresholdWatchdog(
            "link_contention",
            "*.wire*/queue",
            stat="min",
            threshold=CONTENTION_QUEUE_DEPTH,
            sustain_ps=CONTENTION_SUSTAIN_PS,
            severity="warning",
        ),
        ImbalanceWatchdog(
            "route_imbalance",
            "*.wire*/util",
            stat="last",
            ratio=IMBALANCE_RATIO,
            floor=IMBALANCE_FLOOR,
            min_series=IMBALANCE_MIN_SERIES,
            severity="info",
        ),
    ]


class HealthMonitor:
    """A watchdog battery plus its (cached) evaluation for one run."""

    enabled = True

    def __init__(self, watchdogs: Optional[Iterable[Watchdog]] = None) -> None:
        self.watchdogs: List[Watchdog] = (
            list(watchdogs) if watchdogs is not None else default_watchdogs()
        )
        self._findings: Optional[List[HealthFinding]] = None

    def evaluate(
        self,
        timeline: Optional[Timeline],
        metrics: Optional[Dict[str, object]] = None,
    ) -> List[HealthFinding]:
        """Run every watchdog; findings sort by severity then code.

        The result is cached -- a monitor is per-run, like the telemetry
        bundle it rides on.
        """
        if self._findings is not None:
            return self._findings
        timeline = timeline if timeline is not None else Timeline()
        metrics = metrics or {}
        findings: List[HealthFinding] = []
        for watchdog in self.watchdogs:
            findings.extend(watchdog.evaluate(timeline, metrics))
        findings.sort(
            key=lambda f: (-SEVERITIES.index(f.severity), f.code, f.series)
        )
        self._findings = findings
        return findings

    @property
    def findings(self) -> List[HealthFinding]:
        """Findings of the last evaluation ([] before any)."""
        return list(self._findings or [])

    def verdict(self) -> str:
        """One-word summary: the worst severity seen, or ``"healthy"``."""
        if not self._findings:
            return "healthy"
        return max(
            (f.severity for f in self._findings), key=SEVERITIES.index
        )


def verdict_of(findings: Sequence) -> str:
    """Worst severity in a findings list (dicts or HealthFinding), or
    ``"healthy"`` -- the sweep-row filter key."""
    severities = [
        f["severity"] if isinstance(f, dict) else f.severity for f in findings
    ]
    if not severities:
        return "healthy"
    return max(severities, key=SEVERITIES.index)


def has_finding(findings: Sequence, code: str) -> bool:
    """True when a findings list (dicts or records) carries ``code``."""
    return any(
        (f["code"] if isinstance(f, dict) else f.code) == code
        for f in findings
    )
