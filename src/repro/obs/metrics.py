"""The metrics registry: named counters, gauges and log-scale histograms.

Components obtain instruments from a shared :class:`MetricsRegistry`
handle (``engine.metrics``); the registry owns the namespace and produces
a JSON-serializable :meth:`~MetricsRegistry.snapshot` at the end of a run.
Instrument names use ``/`` to separate the owning component from the
quantity (``nic1.alpu.posted/match_successes``).

Telemetry is **off by default**: every engine starts with the module
singleton :data:`NULL_REGISTRY`, whose instruments are shared no-op
objects.  The disabled path must stay cheap enough to leave timing-
sensitive tier-1 tests untouched -- one attribute lookup plus an empty
method call per event, which ``tests/obs/test_metrics.py`` pins down by
inspecting the no-op bytecode.

Besides push-style instruments the registry accepts pull-style
*collectors*: callables sampled at snapshot time, used to surface
counters that components already keep (cache hits, DRAM page states,
link utilization) without touching their hot paths.

This module is dependency-free (it must be importable from every layer,
including :mod:`repro.core`, without creating cycles).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Union

Number = Union[int, float]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")
    enabled = True

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (default 1)."""
        self.value += amount


class Gauge:
    """A point-in-time value with a high-water mark."""

    __slots__ = ("name", "value", "high_water")
    enabled = True

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0
        self.high_water: Number = 0

    def set(self, value: Number) -> None:
        """Record the current value (tracks the maximum ever seen)."""
        self.value = value
        if value > self.high_water:
            self.high_water = value


class Histogram:
    """A log-scale (power-of-two bucket) histogram of non-negative values.

    Bucket ``b`` holds values in ``[2**(b-1), 2**b)`` for ``b >= 1`` and
    the single value 0 for ``b == 0`` -- i.e. the bucket index of an
    integer is its bit length.  Log-scale buckets keep queue-depth and
    traversal-length distributions compact over orders of magnitude.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")
    enabled = True

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total: Number = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None
        self.buckets: Dict[int, int] = {}

    def record(self, value: Number) -> None:
        """Record one sample (must be >= 0)."""
        if value < 0:
            raise ValueError(f"{self.name}: histogram values must be >= 0")
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = int(value).bit_length() if value >= 1 else 0
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0


class _NullCounter:
    """Shared no-op counter handed out by the disabled registry."""

    __slots__ = ()
    enabled = False
    name = ""
    value = 0

    def inc(self, amount: Number = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    enabled = False
    name = ""
    value = 0
    high_water = 0

    def set(self, value: Number) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    enabled = False
    name = ""
    count = 0
    total = 0
    min = None
    max = None
    mean = 0.0

    def record(self, value: Number) -> None:
        pass


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Shared namespace of instruments plus snapshot-time collectors."""

    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}
        self._collectors: Dict[str, Callable[[], Number]] = {}

    # ---------------------------------------------------------- instruments
    def _get(self, name: str, cls):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name)
            self._instruments[name] = instrument
        elif type(instrument) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, requested {cls.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram called ``name``."""
        return self._get(name, Histogram)

    def register_collector(self, name: str, fn: Callable[[], Number]) -> None:
        """Register a pull-style metric sampled at snapshot time.

        Re-registering a name replaces the previous collector (a fresh
        world built on a reused registry wins over a dead one).
        """
        self._collectors[name] = fn

    # ------------------------------------------------------------- snapshot
    def snapshot(self) -> Dict[str, object]:
        """All metrics as a name-sorted, JSON-serializable dict.

        Counters flatten to their value; gauges and histograms become
        small dicts.  Collector values are sampled now.
        """
        out: Dict[str, object] = {}
        for name, instrument in self._instruments.items():
            if isinstance(instrument, Counter):
                out[name] = instrument.value
            elif isinstance(instrument, Gauge):
                out[name] = {
                    "value": instrument.value,
                    "high_water": instrument.high_water,
                }
            else:
                hist: Histogram = instrument  # type: ignore[assignment]
                out[name] = {
                    "count": hist.count,
                    "sum": hist.total,
                    "min": hist.min,
                    "max": hist.max,
                    "mean": hist.mean,
                    "buckets": {
                        str(b): n for b, n in sorted(hist.buckets.items())
                    },
                }
        for name, fn in self._collectors.items():
            value = fn()
            if isinstance(value, float) and not math.isfinite(value):
                value = None
            out[name] = value
        return dict(sorted(out.items()))

    def names(self) -> List[str]:
        """Registered instrument and collector names, sorted."""
        return sorted(set(self._instruments) | set(self._collectors))


class NullRegistry:
    """The disabled registry: hands out shared no-op instruments.

    Never allocates per call site, never retains state; ``snapshot()`` is
    always empty.  This is the default on every :class:`Engine`.
    """

    enabled = False

    def counter(self, name: str) -> _NullCounter:
        return NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return NULL_GAUGE

    def histogram(self, name: str) -> _NullHistogram:
        return NULL_HISTOGRAM

    def register_collector(self, name: str, fn: Callable[[], Number]) -> None:
        pass

    def snapshot(self) -> Dict[str, object]:
        return {}

    def names(self) -> List[str]:
        return []


NULL_REGISTRY = NullRegistry()
