"""The per-run telemetry bundle.

One :class:`Telemetry` object packages a fresh metrics registry, a fresh
tracer and the probe period, ready to hand to a world or a workload:

    telemetry = Telemetry()
    result = run_pingpong(NicConfig.with_alpu(256, 16), telemetry=telemetry)
    telemetry.write_chrome_trace("pingpong.trace.json")
    print(telemetry.snapshot()["nic1.alpu.posted/match_successes"])

A Telemetry object is **per run**: registries accumulate forever and
collectors bind to the components of one world, so reuse across runs
mixes numbers.  The sweep helpers in :mod:`repro.workloads.runner`
create one per point for exactly this reason.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from repro.obs.chrome import to_chrome
from repro.obs.lifecycle import LifecycleRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.probe import DEFAULT_INTERVAL_PS
from repro.obs.selfprof import SimProfiler
from repro.obs.tracer import Tracer


class Telemetry:
    """Metrics + tracing + probe configuration for one simulation run."""

    def __init__(
        self,
        *,
        metrics: bool = True,
        tracing: bool = True,
        probe_interval_ps: Optional[int] = DEFAULT_INTERVAL_PS,
        lifecycle: bool = False,
        profile: bool = False,
    ) -> None:
        self.metrics = MetricsRegistry() if metrics else None
        self.tracer = Tracer() if tracing else None
        #: None disables the periodic queue-depth/occupancy probe
        self.probe_interval_ps = probe_interval_ps
        #: per-message flight recorder (opt-in; see repro.obs.lifecycle)
        self.lifecycle = LifecycleRecorder() if lifecycle else None
        #: wall-clock simulator self-profiler (opt-in)
        self.profiler = SimProfiler() if profile else None

    # ------------------------------------------------------------- outputs
    def snapshot(self) -> Dict[str, object]:
        """The metrics snapshot (empty when metrics are disabled)."""
        return self.metrics.snapshot() if self.metrics is not None else {}

    def chrome_trace(self) -> dict:
        """The Chrome trace-event document for the collected records.

        When the lifecycle recorder is on, its per-message tracks ride
        in the same document (a second "process" next to the component
        tracks).
        """
        records = self.tracer.records if self.tracer is not None else ()
        document = to_chrome(records)
        if self.lifecycle is not None:
            document["traceEvents"].extend(self.lifecycle.chrome_events())
        return document

    def lifecycles(self) -> list:
        """The recorded lifecycles ([] when the recorder is off)."""
        return list(self.lifecycle.lifecycles) if self.lifecycle else []

    def write_lifecycles(self, path) -> dict:
        """Dump the lifecycle record as JSON (the attribution CLI input)."""
        document = (
            self.lifecycle.to_obj()
            if self.lifecycle is not None
            else {"lifecycles": []}
        )
        with open(path, "w") as handle:
            json.dump(document, handle, indent=1)
            handle.write("\n")
        return document

    def write_chrome_trace(self, path) -> dict:
        """Write the Chrome trace JSON (incl. lifecycle tracks) to ``path``."""
        document = self.chrome_trace()
        with open(path, "w") as handle:
            json.dump(document, handle, indent=1)
            handle.write("\n")
        return document

    def report(self, **meta) -> dict:
        """A JSON-serializable run report: metadata + metrics snapshot."""
        return {"meta": dict(meta), "metrics": self.snapshot()}

    def write_report(self, path, **meta) -> dict:
        """Write :meth:`report` to ``path`` as JSON; returns the report."""
        document = self.report(**meta)
        with open(path, "w") as handle:
            json.dump(document, handle, indent=1, sort_keys=True)
            handle.write("\n")
        return document
