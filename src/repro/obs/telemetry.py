"""The per-run telemetry bundle.

One :class:`Telemetry` object packages a fresh metrics registry, a fresh
tracer and the probe period, ready to hand to a world or a workload:

    telemetry = Telemetry()
    result = run_pingpong(NicConfig.with_alpu(256, 16), telemetry=telemetry)
    telemetry.write_chrome_trace("pingpong.trace.json")
    print(telemetry.snapshot()["nic1.alpu.posted/match_successes"])

With ``timeline=True`` the bundle also carries a
:class:`~repro.obs.timeline.Timeline` the sampling probe feeds, and with
``health=True`` a :class:`~repro.obs.health.HealthMonitor` whose
:func:`~repro.obs.health.default_watchdogs` battery turns that timeline
(plus the metrics snapshot) into structured findings at end of run.

A Telemetry object is **per run**: registries accumulate forever and
collectors bind to the components of one world, so reuse across runs
mixes numbers.  The sweep helpers in :mod:`repro.workloads.runner`
create one per point for exactly this reason.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.chrome import to_chrome
from repro.obs.health import HealthFinding, HealthMonitor
from repro.obs.lifecycle import LifecycleRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.probe import DEFAULT_INTERVAL_PS
from repro.obs.selfprof import SimProfiler
from repro.obs.timeline import Timeline
from repro.obs.tracer import Tracer

#: schema version of :meth:`Telemetry.report` documents (and of the
#: sweep telemetry dumps that embed them); bump on shape changes so
#: :mod:`repro.analysis` can dispatch
REPORT_VERSION = 3


class Telemetry:
    """Metrics + tracing + probe configuration for one simulation run."""

    def __init__(
        self,
        *,
        metrics: bool = True,
        tracing: bool = True,
        probe_interval_ps: Optional[int] = DEFAULT_INTERVAL_PS,
        lifecycle: bool = False,
        profile: bool = False,
        timeline: bool = False,
        health: bool = False,
        fabric: bool = False,
    ) -> None:
        self.metrics = MetricsRegistry() if metrics else None
        self.tracer = Tracer() if tracing else None
        #: None disables the periodic queue-depth/occupancy probe
        self.probe_interval_ps = probe_interval_ps
        #: per-message flight recorder (opt-in; see repro.obs.lifecycle)
        self.lifecycle = LifecycleRecorder() if lifecycle else None
        #: wall-clock simulator self-profiler (opt-in)
        self.profiler = SimProfiler() if profile else None
        #: windowed timeseries the sampling probe feeds (opt-in)
        self.timeline = Timeline() if timeline else None
        #: health watchdog battery evaluated at end of run (opt-in);
        #: ``health=True`` implies a timeline -- the watchdogs need one
        if health and self.timeline is None:
            self.timeline = Timeline()
        self.health = HealthMonitor() if health else None
        #: fabric observability: the world passes this through as the
        #: fabric's ``observe_hops`` (per-hop lifecycle marks) and
        #: attaches the fabric's :meth:`~repro.network.fabric.Fabric.
        #: snapshot` so the report carries a ``fabric`` section.
        #: Per-hop marks need the lifecycle recorder to land anywhere.
        self.fabric_obs = fabric
        self._fabric_source = None

    # ------------------------------------------------------------- wiring
    def attach_fabric_source(self, source) -> None:
        """Register a zero-argument callable returning the fabric snapshot.

        Called by the world after it builds its fabric; harmless to skip
        (the report's ``fabric`` section stays ``None``).
        """
        self._fabric_source = source

    def fabric_snapshot(self) -> Optional[dict]:
        """The attached fabric's snapshot, or ``None`` when not wired."""
        if not self.fabric_obs or self._fabric_source is None:
            return None
        return self._fabric_source()

    # ------------------------------------------------------------- outputs
    def snapshot(self) -> Dict[str, object]:
        """The metrics snapshot (empty when metrics are disabled)."""
        return self.metrics.snapshot() if self.metrics is not None else {}

    def chrome_trace(self) -> dict:
        """The Chrome trace-event document for the collected records.

        When the lifecycle recorder is on, its per-message tracks ride
        in the same document (a second "process" next to the component
        tracks).
        """
        records = self.tracer.records if self.tracer is not None else ()
        document = to_chrome(records)
        if self.lifecycle is not None:
            document["traceEvents"].extend(self.lifecycle.chrome_events())
        return document

    def lifecycles(self) -> list:
        """The recorded lifecycles ([] when the recorder is off)."""
        return list(self.lifecycle.lifecycles) if self.lifecycle else []

    def health_findings(self) -> List[HealthFinding]:
        """Evaluate (once) and return the watchdog findings.

        [] when the monitor is off.  Evaluation is cached inside the
        monitor, so calling this repeatedly -- or after the report -- is
        free and consistent.
        """
        if self.health is None:
            return []
        return self.health.evaluate(self.timeline, self.snapshot())

    def health_verdict(self) -> str:
        """Worst finding severity, or ``"healthy"`` (also when off)."""
        if self.health is None:
            return "healthy"
        self.health_findings()
        return self.health.verdict()

    def write_lifecycles(self, path) -> dict:
        """Dump the lifecycle record as JSON (the attribution CLI input)."""
        document = (
            self.lifecycle.to_obj()
            if self.lifecycle is not None
            else {"lifecycles": []}
        )
        with open(path, "w") as handle:
            json.dump(document, handle, indent=1)
            handle.write("\n")
        return document

    def write_chrome_trace(self, path) -> dict:
        """Write the Chrome trace JSON (incl. lifecycle tracks) to ``path``."""
        document = self.chrome_trace()
        with open(path, "w") as handle:
            json.dump(document, handle, indent=1)
            handle.write("\n")
        return document

    def report(self, **meta) -> dict:
        """The unified, JSON-serializable run report (schema v3).

        Always carries ``version``, ``meta``, ``metrics``, ``health``
        (findings + verdict; empty/healthy when the monitor is off).
        ``timeline``, ``lifecycles``, ``profile`` and ``fabric`` appear
        when their collectors are enabled, else ``None`` -- the renderer
        in :mod:`repro.analysis.report` folds whatever is present.
        """
        return {
            "version": REPORT_VERSION,
            "meta": dict(meta),
            "metrics": self.snapshot(),
            "fabric": self.fabric_snapshot(),
            "timeline": (
                self.timeline.to_obj() if self.timeline is not None else None
            ),
            "health": {
                "verdict": self.health_verdict(),
                "findings": [f.to_obj() for f in self.health_findings()],
            },
            "lifecycles": (
                self.lifecycle.to_obj()["lifecycles"]
                if self.lifecycle is not None
                else None
            ),
            "profile": (
                self.profiler.snapshot() if self.profiler is not None else None
            ),
        }

    def write_report(self, path, **meta) -> dict:
        """Write :meth:`report` to ``path`` as JSON; returns the report."""
        document = self.report(**meta)
        with open(path, "w") as handle:
            json.dump(document, handle, indent=1, sort_keys=True)
            handle.write("\n")
        return document
