"""Per-message lifecycle recording -- the flight recorder.

The paper's argument is a latency *decomposition*: the ALPU wins by
deleting the queue-traversal term, not the wire or DMA terms.  Aggregate
counters (:mod:`repro.obs.metrics`) cannot answer "for message #k, how
many ps went to host overhead vs. DMA vs. wire vs. unexpected-queue
residency vs. match search?".  This module can: every MPI request (and
the network journey of every send) carries a **lifecycle** -- an ordered
list of typed ``(time_ps, stage, detail)`` transition marks appended as
the message moves from ``mpi.api`` post through host command issue, NIC
posting, DMA, the wire, the receive FIFO, queue insertion, backend
search and delivery, to completion.

The core invariant is **telescoping residency**: the residency of stage
``i`` is ``marks[i+1].time_ps - marks[i].time_ps``, so the per-stage
budgets of a complete lifecycle sum *exactly* to its end-to-end latency
(terminal time minus first mark time) by construction.  The attribution
analyzer (:mod:`repro.analysis.attribution`) folds lifecycles into those
budgets; nothing downstream needs to re-derive timing.

Zero perturbation, same contract as the rest of :mod:`repro.obs`:

* recording is opt-in; the engine carries :data:`NULL_LIFECYCLE` (all
  methods no-ops, ``enabled`` False) unless a real recorder is attached;
* every mark is a plain function call -- recorders never ``yield``,
  never schedule events and never charge simulated time, so latencies
  are bit-identical either way (pinned by
  ``tests/obs/test_zero_perturbation.py``).

Identity and correlation:

* request lifecycles are keyed ``(rank, req_id)`` -- unique because each
  :class:`~repro.mpi.api.MpiProcess` draws request ids from one counter;
* the firmware binds the send queue entry's globally unique ``uid`` to
  the send's lifecycle (:meth:`LifecycleRecorder.bind_uid`), and every
  packet carries that uid as ``send_id``, so the fabric, the receiving
  NIC and the backends can mark the *message* without knowing MPI ids;
* at match time the receive-side entry is aliased onto the message
  (:meth:`alias_uid`) so the delivery/DMA/completion path -- which only
  sees the receive entry -- keeps appending to the same lifecycle, and
  the receive's completion is watched (:meth:`watch_completion`) so the
  message's terminal mark lands at the exact host ``completed_at``.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

#: the one terminal stage; a complete lifecycle ends with exactly one
TERMINAL_STAGE = "complete"


@dataclasses.dataclass(frozen=True)
class LifecycleMark:
    """One typed stage transition."""

    time_ps: int
    stage: str
    detail: Optional[Dict[str, object]] = None


@dataclasses.dataclass
class MessageLifecycle:
    """The recorded journey of one request / message."""

    #: monotone recorder-local id (stable across identical runs)
    mid: int
    #: "send" (the message journey), "recv" (the posted receive), "me"
    #: (a Portals match-list entry)
    kind: str
    rank: int
    req_id: int
    marks: List[LifecycleMark] = dataclasses.field(default_factory=list)
    #: workload-assigned role ("ping", "pong", "filler", ...)
    label: Optional[str] = None
    #: workload-assigned metadata (iteration, timed flag, ...)
    meta: Dict[str, object] = dataclasses.field(default_factory=dict)
    #: out-of-band facts that are not stage transitions (e.g. the
    #: sender-side completion time of a send, which may race the
    #: receiver-side terminal and so must not be a mark)
    annotations: Dict[str, object] = dataclasses.field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return bool(self.marks) and self.marks[-1].stage == TERMINAL_STAGE

    @property
    def start_ps(self) -> int:
        return self.marks[0].time_ps if self.marks else 0

    @property
    def end_ps(self) -> int:
        return self.marks[-1].time_ps if self.marks else 0

    def to_obj(self) -> Dict[str, object]:
        """A JSON-serializable dict (the dump/CLI interchange shape)."""
        return {
            "mid": self.mid,
            "kind": self.kind,
            "rank": self.rank,
            "req_id": self.req_id,
            "label": self.label,
            "meta": dict(self.meta),
            "annotations": dict(self.annotations),
            "marks": [
                {
                    "time_ps": mark.time_ps,
                    "stage": mark.stage,
                    "detail": dict(mark.detail) if mark.detail else None,
                }
                for mark in self.marks
            ],
        }

    @staticmethod
    def from_obj(obj: Dict[str, object]) -> "MessageLifecycle":
        """Rebuild a lifecycle from :meth:`to_obj` output."""
        lifecycle = MessageLifecycle(
            mid=obj["mid"],
            kind=obj["kind"],
            rank=obj["rank"],
            req_id=obj["req_id"],
            label=obj.get("label"),
            meta=dict(obj.get("meta") or {}),
            annotations=dict(obj.get("annotations") or {}),
        )
        for mark in obj.get("marks", ()):
            lifecycle.marks.append(
                LifecycleMark(
                    time_ps=mark["time_ps"],
                    stage=mark["stage"],
                    detail=mark.get("detail"),
                )
            )
        return lifecycle


class LifecycleRecorder:
    """Collects :class:`MessageLifecycle` objects (see module docstring).

    Mark methods take an optional explicit ``time_ps``; without one they
    read the clock the engine attaches -- exactly the tracer's pattern.
    The explicit form exists for *retroactive* attribution: a search of
    the unexpected queue only learns which message it served after it
    returns, so the firmware stamps the search's start time onto the
    winning message afterwards (still monotone: the message was enqueued
    before the search began).
    """

    enabled = True

    def __init__(self) -> None:
        self._now: Callable[[], int] = lambda: 0
        self._mids = 0
        self.lifecycles: List[MessageLifecycle] = []
        self._by_key: Dict[Tuple[str, int, int], MessageLifecycle] = {}
        self._by_uid: Dict[int, MessageLifecycle] = {}
        #: (rank, req_id) of a receive -> messages whose terminal mark is
        #: that receive's completion
        self._watchers: Dict[Tuple[int, int], List[MessageLifecycle]] = {}
        #: backend-side facts captured mid-search (ALPU occupancy, hash
        #: probe counts) and merged into the search mark afterwards
        self._search_notes: Dict[str, object] = {}

    # ------------------------------------------------------------- plumbing
    def attach_clock(self, now_fn: Callable[[], int]) -> None:
        """Bind the simulated-time source (the engine does this)."""
        self._now = now_fn

    def _mark(
        self,
        lifecycle: MessageLifecycle,
        stage: str,
        time_ps: Optional[int],
        detail: Optional[Dict[str, object]],
    ) -> None:
        if lifecycle.marks and lifecycle.marks[-1].stage == TERMINAL_STAGE:
            # the message's journey has ended; late wire echoes (e.g. a
            # retransmission fired because the *ACK* was lost after the
            # payload completed) must not un-complete the record
            return
        lifecycle.marks.append(
            LifecycleMark(
                time_ps=self._now() if time_ps is None else time_ps,
                stage=stage,
                detail=detail,
            )
        )

    # ------------------------------------------------------ request keyed
    def begin(
        self,
        kind: str,
        rank: int,
        req_id: int,
        time_ps: Optional[int] = None,
        detail: Optional[Dict[str, object]] = None,
        stage: str = "api_post",
    ) -> MessageLifecycle:
        """Open a lifecycle with its first mark."""
        self._mids += 1
        lifecycle = MessageLifecycle(
            mid=self._mids, kind=kind, rank=rank, req_id=req_id
        )
        self.lifecycles.append(lifecycle)
        self._by_key[(kind, rank, req_id)] = lifecycle
        self._mark(lifecycle, stage, time_ps, detail)
        return lifecycle

    def _request(self, rank: int, req_id: int) -> Optional[MessageLifecycle]:
        # a (rank, req_id) pair names at most one lifecycle: MPI request
        # ids come from one per-process counter shared across sends and
        # receives, and "me" (Portals) recorders are not mixed with MPI
        for kind in ("send", "recv", "me"):
            lifecycle = self._by_key.get((kind, rank, req_id))
            if lifecycle is not None:
                return lifecycle
        return None

    def mark_request(
        self,
        rank: int,
        req_id: int,
        stage: str,
        time_ps: Optional[int] = None,
        detail: Optional[Dict[str, object]] = None,
    ) -> None:
        """Append a stage transition to a request's lifecycle."""
        lifecycle = self._request(rank, req_id)
        if lifecycle is not None:
            self._mark(lifecycle, stage, time_ps, detail)

    def annotate_request(self, rank: int, req_id: int, **facts: object) -> None:
        """Merge facts into the *detail* of a request's last mark."""
        lifecycle = self._request(rank, req_id)
        if lifecycle is not None and lifecycle.marks:
            self._annotate_last(lifecycle, facts)

    def label_request(
        self, rank: int, req_id: int, label: str, **meta: object
    ) -> None:
        """Workloads tag roles here ("ping", iteration, timed...)."""
        lifecycle = self._request(rank, req_id)
        if lifecycle is not None:
            lifecycle.label = label
            lifecycle.meta.update(meta)

    def complete_request(
        self,
        rank: int,
        req_id: int,
        time_ps: Optional[int] = None,
        *,
        recv: bool,
    ) -> None:
        """The host consumed the request's completion.

        A *receive* completing is the terminal event of its own lifecycle
        **and** of every message watching it (the matched send) -- the
        very timestamp the benchmarks report latency against.  A *send*
        completing on the sender side may race the receiver-side journey,
        so it is recorded as an annotation, never a mark.
        """
        if recv:
            t = self._now() if time_ps is None else time_ps
            lifecycle = self._by_key.get(("recv", rank, req_id))
            if lifecycle is not None:
                self._mark(lifecycle, TERMINAL_STAGE, t, None)
            for watcher in self._watchers.pop((rank, req_id), ()):
                self._mark(watcher, TERMINAL_STAGE, t, None)
        else:
            lifecycle = self._by_key.get(("send", rank, req_id))
            if lifecycle is not None:
                lifecycle.annotations["sender_completed_at_ps"] = (
                    self._now() if time_ps is None else time_ps
                )

    # --------------------------------------------------------- uid keyed
    def bind_uid(self, rank: int, req_id: int, uid: int) -> None:
        """Bind a send queue entry's uid to the send's lifecycle."""
        lifecycle = self._by_key.get(("send", rank, req_id))
        if lifecycle is not None:
            self._by_uid[uid] = lifecycle

    def alias_uid(self, uid: int, to_uid: int) -> None:
        """Make ``uid`` (a receive-side entry) resolve to the message of
        ``to_uid`` -- the delivery path only sees the receive entry."""
        lifecycle = self._by_uid.get(to_uid)
        if lifecycle is not None:
            self._by_uid[uid] = lifecycle

    def mark_uid(
        self,
        uid: int,
        stage: str,
        time_ps: Optional[int] = None,
        detail: Optional[Dict[str, object]] = None,
    ) -> None:
        """Append a stage transition to the message bound to ``uid``.

        Unknown uids are ignored: component-level users (a bare Fabric,
        a NIC driven outside an MpiWorld) emit marks nothing listens to.
        """
        lifecycle = self._by_uid.get(uid)
        if lifecycle is not None:
            self._mark(lifecycle, stage, time_ps, detail)

    def annotate_uid(self, uid: int, **facts: object) -> None:
        """Merge facts into the detail of the bound message's last mark."""
        lifecycle = self._by_uid.get(uid)
        if lifecycle is not None and lifecycle.marks:
            self._annotate_last(lifecycle, facts)

    def mark_uid_clamped(
        self,
        uid: int,
        stage: str,
        time_ps: int,
        detail: Optional[Dict[str, object]] = None,
    ) -> None:
        """:meth:`mark_uid` with an explicit time clamped monotone.

        The fabric's per-hop marks carry *computed* timestamps (a hop's
        serialization start/end are known at injection, ahead of the
        clock), so a mark that lands after an interleaved event -- e.g. a
        retransmission of the same message re-entering the wire -- could
        otherwise step behind the record's last mark.  Clamping to the
        last mark time keeps every lifecycle monotone without perturbing
        the telescoping sums (bounding marks are never clamped forward).
        """
        lifecycle = self._by_uid.get(uid)
        if lifecycle is None:
            return
        if lifecycle.marks and time_ps < lifecycle.marks[-1].time_ps:
            time_ps = lifecycle.marks[-1].time_ps
        self._mark(lifecycle, stage, time_ps, detail)

    def watch_completion(self, rank: int, req_id: int, uid: int) -> None:
        """Terminal-mark ``uid``'s message when this receive completes."""
        lifecycle = self._by_uid.get(uid)
        if lifecycle is not None:
            self._watchers.setdefault((rank, req_id), []).append(lifecycle)

    # ------------------------------------------------------- search notes
    def search_note(self, **facts: object) -> None:
        """Backends deposit mid-search facts (ALPU occupancy, probes)."""
        self._search_notes.update(facts)

    def pop_search_notes(self) -> Dict[str, object]:
        """The firmware collects the deposited facts after the search."""
        notes, self._search_notes = self._search_notes, {}
        return notes

    def _annotate_last(
        self, lifecycle: MessageLifecycle, facts: Dict[str, object]
    ) -> None:
        last = lifecycle.marks[-1]
        detail = dict(last.detail) if last.detail else {}
        detail.update(facts)
        lifecycle.marks[-1] = dataclasses.replace(last, detail=detail)

    # -------------------------------------------------------------- output
    def __len__(self) -> int:
        return len(self.lifecycles)

    def to_obj(self) -> Dict[str, object]:
        """JSON-serializable dump of every lifecycle."""
        return {
            "lifecycles": [lc.to_obj() for lc in self.lifecycles],
        }

    def chrome_events(self) -> List[Dict[str, object]]:
        """Chrome trace events with one track (tid) per message.

        Each stage renders as a B/E pair spanning its residency; the
        terminal stage closes the last span.  Loadable in Perfetto next
        to (or instead of) the component-level trace.
        """
        return lifecycle_chrome_events(self.lifecycles)


#: Chrome export: lifecycles render in their own "process"
LIFECYCLE_PID = 2


def lifecycle_chrome_events(lifecycles) -> List[Dict[str, object]]:
    """Per-message-track Chrome events for an iterable of lifecycles."""
    events: List[Dict[str, object]] = []
    for tid, lifecycle in enumerate(lifecycles, start=1):
        label = lifecycle.label or lifecycle.kind
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": LIFECYCLE_PID,
                "tid": tid,
                "args": {
                    "name": (
                        f"{label} r{lifecycle.rank}#{lifecycle.req_id} "
                        f"({lifecycle.kind})"
                    )
                },
            }
        )
        marks = lifecycle.marks
        for index, mark in enumerate(marks):
            if mark.stage == TERMINAL_STAGE:
                continue
            end = marks[index + 1].time_ps if index + 1 < len(marks) else None
            event = {
                "name": mark.stage,
                "cat": "lifecycle",
                "ph": "B",
                "ts": mark.time_ps / 1_000_000,
                "pid": LIFECYCLE_PID,
                "tid": tid,
            }
            if mark.detail:
                event["args"] = dict(mark.detail)
            events.append(event)
            if end is not None:
                events.append(
                    {
                        "name": mark.stage,
                        "cat": "lifecycle",
                        "ph": "E",
                        "ts": end / 1_000_000,
                        "pid": LIFECYCLE_PID,
                        "tid": tid,
                    }
                )
    return events


class NullLifecycleRecorder:
    """The disabled recorder: every method is a no-op.

    ``lifecycles`` is an immutable empty tuple so accidental reads are
    safe; hot paths guard on :attr:`enabled` before building details.
    """

    enabled = False
    lifecycles = ()

    def attach_clock(self, now_fn) -> None:
        pass

    def begin(self, kind, rank, req_id, time_ps=None, detail=None, stage="api_post"):
        return None

    def mark_request(self, rank, req_id, stage, time_ps=None, detail=None) -> None:
        pass

    def annotate_request(self, rank, req_id, **facts) -> None:
        pass

    def label_request(self, rank, req_id, label, **meta) -> None:
        pass

    def complete_request(self, rank, req_id, time_ps=None, *, recv) -> None:
        pass

    def bind_uid(self, rank, req_id, uid) -> None:
        pass

    def alias_uid(self, uid, to_uid) -> None:
        pass

    def mark_uid(self, uid, stage, time_ps=None, detail=None) -> None:
        pass

    def annotate_uid(self, uid, **facts) -> None:
        pass

    def mark_uid_clamped(self, uid, stage, time_ps, detail=None) -> None:
        pass

    def watch_completion(self, rank, req_id, uid) -> None:
        pass

    def search_note(self, **facts) -> None:
        pass

    def pop_search_notes(self):
        return {}

    def __len__(self) -> int:
        return 0

    def to_obj(self):
        return {"lifecycles": []}

    def chrome_events(self):
        return []


NULL_LIFECYCLE = NullLifecycleRecorder()
