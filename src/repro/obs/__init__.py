"""Unified observability: metrics, structured tracing, Chrome export.

The evaluation of the source paper turns on *why* latency moves -- queue
traversal lengths, ALPU occupancy, unexpected-queue growth -- not just on
end-point latency rows.  This subpackage is the cross-layer telemetry
that makes those quantities visible:

* :mod:`repro.obs.metrics` -- a :class:`MetricsRegistry` of named
  counters, gauges and log-scale histograms, plus pull-style collectors;
* :mod:`repro.obs.tracer` -- typed trace records ``(time_ps, category,
  name, kind, args)`` with spans, instants and counter samples;
* :mod:`repro.obs.chrome` -- export to Chrome trace-event JSON, loadable
  in Perfetto or ``chrome://tracing``;
* :mod:`repro.obs.probe` -- periodic sampling of state quantities (queue
  depths, occupancy) into histograms and counter tracks;
* :mod:`repro.obs.lifecycle` -- the per-message flight recorder: every
  MPI message carries an ordered list of ``(time_ps, stage, detail)``
  transition marks from post to completion, folded into stage-residency
  budgets by :mod:`repro.analysis.attribution`;
* :mod:`repro.obs.selfprof` -- wall-clock self-profiling of the
  simulator (events/sec, per-handler time) for the committed benchmark
  baseline;
* :mod:`repro.obs.timeline` -- windowed timeseries over simulated time
  with bounded memory (ring + downsampling): the *trajectory* of every
  probed quantity, not just its end-of-run total;
* :mod:`repro.obs.health` -- declarative watchdogs (threshold,
  sustained-derivative, stall) over timelines and metrics, folding runs
  into structured :class:`~repro.obs.health.HealthFinding` verdicts;
* :mod:`repro.obs.telemetry` -- the per-run bundle workloads accept.

Telemetry is opt-in and zero-perturbation: disabled (the default) it
costs one no-op call per event site, and enabled it never charges
simulated time, so latencies are bit-identical either way (pinned by
``tests/obs/test_zero_perturbation.py``).

This package depends on nothing else in :mod:`repro` (the sim engine
imports *it*), so any layer may use it without cycles.
"""

from repro.obs.chrome import chrome_trace_events, to_chrome, write_chrome_trace
from repro.obs.health import (
    DerivativeWatchdog,
    HealthFinding,
    HealthMonitor,
    ImbalanceWatchdog,
    MetricWatchdog,
    SEVERITIES,
    StallWatchdog,
    ThresholdWatchdog,
    Watchdog,
    default_watchdogs,
    has_finding,
    verdict_of,
)
from repro.obs.lifecycle import (
    LifecycleMark,
    LifecycleRecorder,
    MessageLifecycle,
    NullLifecycleRecorder,
    NULL_LIFECYCLE,
    TERMINAL_STAGE,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
)
from repro.obs.probe import DEFAULT_INTERVAL_PS, SamplingProbe
from repro.obs.selfprof import SimProfiler
from repro.obs.telemetry import REPORT_VERSION, Telemetry
from repro.obs.timeline import Series, Timeline
from repro.obs.tracer import NullTracer, NULL_TRACER, Tracer, TraceRecord

__all__ = [
    "DerivativeWatchdog",
    "HealthFinding",
    "HealthMonitor",
    "ImbalanceWatchdog",
    "MetricWatchdog",
    "SEVERITIES",
    "StallWatchdog",
    "ThresholdWatchdog",
    "Watchdog",
    "default_watchdogs",
    "has_finding",
    "verdict_of",
    "Series",
    "Timeline",
    "REPORT_VERSION",
    "LifecycleMark",
    "LifecycleRecorder",
    "MessageLifecycle",
    "NullLifecycleRecorder",
    "NULL_LIFECYCLE",
    "TERMINAL_STAGE",
    "SimProfiler",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Tracer",
    "TraceRecord",
    "NullTracer",
    "NULL_TRACER",
    "SamplingProbe",
    "DEFAULT_INTERVAL_PS",
    "Telemetry",
    "chrome_trace_events",
    "to_chrome",
    "write_chrome_trace",
]
