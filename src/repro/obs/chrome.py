"""Chrome trace-event export.

Converts a :class:`~repro.obs.tracer.Tracer`'s records into the Chrome
trace-event JSON format (the "JSON Array Format" with a ``traceEvents``
envelope), loadable in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``.

Mapping:

* span ``begin``/``end``  -> phases ``"B"``/``"E"``
* ``instant``             -> phase ``"i"`` (thread-scoped)
* ``counter``             -> phase ``"C"`` (rendered as a stacked area)

Timestamps are exported in microseconds (the format's unit) as floats, so
picosecond resolution survives (1 ps = 1e-6 us); ``displayTimeUnit`` is
set to ``"ns"`` for sane zoom levels.  Track assignment: instants and
counters share one "thread" per category, while every distinct span name
gets its own track (named via ``thread_name`` metadata events) -- B/E
events nest by time order within a tid, so concurrent spans from
different components (the two ALPU devices, two NICs' firmware) must not
share one.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

from repro.obs.tracer import (
    KIND_BEGIN,
    KIND_COUNTER,
    KIND_END,
    KIND_INSTANT,
    TraceRecord,
)

_PHASES = {
    KIND_BEGIN: "B",
    KIND_END: "E",
    KIND_INSTANT: "i",
    KIND_COUNTER: "C",
}

#: exported process id (one simulated system = one "process")
PID = 1


def chrome_trace_events(records: Iterable[TraceRecord]) -> List[dict]:
    """The ``traceEvents`` array for a record stream."""
    events: List[dict] = []
    tids: Dict[tuple, int] = {}
    for record in records:
        # spans get a track per (category, name); points share the
        # category track -- see the module docstring for why
        if record.kind in (KIND_BEGIN, KIND_END):
            key = (record.category, record.name)
            label = f"{record.category}: {record.name}"
        else:
            key = (record.category, None)
            label = record.category
        tid = tids.get(key)
        if tid is None:
            tid = len(tids) + 1
            tids[key] = tid
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": PID,
                    "tid": tid,
                    "args": {"name": label},
                }
            )
        event = {
            "name": record.name,
            "cat": record.category,
            "ph": _PHASES[record.kind],
            "ts": record.time_ps / 1_000_000,
            "pid": PID,
            "tid": tid,
        }
        if record.kind == KIND_INSTANT:
            event["s"] = "t"  # thread-scoped instant
        if record.args:
            event["args"] = dict(record.args)
        events.append(event)
    return events


def to_chrome(records: Iterable[TraceRecord]) -> dict:
    """The full Chrome trace document."""
    return {
        "traceEvents": chrome_trace_events(records),
        "displayTimeUnit": "ns",
    }


def write_chrome_trace(path, records: Iterable[TraceRecord]) -> dict:
    """Write the trace JSON to ``path``; returns the document written."""
    document = to_chrome(records)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")
    return document
