"""Periodic sampling probes.

Some quantities are states, not events: queue depths, ALPU occupancy.
A :class:`SamplingProbe` turns them into timeseries by sampling callables
on a fixed simulated-time period, feeding each sample into a log-scale
histogram (for the metrics snapshot), a :class:`~repro.obs.timeline.
Timeline` series (for the windowed time-resolved view), and a Chrome
``counter`` trace record (for the timeline trace view).

Probe ticks are *pure observers*: the sampler callables read state, the
tick schedules only its own successor, and no simulated component ever
waits on a probe -- so enabling a probe cannot perturb simulated
latencies (the zero-perturbation guarantee the regression tests pin).

The probe duck-types its ``engine`` (anything with ``schedule(delay_ps,
action)``) to keep :mod:`repro.obs` dependency-free; tick ``k`` fires at
exactly ``k * interval_ps``, so timeline observations use that product
rather than reading an engine clock.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.obs.metrics import Histogram
from repro.obs.timeline import Timeline
from repro.obs.tracer import NULL_TRACER

#: default sampling period: 1 us of simulated time (fine enough to catch
#: per-iteration queue churn in the Section V-A benchmarks)
DEFAULT_INTERVAL_PS = 1_000_000


class _Sampler:
    """One registered quantity and its sinks."""

    __slots__ = ("category", "name", "fn", "histogram", "series")

    def __init__(self, category, name, fn, histogram, series):
        self.category = category
        self.name = name
        self.fn = fn
        self.histogram = histogram
        self.series = series


class SamplingProbe:
    """Samples registered callables every ``interval_ps`` of sim time."""

    def __init__(
        self,
        engine,
        interval_ps: int = DEFAULT_INTERVAL_PS,
        tracer=NULL_TRACER,
        timeline: Optional[Timeline] = None,
    ) -> None:
        if interval_ps <= 0:
            raise ValueError(f"probe interval must be positive: {interval_ps}")
        self.engine = engine
        self.interval_ps = interval_ps
        self.tracer = tracer
        self.timeline = timeline
        self.ticks = 0
        self._samplers: List[_Sampler] = []
        self._started = False

    def add(
        self,
        category: str,
        name: str,
        fn: Callable[[], float],
        histogram: Optional[Histogram] = None,
        *,
        series: Optional[str] = None,
        mode: str = "sample",
        window_ps: Optional[int] = None,
    ) -> None:
        """Sample ``fn()`` each tick under ``category``/``name``.

        ``histogram`` (usually ``registry.histogram(f"{name}/...")``)
        accumulates the samples for the metrics snapshot; the tracer gets
        a counter record per tick regardless.  ``series`` names a
        timeline series (created now, in ``mode``, with an optional
        ``window_ps`` width override) the samples also fold into --
        ignored when the probe carries no timeline.
        """
        timeline_series = None
        if self.timeline is not None and series is not None:
            timeline_series = self.timeline.series(
                series, mode=mode, window_ps=window_ps
            )
        self._samplers.append(
            _Sampler(category, name, fn, histogram, timeline_series)
        )

    def start(self) -> None:
        """Schedule the first tick (idempotent)."""
        if self._started or not self._samplers:
            return
        self._started = True
        self.engine.schedule(self.interval_ps, self._tick)

    def _tick(self) -> None:
        self.ticks += 1
        now_ps = self.ticks * self.interval_ps
        for sampler in self._samplers:
            value = sampler.fn()
            if sampler.histogram is not None:
                sampler.histogram.record(value)
            if sampler.series is not None:
                sampler.series.observe(now_ps, value)
            if self.tracer.enabled:
                self.tracer.counter(
                    sampler.category, sampler.name, {"value": value}
                )
        self.engine.schedule(self.interval_ps, self._tick)
