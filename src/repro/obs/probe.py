"""Periodic sampling probes.

Some quantities are states, not events: queue depths, ALPU occupancy.
A :class:`SamplingProbe` turns them into timeseries by sampling callables
on a fixed simulated-time period, feeding each sample into a log-scale
histogram (for the metrics snapshot) and emitting a Chrome ``counter``
trace record (for the timeline view).

Probe ticks are *pure observers*: the sampler callables read state, the
tick schedules only its own successor, and no simulated component ever
waits on a probe -- so enabling a probe cannot perturb simulated
latencies (the zero-perturbation guarantee the regression tests pin).

The probe duck-types its ``engine`` (anything with ``schedule(delay_ps,
action)``) to keep :mod:`repro.obs` dependency-free.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.obs.metrics import Histogram
from repro.obs.tracer import NULL_TRACER

#: default sampling period: 1 us of simulated time (fine enough to catch
#: per-iteration queue churn in the Section V-A benchmarks)
DEFAULT_INTERVAL_PS = 1_000_000


class SamplingProbe:
    """Samples registered callables every ``interval_ps`` of sim time."""

    def __init__(
        self,
        engine,
        interval_ps: int = DEFAULT_INTERVAL_PS,
        tracer=NULL_TRACER,
    ) -> None:
        if interval_ps <= 0:
            raise ValueError(f"probe interval must be positive: {interval_ps}")
        self.engine = engine
        self.interval_ps = interval_ps
        self.tracer = tracer
        self.ticks = 0
        self._samplers: List[
            Tuple[str, str, Callable[[], float], Optional[Histogram]]
        ] = []
        self._started = False

    def add(
        self,
        category: str,
        name: str,
        fn: Callable[[], float],
        histogram: Optional[Histogram] = None,
    ) -> None:
        """Sample ``fn()`` each tick under ``category``/``name``.

        ``histogram`` (usually ``registry.histogram(f"{name}/...")``)
        accumulates the samples for the metrics snapshot; the tracer gets
        a counter record per tick regardless.
        """
        self._samplers.append((category, name, fn, histogram))

    def start(self) -> None:
        """Schedule the first tick (idempotent)."""
        if self._started or not self._samplers:
            return
        self._started = True
        self.engine.schedule(self.interval_ps, self._tick)

    def _tick(self) -> None:
        self.ticks += 1
        for category, name, fn, histogram in self._samplers:
            value = fn()
            if histogram is not None:
                histogram.record(value)
            if self.tracer.enabled:
                self.tracer.counter(category, name, {"value": value})
        self.engine.schedule(self.interval_ps, self._tick)
