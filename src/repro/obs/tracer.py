"""Structured simulation tracing.

A :class:`Tracer` collects typed records ``(time_ps, category, name,
kind, args)`` from instrumented components.  Three record shapes cover
everything the evaluation needs:

* **spans** (``begin``/``end`` pairs, or the :meth:`Tracer.span` context
  manager) -- durations: an ALPU match occupying the pipeline, a software
  queue traversal, a DMA transfer;
* **instant events** -- points: a packet injected, an unexpected message
  parked;
* **counter samples** -- timeseries: queue depths from the periodic probe.

Timestamps come from a clock callable the engine attaches
(:meth:`attach_clock`); the tracer itself has no simulator dependency, so
it can be unit-tested with a fake clock and imported from any layer.

Categories are coarse (``"alpu"``, ``"nic"``, ``"network"``, ``"memory"``,
``"host"``); the component instance lives in ``name``/``args``.  The
Chrome exporter (:mod:`repro.obs.chrome`) maps categories to tracks.

Hot paths guard on :attr:`Tracer.enabled` before building ``args`` dicts,
so the disabled default (:data:`NULL_TRACER`) costs one attribute read.
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Callable, Dict, List, Optional


#: record kinds, mirroring the Chrome trace-event phases they export to
KIND_BEGIN = "begin"
KIND_END = "end"
KIND_INSTANT = "instant"
KIND_COUNTER = "counter"


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """One typed trace record."""

    time_ps: int
    category: str
    name: str
    kind: str
    args: Optional[Dict[str, object]] = None


class Tracer:
    """Collects :class:`TraceRecord` objects in emission order."""

    enabled = True

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []
        self._now: Callable[[], int] = lambda: 0
        self._subscribers: List[Callable[[TraceRecord], None]] = []

    # ------------------------------------------------------------- plumbing
    def attach_clock(self, now_fn: Callable[[], int]) -> None:
        """Bind the simulated-time source (the engine does this)."""
        self._now = now_fn

    def subscribe(self, fn: Callable[[TraceRecord], None]) -> None:
        """Call ``fn(record)`` for every record as it is emitted."""
        self._subscribers.append(fn)

    # ------------------------------------------------------------- emission
    def _emit(
        self,
        category: str,
        name: str,
        kind: str,
        args: Optional[Dict[str, object]],
    ) -> None:
        record = TraceRecord(self._now(), category, name, kind, args)
        self.records.append(record)
        for fn in self._subscribers:
            fn(record)

    def begin(
        self, category: str, name: str, args: Optional[Dict[str, object]] = None
    ) -> None:
        """Open a span (pair with :meth:`end`, same category and name)."""
        self._emit(category, name, KIND_BEGIN, args)

    def end(
        self, category: str, name: str, args: Optional[Dict[str, object]] = None
    ) -> None:
        """Close the innermost open span of this category/name."""
        self._emit(category, name, KIND_END, args)

    def instant(
        self, category: str, name: str, args: Optional[Dict[str, object]] = None
    ) -> None:
        """A zero-duration event."""
        self._emit(category, name, KIND_INSTANT, args)

    def counter(
        self, category: str, name: str, values: Dict[str, object]
    ) -> None:
        """One sample of a named timeseries (``values``: series -> value)."""
        self._emit(category, name, KIND_COUNTER, values)

    @contextlib.contextmanager
    def span(
        self, category: str, name: str, args: Optional[Dict[str, object]] = None
    ):
        """``with tracer.span(...):`` emits a begin/end pair.

        Only usable from plain call stacks -- simulation processes that
        yield mid-span must emit begin/end explicitly, because the
        generator suspends inside the ``with`` block.
        """
        self.begin(category, name, args)
        try:
            yield self
        finally:
            self.end(category, name)

    # -------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self.records)

    def clear(self) -> None:
        """Drop all collected records (subscribers stay)."""
        self.records.clear()


class NullTracer:
    """The disabled tracer: every method is a no-op.

    ``records`` is an immutable empty tuple so accidental reads are safe.
    """

    enabled = False
    records = ()

    def attach_clock(self, now_fn: Callable[[], int]) -> None:
        pass

    def subscribe(self, fn: Callable[[TraceRecord], None]) -> None:
        pass

    def begin(self, category, name, args=None) -> None:
        pass

    def end(self, category, name, args=None) -> None:
        pass

    def instant(self, category, name, args=None) -> None:
        pass

    def counter(self, category, name, values) -> None:
        pass

    @contextlib.contextmanager
    def span(self, category, name, args=None):
        yield self

    def __len__(self) -> int:
        return 0

    def clear(self) -> None:
        pass


NULL_TRACER = NullTracer()
