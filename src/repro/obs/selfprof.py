"""Wall-clock self-profiling of the simulator itself.

ROADMAP asks every PR to make the hot paths measurably faster or
provably unchanged; that needs numbers about the *simulator's* own
speed, which the simulated-time telemetry deliberately never touches.  A
:class:`SimProfiler` hooks the engine's event dispatch: each executed
event's handler is timed with ``time.perf_counter`` and attributed to
the function that scheduled it (``Link.send``, ``DmaEngine.start``,
``Process._step``...), yielding events/sec and a per-component handler
breakdown.

The profiler measures **host** time only -- it reads no simulated state
and schedules nothing, so simulated results are bit-identical with it on
or off (the overhead is real wall-clock time, which is exactly what it
is measuring).  It is opt-in: the engine's hook is ``None`` by default
and ``step()`` takes the untimed branch.

The benchmark baseline (``BENCH_baseline.json``, written by
``python -m repro.workloads.bench``) commits these numbers so wall-clock
regressions of the simulator are visible in CI.
"""

from __future__ import annotations

import time
from typing import Callable, Dict


def handler_label(action: Callable) -> str:
    """A stable component-level label for an event's action callable.

    Actions are typically bound methods or closures; the qualified name
    up to any ``<locals>`` segment names the scheduling site --
    ``Link.send.<locals>.<lambda>`` attributes to ``Link.send``.
    ``functools.partial`` wrappers unwrap to the function they carry,
    and callable objects without a ``__qualname__`` (instances defining
    ``__call__``) attribute to their type's qualified name.
    """
    while (wrapped := getattr(action, "func", None)) is not None and callable(
        wrapped
    ):
        action = wrapped  # functools.partial (possibly nested)
    qualname = getattr(action, "__qualname__", None)
    if qualname is None:
        qualname = getattr(type(action), "__qualname__", type(action).__name__)
    return qualname.split(".<locals>")[0]


class SimProfiler:
    """Per-handler wall-clock accounting over one engine's event loop."""

    enabled = True

    def __init__(self) -> None:
        self.events = 0
        self.handler_seconds = 0.0
        #: label -> [events, seconds]
        self.handlers: Dict[str, list] = {}

    def record(self, action: Callable, elapsed_s: float) -> None:
        """One executed event (the engine calls this from ``step``)."""
        self.events += 1
        self.handler_seconds += elapsed_s
        bucket = self.handlers.setdefault(handler_label(action), [0, 0.0])
        bucket[0] += 1
        bucket[1] += elapsed_s

    @property
    def events_per_sec(self) -> float:
        """Executed events per second of handler time."""
        if self.handler_seconds <= 0.0:
            return 0.0
        return self.events / self.handler_seconds

    def snapshot(self, top: int = 10) -> Dict[str, object]:
        """A JSON-serializable summary (top handlers by time)."""
        ranked = sorted(
            self.handlers.items(), key=lambda item: item[1][1], reverse=True
        )
        return {
            "events": self.events,
            "handler_seconds": round(self.handler_seconds, 6),
            "events_per_sec": round(self.events_per_sec, 1),
            "top_handlers": {
                label: {"events": count, "seconds": round(seconds, 6)}
                for label, (count, seconds) in ranked[:top]
            },
        }


#: the clock the engine's timed branch uses (module-level for test stubs)
perf_counter = time.perf_counter
