"""repro -- reproduction of "A Hardware Acceleration Unit for MPI Queue
Processing" (Brightwell, Hemmert, Murphy, Rodrigues, Underwood; IPDPS 2005).

Layers (bottom up):

* :mod:`repro.sim` -- component-based discrete-event simulation framework
  (the Enkidu substitute).
* :mod:`repro.memory` -- caches, DRAM with open-row contention, SRAM.
* :mod:`repro.proc` -- calibrated host-CPU and NIC-processor cost models
  (the SimpleScalar substitute; Table III parameters).
* :mod:`repro.core` -- **the paper's contribution**: the ALPU associative
  list processing unit (cells, blocks, priority muxing, compaction, the
  Fig. 3 state machine, and the Tables I/II command protocol).
* :mod:`repro.network` -- wire/fabric models (200 ns, Table III).
* :mod:`repro.nic` -- NIC assembly: firmware progress loop, the five
  queues, DMA engines, and the ALPU driver heuristics of Section IV.
* :mod:`repro.mpi` -- the MPI-1.2 subset of Fig. 4 running on simulated
  nodes.
* :mod:`repro.fpga` -- analytical FPGA area/clock model (Tables IV/V).
* :mod:`repro.workloads` -- the benchmarks of Section V-A (preposted-queue
  and unexpected-queue latency) and the harness that runs them.
* :mod:`repro.analysis` -- curve fitting and table formatting for the
  experiment reports.
"""

from repro.core import (
    Alpu,
    AlpuConfig,
    AlpuTimingModel,
    MatchEntry,
    MatchFormat,
    MatchRequest,
    ReferenceMatchList,
    ANY_SOURCE,
    ANY_TAG,
)

__version__ = "1.0.0"

__all__ = [
    "Alpu",
    "AlpuConfig",
    "AlpuTimingModel",
    "MatchEntry",
    "MatchFormat",
    "MatchRequest",
    "ReferenceMatchList",
    "ANY_SOURCE",
    "ANY_TAG",
    "__version__",
]
