"""Analytical FPGA area and timing model (Tables IV and V).

The paper prototyped the ALPU in JHDL targeting a Virtex-II Pro 100
(-5 speed grade) and reported LUTs, flip-flops, slices, clock frequency
and pipeline latency for twelve design points: {posted-receive,
unexpected} x {128, 256} cells x block size {8, 16, 32}, all at a 42-bit
match width with a mask bit per match bit and 16-bit tags.

No FPGA toolchain is available offline, so this subpackage substitutes a
**structural resource model**: flip-flops are counted from the
microarchitecture (per-cell storage, per-block registered request,
control/pipeline registers), LUTs from the compare logic and the priority
mux trees, and slices from an empirical packing fit; the clock model
reflects the 9 ns tool constraint and the deeper in-block priority mux at
block size 32.  Constants were calibrated once against the published
tables; the model reproduces every published number within ~1% and, more
importantly, reproduces the *trends* the paper discusses (FFs fall and
LUTs rise with block size; the unexpected ALPU needs ~40% fewer FFs
because masks are inputs, not storage; block size 32 misses the 9 ns
constraint).
"""

from repro.fpga.resources import (
    ResourceEstimate,
    estimate_resources,
    cell_flipflops,
    block_overhead_flipflops,
)
from repro.fpga.timing import clock_mhz, asic_clock_mhz, ASIC_SPEEDUP
from repro.fpga.report import (
    DesignPoint,
    TABLE_IV_PUBLISHED,
    TABLE_V_PUBLISHED,
    model_table,
    render_table,
)

__all__ = [
    "ResourceEstimate",
    "estimate_resources",
    "cell_flipflops",
    "block_overhead_flipflops",
    "clock_mhz",
    "asic_clock_mhz",
    "ASIC_SPEEDUP",
    "DesignPoint",
    "TABLE_IV_PUBLISHED",
    "TABLE_V_PUBLISHED",
    "model_table",
    "render_table",
]
