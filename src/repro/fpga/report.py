"""Render and compare Tables IV and V.

Holds the published numbers verbatim, generates the model's version of
each table, and formats both for the benchmark harness.
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.core.alpu import AlpuConfig
from repro.core.cell import CellKind
from repro.core.pipeline import match_latency_cycles
from repro.fpga.resources import estimate_resources
from repro.fpga.timing import clock_mhz


@dataclasses.dataclass(frozen=True)
class DesignPoint:
    """One row of Table IV or V."""

    total_cells: int
    block_size: int
    luts: int
    flipflops: int
    slices: int
    speed_mhz: float
    latency_cycles: int


#: Table IV: sizes and speeds of the Posted Receives ALPU prototypes
TABLE_IV_PUBLISHED: List[DesignPoint] = [
    DesignPoint(256, 8, 17372, 28908, 15766, 112.5, 7),
    DesignPoint(256, 16, 17573, 27656, 15090, 111.4, 7),
    DesignPoint(256, 32, 18054, 26971, 14742, 100.2, 6),
    DesignPoint(128, 8, 8687, 14562, 7945, 111.5, 7),
    DesignPoint(128, 16, 8786, 13897, 7606, 112.1, 6),
    DesignPoint(128, 32, 9025, 13605, 7431, 100.6, 6),
]

#: Table V: sizes and speeds of the Unexpected Messages ALPU prototypes
TABLE_V_PUBLISHED: List[DesignPoint] = [
    DesignPoint(256, 8, 17339, 19414, 11562, 112.1, 7),
    DesignPoint(256, 16, 17556, 17490, 10631, 111.9, 7),
    DesignPoint(256, 32, 18045, 16469, 10350, 100.9, 6),
    DesignPoint(128, 8, 8672, 9773, 5806, 111.2, 7),
    DesignPoint(128, 16, 8777, 8771, 5356, 112.1, 6),
    DesignPoint(128, 32, 9020, 8311, 5215, 100.6, 6),
]


def model_table(kind: CellKind) -> List[DesignPoint]:
    """Generate the model's version of Table IV (posted) or V (unexpected)."""
    rows: List[DesignPoint] = []
    for total_cells in (256, 128):
        for block_size in (8, 16, 32):
            config = AlpuConfig(
                kind=kind, total_cells=total_cells, block_size=block_size
            )
            estimate = estimate_resources(config)
            rows.append(
                DesignPoint(
                    total_cells=total_cells,
                    block_size=block_size,
                    luts=estimate.luts,
                    flipflops=estimate.flipflops,
                    slices=estimate.slices,
                    speed_mhz=round(clock_mhz(block_size), 1),
                    latency_cycles=match_latency_cycles(total_cells, block_size),
                )
            )
    return rows


def render_table(
    title: str, model: List[DesignPoint], published: List[DesignPoint]
) -> str:
    """Side-by-side text rendering (model vs published) of one table."""
    lines = [
        title,
        f"{'Cells':>5} {'Block':>5} | "
        f"{'LUTs':>7} {'FFs':>7} {'Slices':>7} {'MHz':>6} {'Lat':>3} | "
        f"{'LUTs*':>7} {'FFs*':>7} {'Slices*':>7} {'MHz*':>6} {'Lat*':>4}"
        "   (* = published)",
    ]
    for m, p in zip(model, published):
        assert (m.total_cells, m.block_size) == (p.total_cells, p.block_size)
        lines.append(
            f"{m.total_cells:>5} {m.block_size:>5} | "
            f"{m.luts:>7,} {m.flipflops:>7,} {m.slices:>7,} "
            f"{m.speed_mhz:>6.1f} {m.latency_cycles:>3} | "
            f"{p.luts:>7,} {p.flipflops:>7,} {p.slices:>7,} "
            f"{p.speed_mhz:>6.1f} {p.latency_cycles:>4}"
        )
    return "\n".join(lines)
