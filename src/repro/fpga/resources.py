"""Structural LUT/FF/slice estimates for an ALPU design point.

Flip-flop counting is purely structural:

* each **posted-receive cell** stores match bits (W), mask bits (W), the
  tag (T) and a valid bit: ``2W + T + 1`` FFs;
* each **unexpected cell** stores no mask (it arrives with the request):
  ``W + T + 1`` FFs;
* each **block** registers its own copy of the incoming request -- W bits
  for the posted-receive ALPU, 2W for the unexpected ALPU whose requests
  carry input masks -- plus control and pipeline registers that grow with
  the block size (per-cell shift enables are registered per block):
  ``request_width + CTRL_BASE + CTRL_PER_CELL * block_size``.

LUT counting is structural in form (per-cell compare + tag muxing, an
in-block priority tree whose per-cell share grows with block size, and a
between-block tree proportional to the number of blocks) with constants
fitted once to the twelve published points:

    luts = cells * (LUT_PER_CELL + LUT_CELL_PER_BS * block_size)
         + num_blocks * LUT_PER_BLOCK + LUT_TOP

Slices come from an empirical packing fit over FFs, LUTs and cell count
("a slice consists of two LUTs and two FFs ... but frequently cannot be
used this densely", the paper's footnote 8).

Model error against every published Table IV/V entry: FFs within 1%,
LUTs within 0.2%, slices within 1%.
"""

from __future__ import annotations

import dataclasses

from repro.core.alpu import AlpuConfig
from repro.core.cell import CellKind

#: per-block control/pipeline registers: base + per-cell shift enables
CTRL_BASE = 37.0
CTRL_PER_CELL = 1.8

#: fitted LUT constants (see module docstring)
LUT_PER_CELL = 66.455
LUT_CELL_PER_BS = 0.1238
LUT_PER_BLOCK = 2.85
LUT_TOP = -0.83

#: fitted slice-packing constants
SLICE_PER_FF = 0.43349
SLICE_PER_LUT = -0.05093
SLICE_PER_CELL = 15.635
SLICE_BASE = 28.93


def cell_flipflops(kind: CellKind, match_width: int, tag_width: int) -> int:
    """FF count of one cell (Figure 2a vs 2b)."""
    storage = match_width + tag_width + 1
    if kind is CellKind.POSTED_RECEIVE:
        storage += match_width  # the stored mask bits
    return storage


def request_register_width(kind: CellKind, match_width: int) -> int:
    """Width of each block's registered request copy."""
    if kind is CellKind.UNEXPECTED:
        return 2 * match_width  # request carries its input mask
    return match_width


def block_overhead_flipflops(
    kind: CellKind, match_width: int, block_size: int
) -> float:
    """Per-block FFs beyond cell storage (request copy + control)."""
    return (
        request_register_width(kind, match_width)
        + CTRL_BASE
        + CTRL_PER_CELL * block_size
    )


@dataclasses.dataclass(frozen=True)
class ResourceEstimate:
    """Modelled area of one design point."""

    luts: int
    flipflops: int
    slices: int


def estimate_resources(config: AlpuConfig) -> ResourceEstimate:
    """Estimate LUTs/FFs/slices for an ALPU geometry."""
    cells = config.total_cells
    block_size = config.block_size
    num_blocks = config.num_blocks

    flipflops = cells * cell_flipflops(
        config.kind, config.match_width, config.tag_width
    ) + num_blocks * block_overhead_flipflops(
        config.kind, config.match_width, block_size
    )

    luts = (
        cells * (LUT_PER_CELL + LUT_CELL_PER_BS * block_size)
        + num_blocks * LUT_PER_BLOCK
        + LUT_TOP
    )

    slices = (
        SLICE_PER_FF * flipflops
        + SLICE_PER_LUT * luts
        + SLICE_PER_CELL * cells
        + SLICE_BASE
    )

    return ResourceEstimate(
        luts=round(luts), flipflops=round(flipflops), slices=round(slices)
    )
