"""Clock-frequency model for the FPGA prototype and its ASIC projection.

The published speeds "were obtained by constraining the clock to 9 ns",
so block sizes 8 and 16 report right at the constraint (111-112 MHz,
"will likely run at even higher frequencies"), while block size 32's
deeper in-block priority mux genuinely misses it (~100.5 MHz).  The model
is therefore::

    t_crit(bs) = max(T_CONSTRAINT, T_MUX_BASE + T_MUX_PER_CELL * bs)

The ASIC projection multiplies by the paper's "extremely conservative"
5x, landing all geometries at ~500 MHz -- the Red Storm NIC core clock,
and the clock the system simulation uses for the ALPU.
"""

from __future__ import annotations

#: the place-and-route constraint floor (9 ns target, achieved ~8.93)
T_CONSTRAINT_NS = 8.93
#: in-block priority/compaction critical path: base + per-cell fanin
T_MUX_BASE_NS = 7.9
T_MUX_PER_CELL_NS = 0.064

#: the paper's FPGA -> standard-cell ASIC scaling estimate
ASIC_SPEEDUP = 5.0


def critical_path_ns(block_size: int) -> float:
    """Modelled critical path of the prototype for one block size."""
    if block_size <= 0:
        raise ValueError(f"block size must be positive: {block_size}")
    return max(T_CONSTRAINT_NS, T_MUX_BASE_NS + T_MUX_PER_CELL_NS * block_size)


def clock_mhz(block_size: int) -> float:
    """Modelled FPGA clock frequency (MHz)."""
    return 1000.0 / critical_path_ns(block_size)


def asic_clock_mhz(block_size: int) -> float:
    """Projected standard-cell ASIC clock (the paper's 5x estimate)."""
    return ASIC_SPEEDUP * clock_mhz(block_size)
