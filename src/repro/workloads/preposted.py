"""The posted-receive-queue benchmark (Section V-A, from [10]).

Three degrees of freedom: the length of the pre-posted receive queue, the
portion of that queue traversed before the match, and the message size.

Protocol (2 ranks; rank 1 is the receiver under test):

* Rank 1 pre-posts ``queue_length`` receives with distinct tags; the
  *match depth* ``k = round(traverse_fraction * (queue_length - 1))``
  selects which of them each ping will match.
* Per iteration, rank 0 sends a ping carrying the tag of the receive at
  logical depth ``k`` in rank 1's queue, then waits for a zero-byte pong.
  The sample is the *one-way latency*: from rank 0's send call to the
  completion of the matched receive at rank 1 (the simulator's global
  clock plays the role of the perfectly synchronized clocks a testbed
  approximates by halving round trips).  Rank 1, after the matched
  receive completes, re-posts a fresh receive at the *tail*, restoring
  the queue to ``queue_length`` entries (and forcing the entry churn --
  delete at depth k, insert at tail -- that the ALPU's list management
  is built for).
* Both ranks share a static model of the queue order (benchmark
  bookkeeping, not simulated state) so the sender always knows which tag
  sits at depth ``k``.

With a baseline NIC the receiver's processor traverses ``k+1`` entries
per ping; with an ALPU the match is O(1) until the queue outgrows the
ALPU's capacity, after which only the overflow suffix is traversed in
software.  That is exactly the contrast of Figure 5.
"""

from __future__ import annotations

import dataclasses
import itertools
import statistics
from typing import Dict, List, Optional

from repro.mpi.world import MpiWorld, WorldConfig
from repro.network.fabric import FabricConfig
from repro.network.faults import FaultConfig
from repro.nic.nic import NicConfig
from repro.sim.process import now
from repro.sim.units import ps_to_ns


@dataclasses.dataclass(frozen=True)
class PrepostedParams:
    """One benchmark point."""

    queue_length: int = 1
    traverse_fraction: float = 1.0
    message_size: int = 0
    iterations: int = 20
    warmup: int = 4

    def __post_init__(self) -> None:
        if self.queue_length < 1:
            raise ValueError("queue_length must be >= 1")
        if not 0.0 <= self.traverse_fraction <= 1.0:
            raise ValueError("traverse_fraction must be in [0, 1]")
        if self.message_size < 0 or self.iterations < 1 or self.warmup < 0:
            raise ValueError(f"invalid parameters: {self}")

    @property
    def match_depth(self) -> int:
        """0-based index of the matched entry."""
        return round(self.traverse_fraction * (self.queue_length - 1))


@dataclasses.dataclass
class PrepostedResult:
    """Samples for one parameter point."""

    params: PrepostedParams
    latencies_ns: List[float]
    #: receiver-NIC software entries traversed over the timed iterations
    entries_traversed: int
    #: metrics snapshot when the run carried a telemetry bundle
    metrics: Optional[Dict[str, object]] = None

    @property
    def mean_ns(self) -> float:
        return statistics.fmean(self.latencies_ns)

    @property
    def median_ns(self) -> float:
        return statistics.median(self.latencies_ns)


def run_preposted(
    nic: NicConfig,
    params: PrepostedParams,
    *,
    telemetry=None,
    faults: Optional[FaultConfig] = None,
    topology: Optional[str] = None,
) -> PrepostedResult:
    """Run one (queue length, fraction, size) point on a 2-rank system.

    ``telemetry``: optional :class:`repro.obs.Telemetry`; the result's
    ``metrics`` field then carries the run's snapshot.  Telemetry never
    perturbs the measured latencies (pinned by regression test).

    ``faults``: optional seeded fabric fault injection; pair it with a
    reliability-enabled ``nic`` so dropped packets are retransmitted.

    ``topology``: fabric preset name (default ``crossbar``); on two
    nodes every preset routes in one hop, so this is a plumbing check
    more than a performance axis.
    """

    total_iters = params.warmup + params.iterations
    depth = params.match_depth
    tag_stream = itertools.count(0)
    #: logical queue order, oldest first -- shared benchmark bookkeeping
    queue_model: List[int] = [next(tag_stream) for _ in range(params.queue_length)]
    #: per-iteration send timestamps; the receiver reads them to compute
    #: true one-way latency (the simulator's clock is global, so this is
    #: the perfectly-synchronized-clocks measurement the paper's testbed
    #: approximates with round-trip halving)
    send_stamps: List[int] = [0] * total_iters
    PONG_TAG = 1 << 15  # outside the filler tag space of any sane sweep

    def receiver(mpi):
        yield from mpi.init()
        pending: Dict[int, object] = {}
        for tag in queue_model:
            pending[tag] = yield from mpi.irecv(
                source=0, tag=tag, size=params.message_size
            )
        samples: List[float] = []
        traversed_mark = 0
        for iteration in range(total_iters):
            ping_tag = queue_model[depth]
            request = yield from mpi.wait(pending.pop(ping_tag))
            if iteration >= params.warmup:
                samples.append(
                    ps_to_ns(request.completed_at - send_stamps[iteration])
                )
            yield from mpi.send(dest=0, tag=PONG_TAG, size=0)
            # restore the queue: drop the matched entry, repost at the tail
            queue_model.remove(ping_tag)
            fresh = next(tag_stream)
            queue_model.append(fresh)
            pending[fresh] = yield from mpi.irecv(
                source=0, tag=fresh, size=params.message_size
            )
            if iteration == params.warmup - 1:
                traversed_mark = mpi.world.nics[1].firmware.entries_traversed
        # the subset has no MPI_Cancel, so the leftover pre-posted
        # receives are drained by having the sender flush real messages
        # at them after the done marker
        traversed = mpi.world.nics[1].firmware.entries_traversed - traversed_mark
        yield from mpi.send(dest=0, tag=PONG_TAG + 1, size=0)  # done marker
        yield from mpi.waitall(list(pending.values()))
        yield from mpi.finalize()
        return samples, traversed

    def sender_program(mpi):
        yield from mpi.init()
        # pre-post every pong receive outside the timed path, so the
        # sender NIC's receive-posting work never serializes with a ping
        pongs = []
        for _ in range(total_iters):
            pong = yield from mpi.irecv(source=1, tag=PONG_TAG, size=0)
            pongs.append(pong)
        for iteration in range(total_iters):
            ping_tag = queue_model[depth]
            send_stamps[iteration] = yield now()
            ping = yield from mpi.send(
                dest=1, tag=ping_tag, size=params.message_size
            )
            if mpi.lifecycle.enabled:
                mpi.lifecycle.label_request(
                    mpi.rank,
                    ping.req_id,
                    "ping",
                    iteration=iteration,
                    timed=iteration >= params.warmup,
                )
            yield from mpi.wait(pongs[iteration])
        yield from mpi.recv(source=1, tag=PONG_TAG + 1, size=0)
        for tag in list(queue_model):
            yield from mpi.send(dest=1, tag=tag, size=params.message_size)
        yield from mpi.finalize()
        return None

    world = MpiWorld(
        WorldConfig(
            num_ranks=2,
            nic=nic,
            fabric=FabricConfig.with_topology(topology),
            faults=faults,
        ),
        telemetry=telemetry,
    )
    results = world.run({0: sender_program, 1: receiver})
    samples, traversed = results[1]
    return PrepostedResult(
        params=params,
        latencies_ns=samples,
        entries_traversed=traversed,
        metrics=telemetry.snapshot() if telemetry is not None else None,
    )
