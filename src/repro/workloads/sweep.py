"""Declarative grid sweeps over the Figure 5/6 benchmarks.

One :class:`SweepSpec` names a benchmark, the receiver presets, and the
parameter axes; :func:`run_sweep` expands the grid (preset-major, then
axis-major -- the exact nesting order of the old hand-written loops) and
runs every point, either serially or fanned out across worker processes.

Every point is one self-contained 2-rank simulation, so points are
embarrassingly parallel *and* deterministic: the same spec produces
bit-identical rows whether ``workers`` is ``None`` or 8 (pinned by
test).  A :class:`SweepCache` keyed on a content hash of the point's
full configuration short-circuits repeats without re-simulating.

The three receiver presets of the paper's comparison live here too
(:data:`PRESETS` / :func:`nic_preset`): the baseline NIC (embedded
processor only, Red Storm-like), and the same NIC with 128- or
256-entry ALPUs.

Run one Figure-5 point through both execution modes as a smoke test::

    PYTHONPATH=src python -m repro.workloads.sweep --smoke
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import multiprocessing
import os
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.attribution import attribute_run
from repro.network.faults import FaultConfig
from repro.nic.nic import NicConfig
from repro.nic.qdisc import QdiscConfig
from repro.nic.reliability import ReliabilityConfig
from repro.obs.telemetry import Telemetry
from repro.workloads.alltoall import AlltoallParams, run_alltoall
from repro.workloads.halo import HaloParams, run_halo
from repro.workloads.multijob import MultijobParams, run_multijob
from repro.workloads.preposted import PrepostedParams, run_preposted
from repro.workloads.storm import StormParams, run_storm
from repro.workloads.unexpected import UnexpectedParams, run_unexpected

#: the three receiver configurations of Figures 5 and 6
PRESETS = ("baseline", "alpu128", "alpu256")


def nic_preset(name: str, *, block_size: int = 16) -> NicConfig:
    """Build one of the paper's receiver configurations by name.

    Beyond the three Figure 5/6 presets (:data:`PRESETS`), ``"hash"``
    builds the Section II hash-table ablation NIC so sweeps and the
    benchmark baseline can cover it with the same plumbing.
    """
    if name == "baseline":
        return NicConfig.baseline()
    if name == "hash":
        return NicConfig.with_backend("hash")
    if name == "alpu128":
        return NicConfig.with_alpu(total_cells=128, block_size=block_size)
    if name == "alpu256":
        return NicConfig.with_alpu(total_cells=256, block_size=block_size)
    raise ValueError(
        f"unknown preset {name!r}; expected one of {PRESETS + ('hash',)}"
    )


@dataclasses.dataclass
class PrepostedRow:
    """One point of a Figure 5 surface."""

    preset: str
    queue_length: int
    traverse_fraction: float
    message_size: int
    latency_ns: float
    #: per-run metrics snapshot (sweeps with ``telemetry=True`` only)
    metrics: Optional[Dict[str, object]] = None
    #: per-stage latency attribution (sweeps with ``lifecycle=True`` only)
    attribution: Optional[Dict[str, object]] = None
    #: watchdog verdict+findings (``telemetry=True`` sweeps only):
    #: ``{"verdict": str, "findings": [HealthFinding.to_obj(), ...]}``
    health: Optional[Dict[str, object]] = None
    #: fabric snapshot (sweeps with ``fabric=True`` only)
    fabric: Optional[Dict[str, object]] = None


@dataclasses.dataclass
class UnexpectedRow:
    """One point of a Figure 6 curve."""

    preset: str
    queue_length: int
    message_size: int
    latency_ns: float
    #: per-run metrics snapshot (sweeps with ``telemetry=True`` only)
    metrics: Optional[Dict[str, object]] = None
    #: per-stage latency attribution (sweeps with ``lifecycle=True`` only)
    attribution: Optional[Dict[str, object]] = None
    #: watchdog verdict+findings (``telemetry=True`` sweeps only):
    #: ``{"verdict": str, "findings": [HealthFinding.to_obj(), ...]}``
    health: Optional[Dict[str, object]] = None
    #: fabric snapshot (sweeps with ``fabric=True`` only)
    fabric: Optional[Dict[str, object]] = None


@dataclasses.dataclass
class HaloRow:
    """One point of a topology-comparison surface."""

    preset: str
    ranks: int
    topology: str
    message_size: int
    latency_ns: float
    #: per-run metrics snapshot (sweeps with ``telemetry=True`` only)
    metrics: Optional[Dict[str, object]] = None
    #: per-stage latency attribution (sweeps with ``lifecycle=True`` only)
    attribution: Optional[Dict[str, object]] = None
    #: watchdog verdict+findings (``telemetry=True`` sweeps only)
    health: Optional[Dict[str, object]] = None
    #: fabric snapshot (sweeps with ``fabric=True`` only): per-link
    #: traffic/contention tallies plus the route table, the input of
    #: ``python -m repro.analysis.fabric --row N``
    fabric: Optional[Dict[str, object]] = None


@dataclasses.dataclass
class StormRow:
    """One point of a wildcard-storm surface."""

    preset: str
    workers: int
    messages_per_worker: int
    window: int
    service_ns: float
    #: median receive-sojourn of the master's wildcard receives
    latency_ns: float
    #: master-NIC unexpected-queue high-water mark
    max_depth: int = 0
    #: admission refusals at the master NIC
    refused: int = 0
    retransmits: int = 0
    #: per-run metrics snapshot (sweeps with ``telemetry=True`` only)
    metrics: Optional[Dict[str, object]] = None
    #: per-stage latency attribution (sweeps with ``lifecycle=True`` only)
    attribution: Optional[Dict[str, object]] = None
    #: watchdog verdict+findings (``telemetry=True`` sweeps only)
    health: Optional[Dict[str, object]] = None
    #: fabric snapshot (sweeps with ``fabric=True`` only)
    fabric: Optional[Dict[str, object]] = None


@dataclasses.dataclass
class AlltoallRow:
    """One point of a sparse all-to-all surface."""

    preset: str
    num_ranks: int
    degree: int
    rounds: int
    #: rank 0's median per-round completion time
    latency_ns: float
    #: per-run metrics snapshot (sweeps with ``telemetry=True`` only)
    metrics: Optional[Dict[str, object]] = None
    #: per-stage latency attribution (sweeps with ``lifecycle=True`` only)
    attribution: Optional[Dict[str, object]] = None
    #: watchdog verdict+findings (``telemetry=True`` sweeps only)
    health: Optional[Dict[str, object]] = None
    #: fabric snapshot (sweeps with ``fabric=True`` only)
    fabric: Optional[Dict[str, object]] = None


@dataclasses.dataclass
class MultijobRow:
    """One point of a NIC-sharing surface."""

    preset: str
    hog_messages: int
    hog_service_ns: float
    #: job A's median ping-pong round trip beside the hog
    latency_ns: float
    #: node-0 NIC unexpected-queue high-water mark (job B's backlog)
    max_depth: int = 0
    #: admission refusals at node 0
    refused: int = 0
    #: per-run metrics snapshot (sweeps with ``telemetry=True`` only)
    metrics: Optional[Dict[str, object]] = None
    #: per-stage latency attribution (sweeps with ``lifecycle=True`` only)
    attribution: Optional[Dict[str, object]] = None
    #: watchdog verdict+findings (``telemetry=True`` sweeps only)
    health: Optional[Dict[str, object]] = None
    #: fabric snapshot (sweeps with ``fabric=True`` only)
    fabric: Optional[Dict[str, object]] = None


@dataclasses.dataclass(frozen=True)
class _Benchmark:
    """How one benchmark plugs into the generic executor."""

    params_cls: type
    row_cls: type
    runner: Callable
    #: parameter names copied onto the row next to ``preset``/``latency_ns``
    row_fields: Tuple[str, ...]
    #: optional extractor of extra row fields from the runner's result
    row_extra: Optional[Callable] = None


BENCHMARKS: Dict[str, _Benchmark] = {
    "preposted": _Benchmark(
        params_cls=PrepostedParams,
        row_cls=PrepostedRow,
        runner=run_preposted,
        row_fields=("queue_length", "traverse_fraction", "message_size"),
    ),
    "unexpected": _Benchmark(
        params_cls=UnexpectedParams,
        row_cls=UnexpectedRow,
        runner=run_unexpected,
        row_fields=("queue_length", "message_size"),
    ),
    "halo": _Benchmark(
        params_cls=HaloParams,
        row_cls=HaloRow,
        runner=run_halo,
        row_fields=("ranks", "topology", "message_size"),
    ),
    "storm": _Benchmark(
        params_cls=StormParams,
        row_cls=StormRow,
        runner=run_storm,
        row_fields=("workers", "messages_per_worker", "window", "service_ns"),
        row_extra=lambda result: {
            "max_depth": result.max_unexpected_depth,
            "refused": result.refused,
            "retransmits": result.retransmits,
        },
    ),
    "alltoall": _Benchmark(
        params_cls=AlltoallParams,
        row_cls=AlltoallRow,
        runner=run_alltoall,
        row_fields=("num_ranks", "degree", "rounds"),
    ),
    "multijob": _Benchmark(
        params_cls=MultijobParams,
        row_cls=MultijobRow,
        runner=run_multijob,
        row_fields=("hog_messages", "hog_service_ns"),
        row_extra=lambda result: {
            "max_depth": result.max_unexpected_depth,
            "refused": result.refused,
        },
    ),
}


@dataclasses.dataclass(frozen=True)
class SweepSpec:
    """A declarative benchmark grid.

    ``axes`` are ``(name, values)`` pairs swept with :func:`itertools.product`
    (first axis outermost), inside a preset-major outer loop; ``fixed``
    are ``(name, value)`` pairs held constant.  Together they must form a
    valid parameter set for the benchmark's params class.
    """

    benchmark: str
    presets: Tuple[str, ...]
    axes: Tuple[Tuple[str, Tuple], ...]
    fixed: Tuple[Tuple[str, object], ...] = ()
    telemetry: bool = False
    #: record per-message lifecycles and attach the folded stage-budget
    #: report (:func:`repro.analysis.attribution.attribute_run`) to each
    #: row's ``attribution`` field
    lifecycle: bool = False
    #: fabric observability: per-hop lifecycle marks (with
    #: ``lifecycle=True``), per-link queue/wait series (with
    #: ``telemetry=True``), and the fabric snapshot on each row's
    #: ``fabric`` field
    fabric: bool = False
    block_size: int = 16
    #: seeded fabric fault injection; setting it also enables the NIC
    #: reliability layer on every point (retransmission under loss)
    faults: Optional[FaultConfig] = None
    #: fabric topology preset for benchmarks that don't carry one in
    #: their params (``None`` keeps the crossbar default); the halo
    #: benchmark sweeps topology as a normal parameter axis instead
    topology: Optional[str] = None
    #: queue-discipline overlay applied to every point's NIC (``None``
    #: keeps each preset's default FIFO); admission control
    #: (``max_unexpected > 0``) also enables the reliability layer,
    #: which carries the refusal protocol
    qdisc: Optional[QdiscConfig] = None

    def __post_init__(self) -> None:
        if self.benchmark not in BENCHMARKS:
            raise ValueError(
                f"unknown benchmark {self.benchmark!r}; "
                f"expected one of {sorted(BENCHMARKS)}"
            )

    # ---------------------------------------------------------- convenience
    @staticmethod
    def preposted(
        presets: Sequence[str],
        queue_lengths: Iterable[int],
        fractions: Iterable[float],
        *,
        message_size: int = 0,
        iterations: int = 12,
        warmup: int = 3,
        telemetry: bool = False,
        lifecycle: bool = False,
        fabric: bool = False,
        faults: Optional[FaultConfig] = None,
    ) -> "SweepSpec":
        """The Figure 5 grid: preset x queue length x traverse fraction."""
        return SweepSpec(
            benchmark="preposted",
            presets=tuple(presets),
            axes=(
                ("queue_length", tuple(queue_lengths)),
                ("traverse_fraction", tuple(fractions)),
            ),
            fixed=(
                ("message_size", message_size),
                ("iterations", iterations),
                ("warmup", warmup),
            ),
            telemetry=telemetry,
            lifecycle=lifecycle,
            fabric=fabric,
            faults=faults,
        )

    @staticmethod
    def unexpected(
        presets: Sequence[str],
        queue_lengths: Iterable[int],
        *,
        message_size: int = 0,
        iterations: int = 12,
        warmup: int = 3,
        telemetry: bool = False,
        lifecycle: bool = False,
        fabric: bool = False,
        faults: Optional[FaultConfig] = None,
    ) -> "SweepSpec":
        """The Figure 6 grid: preset x queue length."""
        return SweepSpec(
            benchmark="unexpected",
            presets=tuple(presets),
            axes=(("queue_length", tuple(queue_lengths)),),
            fixed=(
                ("message_size", message_size),
                ("iterations", iterations),
                ("warmup", warmup),
            ),
            telemetry=telemetry,
            lifecycle=lifecycle,
            fabric=fabric,
            faults=faults,
        )

    @staticmethod
    def halo(
        presets: Sequence[str],
        ranks: Iterable[int],
        topologies: Iterable[str] = ("crossbar", "torus3d"),
        *,
        message_size: int = 512,
        iterations: int = 3,
        warmup: int = 1,
        telemetry: bool = False,
        lifecycle: bool = False,
        fabric: bool = False,
        faults: Optional[FaultConfig] = None,
    ) -> "SweepSpec":
        """The topology-comparison grid: preset x ranks x topology."""
        return SweepSpec(
            benchmark="halo",
            presets=tuple(presets),
            axes=(
                ("ranks", tuple(ranks)),
                ("topology", tuple(topologies)),
            ),
            fixed=(
                ("message_size", message_size),
                ("iterations", iterations),
                ("warmup", warmup),
            ),
            telemetry=telemetry,
            lifecycle=lifecycle,
            fabric=fabric,
            faults=faults,
        )

    @staticmethod
    def storm(
        presets: Sequence[str],
        workers: Iterable[int],
        *,
        messages_per_worker: int = 200,
        window: int = 16,
        service_ns: float = 400.0,
        telemetry: bool = False,
        lifecycle: bool = False,
        qdisc: Optional[QdiscConfig] = None,
    ) -> "SweepSpec":
        """The wildcard-storm grid: preset x worker count."""
        return SweepSpec(
            benchmark="storm",
            presets=tuple(presets),
            axes=(("workers", tuple(workers)),),
            fixed=(
                ("messages_per_worker", messages_per_worker),
                ("window", window),
                ("service_ns", service_ns),
            ),
            telemetry=telemetry,
            lifecycle=lifecycle,
            qdisc=qdisc,
        )

    @staticmethod
    def alltoall(
        presets: Sequence[str],
        num_ranks: Iterable[int],
        degrees: Iterable[int],
        *,
        rounds: int = 10,
        message_size: int = 0,
        seed: int = 1,
        telemetry: bool = False,
        lifecycle: bool = False,
        qdisc: Optional[QdiscConfig] = None,
    ) -> "SweepSpec":
        """The sparse all-to-all grid: preset x world size x degree."""
        return SweepSpec(
            benchmark="alltoall",
            presets=tuple(presets),
            axes=(
                ("num_ranks", tuple(num_ranks)),
                ("degree", tuple(degrees)),
            ),
            fixed=(
                ("rounds", rounds),
                ("message_size", message_size),
                ("seed", seed),
            ),
            telemetry=telemetry,
            lifecycle=lifecycle,
            qdisc=qdisc,
        )

    @staticmethod
    def multijob(
        presets: Sequence[str],
        hog_messages: Iterable[int],
        *,
        hog_service_ns: float = 400.0,
        iterations: int = 50,
        warmup: int = 5,
        telemetry: bool = False,
        lifecycle: bool = False,
        qdisc: Optional[QdiscConfig] = None,
    ) -> "SweepSpec":
        """The NIC-sharing grid: preset x hog intensity."""
        return SweepSpec(
            benchmark="multijob",
            presets=tuple(presets),
            axes=(("hog_messages", tuple(hog_messages)),),
            fixed=(
                ("hog_service_ns", hog_service_ns),
                ("iterations", iterations),
                ("warmup", warmup),
            ),
            telemetry=telemetry,
            lifecycle=lifecycle,
            qdisc=qdisc,
        )

    # --------------------------------------------------------------- points
    def points(self) -> List[Tuple[str, Dict[str, object]]]:
        """Expand the grid into ``(preset, params kwargs)`` pairs.

        Deterministic legacy order: presets outermost, then the axes in
        declaration order via :func:`itertools.product`.
        """
        names = [name for name, _ in self.axes]
        value_lists = [values for _, values in self.axes]
        points = []
        for preset in self.presets:
            for combo in itertools.product(*value_lists):
                kwargs = dict(self.fixed)
                kwargs.update(zip(names, combo))
                points.append((preset, kwargs))
        return points


#: bump when row semantics change, so stale cache files never resurface
#: (2: rows gained the ``attribution`` field; 3: keys gained ``faults``;
#: 4: rows gained the ``health`` field, telemetry runs grew timelines;
#: 5: keys gained ``topology``, the halo benchmark landed; 6: rows and
#: keys gained ``fabric``, fabric-observability sweeps landed; 7: keys
#: gained ``qdisc``, the storm/alltoall/multijob benchmarks landed)
CACHE_VERSION = 7


class SweepCache:
    """Content-addressed memo of sweep rows.

    Keys are sha256 hashes over the complete configuration of one point
    (cache version, benchmark, preset, block size, telemetry flag, and
    every parameter) so any change re-runs the simulation.  Backing
    store is in-memory, optionally mirrored to a JSON file: pass
    ``path`` to load it at construction and have :func:`run_sweep`
    persist after each sweep.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self.hits = 0
        self.misses = 0
        self._rows: Dict[str, Dict[str, object]] = {}
        if path is not None and os.path.exists(path):
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
            self._rows = payload.get("rows", {})

    def __len__(self) -> int:
        return len(self._rows)

    @staticmethod
    def key(spec: SweepSpec, preset: str, params: Dict[str, object]) -> str:
        """The content hash of one grid point."""
        payload = {
            "version": CACHE_VERSION,
            "benchmark": spec.benchmark,
            "preset": preset,
            "block_size": spec.block_size,
            "telemetry": spec.telemetry,
            "lifecycle": spec.lifecycle,
            "fabric": spec.fabric,
            "faults": (
                dataclasses.asdict(spec.faults) if spec.faults is not None else None
            ),
            "topology": spec.topology,
            "qdisc": (
                dataclasses.asdict(spec.qdisc) if spec.qdisc is not None else None
            ),
            "params": {name: params[name] for name in sorted(params)},
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def get(self, key: str, row_cls: type):
        """The cached row for ``key``, rebuilt, or None."""
        stored = self._rows.get(key)
        if stored is None:
            self.misses += 1
            return None
        self.hits += 1
        return row_cls(**stored)

    def put(self, key: str, row) -> None:
        self._rows[key] = dataclasses.asdict(row)

    def save(self) -> None:
        """Mirror the store to ``path`` (no-op when in-memory only)."""
        if self.path is None:
            return
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(self.path, "w", encoding="utf-8") as fh:
            json.dump(
                {"version": CACHE_VERSION, "rows": self._rows},
                fh,
                indent=2,
                sort_keys=True,
            )
            fh.write("\n")


def run_point(
    spec: SweepSpec,
    preset: str,
    params: Dict[str, object],
    *,
    nic: Optional[NicConfig] = None,
):
    """Run one grid point and shape the result into its row."""
    bench = BENCHMARKS[spec.benchmark]
    if nic is None:
        nic = nic_preset(preset, block_size=spec.block_size)
    overrides: Dict[str, object] = {}
    if spec.qdisc is not None:
        overrides["qdisc"] = spec.qdisc
    needs_reliability = spec.faults is not None or (
        spec.qdisc is not None and spec.qdisc.max_unexpected > 0
    )
    if needs_reliability and not nic.reliability.enabled:
        # lossy wire or admission control: turn on the link-level
        # retransmission layer (done here, not on the shared preset NIC,
        # so serial/parallel and fault/no-fault sweeps never leak state
        # into each other); one replace, because NicConfig validates the
        # qdisc/reliability combination at construction
        overrides["reliability"] = ReliabilityConfig(enabled=True)
    if overrides:
        nic = dataclasses.replace(nic, **overrides)
    bundle = (
        # telemetry sweeps also carry the windowed timeline and the
        # default watchdog battery, so every row gets a health verdict
        Telemetry(
            tracing=False,
            lifecycle=spec.lifecycle,
            timeline=spec.telemetry,
            health=spec.telemetry,
            fabric=spec.fabric,
        )
        if (spec.telemetry or spec.lifecycle or spec.fabric)
        else None
    )
    result = bench.runner(
        nic,
        bench.params_cls(**params),
        telemetry=bundle,
        faults=spec.faults,
        topology=spec.topology,
    )
    attribution = None
    if spec.lifecycle:
        attribution = attribute_run(bundle.lifecycles())
    health = None
    if spec.telemetry:
        health = {
            "verdict": bundle.health_verdict(),
            "findings": [f.to_obj() for f in bundle.health_findings()],
        }
    fields = {name: params[name] for name in bench.row_fields}
    if bench.row_extra is not None:
        fields.update(bench.row_extra(result))
    return bench.row_cls(
        preset=preset,
        latency_ns=result.median_ns,
        # a lifecycle-only bundle still snapshots metrics; keep rows
        # comparable by attaching them only when telemetry was asked for
        metrics=result.metrics if spec.telemetry else None,
        attribution=attribution,
        health=health,
        fabric=bundle.fabric_snapshot() if spec.fabric else None,
        **fields,
    )


def _pool_entry(job: Tuple[SweepSpec, str, Dict[str, object]]):
    """Module-level worker so both fork and spawn start methods pickle it."""
    spec, preset, params = job
    return run_point(spec, preset, params)


def _pool_context() -> multiprocessing.context.BaseContext:
    """Fork when the platform has it (cheap, no re-import); spawn otherwise."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def run_sweep(
    spec: SweepSpec,
    *,
    workers: Optional[int] = None,
    cache: Optional[SweepCache] = None,
) -> List:
    """Run every point of the grid; rows come back in grid order.

    ``workers``: None/0/1 runs in-process (building each preset's NIC
    configuration once and reusing it across that preset's points);
    ``workers >= 2`` fans the points out over a process pool.  Either
    way the rows are identical -- each point is an isolated simulation.

    ``cache``: an optional :class:`SweepCache`; cached points are
    never re-simulated, fresh rows are stored back, and a file-backed
    cache is saved before returning.
    """
    points = spec.points()
    bench = BENCHMARKS[spec.benchmark]
    rows: List = [None] * len(points)

    pending: List[Tuple[int, str, Dict[str, object]]] = []
    for index, (preset, params) in enumerate(points):
        if cache is not None:
            row = cache.get(SweepCache.key(spec, preset, params), bench.row_cls)
            if row is not None:
                rows[index] = row
                continue
        pending.append((index, preset, params))

    if pending and workers is not None and workers >= 2:
        jobs = [(spec, preset, params) for _, preset, params in pending]
        with _pool_context().Pool(processes=workers) as pool:
            fresh = pool.map(_pool_entry, jobs)
        for (index, _, _), row in zip(pending, fresh):
            rows[index] = row
    elif pending:
        # serial path: one NicConfig per preset, shared across its points
        nics: Dict[str, NicConfig] = {}
        for index, preset, params in pending:
            if preset not in nics:
                nics[preset] = nic_preset(preset, block_size=spec.block_size)
            rows[index] = run_point(spec, preset, params, nic=nics[preset])

    if cache is not None:
        for index, preset, params in pending:
            cache.put(SweepCache.key(spec, preset, params), rows[index])
        cache.save()
    return rows


def _smoke() -> None:
    """One Figure-5 point through serial, parallel, and cached execution."""
    spec = SweepSpec.preposted(
        ("alpu128",), (8,), (1.0,), iterations=4, warmup=1
    )
    serial = run_sweep(spec)
    parallel = run_sweep(spec, workers=2)
    assert serial == parallel, (serial, parallel)
    cache = SweepCache()
    first = run_sweep(spec, cache=cache)
    again = run_sweep(spec, cache=cache)
    assert first == serial and again == serial, (first, again)
    assert cache.hits == 1 and cache.misses == 1, (cache.hits, cache.misses)
    row = serial[0]
    print(
        f"sweep smoke OK: preposted {row.preset} q={row.queue_length} "
        f"f={row.traverse_fraction} -> {row.latency_ns:.1f} ns "
        "(serial == parallel == cached)"
    )
    halo_spec = SweepSpec.halo(
        ("alpu128",), (8,), ("crossbar", "torus3d"), iterations=2, warmup=1
    )
    halo_serial = run_sweep(halo_spec)
    halo_parallel = run_sweep(halo_spec, workers=2)
    assert halo_serial == halo_parallel, (halo_serial, halo_parallel)
    for row in halo_serial:
        print(
            f"sweep smoke OK: halo {row.preset} ranks={row.ranks} "
            f"{row.topology} -> {row.latency_ns:.1f} ns (serial == parallel)"
        )


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv[1:]:
        _smoke()
    else:
        print(__doc__)
