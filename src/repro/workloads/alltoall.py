"""Sparse all-to-all rounds: the concrete-key counterpoint to the storm.

Every rank exchanges with a small, seeded, fixed peer subset in lockstep
rounds -- the communication pattern of sparse solvers and graph codes.
Unlike the wildcard storm, every posted receive names a *concrete*
(source, tag), so under the ``"sharded"`` queue discipline each receive
posting searches only its per-source shard of the unexpected queue
instead of walking all of it.  The pattern is deliberately send-first:
each round a rank fires its isends *before* posting its receives, so
roughly every message lands unexpected and the queues actually carry the
round's full fan-in.

Degrees of freedom: world size, per-rank out-degree, and rounds --
``num_ranks * degree * rounds`` messages total, which reaches 10^6 with
e.g. 64 ranks x 16 peers x 1000 rounds.

Smoke::

    PYTHONPATH=src python -m repro.workloads.alltoall --smoke
"""

from __future__ import annotations

import dataclasses
import random
import statistics
from typing import Dict, List, Optional

from repro.mpi.world import MpiWorld, WorldConfig
from repro.network.fabric import FabricConfig
from repro.network.faults import FaultConfig
from repro.nic.nic import NicConfig
from repro.sim.process import now
from repro.sim.units import ps_to_ns


@dataclasses.dataclass(frozen=True)
class AlltoallParams:
    """One sparse all-to-all point."""

    num_ranks: int = 8
    #: outgoing peers per rank (in-degree varies, seeded)
    degree: int = 3
    rounds: int = 10
    message_size: int = 0
    #: peer-subset seed (the topology is part of the experiment point)
    seed: int = 1

    def __post_init__(self) -> None:
        if self.num_ranks < 2:
            raise ValueError("num_ranks must be >= 2")
        if not 1 <= self.degree < self.num_ranks:
            raise ValueError(
                f"degree must be in [1, num_ranks), got {self.degree}"
            )
        if self.rounds < 1 or self.message_size < 0:
            raise ValueError(f"invalid parameters: {self}")

    @property
    def total_messages(self) -> int:
        return self.num_ranks * self.degree * self.rounds

    def peer_sets(self) -> List[List[int]]:
        """Seeded out-peer subset per rank (deterministic)."""
        rng = random.Random(self.seed)
        return [
            sorted(rng.sample([p for p in range(self.num_ranks) if p != r],
                              self.degree))
            for r in range(self.num_ranks)
        ]


@dataclasses.dataclass
class AlltoallResult:
    """Per-round completion times, as seen from rank 0."""

    params: AlltoallParams
    #: rank 0's per-round wall time (sends fired to all receives done)
    round_ns: List[float]
    total_messages: int
    metrics: Optional[Dict[str, object]] = None

    @property
    def mean_ns(self) -> float:
        return statistics.fmean(self.round_ns)

    @property
    def median_ns(self) -> float:
        return statistics.median(self.round_ns)


def run_alltoall(
    nic: NicConfig,
    params: AlltoallParams,
    *,
    telemetry=None,
    faults: Optional[FaultConfig] = None,
    topology: Optional[str] = None,
) -> AlltoallResult:
    """Run ``params.rounds`` sparse exchange rounds.

    ``telemetry`` / ``faults`` / ``topology``: as in the other workloads
    (see :func:`repro.workloads.unexpected.run_unexpected`).
    """

    out_peers = params.peer_sets()
    in_peers: List[List[int]] = [[] for _ in range(params.num_ranks)]
    for rank, peers in enumerate(out_peers):
        for peer in peers:
            in_peers[peer].append(rank)

    def make_program(rank: int):
        def program(mpi):
            yield from mpi.init()
            round_ns: List[float] = []
            for rnd in range(params.rounds):
                start = yield now()
                # send-first so the fan-in lands unexpected
                sends = []
                for peer in out_peers[rank]:
                    request = yield from mpi.isend(
                        peer, rnd, params.message_size
                    )
                    sends.append(request)
                recvs = []
                for peer in in_peers[rank]:
                    request = yield from mpi.irecv(
                        peer, rnd, params.message_size
                    )
                    recvs.append(request)
                yield from mpi.waitall(sends + recvs)
                end = yield now()
                round_ns.append(ps_to_ns(end - start))
                # round tags double as the epoch fence: tag rnd+1 traffic
                # can arrive early and sit unexpected, which is the point
            yield from mpi.finalize()
            return round_ns

        return program

    world = MpiWorld(
        WorldConfig(
            num_ranks=params.num_ranks,
            nic=nic,
            fabric=FabricConfig.with_topology(topology),
            faults=faults,
        ),
        telemetry=telemetry,
    )
    programs = {r: make_program(r) for r in range(params.num_ranks)}
    deadline_us = max(1_000_000.0, params.total_messages * 10.0)
    results = world.run(programs, deadline_us=deadline_us)
    return AlltoallResult(
        params=params,
        round_ns=results[0],
        total_messages=params.total_messages,
        metrics=telemetry.snapshot() if telemetry is not None else None,
    )


def _smoke() -> None:
    """Sharded and fifo disciplines must agree on the exchanged rounds."""
    import dataclasses as dc

    from repro.nic.qdisc import QdiscConfig

    params = AlltoallParams(num_ranks=8, degree=3, rounds=6)
    base = NicConfig.baseline()
    fifo = run_alltoall(base, params)
    sharded = run_alltoall(
        dc.replace(
            base, qdisc=QdiscConfig(discipline="sharded", shard_key="flow")
        ),
        params,
    )
    assert len(fifo.round_ns) == params.rounds
    assert len(sharded.round_ns) == params.rounds
    # same matches in both (a sharded search returns the same oldest
    # entry), so simulated times differ only through visit counts
    print(
        f"alltoall smoke OK: {params.total_messages} msgs, "
        f"fifo median round {fifo.median_ns:.0f} ns, "
        f"sharded median round {sharded.median_ns:.0f} ns"
    )


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv[1:]:
        _smoke()
    else:
        print(__doc__)
