"""Figure 5 under a lossy wire: the fault-injection sweep preset.

Reproduces the Figure 5 comparison points (baseline vs. ALPU receiver)
with the fabric dropping packets at configurable rates and the NICs'
link-level retransmission layer recovering every loss.  The default grid
sweeps :data:`LOSS_RATES` = 0 / 1e-3 / 1e-2 -- the zero-loss row is the
control: with the fault model attached but idle, its latencies match the
dedicated reliability-enabled no-fault run bit for bit.

Every telemetry row carries the watchdog verdict
(:mod:`repro.obs.health`), so loss-sweep campaigns filter by health --
``retransmit_storm`` rows versus clean recoveries -- instead of
eyeballing retransmit counters.

Run the CI smoke (asserts a 1% point completes with retries, a
:data:`STORM_LOSS_RATE` point deterministically raises
``retransmit_storm``, and the zero-fault control stays finding-free)::

    PYTHONPATH=src python -m repro.workloads.faulty --smoke
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.network.faults import FaultConfig
from repro.obs.health import has_finding
from repro.workloads.sweep import SweepSpec, run_sweep

#: the swept packet drop rates (per-packet probability)
LOSS_RATES: Tuple[float, ...] = (0.0, 1e-3, 1e-2)

#: loss heavy enough that retransmissions cluster into a storm window
#: (the smoke's deterministic ``retransmit_storm`` trigger)
STORM_LOSS_RATE = 0.1

#: default seed; any fixed value gives reproducible loss patterns
DEFAULT_SEED = 2005


def faulty_spec(
    loss_rate: float,
    *,
    presets: Sequence[str] = ("baseline", "alpu128"),
    queue_lengths: Sequence[int] = (4, 16),
    fractions: Sequence[float] = (1.0,),
    iterations: int = 12,
    warmup: int = 3,
    seed: int = DEFAULT_SEED,
    telemetry: bool = True,
) -> SweepSpec:
    """One Figure-5 grid at one packet-loss rate.

    The spec carries the fault configuration, so
    :func:`~repro.workloads.sweep.run_point` enables the NICs'
    reliability layer on every point and the cache keys the loss rate.
    """
    return SweepSpec.preposted(
        presets,
        queue_lengths,
        fractions,
        iterations=iterations,
        warmup=warmup,
        telemetry=telemetry,
        faults=FaultConfig(seed=seed, drop_rate=loss_rate),
    )


def run_loss_sweep(
    loss_rates: Sequence[float] = LOSS_RATES, **spec_kwargs
) -> List[Tuple[float, List]]:
    """Run the Figure-5 grid at each loss rate; ``[(rate, rows), ...]``."""
    return [
        (rate, run_sweep(faulty_spec(rate, **spec_kwargs)))
        for rate in loss_rates
    ]


def _retransmits(rows) -> int:
    """Total reliability-layer retransmissions across a sweep's rows."""
    total = 0
    for row in rows:
        for key, value in (row.metrics or {}).items():
            if key.endswith(".rel/retransmits"):
                total += int(value)
    return total


def _smoke() -> None:
    """The CI gate (everything deterministic under the pinned seed):

    * one Figure-5 point at 1% loss completes with retries > 0;
    * the same point at :data:`STORM_LOSS_RATE` raises a
      ``retransmit_storm`` health finding;
    * the zero-fault control run yields no findings at all.
    """
    point = dict(
        presets=("baseline",), queue_lengths=(8,), iterations=40, warmup=2
    )
    rows = run_sweep(faulty_spec(1e-2, **point))
    assert len(rows) == 1 and rows[0].latency_ns > 0, rows
    retransmits = _retransmits(rows)
    assert retransmits > 0, (
        "1% loss produced no retransmissions -- fault injection or "
        "recovery is not wired up"
    )
    (stormy,) = run_sweep(faulty_spec(STORM_LOSS_RATE, **point))
    assert stormy.health is not None and stormy.health["findings"], (
        f"{STORM_LOSS_RATE:.0%} loss produced no health findings -- "
        "the watchdog battery is not wired up"
    )
    assert has_finding(stormy.health["findings"], "retransmit_storm"), (
        "heavy loss did not raise retransmit_storm; findings: "
        f"{stormy.health['findings']}"
    )
    (control,) = run_sweep(faulty_spec(0.0, **point))
    assert control.health == {"verdict": "healthy", "findings": []}, (
        f"zero-fault control is not clean: {control.health}"
    )
    print(
        f"faulty smoke OK: preposted baseline q=8 at 1% loss -> "
        f"{rows[0].latency_ns:.1f} ns median, {retransmits} retransmits; "
        f"{STORM_LOSS_RATE:.0%} loss -> {stormy.health['verdict']} "
        f"({', '.join(sorted({f['code'] for f in stormy.health['findings']}))}); "
        "zero-fault control healthy"
    )


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv[1:]:
        _smoke()
    else:
        print(__doc__)
