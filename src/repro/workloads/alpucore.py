"""The ALPU core-op microbenchmark (the vectorized-core stress point).

The Figure 5/6 system benchmarks measure whole-NIC behaviour, so the
Python cost of the ALPU *core model* -- the compare plane, priority
encoder and shift/compaction flow control of Figures 2-3 -- is diluted
by firmware, MPI-library and fabric events.  This workload isolates the
core: one driver process performs the paper's Table I protocol against a
single :class:`~repro.nic.alpu_device.AlpuDevice` as fast as the bus
allows, so nearly every simulated event carries a core operation:

* **fill**: ``START INSERT``, ``total_cells`` ``INSERT`` commands (each
  triggering insert-mode compaction toward the oldest end), ``STOP
  INSERT``;
* **drain**: one header per stored entry, oldest first, so every match
  deletes at the *far* end and shifts the full occupied chain (the
  worst-case delete of Section III-B), plus one guaranteed
  ``MATCH FAILURE`` probe per ``miss_every`` hits;
* every response is read back over the bus (reads cost a full round
  trip, Section V-D).

Simulated latencies are pure protocol timing -- bus transactions plus
pipeline occupancy from :class:`~repro.core.pipeline.AlpuTimingModel` --
and are pinned in ``BENCH_baseline.json`` exactly like the system
points.  Wall-clock events/sec, in contrast, tracks the Python cost of
the core model almost 1:1, which makes this the point where the SWAR
vectorization of :mod:`repro.core.block` is visible undiluted: the
before/after table in EXPERIMENTS.md is anchored here.
"""

from __future__ import annotations

import dataclasses
import statistics
from typing import List, Optional

from repro.core.alpu import AlpuConfig
from repro.core.cell import CellKind
from repro.core.commands import (
    Insert,
    MatchFailure,
    MatchSuccess,
    StartAcknowledge,
    StartInsert,
    StopInsert,
)
from repro.core.match import ANY_TAG, DEFAULT_FORMAT, MatchRequest
from repro.nic.alpu_device import AlpuDevice
from repro.sim.engine import Engine
from repro.sim.process import Process, delay
from repro.sim.units import ps_to_ns


@dataclasses.dataclass(frozen=True)
class AlpuCoreParams:
    """One core-stress point."""

    #: ALPU geometry under test
    cells: int = 1024
    block_size: int = 1024
    #: every k-th drain step also presents a header that matches nothing
    miss_every: int = 8
    #: every k-th insert stores a wildcard-tag entry (mask bits exercise
    #: the ternary compare plane)
    wildcard_every: int = 16
    #: timed fill+drain rounds / untimed leading rounds
    iterations: int = 4
    warmup: int = 1

    def __post_init__(self) -> None:
        if self.cells < 1:
            raise ValueError("cells must be >= 1")
        if self.miss_every < 1 or self.wildcard_every < 1:
            raise ValueError(f"invalid cadence in {self}")
        if self.iterations < 1 or self.warmup < 0:
            raise ValueError(f"invalid parameters: {self}")


@dataclasses.dataclass
class AlpuCoreResult:
    """Samples for one core-stress point."""

    params: AlpuCoreParams
    #: simulated duration of each timed fill+drain round
    latencies_ns: List[float]
    #: core operations performed over the timed rounds (inserts + headers)
    ops: int

    @property
    def median_ns(self) -> float:
        return statistics.median(self.latencies_ns)


def run_alpucore(
    params: AlpuCoreParams, *, telemetry=None
) -> AlpuCoreResult:
    """Run the Table I protocol loop against one posted-receive ALPU."""
    if telemetry is not None:
        engine = Engine(
            tracer=telemetry.tracer,
            metrics=telemetry.metrics,
            profiler=getattr(telemetry, "profiler", None),
        )
    else:
        engine = Engine()
    fmt = DEFAULT_FORMAT
    config = AlpuConfig(
        kind=CellKind.POSTED_RECEIVE,
        total_cells=params.cells,
        block_size=params.block_size,
    )
    device = AlpuDevice(engine, "alpucore", config)
    tag_mask = (1 << config.tag_width) - 1
    source_span = 1 << fmt.source_bits
    tag_span = 1 << fmt.tag_bits
    samples: List[float] = []
    ops = 0
    #: a header no stored entry can match: sources only ever cover
    #: ``cells % source_span`` distinct values paired with matching tag
    #: lanes, so crossing the pairing never collides
    miss_bits = fmt.pack(context=1, source=0, tag=1)

    def read_response(expect):
        """Poll the result FIFO (reads are charged even when empty)."""
        while True:
            cost, response = device.bus_read_result()
            yield delay(cost)
            if response is not None:
                if not isinstance(response, expect):
                    raise RuntimeError(
                        f"protocol violation: {response!r}, wanted {expect}"
                    )
                return response

    def driver():
        nonlocal ops
        total_rounds = params.warmup + params.iterations
        for round_index in range(total_rounds):
            timed = round_index >= params.warmup
            round_start = engine.now
            round_ops = 0
            # ---- fill: START INSERT, cells x INSERT, STOP INSERT
            yield delay(device.bus_write_command(StartInsert()))
            yield from read_response(StartAcknowledge)
            stored = []
            for index in range(params.cells):
                source = index % source_span
                if index % params.wildcard_every == 0:
                    bits, mask = fmt.pack_receive(
                        context=0, source=source, tag=ANY_TAG
                    )
                else:
                    bits = fmt.pack(
                        context=0, source=source, tag=index % tag_span
                    )
                    mask = 0
                stored.append((bits, index % tag_span))
                yield delay(
                    device.bus_write_command(
                        Insert(match_bits=bits, mask_bits=mask,
                               tag=index & tag_mask)
                    )
                )
                round_ops += 1
            yield delay(device.bus_write_command(StopInsert()))
            # ---- drain: oldest-first headers force full-chain shifts
            for index, (bits, tag) in enumerate(stored):
                if index % params.miss_every == 0:
                    device.hw_push_header(MatchRequest(bits=miss_bits))
                    yield from read_response(MatchFailure)
                    round_ops += 1
                device.hw_push_header(MatchRequest(bits=bits))
                yield from read_response(MatchSuccess)
                round_ops += 1
            if timed:
                samples.append(ps_to_ns(engine.now - round_start))
                ops += round_ops
        return None

    Process(engine, driver(), name="alpucore.driver")
    engine.run()
    return AlpuCoreResult(params=params, latencies_ns=samples, ops=ops)
