"""Multi-job NIC sharing: a latency job beside an unexpected-queue hog.

Two jobs share the NICs of a two-node system (``ranks_per_node=2``):

* **Job A (latency)**: ranks 0 and 2 run a plain ping-pong and measure
  round-trip latency -- the paper's Section V-A victim traffic.
* **Job B (hog)**: rank 3 floods rank 1 with bursts of eager messages
  that rank 1 services slowly, so node 0's NIC accumulates a deep
  unexpected queue *belonging to another job*.

Job A's pings land on the same NIC and -- under plain FIFO -- every one
of its receive postings walks job B's backlog (the match context differs,
but FIFO traversal does not care).  The qdisc layer is the defence:
``"sharded"`` confines job A's searches to its own shard,
``max_unexpected`` bounds how deep job B's backlog can get, and
``host_priority`` services job A's postings ahead of job B's arrivals.
The result quantifies the isolation: ping-pong latency with and without
the hog, per discipline.

Smoke::

    PYTHONPATH=src python -m repro.workloads.multijob --smoke
"""

from __future__ import annotations

import dataclasses
import statistics
from typing import Dict, List, Optional

from repro.mpi.world import MpiWorld, WorldConfig
from repro.network.fabric import FabricConfig
from repro.network.faults import FaultConfig
from repro.nic.nic import NicConfig
from repro.sim.process import delay, now
from repro.sim.units import ns, ps_to_ns

#: job A's ping/pong tags; job B floods on a disjoint tag
_PING_TAG = 1
_PONG_TAG = 2
_HOG_TAG = 9


@dataclasses.dataclass(frozen=True)
class MultijobParams:
    """One sharing point (4 ranks, 2 nodes, fixed job placement)."""

    #: job A round trips (measured after warmup)
    iterations: int = 50
    warmup: int = 5
    #: job B messages from rank 3 to rank 1
    hog_messages: int = 400
    #: job B sender burst (isends in flight before a waitall)
    hog_burst: int = 64
    #: rank 1's per-message service time -- what makes it a hog
    hog_service_ns: float = 400.0
    message_size: int = 0

    def __post_init__(self) -> None:
        if self.iterations < 1 or self.warmup < 0:
            raise ValueError(f"invalid parameters: {self}")
        if self.hog_messages < 0 or self.hog_burst < 1:
            raise ValueError(f"invalid parameters: {self}")
        if self.hog_service_ns < 0 or self.message_size < 0:
            raise ValueError(f"invalid parameters: {self}")


@dataclasses.dataclass
class MultijobResult:
    """Job A's latencies plus job B's queue damage."""

    params: MultijobParams
    #: job A round-trip latencies (post-warmup)
    latencies_ns: List[float]
    #: node-0 NIC unexpected-queue high-water mark (job B's backlog)
    max_unexpected_depth: int
    #: admission refusals at node 0 (0 without admission control)
    refused: int
    metrics: Optional[Dict[str, object]] = None

    @property
    def mean_ns(self) -> float:
        return statistics.fmean(self.latencies_ns)

    @property
    def median_ns(self) -> float:
        return statistics.median(self.latencies_ns)


def run_multijob(
    nic: NicConfig,
    params: MultijobParams,
    *,
    telemetry=None,
    faults: Optional[FaultConfig] = None,
    topology: Optional[str] = None,
) -> MultijobResult:
    """Run the two jobs side by side; ranks 0/1 on node 0, 2/3 on node 1.

    ``telemetry`` / ``faults`` / ``topology``: as in the other workloads
    (see :func:`repro.workloads.unexpected.run_unexpected`).
    """

    total_iters = params.warmup + params.iterations

    def pinger(mpi):  # rank 0, node 0
        yield from mpi.init()
        latencies: List[float] = []
        for _ in range(total_iters):
            start = yield now()
            yield from mpi.send(2, _PING_TAG, params.message_size)
            yield from mpi.recv(2, _PONG_TAG, params.message_size)
            end = yield now()
            latencies.append(ps_to_ns(end - start))
        yield from mpi.finalize()
        return latencies[params.warmup:]

    def ponger(mpi):  # rank 2, node 1
        yield from mpi.init()
        for _ in range(total_iters):
            yield from mpi.recv(0, _PING_TAG, params.message_size)
            yield from mpi.send(0, _PONG_TAG, params.message_size)
        yield from mpi.finalize()
        return None

    def hog_sink(mpi):  # rank 1, node 0: the slow consumer
        yield from mpi.init()
        service_ps = ns(params.hog_service_ns)
        for _ in range(params.hog_messages):
            yield from mpi.recv(3, _HOG_TAG, params.message_size)
            if service_ps:
                yield delay(service_ps)
        yield from mpi.finalize()
        return None

    def hog_source(mpi):  # rank 3, node 1: the flood
        yield from mpi.init()
        remaining = params.hog_messages
        while remaining:
            chunk = min(params.hog_burst, remaining)
            sends = []
            for _ in range(chunk):
                request = yield from mpi.isend(
                    1, _HOG_TAG, params.message_size
                )
                sends.append(request)
            yield from mpi.waitall(sends)
            remaining -= chunk
        yield from mpi.finalize()
        return None

    world = MpiWorld(
        WorldConfig(
            num_ranks=4,
            ranks_per_node=2,
            nic=nic,
            fabric=FabricConfig.with_topology(topology),
            faults=faults,
        ),
        telemetry=telemetry,
    )
    programs = {0: pinger, 1: hog_sink, 2: ponger, 3: hog_source}
    deadline_us = max(
        1_000_000.0,
        (params.hog_messages * (params.hog_service_ns + 1_000.0)
         + total_iters * 10_000.0) / 1_000.0,
    )
    results = world.run(programs, deadline_us=deadline_us)
    node0 = world.nics[0]
    return MultijobResult(
        params=params,
        latencies_ns=results[0],
        max_unexpected_depth=node0.unexpected_q.max_length,
        refused=node0.admission.refused if node0.admission is not None else 0,
        metrics=telemetry.snapshot() if telemetry is not None else None,
    )


def _smoke() -> None:
    """The qdisc layer must actually isolate job A from job B."""
    import dataclasses as dc

    from repro.nic.qdisc import QdiscConfig
    from repro.nic.reliability import ReliabilityConfig

    params = MultijobParams()
    base = NicConfig.baseline()
    exposed = run_multijob(base, params)
    shielded = run_multijob(
        dc.replace(
            base,
            qdisc=QdiscConfig(
                discipline="sharded",
                max_unexpected=32,
                admission_policy="nack",
                host_priority=True,
            ),
            reliability=ReliabilityConfig(enabled=True),
        ),
        params,
    )
    assert exposed.max_unexpected_depth > shielded.max_unexpected_depth
    assert shielded.median_ns < exposed.median_ns, (
        f"qdisc did not shield job A: {shielded.median_ns:.0f} ns vs "
        f"{exposed.median_ns:.0f} ns exposed"
    )
    print(
        f"multijob smoke OK: ping-pong median {exposed.median_ns:.0f} ns "
        f"exposed (depth {exposed.max_unexpected_depth}) -> "
        f"{shielded.median_ns:.0f} ns shielded "
        f"(depth {shielded.max_unexpected_depth}, {shielded.refused} refused)"
    )


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv[1:]:
        _smoke()
    else:
        print(__doc__)
