"""The committed benchmark regression baseline (``BENCH_baseline.json``).

A canonical mini-grid -- one Figure-5 point and one Figure-6 point per
matching backend (list, hash, alpu128) -- is run on every CI build and
compared against the committed baseline:

* **Simulated latencies must match exactly.**  The simulator is
  deterministic; any drift in a latency is a semantic change and fails
  the check (update the baseline deliberately with ``--write``).
* **Wall-clock throughput is a gated axis with a per-point tolerance
  band.**  Each point records the simulator's self-profile (events/sec
  via :class:`repro.obs.selfprof.SimProfiler`) and the baseline commits
  an ``events_per_sec_tolerance`` per point.  A slowdown beyond the band
  prints a warning by default -- machines differ -- and fails the check
  under ``--fail-on-wallclock`` (for perf-gating runs on the machine
  that wrote the baseline).

A third file, ``BENCH_before.json``, freezes the grid as measured at the
commit *before* the SWAR core vectorization (plus the core-stress point
back-measured at that commit).  ``--compare`` joins a fresh run against
it and emits the before/after events-per-sec table of the EXPERIMENTS.md
performance model; ``--require-speedup 5.0`` is the vectorization gate:
at least one pinned point must run >=5x faster than it did before.

CLI::

    python -m repro.workloads.bench --check [BENCH_baseline.json]
    python -m repro.workloads.bench --check --fail-on-wallclock
    python -m repro.workloads.bench --write [BENCH_baseline.json]
    python -m repro.workloads.bench --check --artifacts out/
    python -m repro.workloads.bench --check --compare --require-speedup 5.0
    python -m repro.workloads.bench --check --compare --markdown table.md

``--artifacts DIR`` additionally runs one attribution-instrumented
Figure-5 point (list vs. alpu at queue depth 50) and drops the text
report, the JSON report and a per-message Chrome trace there, plus the
unified run report (text/JSON/HTML, :mod:`repro.analysis.report`) of one
fully-instrumented point -- CI uploads the directory as a workflow
artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Sequence, Tuple

#: committed baseline location, relative to the repository root
DEFAULT_PATH = "BENCH_baseline.json"

#: schema version of the baseline file (2: per-point
#: ``events_per_sec_tolerance`` bands)
BASELINE_VERSION = 2

#: default per-point wall-clock tolerance band, as a fraction of the
#: baseline events/sec; ``--write`` stamps it onto every record and v1
#: baselines without bands fall back to it
DEFAULT_WALLCLOCK_TOLERANCE = 0.25

#: the canonical mini-grid: (benchmark, preset, params).  Small iteration
#: counts keep the CI step in seconds; the latencies are deterministic
#: regardless.
GRID: Tuple[Tuple[str, str, Dict[str, object]], ...] = (
    (
        "preposted",
        "baseline",
        {"queue_length": 24, "traverse_fraction": 1.0, "iterations": 4, "warmup": 1},
    ),
    (
        "preposted",
        "hash",
        {"queue_length": 24, "traverse_fraction": 1.0, "iterations": 4, "warmup": 1},
    ),
    (
        "preposted",
        "alpu128",
        {"queue_length": 24, "traverse_fraction": 1.0, "iterations": 4, "warmup": 1},
    ),
    ("unexpected", "baseline", {"queue_length": 16, "iterations": 4, "warmup": 1}),
    ("unexpected", "hash", {"queue_length": 16, "iterations": 4, "warmup": 1}),
    ("unexpected", "alpu128", {"queue_length": 16, "iterations": 4, "warmup": 1}),
    # the deep-queue point: a 512-entry unexpected queue on the software
    # list backend pins the dict-backed NicQueue's O(1) unlink and the
    # traversal cost model at depth (the queue-churn regression anchor)
    ("unexpected", "baseline", {"queue_length": 512, "iterations": 3, "warmup": 1}),
    # the topology axes: the same 16-rank halo exchange on the dedicated-
    # wire crossbar and the routed torus pins both the collective
    # schedules and the dimension-ordered router
    (
        "halo",
        "alpu128",
        {
            "ranks": 16,
            "topology": "crossbar",
            "message_size": 512,
            "iterations": 3,
            "warmup": 1,
        },
    ),
    (
        "halo",
        "alpu128",
        {
            "ranks": 16,
            "topology": "torus3d",
            "message_size": 512,
            "iterations": 3,
            "warmup": 1,
        },
    ),
    # the vectorized-core stress point: a fill/drain op stream against one
    # large ALPU, where nearly every event carries a core operation (see
    # repro.workloads.alpucore).  This is the pinned point the >=5x
    # vectorization gate (--compare --require-speedup) is anchored on.
    (
        "alpucore",
        "alpu1024x512",
        {"cells": 1024, "block_size": 512, "iterations": 4, "warmup": 1},
    ),
)


def _point_id(benchmark: str, preset: str, params: Dict[str, object]) -> str:
    axes = "_".join(
        f"{name}={params[name]}" for name in sorted(params) if name not in
        ("iterations", "warmup")
    )
    return f"{benchmark}/{preset}/{axes}"


def run_grid() -> List[Dict[str, object]]:
    """Run every grid point with the self-profiler on; returns records."""
    from repro.obs.telemetry import Telemetry
    from repro.workloads.alpucore import AlpuCoreParams, run_alpucore
    from repro.workloads.halo import HaloParams, run_halo
    from repro.workloads.preposted import PrepostedParams, run_preposted
    from repro.workloads.sweep import nic_preset
    from repro.workloads.unexpected import UnexpectedParams, run_unexpected

    records = []
    for benchmark, preset, params in GRID:
        bundle = Telemetry(tracing=False, profile=True)
        if benchmark == "alpucore":
            # drives one AlpuDevice directly -- no NIC preset involved;
            # the preset column is purely the geometry label
            result = run_alpucore(AlpuCoreParams(**params), telemetry=bundle)
        elif benchmark == "preposted":
            result = run_preposted(
                nic_preset(preset), PrepostedParams(**params), telemetry=bundle
            )
        elif benchmark == "halo":
            result = run_halo(
                nic_preset(preset), HaloParams(**params), telemetry=bundle
            )
        else:
            result = run_unexpected(
                nic_preset(preset), UnexpectedParams(**params), telemetry=bundle
            )
        profile = bundle.profiler.snapshot(top=5)
        records.append(
            {
                "id": _point_id(benchmark, preset, params),
                "benchmark": benchmark,
                "preset": preset,
                "params": dict(params),
                "latencies_ns": list(result.latencies_ns),
                "median_ns": result.median_ns,
                "events": profile["events"],
                "events_per_sec": profile["events_per_sec"],
                "events_per_sec_tolerance": DEFAULT_WALLCLOCK_TOLERANCE,
            }
        )
    return records


def write_baseline(path: str) -> List[Dict[str, object]]:
    """Run the grid and commit it as the new baseline file."""
    records = run_grid()
    payload = {"version": BASELINE_VERSION, "grid": records}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return records


def check_baseline(
    path: str,
    records: Optional[List[Dict[str, object]]] = None,
    *,
    fail_on_wallclock: bool = False,
) -> Tuple[bool, List[str]]:
    """Compare a fresh grid run against the committed baseline.

    Returns ``(ok, messages)``.  Simulated-latency mismatches (and
    structural drift of the grid itself) always fail.  An events/sec
    rate below a point's committed tolerance band warns by default and
    fails only under ``fail_on_wallclock`` -- CI machines differ from
    the baseline-writing machine, so the gate is opt-in.
    """
    with open(path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    if records is None:
        records = run_grid()
    by_id = {record["id"]: record for record in baseline.get("grid", ())}
    ok = True
    messages: List[str] = []
    for record in records:
        reference = by_id.pop(record["id"], None)
        if reference is None:
            ok = False
            messages.append(f"FAIL {record['id']}: not in baseline")
            continue
        if record["latencies_ns"] != reference["latencies_ns"]:
            ok = False
            messages.append(
                f"FAIL {record['id']}: latencies {record['latencies_ns']} "
                f"!= baseline {reference['latencies_ns']}"
            )
        else:
            messages.append(
                f"ok   {record['id']}: median {record['median_ns']:.1f} ns"
            )
        base_rate = reference.get("events_per_sec") or 0.0
        rate = record.get("events_per_sec") or 0.0
        # ``events_per_sec_tolerance`` is consumed here and only here: it
        # is the per-point fractional band below the committed events/sec
        # within which a fresh run still passes.  A point recorded at
        # 100k events/s with tolerance 0.25 tolerates anything >= 75k;
        # slower than that warns (or fails under --fail-on-wallclock).
        # Faster never fails -- the band is one-sided.
        tolerance = reference.get(
            "events_per_sec_tolerance", DEFAULT_WALLCLOCK_TOLERANCE
        )
        if base_rate and rate < base_rate * (1.0 - tolerance):
            label = "FAIL" if fail_on_wallclock else "WARN"
            ok = ok and not fail_on_wallclock
            messages.append(
                f"{label} {record['id']}: {rate:,.0f} events/s is "
                f">{tolerance:.0%} below baseline "
                f"{base_rate:,.0f} events/s"
            )
    for stale in by_id:
        ok = False
        messages.append(f"FAIL {stale}: in baseline but not in the grid")
    return ok, messages


# ------------------------------------------------------------ comparison
#: frozen pre-vectorization grid (measured at the commit before the SWAR
#: core landed), the "before" side of the performance-model tables
BEFORE_PATH = "BENCH_before.json"


def compare_records(
    before_path: str, records: List[Dict[str, object]]
) -> List[Dict[str, object]]:
    """Join a grid run against a frozen "before" baseline, point by point.

    Returns one row per current-grid point: before/after events/sec, the
    speedup, and whether the simulated latencies are identical (the
    bit-identity column -- ``None`` when the before grid lacks the
    point).  Points absent from the before file get ``before == None``.
    """
    with open(before_path, "r", encoding="utf-8") as handle:
        before = json.load(handle)
    by_id = {record["id"]: record for record in before.get("grid", ())}
    rows = []
    for record in records:
        reference = by_id.get(record["id"])
        before_rate = reference.get("events_per_sec") if reference else None
        rate = record.get("events_per_sec") or 0.0
        rows.append(
            {
                "id": record["id"],
                "before_events_per_sec": before_rate,
                "events_per_sec": rate,
                "speedup": (rate / before_rate) if before_rate else None,
                "latencies_identical": (
                    record["latencies_ns"] == reference["latencies_ns"]
                    if reference
                    else None
                ),
            }
        )
    return rows


def format_comparison_markdown(rows: List[Dict[str, object]]) -> str:
    """The before/after table as GitHub-flavoured markdown."""
    lines = [
        "| grid point | before (events/s) | after (events/s) | speedup "
        "| simulated latency |",
        "|---|---:|---:|---:|---|",
    ]
    for row in rows:
        before_rate = row["before_events_per_sec"]
        before_text = f"{before_rate:,.0f}" if before_rate else "--"
        speedup = row["speedup"]
        speedup_text = f"{speedup:.2f}x" if speedup else "new point"
        identical = row["latencies_identical"]
        identity_text = (
            "identical" if identical else "new point" if identical is None
            else "**DRIFTED**"
        )
        lines.append(
            f"| `{row['id']}` | {before_text} "
            f"| {row['events_per_sec']:,.0f} | {speedup_text} "
            f"| {identity_text} |"
        )
    return "\n".join(lines) + "\n"


# ------------------------------------------------------------- artifacts
#: the attribution showcase point (the EXPERIMENTS.md budget table)
ARTIFACT_QUEUE_LENGTH = 50


def write_artifacts(directory: str) -> List[str]:
    """The attribution report + per-message Chrome trace for CI upload.

    Runs the list and alpu128 receivers through one Figure-5 point at
    queue depth :data:`ARTIFACT_QUEUE_LENGTH` with the flight recorder
    on; writes ``attribution_<preset>.txt``, ``attribution.json`` and
    ``lifecycle_trace_<preset>.json`` into ``directory``.
    """
    from repro.analysis.attribution import attribute_run, format_report
    from repro.obs.lifecycle import lifecycle_chrome_events
    from repro.obs.telemetry import Telemetry
    from repro.workloads.preposted import PrepostedParams, run_preposted
    from repro.workloads.sweep import nic_preset

    os.makedirs(directory, exist_ok=True)
    written: List[str] = []
    reports: Dict[str, object] = {}
    params = PrepostedParams(
        queue_length=ARTIFACT_QUEUE_LENGTH,
        traverse_fraction=1.0,
        iterations=8,
        warmup=2,
    )
    for preset in ("baseline", "alpu128"):
        bundle = Telemetry(tracing=False, lifecycle=True)
        run_preposted(nic_preset(preset), params, telemetry=bundle)
        lifecycles = bundle.lifecycles()
        report = attribute_run(lifecycles)
        reports[preset] = report
        text_path = os.path.join(directory, f"attribution_{preset}.txt")
        with open(text_path, "w", encoding="utf-8") as handle:
            handle.write(
                format_report(
                    report,
                    title=(
                        f"preposted / {preset}, "
                        f"queue_length={ARTIFACT_QUEUE_LENGTH}"
                    ),
                )
            )
            handle.write("\n")
        written.append(text_path)
        trace_path = os.path.join(
            directory, f"lifecycle_trace_{preset}.json"
        )
        with open(trace_path, "w", encoding="utf-8") as handle:
            json.dump(
                {"traceEvents": lifecycle_chrome_events(lifecycles)}, handle
            )
        written.append(trace_path)
    json_path = os.path.join(directory, "attribution.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(reports, handle, indent=1)
    written.append(json_path)
    # the unified run report of one fully-instrumented point (timeline,
    # health, lifecycles, self-profile) -- the CI-browsable artifact
    from repro.analysis.report import write_artifacts as write_run_report

    bundle = Telemetry(
        tracing=False, lifecycle=True, timeline=True, health=True, profile=True
    )
    result = run_preposted(nic_preset("alpu128"), params, telemetry=bundle)
    document = bundle.report(
        benchmark="preposted",
        preset="alpu128",
        queue_length=ARTIFACT_QUEUE_LENGTH,
        median_ns=result.median_ns,
    )
    written.extend(write_run_report(document, directory))
    return written


# --------------------------------------------------------------- the CLI
def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads.bench",
        description="Run / check the committed benchmark regression baseline",
    )
    parser.add_argument(
        "path",
        nargs="?",
        default=DEFAULT_PATH,
        help=f"baseline file (default {DEFAULT_PATH})",
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--write", action="store_true", help="run the grid, write the baseline"
    )
    mode.add_argument(
        "--check",
        action="store_true",
        help="run the grid, fail on any simulated-latency mismatch",
    )
    parser.add_argument(
        "--artifacts",
        metavar="DIR",
        help="also write attribution reports, Chrome traces and the "
        "unified run report into DIR",
    )
    parser.add_argument(
        "--fail-on-wallclock",
        action="store_true",
        help="fail --check when events/sec falls below a point's "
        "committed tolerance band (default: warn only)",
    )
    parser.add_argument(
        "--compare",
        metavar="BEFORE",
        nargs="?",
        const=BEFORE_PATH,
        help="also print a before/after events-per-sec comparison against "
        f"a frozen baseline (default {BEFORE_PATH})",
    )
    parser.add_argument(
        "--markdown",
        metavar="FILE",
        help="with --compare: write the table as GitHub-flavoured "
        "markdown to FILE ('-' for stdout); CI appends it to the job "
        "summary",
    )
    parser.add_argument(
        "--require-speedup",
        type=float,
        metavar="X",
        help="with --compare: fail unless at least one compared point "
        "runs >= X times faster than the before baseline (the "
        "vectorization gate uses 5.0)",
    )
    args = parser.parse_args(argv)

    status = 0
    records = None
    if args.write:
        records = write_baseline(args.path)
        print(f"wrote {args.path} ({len(records)} grid points)")
        for record in records:
            print(
                f"  {record['id']}: median {record['median_ns']:.1f} ns, "
                f"{record['events_per_sec']:,.0f} events/s"
            )
    else:
        records = run_grid()
        ok, messages = check_baseline(
            args.path, records, fail_on_wallclock=args.fail_on_wallclock
        )
        for message in messages:
            print(message)
        if not ok:
            print("benchmark baseline check FAILED")
            status = 1
        else:
            print("benchmark baseline check passed")
    if args.compare:
        rows = compare_records(args.compare, records)
        table = format_comparison_markdown(rows)
        if args.markdown and args.markdown != "-":
            with open(args.markdown, "w", encoding="utf-8") as handle:
                handle.write(table)
            print(f"comparison table: {args.markdown}")
        else:
            print(table, end="")
        if any(row["latencies_identical"] is False for row in rows):
            print("comparison: simulated latencies DRIFTED from the "
                  "before baseline")
            status = 1
        if args.require_speedup is not None:
            speedups = [row["speedup"] for row in rows if row["speedup"]]
            best = max(speedups, default=0.0)
            if best < args.require_speedup:
                print(
                    f"speedup gate FAILED: best point is {best:.2f}x, "
                    f"needed >= {args.require_speedup:.2f}x"
                )
                status = 1
            else:
                print(
                    f"speedup gate passed: best point {best:.2f}x "
                    f">= {args.require_speedup:.2f}x"
                )
    if args.artifacts:
        for path in write_artifacts(args.artifacts):
            print(f"artifact: {path}")
    return status


if __name__ == "__main__":
    sys.exit(main())
