"""The unexpected-message-queue benchmark (Section V-A, from [10]).

Two degrees of freedom: the length of the unexpected queue and the
message size.  "It deviates from the traditional way of measuring latency
in that it includes the time to post the receive for the latency
measuring message as part of the latency" -- applications post receives
every iteration, so the time to search a long unexpected queue while
posting is real, felt latency.

Protocol (2 ranks; rank 1 is the receiver under test):

* Setup: rank 0 sends ``queue_length`` *filler* messages whose tags rank 1
  will not post receives for until teardown; they pile up in rank 1's
  unexpected queue.  A ready-marker round trip confirms they have all
  arrived (the network delivers per-pair traffic in order).
* Timed loop: rank 0 stamps its send call and sends a ping; rank 1 posts
  the matching receive -- which must search the unexpected queue past
  the fillers -- and the sample is the one-way time from the send call
  to that receive's completion, so the posting time is *included*.
  (The receiver posts as soon as its previous pong is off; whether the
  ping has landed yet is a timing race the benchmark deliberately leaves
  open -- "the time to post a receive is allowed to be overlapped with
  the time to transfer the messages", the paper's conservative choice.)
* Teardown: rank 1 drains the fillers.

Baseline cost per iteration: ~queue_length entry visits on the NIC
(cache-dependent).  ALPU: the unexpected ALPU answers in O(1); only the
not-yet-inserted suffix is searched in software.  That contrast is
Figure 6.
"""

from __future__ import annotations

import dataclasses
import statistics
from typing import Dict, List, Optional

from repro.mpi.world import MpiWorld, WorldConfig
from repro.network.fabric import FabricConfig
from repro.network.faults import FaultConfig
from repro.nic.nic import NicConfig
from repro.sim.process import now
from repro.sim.units import ps_to_ns


@dataclasses.dataclass(frozen=True)
class UnexpectedParams:
    """One benchmark point."""

    queue_length: int = 0
    message_size: int = 0
    iterations: int = 20
    warmup: int = 4

    def __post_init__(self) -> None:
        if self.queue_length < 0:
            raise ValueError("queue_length must be >= 0")
        if self.message_size < 0 or self.iterations < 1 or self.warmup < 0:
            raise ValueError(f"invalid parameters: {self}")


@dataclasses.dataclass
class UnexpectedResult:
    """Samples for one parameter point."""

    params: UnexpectedParams
    latencies_ns: List[float]
    entries_traversed: int
    #: metrics snapshot when the run carried a telemetry bundle
    metrics: Optional[Dict[str, object]] = None

    @property
    def mean_ns(self) -> float:
        return statistics.fmean(self.latencies_ns)

    @property
    def median_ns(self) -> float:
        return statistics.median(self.latencies_ns)


#: tag bases; fillers, pings and control tags never collide
_FILLER_BASE = 0
_PING_BASE = 1 << 14
_PONG_TAG = (1 << 15) + 1
_READY_TAG = (1 << 15) + 2
_DONE_TAG = (1 << 15) + 3


def run_unexpected(
    nic: NicConfig,
    params: UnexpectedParams,
    *,
    telemetry=None,
    faults: Optional[FaultConfig] = None,
    topology: Optional[str] = None,
) -> UnexpectedResult:
    """Run one (queue length, size) point on a 2-rank system.

    ``telemetry``: optional :class:`repro.obs.Telemetry`; the result's
    ``metrics`` field then carries the run's snapshot.  Telemetry never
    perturbs the measured latencies (pinned by regression test).

    ``faults``: optional seeded fabric fault injection; pair it with a
    reliability-enabled ``nic`` so dropped packets are retransmitted.

    ``topology``: fabric preset name (default ``crossbar``); on two
    nodes every preset routes in one hop, so this is a plumbing check
    more than a performance axis.
    """

    total_iters = params.warmup + params.iterations
    fillers = params.queue_length
    #: per-iteration send timestamps (see preposted.py: with the global
    #: simulator clock, one-way latency needs no round-trip halving)
    send_stamps: List[int] = [0] * total_iters

    def sender(mpi):
        yield from mpi.init()
        # pre-post every pong receive outside the timed path
        pongs = []
        for _ in range(total_iters):
            pong = yield from mpi.irecv(source=1, tag=_PONG_TAG, size=0)
            pongs.append(pong)
        # build the victim's unexpected queue
        for j in range(fillers):
            yield from mpi.send(
                dest=1, tag=_FILLER_BASE + j, size=params.message_size
            )
        # ready marker travels behind the fillers (in-order network), so
        # its arrival proves they are all queued
        yield from mpi.send(dest=1, tag=_READY_TAG, size=0)
        yield from mpi.recv(source=1, tag=_READY_TAG, size=0)

        for iteration in range(total_iters):
            send_stamps[iteration] = yield now()
            ping = yield from mpi.send(
                dest=1, tag=_PING_BASE + iteration, size=params.message_size
            )
            if mpi.lifecycle.enabled:
                mpi.lifecycle.label_request(
                    mpi.rank,
                    ping.req_id,
                    "ping",
                    iteration=iteration,
                    timed=iteration >= params.warmup,
                )
            yield from mpi.wait(pongs[iteration])
        yield from mpi.recv(source=1, tag=_DONE_TAG, size=0)
        yield from mpi.finalize()
        return None

    def receiver(mpi):
        yield from mpi.init()
        yield from mpi.recv(source=0, tag=_READY_TAG, size=0)
        yield from mpi.send(dest=0, tag=_READY_TAG, size=0)

        samples: List[float] = []
        traversed_mark = 0
        for iteration in range(total_iters):
            # the timed operation: posting this receive searches the
            # unexpected queue past `fillers` entries, and the sample runs
            # from the sender's send call to this receive's completion --
            # so the posting time is *included* in the latency, as the
            # paper's benchmark requires
            request = yield from mpi.recv(
                source=0, tag=_PING_BASE + iteration, size=params.message_size
            )
            if iteration >= params.warmup:
                samples.append(
                    ps_to_ns(request.completed_at - send_stamps[iteration])
                )
            yield from mpi.send(dest=0, tag=_PONG_TAG, size=0)
            if iteration == params.warmup - 1:
                traversed_mark = mpi.world.nics[1].firmware.entries_traversed
        traversed = mpi.world.nics[1].firmware.entries_traversed - traversed_mark
        # teardown: drain the fillers
        yield from mpi.send(dest=0, tag=_DONE_TAG, size=0)
        for j in range(fillers):
            yield from mpi.recv(
                source=0, tag=_FILLER_BASE + j, size=params.message_size
            )
        yield from mpi.finalize()
        return samples, traversed

    world = MpiWorld(
        WorldConfig(
            num_ranks=2,
            nic=nic,
            fabric=FabricConfig.with_topology(topology),
            faults=faults,
        ),
        telemetry=telemetry,
    )
    results = world.run({0: sender, 1: receiver})
    samples, traversed = results[1]
    return UnexpectedResult(
        params=params,
        latencies_ns=samples,
        entries_traversed=traversed,
        metrics=telemetry.snapshot() if telemetry is not None else None,
    )
