"""A many-rank halo exchange over the routed fabric.

The workload the topology layer exists for: ranks sit on a *logical*
periodic 3-D grid (auto-factored from the rank count), and each
iteration every rank exchanges a face-sized message with its six
neighbours (pre-posted receives, non-blocking sends, one waitall), then
joins a global ``allreduce`` -- the residual-norm step of every
stencil/CFD code.  Mapping the logical grid onto a physical ``torus3d``
makes every exchange nearest-neighbour; on a ``crossbar`` the same
traffic rides dedicated wires; on ``ring``/``mesh2d`` it shows the
multi-hop contention the crossbar hides.

The logical grid is deliberately decoupled from the physical topology so
every preset runs the *same* communication pattern and the measured
difference is purely the network's.

Per-iteration wall time is sampled at rank 0 (the global simulated clock
needs no round-trip halving), and the allreduce doubles as a whole-world
correctness check: every iteration reduces ``rank + 1`` and every rank
must see ``P * (P + 1) / 2``.

Smoke (the CI multi-rank step)::

    PYTHONPATH=src python -m repro.workloads.halo --smoke
"""

from __future__ import annotations

import dataclasses
import statistics
from typing import Dict, List, Optional

from repro.mpi.world import MpiWorld, WorldConfig
from repro.network.fabric import FabricConfig
from repro.network.faults import FaultConfig
from repro.network.topology import TOPOLOGY_PRESETS, TopologyConfig, balanced_dims
from repro.nic.nic import NicConfig
from repro.sim.process import now
from repro.sim.units import ps_to_ns


@dataclasses.dataclass(frozen=True)
class HaloParams:
    """One halo-exchange point."""

    ranks: int = 16
    #: physical topology preset the world is built on
    topology: str = "torus3d"
    #: bytes per face exchange (each rank sends this to each neighbour)
    message_size: int = 512
    iterations: int = 3
    warmup: int = 1
    #: optional incast: every other rank additionally sends
    #: ``hotspot_size`` bytes to this rank per iteration, concentrating
    #: traffic on the channels into it -- the injected-contention
    #: scenario the fabric observability layer exists to attribute.
    #: ``None`` (the default) keeps the pinned benchmark pattern.
    hotspot_rank: Optional[int] = None
    hotspot_size: int = 4096

    def __post_init__(self) -> None:
        if self.ranks < 2:
            raise ValueError(f"halo exchange needs >= 2 ranks, got {self.ranks}")
        if self.topology not in TOPOLOGY_PRESETS:
            raise ValueError(
                f"unknown topology {self.topology!r}; "
                f"expected one of {TOPOLOGY_PRESETS}"
            )
        if self.message_size < 0 or self.iterations < 1 or self.warmup < 0:
            raise ValueError(f"invalid parameters: {self}")
        if self.hotspot_rank is not None and not (
            0 <= self.hotspot_rank < self.ranks
        ):
            raise ValueError(
                f"hotspot_rank {self.hotspot_rank} out of range for "
                f"{self.ranks} ranks"
            )
        if self.hotspot_size < 0:
            raise ValueError(f"invalid hotspot_size: {self.hotspot_size}")


@dataclasses.dataclass
class HaloResult:
    """Samples for one parameter point."""

    params: HaloParams
    #: per-iteration wall time at rank 0, timed iterations only
    latencies_ns: List[float]
    #: the physical topology actually built (``describe()`` string)
    topology: str
    #: the allreduce result every rank agreed on (P*(P+1)/2)
    allreduce_value: int
    #: total link-level retransmissions across all NICs (0 without the
    #: reliability layer; > 0 proves recovery did the work under faults)
    retransmits: int = 0
    #: metrics snapshot when the run carried a telemetry bundle
    metrics: Optional[Dict[str, object]] = None

    @property
    def mean_ns(self) -> float:
        return statistics.fmean(self.latencies_ns)

    @property
    def median_ns(self) -> float:
        return statistics.median(self.latencies_ns)


def _neighbors(rank: int, dims) -> List[int]:
    """The six logical face neighbours of ``rank`` on the periodic grid.

    Order is fixed (axis-major, +1 before -1) so the direction index
    doubles as the message tag slot on both sides of every exchange.
    """
    coords = []
    node = rank
    for extent in dims:
        coords.append(node % extent)
        node //= extent
    neighbors = []
    for axis, extent in enumerate(dims):
        for step in (1, -1):
            c = list(coords)
            c[axis] = (coords[axis] + step) % extent
            peer = 0
            stride = 1
            for x, e in zip(c, dims):
                peer += x * stride
                stride *= e
            neighbors.append(peer)
    return neighbors


def run_halo(
    nic: NicConfig,
    params: HaloParams,
    *,
    telemetry=None,
    faults: Optional[FaultConfig] = None,
    topology: Optional[str] = None,
) -> HaloResult:
    """Run one halo-exchange point on a ``params.ranks``-rank system.

    ``telemetry``: optional :class:`repro.obs.Telemetry`; the result's
    ``metrics`` field then carries the run's snapshot.

    ``faults``: optional seeded fabric fault injection (per hop on
    routed presets); pair it with a reliability-enabled ``nic``.

    ``topology``: preset override (sweep plumbing); defaults to
    ``params.topology``.
    """
    preset = topology if topology is not None else params.topology
    dims = balanced_dims(params.ranks, 3)
    total = params.warmup + params.iterations
    samples: List[float] = []
    expected = params.ranks * (params.ranks + 1) // 2

    def program(mpi):
        yield from mpi.init()
        peers = _neighbors(mpi.rank, dims)
        reduced = None
        yield from mpi.barrier()
        for iteration in range(total):
            start = yield now()
            # tags: direction slot within a per-iteration block of 8;
            # the send in direction k matches the receive posted for the
            # opposite direction k^1 (axis-major, +1/-1 interleaved)
            tag_base = (iteration % 2048) * 8
            requests = []
            for k, peer in enumerate(peers):
                if peer == mpi.rank:
                    continue  # extent-1 axis: the face wraps to itself
                requests.append(
                    (
                        yield from mpi.irecv(
                            source=peer,
                            tag=tag_base + (k ^ 1),
                            size=params.message_size,
                        )
                    )
                )
            # incast: tag slot 6 of the block (directions use 0-5, so the
            # hotspot stream cannot collide with a face exchange)
            if params.hotspot_rank is not None:
                if mpi.rank == params.hotspot_rank:
                    for peer in range(params.ranks):
                        if peer == mpi.rank:
                            continue
                        requests.append(
                            (
                                yield from mpi.irecv(
                                    source=peer,
                                    tag=tag_base + 6,
                                    size=params.hotspot_size,
                                )
                            )
                        )
            for k, peer in enumerate(peers):
                if peer == mpi.rank:
                    continue
                requests.append(
                    (
                        yield from mpi.isend(
                            dest=peer,
                            tag=tag_base + k,
                            size=params.message_size,
                        )
                    )
                )
            if (
                params.hotspot_rank is not None
                and mpi.rank != params.hotspot_rank
            ):
                requests.append(
                    (
                        yield from mpi.isend(
                            dest=params.hotspot_rank,
                            tag=tag_base + 6,
                            size=params.hotspot_size,
                        )
                    )
                )
            yield from mpi.waitall(requests)
            reduced = yield from mpi.allreduce(mpi.rank + 1, op="sum", size=8)
            if reduced != expected:
                raise AssertionError(
                    f"rank {mpi.rank}: allreduce gave {reduced}, "
                    f"expected {expected}"
                )
            if mpi.rank == 0 and iteration >= params.warmup:
                end = yield now()
                samples.append(ps_to_ns(end - start))
        yield from mpi.finalize()
        return reduced

    world = MpiWorld(
        WorldConfig(
            num_ranks=params.ranks,
            nic=nic,
            fabric=FabricConfig(topology=TopologyConfig(preset=preset)),
            faults=faults,
        ),
        telemetry=telemetry,
    )
    results = world.run({rank: program for rank in range(params.ranks)})
    assert set(results.values()) == {expected}
    assert not world.collective_board, "collective board left residue"
    return HaloResult(
        params=params,
        latencies_ns=samples,
        topology=world.fabric.topology.describe(),
        allreduce_value=expected,
        retransmits=sum(
            n.reliability.retransmits
            for n in world.nics
            if n.reliability is not None
        ),
        metrics=telemetry.snapshot() if telemetry is not None else None,
    )


# ----------------------------------------------------------------- smoke
def _smoke() -> None:
    """The CI multi-rank step: 16-rank torus3d halo + allreduce.

    Covers: clean verdicts on the fault-free run, retransmission-based
    recovery under injected faults, and a zero-fault control alongside.
    """
    from repro.obs.telemetry import Telemetry
    from repro.workloads.sweep import nic_preset

    params = HaloParams(ranks=16, topology="torus3d", iterations=2, warmup=1)
    bundle = Telemetry(tracing=False, timeline=True, health=True)
    clean = run_halo(nic_preset("alpu128"), params, telemetry=bundle)
    verdict = bundle.health_verdict()
    assert verdict == "healthy", f"clean run verdict {verdict!r}"
    assert clean.allreduce_value == 136

    faults = FaultConfig(seed=7, drop_rate=0.01)
    nic = nic_preset("alpu128")
    nic = dataclasses.replace(
        nic,
        reliability=dataclasses.replace(nic.reliability, enabled=True),
    )
    faulty = run_halo(nic, params, faults=faults)
    assert faulty.retransmits > 0, "fault run saw no retransmissions"
    # control: the same reliability-enabled NIC with no faults completes
    # with zero recoveries and the same collective result
    control = run_halo(nic, params)
    assert control.retransmits == 0, control.retransmits
    assert control.allreduce_value == clean.allreduce_value
    print(
        f"halo smoke OK: 16-rank torus3d, verdict {verdict}, "
        f"clean median {clean.median_ns:.1f} ns, "
        f"faulty median {faulty.median_ns:.1f} ns "
        f"({faulty.retransmits} retransmits), "
        f"control median {control.median_ns:.1f} ns (0 retransmits)"
    )


def _congestion_smoke(artifact_dir: str = "congestion-artifacts") -> None:
    """The CI fabric-observability step: incast contention on a torus.

    Covers, in one run each:

    * the zero-perturbation gate -- the pinned torus3d halo point with
      the *full* observability stack on must stay bit-identical to
      ``BENCH_baseline.json`` (captured with everything off);
    * the telescoping decomposition -- every wire traversal's per-hop
      budget sums exactly to its span (asserted inside
      :func:`~repro.analysis.attribution.wire_segments`);
    * congestion attribution -- the injected incast must trip the
      ``hotspot_link`` watchdog and the heatmap report must name the
      hottest channel;
    * the artifacts -- the JSON report, the HTML heatmap page, and the
      fabric CLI tables land in ``artifact_dir`` for CI upload.
    """
    import html as html_mod
    import json
    import os
    from pathlib import Path

    from repro.analysis.attribution import link_budgets, wire_segments
    from repro.analysis.fabric import format_fabric
    from repro.analysis.report import render_html, render_text
    from repro.obs.health import has_finding
    from repro.obs.telemetry import Telemetry
    from repro.workloads.sweep import nic_preset

    os.makedirs(artifact_dir, exist_ok=True)
    pinned_params = HaloParams(
        ranks=16, topology="torus3d", message_size=512, iterations=3, warmup=1
    )

    # 1. zero-perturbation gate against the pinned grid
    baseline_path = Path(__file__).resolve().parents[3] / "BENCH_baseline.json"
    with open(baseline_path, "r", encoding="utf-8") as handle:
        grid = json.load(handle)["grid"]
    pinned = next(
        row
        for row in grid
        if row["id"] == "halo/alpu128/message_size=512_ranks=16_topology=torus3d"
    )
    bundle = Telemetry(
        tracing=False, timeline=True, health=True, lifecycle=True, fabric=True
    )
    observed = run_halo(nic_preset("alpu128"), pinned_params, telemetry=bundle)
    assert observed.latencies_ns == pinned["latencies_ns"], (
        "fabric observability perturbed the pinned point: "
        f"{observed.latencies_ns} != {pinned['latencies_ns']}"
    )

    # 2. telescoping: every wire traversal decomposes exactly
    segments = 0
    for lifecycle in bundle.lifecycle.lifecycles:
        if lifecycle.complete:
            segments += len(wire_segments(lifecycle))
    assert segments > 0, "no wire segments recorded with fabric obs on"

    # 3. the incast scenario must produce an attributed hotspot
    hot_params = dataclasses.replace(
        pinned_params, hotspot_rank=0, hotspot_size=4096
    )
    hot = Telemetry(
        tracing=False, timeline=True, health=True, lifecycle=True, fabric=True
    )
    run_halo(nic_preset("alpu128"), hot_params, telemetry=hot)
    findings = [f.to_obj() for f in hot.health_findings()]
    assert has_finding(findings, "hotspot_link"), findings
    assert has_finding(findings, "link_contention"), findings

    # 4. artifacts: JSON report, HTML heatmap, fabric CLI tables
    report = hot.write_report(
        os.path.join(artifact_dir, "congestion.report.json"),
        benchmark="halo",
        scenario="incast",
        ranks=hot_params.ranks,
        topology=hot_params.topology,
        hotspot_rank=hot_params.hotspot_rank,
    )
    text = render_text(report)
    assert "hottest link" in text, "heatmap report names no hotspot"
    html = render_html(report)
    hottest = max(report["fabric"]["links"], key=lambda l: l["utilization"])
    assert html_mod.escape(hottest["name"]) in html, (
        "HTML heatmap misses the hotspot link"
    )
    with open(
        os.path.join(artifact_dir, "congestion.report.html"),
        "w",
        encoding="utf-8",
    ) as handle:
        handle.write(html)
        handle.write("\n")
    tables = format_fabric(
        report["fabric"],
        budgets=link_budgets(hot.lifecycle.lifecycles),
        title="congestion smoke: halo incast on torus3d",
    )
    with open(
        os.path.join(artifact_dir, "congestion.tables.txt"),
        "w",
        encoding="utf-8",
    ) as handle:
        handle.write(tables)
        handle.write("\n")
    print(tables)
    print(
        f"congestion smoke OK: pinned point bit-identical with full obs on, "
        f"{segments} wire segments telescoped, hotspot {hottest['name']} at "
        f"{hottest['utilization']:.1%} utilization "
        f"({len(findings)} finding(s)); artifacts in {artifact_dir}/"
    )


if __name__ == "__main__":
    import sys

    if "--congestion-smoke" in sys.argv[1:]:
        _congestion_smoke()
    elif "--smoke" in sys.argv[1:]:
        _smoke()
    else:
        print(__doc__)
