"""Classic ping-pong latency.

"The most common (and least useful)" network measure (Section I) -- but a
necessary sanity check, and the zero-length ping-pong is the number the
paper says hash-table schemes regress (Section II).
"""

from __future__ import annotations

import dataclasses
import statistics
from typing import Dict, List, Optional

from repro.mpi.world import MpiWorld, WorldConfig
from repro.nic.nic import NicConfig
from repro.sim.process import now
from repro.sim.units import ps_to_ns


@dataclasses.dataclass(frozen=True)
class PingPongParams:
    """Shape of one ping-pong run."""

    message_size: int = 0
    iterations: int = 20
    warmup: int = 5


@dataclasses.dataclass
class PingPongResult:
    """Half-round-trip latencies, in nanoseconds."""

    latencies_ns: List[float]
    #: metrics snapshot when the run carried a telemetry bundle
    metrics: Optional[Dict[str, object]] = None

    @property
    def mean_ns(self) -> float:
        """Mean half-round-trip latency."""
        return statistics.fmean(self.latencies_ns)

    @property
    def min_ns(self) -> float:
        """Best-case half-round-trip latency."""
        return min(self.latencies_ns)


def run_pingpong(
    nic: NicConfig,
    params: Optional[PingPongParams] = None,
    *,
    telemetry=None,
) -> PingPongResult:
    """Run a 2-rank ping-pong; returns per-iteration half-RTT.

    ``telemetry``: optional :class:`repro.obs.Telemetry`; enables metrics
    and tracing for the run without perturbing its simulated latencies.
    """
    params = params if params is not None else PingPongParams()
    total = params.warmup + params.iterations

    def rank0(mpi):
        yield from mpi.init()
        samples: List[float] = []
        for i in range(total):
            pong = yield from mpi.irecv(source=1, tag=i, size=params.message_size)
            t0 = yield now()
            yield from mpi.send(dest=1, tag=i, size=params.message_size)
            yield from mpi.wait(pong)
            t1 = yield now()
            if i >= params.warmup:
                samples.append(ps_to_ns((t1 - t0) // 2))
        yield from mpi.finalize()
        return samples

    def rank1(mpi):
        yield from mpi.init()
        for i in range(total):
            yield from mpi.recv(source=0, tag=i, size=params.message_size)
            yield from mpi.send(dest=0, tag=i, size=params.message_size)
        yield from mpi.finalize()

    world = MpiWorld(WorldConfig(num_ranks=2, nic=nic), telemetry=telemetry)
    results = world.run({0: rank0, 1: rank1})
    return PingPongResult(
        latencies_ns=results[0],
        metrics=telemetry.snapshot() if telemetry is not None else None,
    )
