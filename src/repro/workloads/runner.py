"""Sweep helpers for the Figure 5/6 curves.

Thin wrappers over the generic grid executor in
:mod:`repro.workloads.sweep`: each ``sweep_*`` helper builds the
matching :class:`~repro.workloads.sweep.SweepSpec` and hands it to
:func:`~repro.workloads.sweep.run_sweep`, so both benchmarks share one
expansion/execution/caching path.  The configuration presets
(:data:`~repro.workloads.sweep.PRESETS` / ``nic_preset``) and the row
dataclasses live in :mod:`repro.workloads.sweep` and are re-exported
here for compatibility.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Dict, Iterable, List, Optional, Sequence

from repro.workloads.sweep import (
    PRESETS,
    PrepostedRow,
    SweepCache,
    SweepSpec,
    UnexpectedRow,
    nic_preset,
    run_sweep,
)

__all__ = [
    "PRESETS",
    "PrepostedRow",
    "SweepCache",
    "SweepSpec",
    "UnexpectedRow",
    "nic_preset",
    "run_sweep",
    "sweep_preposted",
    "sweep_unexpected",
    "rows_by_preset",
    "telemetry_report",
    "dump_telemetry",
    "TELEMETRY_DUMP_VERSION",
]


def sweep_preposted(
    presets: Sequence[str],
    queue_lengths: Iterable[int],
    fractions: Iterable[float],
    *,
    message_size: int = 0,
    iterations: int = 12,
    warmup: int = 3,
    telemetry: bool = False,
    lifecycle: bool = False,
    workers: Optional[int] = None,
    cache: Optional[SweepCache] = None,
) -> List[PrepostedRow]:
    """Run the preposted benchmark over a (preset x length x fraction) grid.

    With ``telemetry=True`` every point runs under a fresh
    :class:`~repro.obs.Telemetry` bundle (metrics only -- the probe stays
    on, tracing stays off to bound memory) and its snapshot rides on the
    row's ``metrics`` field; :func:`dump_telemetry` serializes the lot.
    With ``lifecycle=True`` every point additionally records per-message
    lifecycles and attaches the folded stage-budget report to the row's
    ``attribution`` field.

    ``workers``/``cache`` pass straight through to
    :func:`~repro.workloads.sweep.run_sweep` (process fan-out, memoized
    rows); the defaults keep the classic serial, uncached behaviour.
    """
    spec = SweepSpec.preposted(
        presets,
        queue_lengths,
        fractions,
        message_size=message_size,
        iterations=iterations,
        warmup=warmup,
        telemetry=telemetry,
        lifecycle=lifecycle,
    )
    return run_sweep(spec, workers=workers, cache=cache)


def sweep_unexpected(
    presets: Sequence[str],
    queue_lengths: Iterable[int],
    *,
    message_size: int = 0,
    iterations: int = 12,
    warmup: int = 3,
    telemetry: bool = False,
    lifecycle: bool = False,
    workers: Optional[int] = None,
    cache: Optional[SweepCache] = None,
) -> List[UnexpectedRow]:
    """Run the unexpected benchmark over a (preset x length) grid.

    ``telemetry=True`` attaches a per-point metrics snapshot,
    ``lifecycle=True`` a per-point attribution report, and
    ``workers``/``cache`` fan out / memoize, exactly as in
    :func:`sweep_preposted`.
    """
    spec = SweepSpec.unexpected(
        presets,
        queue_lengths,
        message_size=message_size,
        iterations=iterations,
        warmup=warmup,
        telemetry=telemetry,
        lifecycle=lifecycle,
    )
    return run_sweep(spec, workers=workers, cache=cache)


def rows_by_preset(rows: Iterable) -> Dict[str, List]:
    """Group sweep rows by preset, preserving order."""
    grouped: Dict[str, List] = {}
    for row in rows:
        grouped.setdefault(row.preset, []).append(row)
    return grouped


#: schema version of the sweep telemetry dump; v2 rows carry ``health``
#: (verdict + findings) next to ``metrics``/``attribution``
TELEMETRY_DUMP_VERSION = 2


def telemetry_report(rows: Iterable, **meta: object) -> Dict[str, object]:
    """Bundle sweep rows (with their metrics snapshots) into one report.

    The shape matches what :mod:`repro.analysis.telemetry` loads back:
    ``{"version": 2, "meta": {...}, "rows": [{<row fields>,
    "metrics": {...}, "health": {...}}, ...]}``.
    """
    return {
        "version": TELEMETRY_DUMP_VERSION,
        "meta": dict(meta),
        "rows": [dataclasses.asdict(row) for row in rows],
    }


def dump_telemetry(rows: Iterable, path: str, **meta: object) -> None:
    """Write the sweep's telemetry report as JSON (``--telemetry out.json``).

    Parent directories are created as needed, so nested report paths
    like ``results/2026-08/fig5.json`` work without preparation.
    """
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(telemetry_report(rows, **meta), fh, indent=2, sort_keys=True)
        fh.write("\n")
