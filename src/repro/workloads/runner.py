"""Configuration presets and sweep helpers for the Figure 5/6 curves.

The paper compares three receivers: the baseline NIC (embedded processor
only, Red Storm-like), the same NIC with 128-entry ALPUs, and with
256-entry ALPUs.  ``nic_preset`` builds them; the ``sweep_*`` helpers run
a grid of benchmark points and return rows ready for printing or
plotting.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, Iterable, List, Optional, Sequence

from repro.nic.nic import NicConfig
from repro.obs.telemetry import Telemetry
from repro.workloads.preposted import PrepostedParams, PrepostedResult, run_preposted
from repro.workloads.unexpected import (
    UnexpectedParams,
    UnexpectedResult,
    run_unexpected,
)

#: the three receiver configurations of Figures 5 and 6
PRESETS = ("baseline", "alpu128", "alpu256")


def nic_preset(name: str, *, block_size: int = 16) -> NicConfig:
    """Build one of the paper's three NIC configurations."""
    if name == "baseline":
        return NicConfig.baseline()
    if name == "alpu128":
        return NicConfig.with_alpu(total_cells=128, block_size=block_size)
    if name == "alpu256":
        return NicConfig.with_alpu(total_cells=256, block_size=block_size)
    raise ValueError(f"unknown preset {name!r}; expected one of {PRESETS}")


@dataclasses.dataclass
class PrepostedRow:
    """One point of a Figure 5 surface."""

    preset: str
    queue_length: int
    traverse_fraction: float
    message_size: int
    latency_ns: float
    #: per-run metrics snapshot (sweeps with ``telemetry=True`` only)
    metrics: Optional[Dict[str, object]] = None


def sweep_preposted(
    presets: Sequence[str],
    queue_lengths: Iterable[int],
    fractions: Iterable[float],
    *,
    message_size: int = 0,
    iterations: int = 12,
    warmup: int = 3,
    telemetry: bool = False,
) -> List[PrepostedRow]:
    """Run the preposted benchmark over a (preset x length x fraction) grid.

    With ``telemetry=True`` every point runs under a fresh
    :class:`~repro.obs.Telemetry` bundle (metrics only -- the probe stays
    on, tracing stays off to bound memory) and its snapshot rides on the
    row's ``metrics`` field; :func:`dump_telemetry` serializes the lot.
    """
    rows: List[PrepostedRow] = []
    for preset in presets:
        nic = nic_preset(preset)
        for length in queue_lengths:
            for fraction in fractions:
                bundle = Telemetry(tracing=False) if telemetry else None
                result = run_preposted(
                    nic_preset(preset),
                    PrepostedParams(
                        queue_length=length,
                        traverse_fraction=fraction,
                        message_size=message_size,
                        iterations=iterations,
                        warmup=warmup,
                    ),
                    telemetry=bundle,
                )
                rows.append(
                    PrepostedRow(
                        preset=preset,
                        queue_length=length,
                        traverse_fraction=fraction,
                        message_size=message_size,
                        latency_ns=result.median_ns,
                        metrics=result.metrics,
                    )
                )
        del nic
    return rows


@dataclasses.dataclass
class UnexpectedRow:
    """One point of a Figure 6 curve."""

    preset: str
    queue_length: int
    message_size: int
    latency_ns: float
    #: per-run metrics snapshot (sweeps with ``telemetry=True`` only)
    metrics: Optional[Dict[str, object]] = None


def sweep_unexpected(
    presets: Sequence[str],
    queue_lengths: Iterable[int],
    *,
    message_size: int = 0,
    iterations: int = 12,
    warmup: int = 3,
    telemetry: bool = False,
) -> List[UnexpectedRow]:
    """Run the unexpected benchmark over a (preset x length) grid.

    ``telemetry=True`` attaches a per-point metrics snapshot, exactly as
    in :func:`sweep_preposted`.
    """
    rows: List[UnexpectedRow] = []
    for preset in presets:
        for length in queue_lengths:
            bundle = Telemetry(tracing=False) if telemetry else None
            result = run_unexpected(
                nic_preset(preset),
                UnexpectedParams(
                    queue_length=length,
                    message_size=message_size,
                    iterations=iterations,
                    warmup=warmup,
                ),
                telemetry=bundle,
            )
            rows.append(
                UnexpectedRow(
                    preset=preset,
                    queue_length=length,
                    message_size=message_size,
                    latency_ns=result.median_ns,
                    metrics=result.metrics,
                )
            )
    return rows


def rows_by_preset(rows: Iterable) -> Dict[str, List]:
    """Group sweep rows by preset, preserving order."""
    grouped: Dict[str, List] = {}
    for row in rows:
        grouped.setdefault(row.preset, []).append(row)
    return grouped


def telemetry_report(rows: Iterable, **meta: object) -> Dict[str, object]:
    """Bundle sweep rows (with their metrics snapshots) into one report.

    The shape matches what :mod:`repro.analysis.telemetry` loads back:
    ``{"meta": {...}, "rows": [{<row fields>, "metrics": {...}}, ...]}``.
    """
    return {
        "meta": dict(meta),
        "rows": [dataclasses.asdict(row) for row in rows],
    }


def dump_telemetry(rows: Iterable, path: str, **meta: object) -> None:
    """Write the sweep's telemetry report as JSON (``--telemetry out.json``)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(telemetry_report(rows, **meta), fh, indent=2, sort_keys=True)
        fh.write("\n")
