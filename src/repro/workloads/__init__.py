"""The benchmarks of Section V-A and the harness that runs them.

* :mod:`repro.workloads.pingpong` -- classic ping-pong latency/bandwidth
  (sanity check and quickstart example).
* :mod:`repro.workloads.preposted` -- the posted-receive-queue benchmark
  of [10]: three degrees of freedom (queue length, portion of the queue
  traversed, message size).  Regenerates Figure 5.
* :mod:`repro.workloads.unexpected` -- the unexpected-message-queue
  benchmark of [10]: queue length and message size, with the time to post
  the measuring receive *included* in the latency.  Regenerates Figure 6.
* :mod:`repro.workloads.halo` -- many-rank nearest-neighbour halo
  exchange plus a per-iteration allreduce, the workload that exercises
  the routed topologies (ring/mesh2d/torus3d) beyond two ranks.
* :mod:`repro.workloads.sweep` -- the generic grid-sweep executor:
  declarative :class:`~repro.workloads.sweep.SweepSpec` grids, optional
  process fan-out, content-hash result caching, plus the configuration
  presets (baseline NIC, 128-entry ALPU, 256-entry ALPU).
* :mod:`repro.workloads.runner` -- the classic ``sweep_preposted`` /
  ``sweep_unexpected`` helpers, now thin wrappers over the executor.
"""

from repro.workloads.halo import HaloParams, HaloResult, run_halo
from repro.workloads.pingpong import PingPongParams, run_pingpong
from repro.workloads.preposted import PrepostedParams, PrepostedResult, run_preposted
from repro.workloads.unexpected import (
    UnexpectedParams,
    UnexpectedResult,
    run_unexpected,
)
from repro.workloads.sweep import (
    nic_preset,
    PRESETS,
    run_sweep,
    SweepCache,
    SweepSpec,
)
from repro.workloads.runner import (
    dump_telemetry,
    sweep_preposted,
    sweep_unexpected,
    telemetry_report,
)

__all__ = [
    "HaloParams",
    "HaloResult",
    "run_halo",
    "PingPongParams",
    "run_pingpong",
    "PrepostedParams",
    "PrepostedResult",
    "run_preposted",
    "UnexpectedParams",
    "UnexpectedResult",
    "run_unexpected",
    "dump_telemetry",
    "nic_preset",
    "PRESETS",
    "run_sweep",
    "SweepCache",
    "SweepSpec",
    "sweep_preposted",
    "sweep_unexpected",
    "telemetry_report",
]
