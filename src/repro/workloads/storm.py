"""The master-worker wildcard storm: a million-message queue stressor.

One master (rank 0) services a window of wildcard receives
(``MPI_ANY_SOURCE``, one service tag) while every worker rank floods it
with small eager messages as fast as its NIC completes sends.  This is
the queue-discipline torture test from the network-processor literature:

* the master's posted receives wildcard the source, so under a
  ``"sharded"`` discipline they live in the wildcard shard and every
  receive posting falls back to a full unexpected-queue walk -- the
  *depth of that queue* is the whole game;
* without admission control the unexpected queue grows with the offered
  load and every posting pays O(depth), the quadratic cliff;
* with ``qdisc.max_unexpected`` set, arriving headers are refused at the
  wire once the queue (plus the reorder buffer) sits at the threshold,
  the refusals ride the reliability layer's retransmission machinery
  (``"drop"``: sender timeout; ``"nack"``: NACK_BUSY backoff), and the
  per-message cost stays O(threshold) -- the storm completes a million
  messages with bounded queues and the ``unexpected_admission_pressure``
  watchdog firing.

The measured sample is the *receive sojourn*: posting-to-completion time
of the master's wildcard receives (every ``sample_every``-th), which
includes the unexpected-queue search exactly like the Section V-A
benchmark includes posting time.

Smoke-run a scaled-down storm under sharded + admission::

    PYTHONPATH=src python -m repro.workloads.storm --smoke
"""

from __future__ import annotations

import dataclasses
import statistics
from collections import deque
from typing import Dict, List, Optional

from repro.core.match import ANY_SOURCE
from repro.mpi.world import MpiWorld, WorldConfig
from repro.network.fabric import FabricConfig
from repro.network.faults import FaultConfig
from repro.nic.nic import NicConfig
from repro.sim.process import delay, now
from repro.sim.units import ns, ps_to_ns

#: the one service tag every worker sends on
_STORM_TAG = 7


@dataclasses.dataclass(frozen=True)
class StormParams:
    """One storm point."""

    #: flooding worker ranks (world size is ``workers + 1``)
    workers: int = 4
    messages_per_worker: int = 256
    #: master's outstanding wildcard receives
    window: int = 16
    #: worker-side flood burst: isends in flight before a waitall
    burst: int = 64
    #: master-side work per serviced message; with enough workers this
    #: pushes offered load past the service rate and the unexpected
    #: queue grows -- the overload regime the disciplines are for
    service_ns: float = 0.0
    #: apply ``service_ns`` only to the first N serviced messages
    #: (0 = all of them).  Eager sends complete locally, so workers
    #: never self-throttle: a *sustained* overload parks the whole
    #: remaining backlog in the reliability layer and the NACK_BUSY
    #: retry traffic grows quadratically with the message count.  A
    #: bounded hot phase keeps the flood (and the watchdog evidence)
    #: while the long tail drains at wire rate -- that is what makes a
    #: million-message storm simulable.
    hot_messages: int = 0
    #: per-message pacing delay at each worker; the sustained aggregate
    #: offered load is ``workers / worker_gap_ns`` messages per ns
    worker_gap_ns: float = 0.0
    message_size: int = 0
    #: sampling stride for the receive-sojourn latencies
    sample_every: int = 16
    #: simulated-time budget (0 = sized automatically from the load)
    deadline_us: float = 0.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.messages_per_worker < 1:
            raise ValueError("messages_per_worker must be >= 1")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.service_ns < 0:
            raise ValueError("service_ns must be >= 0")
        if self.hot_messages < 0:
            raise ValueError("hot_messages must be >= 0")
        if self.worker_gap_ns < 0:
            raise ValueError("worker_gap_ns must be >= 0")
        if self.message_size < 0 or self.sample_every < 1 or self.deadline_us < 0:
            raise ValueError(f"invalid parameters: {self}")

    @property
    def total_messages(self) -> int:
        return self.workers * self.messages_per_worker

    @property
    def effective_deadline_us(self) -> float:
        if self.deadline_us:
            return self.deadline_us
        # generous: a serialized receiver clears a small eager message in
        # a few microseconds even with admission backoff in the tail
        hot = self.hot_messages or self.total_messages
        slack_us = (
            hot * self.service_ns + self.messages_per_worker * self.worker_gap_ns
        ) / 1_000.0
        return max(1_000_000.0, self.total_messages * 100.0 + slack_us)


@dataclasses.dataclass
class StormResult:
    """Samples and tallies for one storm point."""

    params: StormParams
    #: sampled posting-to-completion sojourns of the master's receives
    latencies_ns: List[float]
    total_messages: int
    #: simulated span of the service loop (first post to last completion)
    duration_ns: float
    #: master-side unexpected-queue high-water mark
    max_unexpected_depth: int
    #: admission refusals at the master NIC (0 without admission control)
    refused: int
    #: retransmissions across all NICs (0 without the reliability layer)
    retransmits: int
    metrics: Optional[Dict[str, object]] = None

    @property
    def mean_ns(self) -> float:
        return statistics.fmean(self.latencies_ns)

    @property
    def median_ns(self) -> float:
        return statistics.median(self.latencies_ns)

    @property
    def messages_per_us(self) -> float:
        """Simulated service throughput of the master."""
        return self.total_messages / (self.duration_ns / 1_000.0)


def run_storm(
    nic: NicConfig,
    params: StormParams,
    *,
    telemetry=None,
    faults: Optional[FaultConfig] = None,
    topology: Optional[str] = None,
) -> StormResult:
    """Run one storm point on ``workers + 1`` ranks.

    ``telemetry`` / ``faults`` / ``topology``: as in the other workloads
    (see :func:`repro.workloads.unexpected.run_unexpected`).
    """

    total = params.total_messages
    span = {"start": 0, "end": 0}

    def master(mpi):
        yield from mpi.init()
        span["start"] = yield now()
        outstanding = deque()
        posted = 0
        prime = min(params.window, total)
        for _ in range(prime):
            request = yield from mpi.irecv(
                ANY_SOURCE, _STORM_TAG, params.message_size
            )
            outstanding.append(request)
            posted += 1
        samples: List[float] = []
        completed = 0
        service_ps = ns(params.service_ns)
        hot_limit = params.hot_messages or total
        while outstanding:
            request = outstanding.popleft()
            yield from mpi.wait(request)
            completed += 1
            if service_ps and completed <= hot_limit:
                yield delay(service_ps)
            if completed % params.sample_every == 0:
                samples.append(
                    ps_to_ns(request.completed_at - request.posted_at)
                )
            if mpi.lifecycle.enabled and completed == total:
                mpi.lifecycle.label_request(
                    mpi.rank, request.req_id, "last_storm_recv", timed=True
                )
            if posted < total:
                request = yield from mpi.irecv(
                    ANY_SOURCE, _STORM_TAG, params.message_size
                )
                outstanding.append(request)
                posted += 1
        span["end"] = yield now()
        yield from mpi.finalize()
        return samples

    def worker(mpi):
        yield from mpi.init()
        remaining = params.messages_per_worker
        gap_ps = ns(params.worker_gap_ns)
        while remaining:
            chunk = min(params.burst, remaining)
            sends = []
            for _ in range(chunk):
                if gap_ps:
                    yield delay(gap_ps)
                request = yield from mpi.isend(0, _STORM_TAG, params.message_size)
                sends.append(request)
            # eager sends complete locally (once the payload is fetched
            # and injected), so this waitall bounds host descriptors,
            # not wire occupancy -- pacing is what bounds the backlog
            yield from mpi.waitall(sends)
            remaining -= chunk
        yield from mpi.finalize()
        return None

    world = MpiWorld(
        WorldConfig(
            num_ranks=params.workers + 1,
            nic=nic,
            fabric=FabricConfig.with_topology(topology),
            faults=faults,
        ),
        telemetry=telemetry,
    )
    programs = {0: master}
    for rank in range(1, params.workers + 1):
        programs[rank] = worker
    results = world.run(programs, deadline_us=params.effective_deadline_us)
    master_nic = world.nics[0]
    return StormResult(
        params=params,
        latencies_ns=results[0],
        total_messages=total,
        duration_ns=ps_to_ns(span["end"] - span["start"]),
        max_unexpected_depth=master_nic.unexpected_q.max_length,
        refused=(
            master_nic.admission.refused
            if master_nic.admission is not None
            else 0
        ),
        retransmits=sum(
            n.reliability.retransmits
            for n in world.nics
            if n.reliability is not None
        ),
        metrics=telemetry.snapshot() if telemetry is not None else None,
    )


def _smoke() -> None:
    """A scaled-down storm under sharded + admission (the CI tier-1 step).

    Asserts the three tentpole behaviours end to end: the run completes,
    the unexpected queue stays bounded at the admission threshold, and
    the ``unexpected_admission_pressure`` watchdog fires.
    """
    import dataclasses as dc

    from repro.nic.qdisc import QdiscConfig
    from repro.nic.reliability import ReliabilityConfig
    from repro.obs.health import has_finding
    from repro.obs.telemetry import Telemetry

    params = StormParams(
        workers=4, messages_per_worker=200, window=8, service_ns=400.0
    )
    threshold = 32
    nic = dc.replace(
        NicConfig.baseline(),
        qdisc=QdiscConfig(
            discipline="sharded",
            max_unexpected=threshold,
            admission_policy="nack",
            host_priority=True,
        ),
        reliability=ReliabilityConfig(enabled=True),
    )
    telemetry = Telemetry(tracing=False, timeline=True, health=True)
    result = run_storm(nic, params, telemetry=telemetry)
    assert result.total_messages == params.total_messages
    # the reorder buffer shares the occupancy budget, so the queue itself
    # may only overshoot by what was already in flight inside one window
    assert result.max_unexpected_depth <= 2 * threshold, (
        result.max_unexpected_depth
    )
    assert result.refused > 0, "flood never hit the admission threshold"
    findings = telemetry.health_findings()
    assert has_finding(findings, "unexpected_admission_pressure"), findings
    print(
        f"storm smoke OK: {result.total_messages} msgs in "
        f"{result.duration_ns / 1000:.1f} us, median sojourn "
        f"{result.median_ns:.0f} ns, max depth {result.max_unexpected_depth}, "
        f"{result.refused} refused (admission watchdog fired)"
    )


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv[1:]:
        _smoke()
    else:
        print(__doc__)
