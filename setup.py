"""Setup shim.

Kept alongside pyproject.toml so that ``pip install -e .`` works in offline
environments whose setuptools predates self-contained PEP 660 editable
installs (older setuptools needs the ``wheel`` package, which may not be
available without network access).  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
