"""Tests for the host-staged collectives (barrier / bcast / allreduce).

Correctness across rank counts (powers of two and not), every topology
preset, and the acceptance-criteria determinism runs: the same
configuration produces the same telemetry document, run after run.
"""

import dataclasses

import pytest

from repro.mpi.api import MpiError
from repro.mpi.world import MpiWorld, WorldConfig
from repro.network.fabric import FabricConfig
from repro.network.faults import FaultConfig
from repro.network.topology import TOPOLOGY_PRESETS, TopologyConfig
from repro.nic.nic import NicConfig
from repro.nic.reliability import ReliabilityConfig
from repro.obs.telemetry import Telemetry


def make_world(num_ranks, preset="crossbar", *, telemetry=None, faults=None, nic=None):
    return MpiWorld(
        WorldConfig(
            num_ranks=num_ranks,
            nic=nic if nic is not None else NicConfig.with_alpu(total_cells=128),
            fabric=FabricConfig(topology=TopologyConfig(preset=preset)),
            faults=faults,
        ),
        telemetry=telemetry,
    )


def run_collectives(world, num_ranks, root=0):
    """Every rank: barrier, bcast, two allreduces, barrier."""

    def program(mpi):
        yield from mpi.init()
        yield from mpi.barrier()
        token = yield from mpi.bcast(
            ("payload", root) if mpi.rank == root else None, root=root, size=64
        )
        total = yield from mpi.allreduce(mpi.rank + 1, op="sum", size=8)
        top = yield from mpi.allreduce(mpi.rank * 3, op="max", size=8)
        yield from mpi.barrier()
        yield from mpi.finalize()
        return token, total, top

    return world.run({rank: program for rank in range(num_ranks)})


@pytest.mark.parametrize("num_ranks", [2, 3, 5, 8, 13, 16])
def test_collectives_correct_across_rank_counts(num_ranks):
    world = make_world(num_ranks)
    results = run_collectives(world, num_ranks)
    expected = (
        ("payload", 0),
        num_ranks * (num_ranks + 1) // 2,
        (num_ranks - 1) * 3,
    )
    assert all(value == expected for value in results.values())
    assert not world.collective_board


@pytest.mark.parametrize("preset", TOPOLOGY_PRESETS)
def test_collectives_correct_on_every_preset(preset):
    num_ranks = 12
    world = make_world(num_ranks, preset)
    results = run_collectives(world, num_ranks, root=5)
    assert all(value[0] == ("payload", 5) for value in results.values())
    assert not world.collective_board


def test_bcast_from_every_root():
    num_ranks = 6
    for root in range(num_ranks):
        world = make_world(num_ranks)

        def program(mpi, root=root):
            yield from mpi.init()
            value = yield from mpi.bcast(
                root * 100 if mpi.rank == root else None, root=root
            )
            yield from mpi.finalize()
            return value

        results = world.run({r: program for r in range(num_ranks)})
        assert set(results.values()) == {root * 100}


def test_allreduce_all_operators():
    num_ranks = 5
    cases = {"sum": 15, "prod": 120, "max": 5, "min": 1}
    for op, expected in cases.items():
        world = make_world(num_ranks)

        def program(mpi, op=op):
            yield from mpi.init()
            value = yield from mpi.allreduce(mpi.rank + 1, op=op)
            yield from mpi.finalize()
            return value

        results = world.run({r: program for r in range(num_ranks)})
        assert set(results.values()) == {expected}, op


def test_unknown_reduction_rejected():
    world = make_world(2)

    def program(mpi):
        yield from mpi.init()
        with pytest.raises(MpiError, match="unknown reduction"):
            yield from mpi.allreduce(1, op="xor")
        yield from mpi.finalize()

    world.run({0: program, 1: program})


def test_back_to_back_collectives_do_not_cross_match():
    """Pipelined collectives with no separating barrier: the per-
    collective tag blocks keep rounds of consecutive operations apart."""
    num_ranks = 4
    world = make_world(num_ranks)

    def program(mpi):
        yield from mpi.init()
        values = []
        for i in range(10):
            values.append((yield from mpi.allreduce(mpi.rank + i, op="sum")))
        yield from mpi.finalize()
        return values

    results = world.run({r: program for r in range(num_ranks)})
    base = sum(range(num_ranks))
    expected = [base + i * num_ranks for i in range(10)]
    assert all(value == expected for value in results.values())


def telemetry_document(num_ranks, preset, faults=None):
    """One instrumented 32-rank collective run -> its report document."""
    bundle = Telemetry(tracing=False, timeline=True, health=True)
    nic = NicConfig.with_alpu(total_cells=128)
    if faults is not None:
        nic = dataclasses.replace(
            nic, reliability=ReliabilityConfig(enabled=True)
        )
    world = make_world(
        num_ranks, preset, telemetry=bundle, faults=faults, nic=nic
    )
    results = run_collectives(world, num_ranks)
    document = bundle.report(benchmark="collectives", preset=preset)
    return results, document


def test_32_rank_torus_collectives_deterministic():
    """Same configuration, fresh world: byte-identical telemetry."""
    first_results, first_doc = telemetry_document(32, "torus3d")
    second_results, second_doc = telemetry_document(32, "torus3d")
    assert first_results == second_results
    assert first_doc == second_doc
    assert first_results[0][1] == 32 * 33 // 2


def test_32_rank_torus_collectives_under_faults():
    """Seeded faults + reliability: same answers, deterministic document,
    and the zero-fault control stays clean."""
    faults = FaultConfig(seed=11, drop_rate=0.01, corrupt_rate=0.005)
    f_results, f_doc = telemetry_document(32, "torus3d", faults=faults)
    again_results, again_doc = telemetry_document(32, "torus3d", faults=faults)
    assert f_results == again_results
    assert f_doc == again_doc
    clean_results, clean_doc = telemetry_document(32, "torus3d")
    assert clean_results == f_results  # recovery is invisible to MPI
    assert clean_doc["health"]["verdict"] == "healthy"
