"""Tests for the footnote-1 extension: several ranks sharing one NIC.

"The prototype design only supports hardware acceleration for a single
process, but extending it to support a limited number of processes is
straightforward."  The extension folds each local process id into the
context field of the match word, so co-located processes share the NIC's
queues and ALPUs without cross-matching.
"""

import pytest

from repro.core.match import ANY_SOURCE, ANY_TAG
from repro.mpi.world import MpiWorld, WorldConfig
from repro.network.fabric import Fabric
from repro.nic.nic import Nic, NicConfig
from repro.sim.engine import Engine
from repro.sim.fifo import Fifo

PRESETS = [NicConfig.baseline(), NicConfig.with_alpu(64, 8)]
PRESET_IDS = ["baseline", "alpu64"]


# ----------------------------------------------------------- unit level
def shared_nic(rpn=2):
    import dataclasses

    engine = Engine()
    fabric = Fabric(engine, 1)
    config = dataclasses.replace(NicConfig.baseline(), ranks_per_node=rpn)
    return Nic(engine, 0, fabric, Fifo(), config)


def test_rank_to_node_and_lproc_mapping():
    nic = shared_nic(rpn=2)
    assert nic.node_of(0) == 0 and nic.lproc_of(0) == 0
    assert nic.node_of(1) == 0 and nic.lproc_of(1) == 1
    assert nic.node_of(2) == 1 and nic.lproc_of(2) == 0
    assert nic.node_of(5) == 2 and nic.lproc_of(5) == 1


def test_effective_context_isolates_colocated_processes():
    nic = shared_nic(rpn=2)
    same_context = 1
    a = nic.effective_context(same_context, owner_rank=0)
    b = nic.effective_context(same_context, owner_rank=1)
    assert a != b
    # single-process NICs keep the identity fold
    single = shared_nic(rpn=1)
    assert single.effective_context(same_context, owner_rank=0) == same_context


def test_effective_context_rejects_overflowing_contexts():
    nic = shared_nic(rpn=2)
    with pytest.raises(ValueError, match="reserved"):
        nic.effective_context(1 << Nic.PID_CONTEXT_SHIFT, owner_rank=0)


def test_attach_completion_fifo_validates_lproc():
    nic = shared_nic(rpn=2)
    nic.attach_completion_fifo(1, Fifo())
    with pytest.raises(ValueError):
        nic.attach_completion_fifo(0, Fifo())  # lproc 0 attaches at build
    with pytest.raises(ValueError):
        nic.attach_completion_fifo(2, Fifo())  # beyond ranks_per_node


def test_world_validates_rank_node_fill():
    with pytest.raises(ValueError, match="do not fill"):
        MpiWorld(WorldConfig(num_ranks=3, ranks_per_node=2))


# ------------------------------------------------------------ end to end
@pytest.mark.parametrize("nic", PRESETS, ids=PRESET_IDS)
def test_colocated_ranks_do_not_cross_match(nic):
    """Ranks 2 and 3 share a node; same-tag messages to each must land at
    the right one even though they sit in the same queues/ALPU."""

    def sender(mpi):
        yield from mpi.init()
        if mpi.rank == 0:
            yield from mpi.send(dest=2, tag=5, size=64)
            yield from mpi.send(dest=3, tag=5, size=128)
        yield from mpi.finalize()

    def receiver(mpi):
        yield from mpi.init()
        request = yield from mpi.recv(source=0, tag=5, size=128)
        yield from mpi.finalize()
        return request.status.count

    def idle(mpi):
        yield from mpi.init()
        yield from mpi.finalize()

    world = MpiWorld(WorldConfig(num_ranks=4, ranks_per_node=2, nic=nic))
    results = world.run({0: sender, 1: idle, 2: receiver, 3: receiver})
    assert results[2] == 64
    assert results[3] == 128
    assert len(world.nics) == 2


@pytest.mark.parametrize("nic", PRESETS, ids=PRESET_IDS)
def test_same_node_communication(nic):
    """Loopback: co-located ranks exchanging through their shared NIC."""

    def left(mpi):
        yield from mpi.init()
        yield from mpi.send(dest=1, tag=1, size=64)
        request = yield from mpi.recv(source=1, tag=2, size=64)
        yield from mpi.finalize()
        return request.done

    def right(mpi):
        yield from mpi.init()
        yield from mpi.recv(source=0, tag=1, size=64)
        yield from mpi.send(dest=0, tag=2, size=64)
        yield from mpi.finalize()

    world = MpiWorld(WorldConfig(num_ranks=2, ranks_per_node=2, nic=nic))
    results = world.run({0: left, 1: right})
    assert results[0] is True
    assert len(world.nics) == 1  # one node, one shared NIC


@pytest.mark.parametrize("nic", PRESETS, ids=PRESET_IDS)
def test_wildcards_respect_process_boundaries(nic):
    """An ANY_SOURCE/ANY_TAG receive must only take its own messages."""

    def sender(mpi):
        yield from mpi.init()
        yield from mpi.send(dest=2, tag=7, size=0)
        yield from mpi.send(dest=3, tag=8, size=0)
        yield from mpi.finalize()

    def collector(mpi):
        yield from mpi.init()
        request = yield from mpi.recv(source=ANY_SOURCE, tag=ANY_TAG, size=0)
        yield from mpi.finalize()
        return request.status.tag

    def idle(mpi):
        yield from mpi.init()
        yield from mpi.finalize()

    world = MpiWorld(WorldConfig(num_ranks=4, ranks_per_node=2, nic=nic))
    results = world.run({0: sender, 1: idle, 2: collector, 3: collector})
    assert results[2] == 7
    assert results[3] == 8


def test_four_rank_barrier_on_shared_nics():
    def program(mpi):
        yield from mpi.init()
        for _ in range(3):
            yield from mpi.barrier()
        yield from mpi.finalize()
        return True

    world = MpiWorld(WorldConfig(num_ranks=4, ranks_per_node=2))
    results = world.run({r: program for r in range(4)})
    assert all(results.values())
