"""Tests for system assembly and the job harness."""

import pytest

from repro.mpi.world import MpiWorld, WorldConfig
from repro.nic.nic import NicConfig


def test_world_builds_one_node_per_rank():
    world = MpiWorld(WorldConfig(num_ranks=3))
    assert len(world.nics) == 3
    assert len(world.hosts) == 3
    assert world.comm_world.size == 3


def test_missing_program_rejected():
    world = MpiWorld(WorldConfig(num_ranks=2))
    with pytest.raises(ValueError, match="ranks \\[1\\]"):
        world.run({0: lambda mpi: iter(())})


def test_deadline_detects_stalls():
    def stuck(mpi):
        yield from mpi.init()
        yield from mpi.recv(source=1, tag=0, size=0)  # never sent

    def idle(mpi):
        yield from mpi.init()
        yield from mpi.finalize()

    world = MpiWorld(WorldConfig(num_ranks=2))
    with pytest.raises(RuntimeError, match="deadlock"):
        world.run({0: stuck, 1: idle}, deadline_us=500.0)


def test_return_values_collected_per_rank():
    def program(mpi):
        yield from mpi.init()
        yield from mpi.finalize()
        return mpi.rank * 10

    world = MpiWorld(WorldConfig(num_ranks=2))
    assert world.run({0: program, 1: program}) == {0: 0, 1: 10}


def test_per_rank_nic_overrides():
    config = WorldConfig(
        num_ranks=2,
        nic=NicConfig.baseline(),
        nic_overrides={1: NicConfig.with_alpu(32, 8)},
    )
    world = MpiWorld(config)
    assert world.nics[0].posted_device is None
    assert world.nics[1].posted_device is not None
    assert world.nics[1].posted_device.alpu.capacity == 32


def test_simulated_time_advances():
    def program(mpi):
        yield from mpi.init()
        if mpi.rank == 0:
            yield from mpi.send(dest=1, tag=0, size=0)
        else:
            yield from mpi.recv(source=0, tag=0, size=0)
        yield from mpi.finalize()

    world = MpiWorld(WorldConfig(num_ranks=2))
    world.run({0: program, 1: program})
    assert world.now_ps > 200_000  # at least the wire latency


def test_engine_stops_at_last_program_not_at_deadline():
    def program(mpi):
        yield from mpi.init()
        yield from mpi.finalize()

    world = MpiWorld(WorldConfig(num_ranks=2))
    world.run({0: program, 1: program}, deadline_us=1_000_000)
    # the clock must reflect program completion, not the huge deadline
    assert world.now_ps < 1_000_000_000
