"""End-to-end MPI matching semantics, differentially against the oracle.

These tests run full simulations (hosts, NICs, wire) and compare the
receiver NIC's observed pairings -- (recv request, sender message) -- with
the pure :class:`MatchingOracle` fed the same traffic in the same order.
The same traffic runs on the baseline NIC and on ALPU NICs; all three
must pair identically.
"""

import random

import pytest

from repro.core.match import ANY_SOURCE, ANY_TAG
from repro.mpi.world import MpiWorld, WorldConfig
from repro.nic.nic import NicConfig

from repro.nic.firmware import FirmwareConfig

PRESETS = [
    NicConfig.baseline(),
    NicConfig.with_alpu(total_cells=16, block_size=4),
    NicConfig.with_alpu(total_cells=64, block_size=8),
    NicConfig(firmware=FirmwareConfig(matching="hash")),
]
PRESET_IDS = ["baseline", "alpu16", "alpu64", "hash"]


def run_pair(sender_program, receiver_program, nic):
    world = MpiWorld(WorldConfig(num_ranks=2, nic=nic))
    results = world.run(
        {0: sender_program, 1: receiver_program}, deadline_us=200_000
    )
    return world, results


@pytest.mark.parametrize("nic", PRESETS, ids=PRESET_IDS)
def test_same_tag_messages_pair_in_send_order(nic):
    """The MPI ordering constraint: same (source, context) messages match
    same-signature receives in send order."""
    count = 8

    def sender(mpi):
        yield from mpi.init()
        for _ in range(count):
            yield from mpi.send(dest=1, tag=5, size=0)
        yield from mpi.finalize()

    def receiver(mpi):
        yield from mpi.init()
        requests = []
        for _ in range(count):
            req = yield from mpi.irecv(source=0, tag=5, size=0)
            requests.append(req)
        yield from mpi.waitall(requests)
        yield from mpi.finalize()
        return [r.req_id for r in requests]

    world, results = run_pair(sender, receiver, nic)
    pairings = world.nics[1].firmware.pairings
    recv_ids = [recv_id for recv_id, _ in pairings]
    send_ids = [send_id for _, send_id in pairings]
    # receives consumed oldest-first, messages in send (uid) order
    assert recv_ids == sorted(recv_ids)
    assert send_ids == sorted(send_ids)


@pytest.mark.parametrize("nic", PRESETS, ids=PRESET_IDS)
def test_any_source_receive_beats_newer_exact_receive(nic):
    """Ordering beats specificity -- the property that breaks LPM-style
    hardware and that the ALPU must preserve (Section II)."""

    def sender(mpi):
        yield from mpi.init()
        yield from mpi.recv(source=1, tag=100, size=0)  # "receives posted"
        yield from mpi.send(dest=1, tag=7, size=0)
        yield from mpi.recv(source=1, tag=101, size=0)
        yield from mpi.send(dest=1, tag=7, size=0)
        yield from mpi.finalize()

    def receiver(mpi):
        yield from mpi.init()
        wildcard = yield from mpi.irecv(source=ANY_SOURCE, tag=7, size=0)
        exact = yield from mpi.irecv(source=0, tag=7, size=0)
        yield from mpi.send(dest=0, tag=100, size=0)  # release message 1
        yield from mpi.wait(wildcard)
        # the ANY_SOURCE receive was older, so it -- not the more-specific
        # exact receive -- must have taken the first message
        first_message_took_exact = exact.done
        yield from mpi.send(dest=0, tag=101, size=0)  # release message 2
        yield from mpi.wait(exact)
        yield from mpi.finalize()
        return first_message_took_exact

    _, results = run_pair(sender, receiver, nic)
    assert results[1] is False


@pytest.mark.parametrize("nic", PRESETS, ids=PRESET_IDS)
def test_random_traffic_pairs_in_strict_arrival_order(nic):
    """Random all-wildcard receives against random-tag messages.

    Every receive accepts every message (ANY_TAG with a single sender),
    so MPI's ordering constraint forces an order-preserving bijection:
    the i-th posted receive must take the i-th sent message, regardless
    of how posting and arrival interleave -- on the baseline *and* both
    ALPU NICs, even when messages land unexpected mid-posting.
    """
    rng = random.Random(1234)
    sends = [rng.randrange(3) for _ in range(14)]
    recv_sources = [rng.choice([ANY_SOURCE, 0]) for _ in range(14)]

    def sender(mpi):
        yield from mpi.init()
        for tag in sends:
            yield from mpi.send(dest=1, tag=tag, size=0)
        yield from mpi.finalize()

    def receiver(mpi):
        yield from mpi.init()
        requests = []
        for source in recv_sources:
            req = yield from mpi.irecv(source=source, tag=ANY_TAG, size=0)
            requests.append(req)
        yield from mpi.waitall(requests)
        yield from mpi.finalize()
        return [r.req_id for r in requests]

    world, results = run_pair(sender, receiver, nic)
    recv_ids = results[1]
    pairings = dict(world.nics[1].firmware.pairings)
    assert len(pairings) == len(sends)
    paired_send_uids = [pairings[r] for r in recv_ids]
    # order-preserving: i-th receive <- i-th message
    assert paired_send_uids == sorted(paired_send_uids)


@pytest.mark.parametrize("nic", PRESETS, ids=PRESET_IDS)
def test_context_separation_via_comm_dup(nic):
    """Same tag on a duplicated communicator must not cross-match.

    Communicator duplication is collective in MPI: both ranks must agree
    on the new context id, so the test builds one shared communicator.
    """
    from repro.mpi.communicator import Communicator

    duplicated = Communicator(context=99, size=2)

    def sender(mpi):
        yield from mpi.init()
        # send on the duplicate first, then on the world
        yield from mpi.send(dest=1, tag=9, size=0, comm=duplicated)
        yield from mpi.send(dest=1, tag=9, size=0)
        yield from mpi.finalize()

    def receiver(mpi):
        yield from mpi.init()
        world_req = yield from mpi.irecv(source=0, tag=9, size=0)
        dup_req = yield from mpi.irecv(source=0, tag=9, size=0, comm=duplicated)
        yield from mpi.waitall([world_req, dup_req])
        yield from mpi.finalize()
        return (world_req.req_id, dup_req.req_id)

    world, results = run_pair(sender, receiver, nic)
    world_req_id, dup_req_id = results[1]
    pairings = dict(world.nics[1].firmware.pairings)
    assert len(pairings) == 2
    # the dup-context message was sent first (lower send uid) and must
    # have paired with the dup-context receive, not the world receive --
    # even though the world receive was posted first
    assert pairings[dup_req_id] < pairings[world_req_id]


def test_identical_pairings_across_all_presets():
    """The acid test: baseline and ALPU NICs pair identically.

    The receive tags mirror the send tags in order (so the trace always
    completes), with wildcards sprinkled in positions where they must
    take the same message an exact receive would.
    """
    send_tags = [0, 1, 2, 0, 1, 2, 0, 1, 2, 0]

    def sender(mpi):
        yield from mpi.init()
        for tag in send_tags:
            yield from mpi.send(dest=1, tag=tag, size=0)
        yield from mpi.finalize()

    def receiver(mpi):
        yield from mpi.init()
        requests = []
        for i, tag in enumerate(send_tags):
            source = ANY_SOURCE if i % 4 == 0 else 0
            recv_tag = ANY_TAG if i % 5 == 0 else tag
            req = yield from mpi.irecv(source=source, tag=recv_tag, size=0)
            requests.append(req)
        yield from mpi.waitall(requests)
        yield from mpi.finalize()

    observed = []
    for nic in PRESETS:
        world, _ = run_pair(sender, receiver, nic)
        # normalize uids to ordinals (raw uids differ across runs)
        pairs = world.nics[1].firmware.pairings
        order = {send: i for i, send in enumerate(sorted({s for _, s in pairs}))}
        recv_order = {r: i for i, r in enumerate(sorted({r for r, _ in pairs}))}
        observed.append(sorted((recv_order[r], order[s]) for r, s in pairs))
    assert all(observation == observed[0] for observation in observed)
