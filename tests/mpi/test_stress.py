"""Stress: four ranks, mixed traffic, all matching engines.

A small but adversarial workload -- all-to-all bursts with mixed tags,
wildcard collectors, barriers between phases, and an eager/rendezvous
size mix -- run to completion on every NIC configuration.  Completion
itself is the assertion (no lost message, no mispairing deadlock), plus
conservation checks on the queues.
"""

import pytest

from repro.core.match import ANY_SOURCE, ANY_TAG
from repro.mpi.world import MpiWorld, WorldConfig
from repro.nic.firmware import FirmwareConfig
from repro.nic.nic import NicConfig

PRESETS = [
    NicConfig.baseline(),
    NicConfig.with_alpu(total_cells=64, block_size=8),
    NicConfig(firmware=FirmwareConfig(matching="hash")),
]
PRESET_IDS = ["baseline", "alpu64", "hash"]

RANKS = 4
PHASES = 3
BIG = 16 * 1024  # rendezvous territory


def program(mpi):
    yield from mpi.init()
    rank = mpi.comm_rank()
    size = mpi.comm_size()
    received = 0
    for phase in range(PHASES):
        # all-to-all burst: everyone isends to everyone (self excluded)
        sends = []
        for peer in range(size):
            if peer == rank:
                continue
            payload = BIG if (rank + peer + phase) % 3 == 0 else 64
            req = yield from mpi.isend(
                dest=peer, tag=phase * 10 + rank, size=payload
            )
            sends.append(req)
        # collect with wildcards: we know how many, not from whom first
        for _ in range(size - 1):
            req = yield from mpi.recv(source=ANY_SOURCE, tag=ANY_TAG, size=BIG)
            assert req.status.source != rank
            assert req.status.tag // 10 == phase
            received += 1
        yield from mpi.waitall(sends)
        yield from mpi.barrier()
    yield from mpi.finalize()
    return received


@pytest.mark.parametrize("nic", PRESETS, ids=PRESET_IDS)
def test_all_to_all_stress(nic):
    world = MpiWorld(WorldConfig(num_ranks=RANKS, nic=nic))
    results = world.run(
        {rank: program for rank in range(RANKS)}, deadline_us=500_000
    )
    assert all(count == PHASES * (RANKS - 1) for count in results.values())
    for node in world.nics:
        # conservation: every queue drained, every buffer released
        assert len(node.posted_recv_q) == 0
        assert len(node.unexpected_q) == 0
        assert len(node.send_q) == 0
        assert not node.firmware.active_recv_q
        assert not node.firmware.pending_rndv_sends
        if node.posted_device is not None:
            assert node.posted_device.alpu.occupancy == 0
            assert node.unexpected_device.alpu.occupancy == 0


def test_stress_pairings_agree_across_engines():
    """All engines must deliver the same multiset of (phase, sender) at
    every rank -- the end-to-end no-configuration-changes-semantics
    check under real contention."""
    snapshots = []
    for nic in PRESETS:
        world = MpiWorld(WorldConfig(num_ranks=RANKS, nic=nic))
        world.run({rank: program for rank in range(RANKS)}, deadline_us=500_000)
        snapshot = tuple(
            len(node.firmware.pairings) for node in world.nics
        )
        snapshots.append(snapshot)
    assert all(snapshot == snapshots[0] for snapshot in snapshots)
