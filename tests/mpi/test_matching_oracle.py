"""Unit tests for the pure matching oracle."""

from repro.core.match import ANY_SOURCE, ANY_TAG
from repro.mpi.matching import MatchingOracle, OracleMessage, OracleRecv


def msg(msg_id, context=1, source=0, tag=0):
    return OracleMessage(msg_id=msg_id, context=context, source=source, tag=tag)


def recv(recv_id, context=1, source=0, tag=0):
    return OracleRecv(recv_id=recv_id, context=context, source=source, tag=tag)


def test_posted_receive_matches_incoming_message():
    oracle = MatchingOracle()
    oracle.post_receive(recv(1, tag=5))
    assert oracle.message_arrives(msg(10, tag=5)) == 1
    assert oracle.pairings == [(1, 10)]
    assert oracle.posted == []


def test_unmatched_message_becomes_unexpected():
    oracle = MatchingOracle()
    assert oracle.message_arrives(msg(10, tag=5)) is None
    assert len(oracle.unexpected) == 1


def test_receive_drains_unexpected_first():
    oracle = MatchingOracle()
    oracle.message_arrives(msg(10, tag=5))
    assert oracle.post_receive(recv(1, tag=5)) == 10
    assert oracle.unexpected == []


def test_first_posted_receive_wins():
    oracle = MatchingOracle()
    oracle.post_receive(recv(1, tag=5))
    oracle.post_receive(recv(2, tag=5))
    assert oracle.message_arrives(msg(10, tag=5)) == 1
    assert oracle.message_arrives(msg(11, tag=5)) == 2


def test_oldest_unexpected_wins():
    oracle = MatchingOracle()
    oracle.message_arrives(msg(10, tag=5))
    oracle.message_arrives(msg(11, tag=5))
    assert oracle.post_receive(recv(1, tag=5)) == 10


def test_wildcard_source_and_tag():
    oracle = MatchingOracle()
    oracle.post_receive(recv(1, source=ANY_SOURCE, tag=ANY_TAG))
    assert oracle.message_arrives(msg(10, source=3, tag=9)) == 1


def test_ordering_beats_specificity():
    """An older ANY_SOURCE receive wins over a newer exact one."""
    oracle = MatchingOracle()
    oracle.post_receive(recv(1, source=ANY_SOURCE, tag=7))
    oracle.post_receive(recv(2, source=3, tag=7))
    assert oracle.message_arrives(msg(10, source=3, tag=7)) == 1


def test_context_isolation():
    oracle = MatchingOracle()
    oracle.post_receive(recv(1, context=1, tag=5))
    assert oracle.message_arrives(msg(10, context=2, tag=5)) is None
    assert oracle.post_receive(recv(2, context=2, tag=5)) == 10
