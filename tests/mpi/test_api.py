"""Tests for the MPI API surface (the Fig. 4 subset) on live systems."""

import pytest

from repro.core.match import ANY_SOURCE, ANY_TAG
from repro.mpi.api import MpiError
from repro.mpi.datatypes import MPI_DOUBLE, MPI_INT
from repro.mpi.world import MpiWorld, WorldConfig
from repro.nic.nic import NicConfig


def run_world(programs, num_ranks=2, nic=None):
    world = MpiWorld(
        WorldConfig(num_ranks=num_ranks, nic=nic or NicConfig.baseline())
    )
    return world.run(programs, deadline_us=100_000)


def test_rank_and_size():
    def program(mpi):
        yield from mpi.init()
        rank = mpi.comm_rank()
        size = mpi.comm_size()
        yield from mpi.finalize()
        return (rank, size)

    results = run_world({0: program, 1: program})
    assert results == {0: (0, 2), 1: (1, 2)}


def test_blocking_send_recv_roundtrip():
    def sender(mpi):
        yield from mpi.init()
        yield from mpi.send(dest=1, tag=7, size=64)
        yield from mpi.finalize()

    def receiver(mpi):
        yield from mpi.init()
        request = yield from mpi.recv(source=0, tag=7, size=64)
        yield from mpi.finalize()
        return request.latency_ps

    results = run_world({0: sender, 1: receiver})
    assert results[1] > 0


def test_isend_irecv_waitall():
    def sender(mpi):
        yield from mpi.init()
        requests = []
        for i in range(4):
            req = yield from mpi.isend(dest=1, tag=i, size=0)
            requests.append(req)
        yield from mpi.waitall(requests)
        yield from mpi.finalize()

    def receiver(mpi):
        yield from mpi.init()
        requests = []
        for i in range(4):
            req = yield from mpi.irecv(source=0, tag=i, size=0)
            requests.append(req)
        yield from mpi.waitall(requests)
        yield from mpi.finalize()
        return [r.done for r in requests]

    assert run_world({0: sender, 1: receiver})[1] == [True] * 4


def test_wildcard_receive():
    def sender(mpi):
        yield from mpi.init()
        yield from mpi.send(dest=1, tag=1234, size=0)
        yield from mpi.finalize()

    def receiver(mpi):
        yield from mpi.init()
        request = yield from mpi.recv(source=ANY_SOURCE, tag=ANY_TAG, size=0)
        yield from mpi.finalize()
        return request.done

    assert run_world({0: sender, 1: receiver})[1] is True


def test_barrier_two_ranks():
    def program(mpi):
        yield from mpi.init()
        yield from mpi.barrier()
        yield from mpi.finalize()
        return True

    assert run_world({0: program, 1: program}) == {0: True, 1: True}


def test_barrier_four_ranks_orders_work():
    """Rank 0 'publishes' only after the barrier; all ranks must observe
    the barrier as a synchronization point (no rank escapes early)."""
    exit_times = {}

    def program(mpi):
        yield from mpi.init()
        # stagger arrivals so the barrier has real waiting to do
        if mpi.rank == 3:
            yield from mpi.send(dest=0, tag=99, size=0)  # extra pre-work
        if mpi.rank == 0:
            yield from mpi.recv(source=3, tag=99, size=0)
        yield from mpi.barrier()
        from repro.sim.process import now

        exit_times[mpi.rank] = yield now()
        yield from mpi.finalize()

    run_world({r: program for r in range(4)}, num_ranks=4)
    assert len(exit_times) == 4


def test_rendezvous_for_large_messages():
    """Sizes above the eager threshold use RTS/CTS/DATA."""
    size = 64 * 1024

    def sender(mpi):
        yield from mpi.init()
        yield from mpi.send(dest=1, tag=1, size=size)
        yield from mpi.finalize()

    def receiver(mpi):
        yield from mpi.init()
        request = yield from mpi.recv(source=0, tag=1, size=size)
        yield from mpi.finalize()
        return request.latency_ps

    latency = run_world({0: sender, 1: receiver})[1]
    # a rendezvous of 64 KB must cost at least 3 wire crossings + stream
    assert latency > 3 * 200_000


def test_unexpected_rendezvous_message():
    """RTS arriving before the receive is posted parks as unexpected."""
    size = 64 * 1024

    def sender(mpi):
        yield from mpi.init()
        # nonblocking: a blocking rendezvous send could not complete until
        # the receive is posted, which only happens after the marker
        big = yield from mpi.isend(dest=1, tag=5, size=size)
        yield from mpi.send(dest=1, tag=6, size=0)  # marker behind it
        yield from mpi.wait(big)
        yield from mpi.finalize()

    def receiver(mpi):
        yield from mpi.init()
        # let both arrive unexpected, then post for the big one
        yield from mpi.recv(source=0, tag=6, size=0)
        request = yield from mpi.recv(source=0, tag=5, size=size)
        yield from mpi.finalize()
        return request.done

    assert run_world({0: sender, 1: receiver})[1] is True


# --------------------------------------------------------------- misuse
def test_call_before_init_rejected():
    def program(mpi):
        yield from mpi.send(dest=1, tag=0, size=0)

    def other(mpi):
        yield from mpi.init()
        yield from mpi.finalize()

    with pytest.raises(MpiError, match="before MPI_Init"):
        run_world({0: program, 1: other})


def test_double_init_rejected():
    def program(mpi):
        yield from mpi.init()
        yield from mpi.init()

    def other(mpi):
        yield from mpi.init()
        yield from mpi.finalize()

    with pytest.raises(MpiError, match="twice"):
        run_world({0: program, 1: other})


def test_bad_rank_rejected():
    def program(mpi):
        yield from mpi.init()
        yield from mpi.send(dest=5, tag=0, size=0)

    def other(mpi):
        yield from mpi.init()
        yield from mpi.finalize()

    with pytest.raises(ValueError, match="rank 5"):
        run_world({0: program, 1: other})


def test_finalize_with_inflight_request_rejected():
    def program(mpi):
        yield from mpi.init()
        yield from mpi.irecv(source=1, tag=0, size=0)
        yield from mpi.finalize()

    def other(mpi):
        yield from mpi.init()
        yield from mpi.finalize()

    with pytest.raises(MpiError, match="incomplete"):
        run_world({0: program, 1: other})


def test_datatype_sizes():
    assert MPI_INT.size_bytes(10) == 40
    assert MPI_DOUBLE.size_bytes(3) == 24
    with pytest.raises(ValueError):
        MPI_INT.size_bytes(-1)
