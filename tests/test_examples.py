"""Smoke tests: the example scripts must run and report sane results.

Examples are documentation that executes; these tests keep them honest.
The slow sweep examples run in reduced form (their heavy variants are the
benchmark suite's job).
"""

import runpy
import sys



def run_example(name, argv=()):
    path = f"examples/{name}.py"
    old_argv = sys.argv
    sys.argv = [path, *argv]
    try:
        runpy.run_path(path, run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart_runs(capsys):
    run_example("quickstart")
    output = capsys.readouterr().out
    assert "MatchSuccess(tag=1)" in output  # ordering beats specificity
    assert "half-RTT" in output


def test_wildcard_workers_runs(capsys):
    run_example("wildcard_workers")
    output = capsys.readouterr().out
    assert "items/worker=[6, 6, 6]" in output


def test_fpga_design_space_runs(capsys):
    run_example("fpga_design_space")
    output = capsys.readouterr().out
    assert "ASIC projection" in output
    assert "34%" in output  # the paper's ~35% V2P100 utilization claim


def test_trace_pingpong_runs(capsys, tmp_path):
    out = tmp_path / "pingpong.trace.json"
    run_example("trace_pingpong", [str(out)])
    output = capsys.readouterr().out
    assert "half-RTT mean" in output
    assert "trace records" in output
    import json

    doc = json.loads(out.read_text())
    assert doc["traceEvents"]


def test_queue_depth_study_fast_runs(capsys):
    run_example("queue_depth_study", ["--fast"])
    output = capsys.readouterr().out
    assert "break-even at" in output
    assert "cache knee" in output


def test_topology_halo_runs(capsys):
    run_example("topology_halo")
    output = capsys.readouterr().out
    assert "crossbar over 16 nodes" in output
    assert "torus3d 2x2x4 over 16 nodes" in output
    assert "health: healthy" in output
    assert "mean utilization" in output
