"""Unit tests for match bits, masks and envelope packing."""

import pytest
from hypothesis import given, strategies as st

from repro.core.match import (
    ANY_SOURCE,
    ANY_TAG,
    MatchEntry,
    MatchFormat,
    MatchRequest,
    matches,
)

FMT = MatchFormat()


def test_default_format_is_the_papers_42_bits():
    assert FMT.width == 42
    assert FMT.context_bits + FMT.source_bits + FMT.tag_bits == 42
    assert FMT.source_bits == 15  # 32K-node system


def test_pack_unpack_roundtrip():
    bits = FMT.pack(context=3, source=12345, tag=777)
    assert FMT.unpack(bits) == (3, 12345, 777)


@given(
    context=st.integers(0, 2**11 - 1),
    source=st.integers(0, 2**15 - 1),
    tag=st.integers(0, 2**16 - 1),
)
def test_pack_unpack_roundtrip_property(context, source, tag):
    assert MatchFormat().unpack(MatchFormat().pack(context, source, tag)) == (
        context,
        source,
        tag,
    )


def test_field_overflow_rejected():
    with pytest.raises(ValueError, match="source"):
        FMT.pack(0, 1 << 15, 0)
    with pytest.raises(ValueError, match="tag"):
        FMT.pack(0, 0, 1 << 16)
    with pytest.raises(ValueError, match="context"):
        FMT.pack(1 << 11, 0, 0)


def test_exact_receive_has_no_mask():
    bits, mask = FMT.pack_receive(context=1, source=4, tag=9)
    assert mask == 0
    assert FMT.unpack(bits) == (1, 4, 9)


def test_any_source_masks_only_the_source_field():
    bits, mask = FMT.pack_receive(context=1, source=ANY_SOURCE, tag=9)
    assert mask == FMT.source_field_mask
    entry = MatchEntry(bits=bits, mask=mask, tag=0)
    for source in (0, 7, 32767):
        assert entry.matches_request(MatchRequest(FMT.pack(1, source, 9)))
    assert not entry.matches_request(MatchRequest(FMT.pack(1, 3, 8)))  # tag differs
    assert not entry.matches_request(MatchRequest(FMT.pack(2, 3, 9)))  # context


def test_any_tag_masks_only_the_tag_field():
    bits, mask = FMT.pack_receive(context=1, source=4, tag=ANY_TAG)
    assert mask == FMT.tag_field_mask
    entry = MatchEntry(bits=bits, mask=mask, tag=0)
    for tag in (0, 1, 65535):
        assert entry.matches_request(MatchRequest(FMT.pack(1, 4, tag)))
    assert not entry.matches_request(MatchRequest(FMT.pack(1, 5, 7)))


def test_both_wildcards_match_any_source_and_tag():
    bits, mask = FMT.pack_receive(context=6, source=ANY_SOURCE, tag=ANY_TAG)
    entry = MatchEntry(bits=bits, mask=mask, tag=0)
    assert entry.matches_request(MatchRequest(FMT.pack(6, 31000, 65000)))
    assert not entry.matches_request(MatchRequest(FMT.pack(5, 31000, 65000)))


def test_context_can_never_be_wildcarded():
    """A posted receive must explicitly match the context (Section II)."""
    bits, mask = FMT.pack_receive(context=2, source=ANY_SOURCE, tag=ANY_TAG)
    assert mask & ((1 << FMT.context_bits) - 1) == 0


def test_matches_primitive():
    assert matches(0b1010, 0b0000, 0b1010)
    assert not matches(0b1010, 0b0000, 0b1011)
    assert matches(0b1010, 0b0001, 0b1011)  # masked disagreement


@given(
    stored=st.integers(0, 2**42 - 1),
    mask=st.integers(0, 2**42 - 1),
    request=st.integers(0, 2**42 - 1),
)
def test_masked_bits_never_affect_outcome(stored, mask, request):
    flipped = stored ^ mask  # flip every masked bit of the stored word
    assert matches(stored, mask, request) == matches(flipped, mask, request)


def test_request_mask_composes_with_stored_mask():
    # unexpected-queue direction: the request (a receive) carries the mask
    entry = MatchEntry(bits=FMT.pack(1, 9, 40), mask=0, tag=0)
    bits, mask = FMT.pack_receive(1, ANY_SOURCE, 40)
    assert entry.matches_request(MatchRequest(bits=bits, mask=mask))
    bits2, mask2 = FMT.pack_receive(1, ANY_SOURCE, 41)
    assert not entry.matches_request(MatchRequest(bits=bits2, mask=mask2))
