"""Differential property tests: SWAR-vectorized block vs the per-cell model.

``repro.core.block`` packs a block's cells into big-int SWAR state; the
pre-vectorization implementation kept a list of
:class:`~repro.core.cell.Cell` objects and scanned them.  These tests
hold the two equal three ways:

* **block level** -- a faithful :class:`PerCellBlock` re-implementation of
  the old object model is driven in lockstep with :class:`CellBlock`
  through random load/clear/set-bottom/shift/match sequences; every cell
  snapshot, observer, displaced-cell tuple and match triple must agree,
  including the stale-contents-on-invalid quirk;
* **mux level** -- ``CellBlock.match`` must equal :func:`priority_select`
  fed with per-cell :meth:`Cell.match` flags over ``snapshot_cells()``;
* **ALPU level** -- a full :class:`Alpu` built over ``PerCellBlock`` runs
  the same insert/match trace as the vectorized one and the
  :class:`ReferenceMatchList` oracle; responses, survivor order and every
  :class:`AlpuStats` counter (the cycle counts: compaction steps, insert
  stalls, held retries) must be identical.

Plus the explicit edges: non-power-of-two geometry rejection, load range
validation, and all-invalid blocks reporting lane 0's stale tag.
"""

import dataclasses
from typing import List, Optional, Tuple

import pytest
from hypothesis import given, settings, strategies as st

import repro.core.alpu as alpu_module
from repro.core.alpu import Alpu, AlpuConfig, CompactionReach
from repro.core.block import CellBlock, CellTuple, priority_select
from repro.core.cell import Cell, CellKind
from repro.core.commands import (
    Insert,
    MatchFailure,
    MatchSuccess,
    StartAcknowledge,
    StartInsert,
    StopInsert,
)
from repro.core.match import MatchEntry, MatchFormat, MatchRequest
from repro.core.reference import ReferenceMatchList

# small widths keep the packed ints readable and make collisions common
W = 6
TAG_W = 4
LANE = (1 << W) - 1
TAG_MASK = (1 << TAG_W) - 1


class PerCellBlock:
    """The pre-vectorization object model, preserved as a test oracle.

    One :class:`Cell` per position, a top-down match scan (the scan form
    of the priority-mux tree), and a per-cell ``copy_from`` shift loop --
    exactly the implementation :class:`CellBlock` replaced, adapted to
    the same :data:`CellTuple` interface so an :class:`Alpu` can be built
    over it unchanged.
    """

    def __init__(
        self,
        kind: CellKind,
        size: int,
        index: int = 0,
        *,
        match_width: int = 42,
        tag_width: int = 16,
    ) -> None:
        self.kind = kind
        self.size = size
        self.index = index
        self.match_width = match_width
        self.tag_width = tag_width
        self.cells: List[Cell] = [Cell(kind) for _ in range(size)]
        self.registered_request: Optional[MatchRequest] = None

    # ------------------------------------------------------------ observers
    @property
    def occupancy(self) -> int:
        return sum(1 for cell in self.cells if cell.valid)

    @property
    def valid_mask(self) -> int:
        out = 0
        for position, cell in enumerate(self.cells):
            if cell.valid:
                out |= 1 << position
        return out

    @property
    def is_full(self) -> bool:
        return all(cell.valid for cell in self.cells)

    @property
    def bottom_empty(self) -> bool:
        return not self.cells[0].valid

    @property
    def bottom_valid(self) -> bool:
        return self.cells[0].valid

    def lowest_hole_above(self, local_index: int) -> Optional[int]:
        for position in range(local_index + 1, self.size):
            if not self.cells[position].valid:
                return position
        return None

    def lowest_hole(self) -> Optional[int]:
        for position, cell in enumerate(self.cells):
            if not cell.valid:
                return position
        return None

    # ----------------------------------------------------------- cell access
    def cell_tuple(self, local_index: int) -> CellTuple:
        cell = self.cells[local_index]
        return (cell.bits, cell.mask, cell.tag, cell.valid)

    def top_cell(self) -> CellTuple:
        return self.cell_tuple(self.size - 1)

    def entry_at(self, local_index: int) -> Optional[MatchEntry]:
        cell = self.cells[local_index]
        if not cell.valid:
            return None
        return MatchEntry(bits=cell.bits, mask=cell.mask, tag=cell.tag)

    def snapshot_cells(self) -> List[Cell]:
        return [
            Cell(self.kind, bits=c.bits, mask=c.mask, tag=c.tag, valid=c.valid)
            for c in self.cells
        ]

    def load(self, local_index: int, entry: MatchEntry) -> None:
        cell = self.cells[local_index]
        cell.bits = entry.bits
        cell.mask = entry.mask if self.kind is CellKind.POSTED_RECEIVE else 0
        cell.tag = entry.tag
        cell.valid = True

    def set_bottom(self, incoming: CellTuple) -> None:
        cell = self.cells[0]
        cell.bits, cell.mask, cell.tag, cell.valid = incoming

    def clear_cell(self, local_index: int) -> None:
        # hardware drops only the valid bit; stored data goes stale in place
        self.cells[local_index].valid = False

    def clear_valid(self) -> None:
        for cell in self.cells:
            cell.valid = False

    # -------------------------------------------------------------- matching
    def register_request(self, request: MatchRequest) -> None:
        self.registered_request = request

    def match(
        self, request: Optional[MatchRequest] = None
    ) -> Tuple[bool, int, int]:
        if request is None:
            request = self.registered_request
            if request is None:
                raise RuntimeError("match() with no registered request")
        for location in range(self.size - 1, -1, -1):
            cell = self.cells[location]
            if cell.valid and (
                (cell.bits ^ request.bits) & ~(cell.mask | request.mask)
            ) == 0:
                return True, location, cell.tag
        return False, 0, self.cells[0].tag

    # -------------------------------------------------------------- shifting
    def shift_up_through(
        self, local_index: int, incoming: Optional[CellTuple]
    ) -> CellTuple:
        displaced = self.cell_tuple(local_index)
        for position in range(local_index, 0, -1):
            self.cells[position].copy_from(self.cells[position - 1])
        cell = self.cells[0]
        if incoming is not None:
            cell.bits, cell.mask, cell.tag, cell.valid = incoming
        else:
            cell.bits = cell.mask = cell.tag = 0
            cell.valid = False
        return displaced


# ---------------------------------------------------------------- strategies
bits_values = st.integers(0, LANE)
mask_values = st.one_of(st.just(0), st.integers(0, LANE))
tag_values = st.integers(0, TAG_MASK)
entry_values = st.builds(
    MatchEntry, bits=bits_values, mask=mask_values, tag=tag_values
)
cell_tuples = st.tuples(bits_values, mask_values, tag_values, st.booleans())


@st.composite
def block_scenarios(draw):
    """A geometry plus a random op sequence addressed within it."""
    size = draw(st.sampled_from([1, 2, 4, 8]))
    kind = draw(st.sampled_from([CellKind.POSTED_RECEIVE, CellKind.UNEXPECTED]))
    indices = st.integers(0, size - 1)
    ops = []
    for _ in range(draw(st.integers(1, 50))):
        op = draw(
            st.sampled_from(
                ["load", "load", "clear", "set_bottom", "shift", "shift",
                 "match", "match", "clear_valid"]
            )
        )
        if op == "load":
            ops.append(("load", draw(indices), draw(entry_values)))
        elif op == "clear":
            ops.append(("clear", draw(indices)))
        elif op == "set_bottom":
            ops.append(("set_bottom", draw(cell_tuples)))
        elif op == "shift":
            ops.append(
                ("shift", draw(indices), draw(st.none() | cell_tuples))
            )
        elif op == "match":
            ops.append(("match", draw(bits_values), draw(mask_values)))
        else:
            ops.append(("clear_valid",))
    return size, kind, ops


def assert_same_state(vec: CellBlock, ref: PerCellBlock) -> None:
    size = vec.size
    assert [vec.cell_tuple(i) for i in range(size)] == [
        ref.cell_tuple(i) for i in range(size)
    ]
    assert vec.occupancy == ref.occupancy
    assert vec.valid_mask == ref.valid_mask
    assert vec.is_full == ref.is_full
    assert vec.bottom_empty == ref.bottom_empty
    assert vec.bottom_valid == ref.bottom_valid
    assert vec.lowest_hole() == ref.lowest_hole()
    for i in range(size):
        assert vec.lowest_hole_above(i) == ref.lowest_hole_above(i)


def mux_tree_match(block, request: MatchRequest) -> Tuple[bool, int, int]:
    """The third opinion: priority_select over per-cell compare flags."""
    cells = block.snapshot_cells()
    flags = [cell.match(request) for cell in cells]
    tags = [cell.tag for cell in cells]
    return priority_select(flags, tags)


@settings(max_examples=250, deadline=None)
@given(scenario=block_scenarios())
def test_vectorized_block_equals_per_cell_model(scenario):
    """Lockstep drive: every snapshot, observer and result must agree."""
    size, kind, ops = scenario
    vec = CellBlock(kind, size, match_width=W, tag_width=TAG_W)
    ref = PerCellBlock(kind, size, match_width=W, tag_width=TAG_W)
    for op in ops:
        if op[0] == "load":
            vec.load(op[1], op[2])
            ref.load(op[1], op[2])
        elif op[0] == "clear":
            vec.clear_cell(op[1])
            ref.clear_cell(op[1])
        elif op[0] == "set_bottom":
            vec.set_bottom(op[1])
            ref.set_bottom(op[1])
        elif op[0] == "shift":
            assert vec.shift_up_through(op[1], op[2]) == ref.shift_up_through(
                op[1], op[2]
            )
        elif op[0] == "match":
            request = MatchRequest(bits=op[1], mask=op[2])
            vec.register_request(request)
            ref.register_request(request)
            result = vec.match()
            assert result == ref.match()
            assert result == mux_tree_match(vec, request)
        else:
            vec.clear_valid()
            ref.clear_valid()
        assert_same_state(vec, ref)


# ------------------------------------------------------------- geometry edges
@pytest.mark.parametrize("size", [0, 3, 5, 6, 12, -4])
def test_block_rejects_non_power_of_two_size(size):
    with pytest.raises(ValueError):
        CellBlock(CellKind.POSTED_RECEIVE, size)


@pytest.mark.parametrize("match_width,tag_width", [(0, 4), (-1, 4), (6, 0)])
def test_block_rejects_non_positive_widths(match_width, tag_width):
    with pytest.raises(ValueError):
        CellBlock(
            CellKind.POSTED_RECEIVE,
            4,
            match_width=match_width,
            tag_width=tag_width,
        )


def test_alpu_config_rejects_non_power_of_two_block():
    with pytest.raises(ValueError):
        AlpuConfig(total_cells=12, block_size=3)


def test_load_rejects_out_of_range_fields():
    block = CellBlock(CellKind.POSTED_RECEIVE, 4, match_width=W, tag_width=TAG_W)
    with pytest.raises(ValueError):
        block.load(0, MatchEntry(bits=LANE + 1, mask=0, tag=0))
    with pytest.raises(ValueError):
        block.load(0, MatchEntry(bits=0, mask=LANE + 1, tag=0))
    with pytest.raises(ValueError):
        block.load(0, MatchEntry(bits=0, mask=0, tag=TAG_MASK + 1))


# ---------------------------------------------------------- all-invalid edges
def test_fresh_block_match_fails_with_zero_tag():
    block = CellBlock(CellKind.POSTED_RECEIVE, 8, match_width=W, tag_width=TAG_W)
    assert block.match(MatchRequest(bits=0)) == (False, 0, 0)
    assert block.occupancy == 0
    assert block.lowest_hole() == 0


def test_all_invalid_block_reports_lane0_stale_tag():
    """Invalidation drops only the valid bit; lane 0's tag stays visible."""
    vec = CellBlock(CellKind.POSTED_RECEIVE, 4, match_width=W, tag_width=TAG_W)
    ref = PerCellBlock(CellKind.POSTED_RECEIVE, 4, match_width=W, tag_width=TAG_W)
    for block in (vec, ref):
        block.load(0, MatchEntry(bits=5, mask=0, tag=7))
        block.load(1, MatchEntry(bits=5, mask=0, tag=9))
        block.clear_valid()
    request = MatchRequest(bits=5)
    assert vec.match(request) == (False, 0, 7)
    assert vec.match(request) == ref.match(request)
    assert vec.occupancy == 0 and not vec.is_full
    assert_same_state(vec, ref)


def test_clear_cell_leaves_stale_contents_in_place():
    vec = CellBlock(CellKind.POSTED_RECEIVE, 4, match_width=W, tag_width=TAG_W)
    ref = PerCellBlock(CellKind.POSTED_RECEIVE, 4, match_width=W, tag_width=TAG_W)
    for block in (vec, ref):
        block.load(2, MatchEntry(bits=3, mask=0, tag=11))
        block.clear_cell(2)
    assert vec.cell_tuple(2) == (3, 0, 11, False)
    assert vec.match(MatchRequest(bits=3))[0] is False
    assert_same_state(vec, ref)


# --------------------------------------------------------- ALPU-level lockstep
FMT = MatchFormat()
contexts = st.integers(0, 1)
sources = st.integers(0, 3)
tags = st.integers(0, 3)


@dataclasses.dataclass(frozen=True)
class InsertOp:
    context: int
    source: int  # -1 = ANY_SOURCE
    tag: int  # -1 = ANY_TAG


@dataclasses.dataclass(frozen=True)
class MatchOp:
    context: int
    source: int
    tag: int


insert_ops = st.builds(
    InsertOp,
    context=contexts,
    source=st.one_of(st.just(-1), sources),
    tag=st.one_of(st.just(-1), tags),
)
match_ops = st.builds(MatchOp, context=contexts, source=sources, tag=tags)
traces = st.lists(
    st.one_of(match_ops, st.lists(insert_ops, min_size=1, max_size=4)),
    min_size=1,
    max_size=50,
)
geometries = st.sampled_from([(8, 4), (16, 4), (16, 8), (32, 8)])
reaches = st.sampled_from([CompactionReach.BLOCK, CompactionReach.GLOBAL])


def per_cell_alpu(config: AlpuConfig) -> Alpu:
    """An Alpu whose chain is built from PerCellBlock oracles."""
    original = alpu_module.CellBlock
    alpu_module.CellBlock = PerCellBlock
    try:
        return Alpu(config)
    finally:
        alpu_module.CellBlock = original


@settings(max_examples=120, deadline=None)
@given(trace=traces, geometry=geometries, reach=reaches)
def test_alpu_over_vectorized_blocks_equals_per_cell_alpu(trace, geometry, reach):
    """Same trace, both block models, plus the reference-list oracle.

    Responses, survivor order and *every* stats counter -- including the
    cycle counts (compaction steps, insert stall cycles, held retries) --
    must be identical: vectorization may not change what the modelled
    hardware does, only what it costs in host Python.
    """
    total_cells, block_size = geometry
    config = AlpuConfig(
        kind=CellKind.POSTED_RECEIVE,
        total_cells=total_cells,
        block_size=block_size,
        compaction_reach=reach,
    )
    vec = Alpu(config)
    obj = per_cell_alpu(config)
    reference = ReferenceMatchList()
    next_tag = iter(range(1_000_000))

    for op in trace:
        if isinstance(op, MatchOp):
            request = MatchRequest(bits=FMT.pack(op.context, op.source, op.tag))
            responses = vec.present_header(request)
            assert responses == obj.present_header(request)
            expected, _ = reference.match(request)
            if expected is None:
                assert responses == [MatchFailure()]
            else:
                assert responses == [MatchSuccess(tag=expected.tag)]
        else:
            assert vec.submit(StartInsert()) == obj.submit(StartInsert())
            for insert in op:
                if vec.free_entries == 0:
                    break
                bits, mask = FMT.pack_receive(
                    insert.context, insert.source, insert.tag
                )
                tag = next(next_tag)
                assert vec.submit(Insert(bits, mask, tag)) == obj.submit(
                    Insert(bits, mask, tag)
                )
                reference.append(MatchEntry(bits=bits, mask=mask, tag=tag))
            assert vec.submit(StopInsert()) == obj.submit(StopInsert())
        survivors = [e.tag for e in vec.entries()]
        assert survivors == [e.tag for e in obj.entries()]
        assert survivors == [e.tag for e in reference.snapshot()]

    assert dataclasses.asdict(vec.stats) == dataclasses.asdict(obj.stats)
