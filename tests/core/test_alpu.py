"""Unit tests for the ALPU: FSM, protocol, ordering, compaction."""

import pytest

from repro.core.alpu import (
    Alpu,
    AlpuConfig,
    AlpuError,
    AlpuMode,
    CompactionReach,
)
from repro.core.commands import (
    Insert,
    MatchFailure,
    MatchSuccess,
    Reset,
    StartAcknowledge,
    StartInsert,
    StopInsert,
)
from repro.core.match import MatchFormat, MatchRequest

FMT = MatchFormat()


def make(total=16, block=4, **kwargs):
    return Alpu(AlpuConfig(total_cells=total, block_size=block, **kwargs))


def insert_many(alpu, entries):
    """Drive the full Table I protocol for a batch of (bits, mask, tag)."""
    responses = alpu.submit(StartInsert())
    assert isinstance(responses[0], StartAcknowledge)
    for bits, mask, tag in entries:
        alpu.submit(Insert(bits, mask, tag))
    alpu.submit(StopInsert())


# ------------------------------------------------------------- basic FSM
def test_starts_in_match_mode_and_empty():
    alpu = make()
    assert alpu.mode is AlpuMode.MATCH
    assert alpu.occupancy == 0
    assert alpu.free_entries == 16


def test_start_insert_acknowledges_free_count():
    alpu = make(total=8, block=4)
    responses = alpu.submit(StartInsert())
    assert responses == [StartAcknowledge(free_entries=8)]
    assert alpu.mode is AlpuMode.INSERT
    alpu.submit(StopInsert())
    assert alpu.mode is AlpuMode.MATCH


def test_insert_outside_insert_mode_is_discarded():
    """Footnote 3: invalid commands in Read Command are discarded."""
    alpu = make()
    responses = alpu.submit(Insert(1, 0, 1))
    assert responses == []
    assert alpu.occupancy == 0
    assert alpu.stats.commands_discarded == 1


def test_stop_insert_outside_insert_mode_is_discarded():
    alpu = make()
    alpu.submit(StopInsert())
    assert alpu.stats.commands_discarded == 1


def test_redundant_start_insert_re_acknowledges():
    alpu = make(total=8, block=4)
    alpu.submit(StartInsert())
    responses = alpu.submit(StartInsert())
    assert responses == [StartAcknowledge(free_entries=8)]
    assert alpu.mode is AlpuMode.INSERT


def test_reset_clears_everything_and_returns_to_match():
    alpu = make()
    insert_many(alpu, [(i, 0, i) for i in range(5)])
    assert alpu.occupancy == 5
    alpu.submit(Reset())
    assert alpu.occupancy == 0
    assert alpu.mode is AlpuMode.MATCH
    assert alpu.present_header(MatchRequest(bits=3)) == [MatchFailure()]


def test_reset_works_from_insert_mode():
    alpu = make()
    alpu.submit(StartInsert())
    alpu.submit(Insert(1, 0, 1))
    alpu.submit(Reset())
    assert alpu.mode is AlpuMode.MATCH
    assert alpu.occupancy == 0


# ----------------------------------------------------------- match basics
def test_match_returns_tag_and_deletes():
    alpu = make()
    insert_many(alpu, [(100, 0, 42)])
    assert alpu.present_header(MatchRequest(bits=100)) == [MatchSuccess(tag=42)]
    assert alpu.occupancy == 0
    # delete-on-match: a second identical header now fails
    assert alpu.present_header(MatchRequest(bits=100)) == [MatchFailure()]


def test_oldest_matching_entry_wins():
    """MPI requires the first matching item in list order."""
    alpu = make()
    insert_many(alpu, [(7, 0, 1), (7, 0, 2), (7, 0, 3)])
    assert alpu.present_header(MatchRequest(bits=7)) == [MatchSuccess(tag=1)]
    assert alpu.present_header(MatchRequest(bits=7)) == [MatchSuccess(tag=2)]
    assert alpu.present_header(MatchRequest(bits=7)) == [MatchSuccess(tag=3)]


def test_ordering_across_block_boundaries():
    alpu = make(total=16, block=4)
    insert_many(alpu, [(7, 0, i) for i in range(10)])  # spans 3 blocks
    for expected in range(10):
        assert alpu.present_header(MatchRequest(bits=7)) == [
            MatchSuccess(tag=expected)
        ]


def test_wildcard_entries_match_by_priority_not_specificity():
    """Unlike LPM routing, ordering beats specificity (Section II)."""
    alpu = make()
    any_source_bits, any_source_mask = FMT.pack_receive(1, -1, 5)
    exact_bits = FMT.pack(1, 3, 5)
    # wildcard first, then exact: the *wildcard* must win (it is older)
    insert_many(alpu, [(any_source_bits, any_source_mask, 1), (exact_bits, 0, 2)])
    assert alpu.present_header(MatchRequest(bits=exact_bits)) == [
        MatchSuccess(tag=1)
    ]


def test_deletion_preserves_survivor_order():
    alpu = make()
    insert_many(alpu, [(i, 0, i) for i in range(6)])
    alpu.present_header(MatchRequest(bits=3))
    assert [e.tag for e in alpu.entries()] == [0, 1, 2, 4, 5]


# ---------------------------------------------------- insert-mode holding
def test_failure_held_during_insert_mode():
    alpu = make()
    alpu.submit(StartInsert())
    assert alpu.present_header(MatchRequest(bits=55)) == []
    assert alpu.has_held_request
    # the held request resolves on STOP INSERT (still failing)
    responses = alpu.submit(StopInsert())
    assert responses == [MatchFailure()]
    assert not alpu.has_held_request


def test_held_failure_retried_after_each_insert():
    alpu = make()
    alpu.submit(StartInsert())
    assert alpu.present_header(MatchRequest(bits=55)) == []
    responses = alpu.submit(Insert(55, 0, 9))
    assert responses == [MatchSuccess(tag=9)]
    assert alpu.occupancy == 0  # matched and deleted immediately


def test_success_flows_during_insert_mode():
    alpu = make()
    insert_many(alpu, [(5, 0, 1)])
    alpu.submit(StartInsert())
    assert alpu.present_header(MatchRequest(bits=5)) == [MatchSuccess(tag=1)]
    alpu.submit(StopInsert())


def test_requests_behind_a_held_failure_wait_in_order():
    alpu = make()
    insert_many(alpu, [(5, 0, 1)])
    alpu.submit(StartInsert())
    assert alpu.present_header(MatchRequest(bits=99)) == []  # held
    # a request that *would* succeed must not jump the queue
    assert alpu.present_header(MatchRequest(bits=5)) == []
    responses = alpu.submit(StopInsert())
    assert responses == [MatchFailure(), MatchSuccess(tag=1)]


def test_results_fifo_accumulates_in_order():
    alpu = make()
    insert_many(alpu, [(1, 0, 10), (2, 0, 20)])
    alpu.present_header(MatchRequest(bits=2))
    alpu.present_header(MatchRequest(bits=1))
    alpu.present_header(MatchRequest(bits=3))
    match_results = [r for r in alpu.results if not isinstance(r, StartAcknowledge)]
    assert match_results == [MatchSuccess(20), MatchSuccess(10), MatchFailure()]


# ------------------------------------------------------------ capacity
def test_insert_into_full_alpu_raises():
    alpu = make(total=4, block=4)
    insert_many(alpu, [(i, 0, i) for i in range(4)])
    alpu.submit(StartInsert())
    with pytest.raises(AlpuError, match="full"):
        alpu.submit(Insert(9, 0, 9))


def test_free_count_reflects_occupancy():
    alpu = make(total=8, block=4)
    insert_many(alpu, [(i, 0, i) for i in range(3)])
    responses = alpu.submit(StartInsert())
    assert responses == [StartAcknowledge(free_entries=5)]
    alpu.submit(StopInsert())


# ----------------------------------------------------------- validation
def test_width_checks():
    alpu = make()
    with pytest.raises(AlpuError):
        alpu.present_header(MatchRequest(bits=1 << 42))
    alpu2 = make()
    alpu2.submit(StartInsert())
    with pytest.raises(AlpuError):
        alpu2.submit(Insert(1 << 42, 0, 0))
    with pytest.raises(AlpuError):
        alpu2.submit(Insert(0, 0, 1 << 16))


def test_config_validation():
    with pytest.raises(ValueError):
        AlpuConfig(total_cells=10, block_size=4)  # not a multiple
    with pytest.raises(ValueError):
        AlpuConfig(total_cells=24, block_size=12)  # not a power of two


# ------------------------------------------------------------ compaction
def test_data_drifts_toward_the_oldest_end():
    """'List items are inserted from the left and progress to the right.'"""
    alpu = make(total=8, block=4)
    insert_many(alpu, [(1, 0, 1)])
    for _ in range(10):
        alpu.compact_step()
    # the single entry should have migrated to the highest cell
    assert alpu._cell(7).valid
    assert not alpu._cell(0).valid


def test_compaction_preserves_order():
    alpu = make(total=8, block=4)
    insert_many(alpu, [(i, 0, i) for i in range(5)])
    before = [e.tag for e in alpu.entries()]
    for _ in range(20):
        alpu.compact_step()
    assert [e.tag for e in alpu.entries()] == before


def test_global_reach_behaves_like_block_reach_for_ordering():
    for reach in (CompactionReach.BLOCK, CompactionReach.GLOBAL):
        alpu = make(total=16, block=4, compaction_reach=reach)
        insert_many(alpu, [(i, 0, i) for i in range(9)])
        alpu.present_header(MatchRequest(bits=4))
        for _ in range(30):
            alpu.compact_step()
        assert [e.tag for e in alpu.entries()] == [0, 1, 2, 3, 5, 6, 7, 8]


def test_compact_step_reports_quiescence():
    alpu = make(total=8, block=4)
    insert_many(alpu, [(1, 0, 1)])
    while alpu.compact_step():
        pass
    assert alpu.compact_step() is False  # fully packed: nothing moves


def test_entries_capacity_and_occupancy_invariant():
    alpu = make(total=8, block=4)
    insert_many(alpu, [(i, 0, i) for i in range(8)])
    assert alpu.occupancy == 8
    assert alpu.free_entries == 0
    alpu.present_header(MatchRequest(bits=0))
    assert alpu.occupancy == 7
    assert len(alpu.entries()) == 7
