"""Unit tests for the basic matching cell (Figure 2a/2b)."""

from repro.core.cell import Cell, CellKind
from repro.core.match import MatchEntry, MatchFormat, MatchRequest

FMT = MatchFormat()


def test_invalid_cell_never_matches():
    cell = Cell(CellKind.POSTED_RECEIVE)
    cell.bits = 0
    assert not cell.match(MatchRequest(bits=0))


def test_posted_receive_cell_stores_its_mask():
    cell = Cell(CellKind.POSTED_RECEIVE)
    bits, mask = FMT.pack_receive(1, -1, 5)  # ANY_SOURCE
    cell.load(MatchEntry(bits=bits, mask=mask, tag=3))
    assert cell.mask == mask
    assert cell.match(MatchRequest(FMT.pack(1, 999, 5)))
    assert not cell.match(MatchRequest(FMT.pack(1, 999, 6)))


def test_unexpected_cell_ignores_entry_mask_and_uses_request_mask():
    """Fig. 2b: 'Instead of storing the mask bits in each cell, the mask
    bits are inputs.'"""
    cell = Cell(CellKind.UNEXPECTED)
    # even if a mask is supplied at load, the cell has nowhere to keep it
    cell.load(MatchEntry(bits=FMT.pack(1, 7, 5), mask=FMT.source_field_mask, tag=1))
    assert cell.mask == 0
    # explicit request mismatching the source fails...
    assert not cell.match(MatchRequest(FMT.pack(1, 8, 5)))
    # ...but a request carrying an ANY_SOURCE input mask matches
    bits, mask = FMT.pack_receive(1, -1, 5)
    assert cell.match(MatchRequest(bits=bits, mask=mask))


def test_clear_drops_valid_only():
    cell = Cell(CellKind.POSTED_RECEIVE)
    cell.load(MatchEntry(bits=5, mask=0, tag=9))
    cell.clear()
    assert not cell.valid
    assert cell.snapshot() is None


def test_copy_from_transfers_all_state():
    source = Cell(CellKind.POSTED_RECEIVE)
    source.load(MatchEntry(bits=42, mask=7, tag=13))
    dest = Cell(CellKind.POSTED_RECEIVE)
    dest.copy_from(source)
    assert (dest.bits, dest.mask, dest.tag, dest.valid) == (42, 7, 13, True)
    # copying an invalid neighbour propagates the hole
    source.clear()
    dest.copy_from(source)
    assert not dest.valid


def test_snapshot_roundtrip():
    entry = MatchEntry(bits=77, mask=1, tag=2)
    cell = Cell(CellKind.POSTED_RECEIVE)
    cell.load(entry)
    assert cell.snapshot() == entry
