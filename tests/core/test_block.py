"""Unit tests for the cell block and its priority-mux tree."""

import pytest
from hypothesis import given, strategies as st

from repro.core.block import CellBlock, priority_select
from repro.core.cell import CellKind
from repro.core.match import MatchEntry, MatchRequest


def loaded_block(tags, size=8, kind=CellKind.POSTED_RECEIVE):
    """Block with cells 0..len(tags)-1 loaded; bits equal tag for ease."""
    block = CellBlock(kind, size)
    for i, tag in enumerate(tags):
        block.load(i, MatchEntry(bits=tag, mask=0, tag=tag))
    return block


# ------------------------------------------------------- priority_select
def test_priority_select_takes_highest_index():
    found, location, tag = priority_select(
        [True, False, True, False], [10, 11, 12, 13]
    )
    assert (found, location, tag) == (True, 2, 12)


def test_priority_select_no_match():
    found, _, _ = priority_select([False] * 4, [0, 1, 2, 3])
    assert not found


def test_priority_select_single_element():
    assert priority_select([True], [9]) == (True, 0, 9)
    assert priority_select([False], [9])[0] is False


def test_priority_select_requires_power_of_two():
    with pytest.raises(ValueError):
        priority_select([True, False, True], [1, 2, 3])
    with pytest.raises(ValueError):
        priority_select([], [])


def test_priority_select_length_mismatch():
    with pytest.raises(ValueError):
        priority_select([True, False], [1])


@given(st.lists(st.booleans(), min_size=1, max_size=64).filter(
    lambda flags: len(flags) & (len(flags) - 1) == 0
))
def test_priority_select_matches_naive_scan(flags):
    tags = list(range(len(flags)))
    found, location, tag = priority_select(flags, tags)
    expected = max((i for i, f in enumerate(flags) if f), default=None)
    if expected is None:
        assert not found
    else:
        assert (found, location, tag) == (True, expected, expected)


# --------------------------------------------------------------- matching
def test_block_match_prefers_oldest_cell():
    """Highest local index == oldest == MPI's 'first in list order'."""
    block = loaded_block([5, 5, 5, 7], size=4)
    block.register_request(MatchRequest(bits=5))
    matched, location, tag = block.match()
    assert (matched, location, tag) == (True, 2, 5)


def test_block_match_requires_registered_request():
    block = loaded_block([1], size=4)
    with pytest.raises(RuntimeError):
        block.match()


def test_block_match_with_explicit_request():
    block = loaded_block([3, 4], size=2)
    assert block.match(MatchRequest(bits=4)) == (True, 1, 4)
    assert block.match(MatchRequest(bits=9))[0] is False


@given(
    st.lists(st.integers(0, 3), min_size=0, max_size=8),
    st.integers(0, 3),
)
def test_block_vector_match_equals_priority_mux_tree(stored, probe):
    """The SWAR block-wide match must equal the hardware's mux tree fed
    with per-cell compare outputs, always."""
    block = loaded_block(stored, size=8)
    request = MatchRequest(bits=probe)
    cells = block.snapshot_cells()
    flags = [cell.match(request) for cell in cells]
    tags = [cell.tag for cell in cells]
    assert block.match(request)[:2] == priority_select(flags, tags)[:2]
    if block.match(request)[0]:
        assert block.match(request) == priority_select(flags, tags)


# --------------------------------------------------------------- shifting
def test_shift_up_through_deletes_and_compacts():
    block = loaded_block([10, 11, 12, 13], size=4)
    # delete local cell 2: cells 0..1 shift to 1..2, cell 0 empties
    block.shift_up_through(2, incoming=None)
    cells = block.snapshot_cells()
    assert [c.tag if c.valid else None for c in cells] == [None, 10, 11, 13]


def test_shift_up_through_with_incoming_latches_it():
    block = loaded_block([10, 11, 12, 13], size=4)
    incoming = (0, 0, 99, True)  # (bits, mask, tag, valid)
    block.shift_up_through(3, incoming)
    assert [c.tag for c in block.snapshot_cells()] == [99, 10, 11, 12]


def test_shift_returns_displaced_top():
    block = loaded_block([10, 11], size=2)
    bits, mask, tag, valid = block.shift_up_through(1, incoming=None)
    assert valid and tag == 11


def test_cell_tuple_round_trips_through_set_bottom():
    source = loaded_block([7], size=2)
    dest = CellBlock(CellKind.POSTED_RECEIVE, 2)
    dest.set_bottom(source.cell_tuple(0))
    assert dest.cell_tuple(0) == source.cell_tuple(0)
    assert dest.bottom_valid


# -------------------------------------------------------------- occupancy
def test_occupancy_and_holes():
    block = loaded_block([1, 2], size=8)
    assert block.occupancy == 2
    assert not block.is_full
    assert block.lowest_hole() == 2
    assert block.lowest_hole_above(0) == 2
    full = loaded_block(list(range(4)), size=4)
    assert full.is_full
    assert full.lowest_hole() is None
    assert full.lowest_hole_above(0) is None


def test_bottom_empty():
    block = CellBlock(CellKind.POSTED_RECEIVE, 4)
    assert block.bottom_empty
    block.load(0, MatchEntry(bits=0, mask=0, tag=0))
    assert not block.bottom_empty


def test_clear_cell_leaves_contents_stale():
    """Hardware drops only the valid bit; the stored tag stays visible to
    the no-match path (which reports lane 0's tag, valid or not)."""
    block = loaded_block([42], size=2)
    block.clear_cell(0)
    bits, mask, tag, valid = block.cell_tuple(0)
    assert not valid and tag == 42
    assert block.match(MatchRequest(bits=42)) == (False, 0, 42)


def test_unexpected_kind_does_not_store_mask():
    block = CellBlock(CellKind.UNEXPECTED, 2)
    block.load(0, MatchEntry(bits=5, mask=3, tag=1))
    bits, mask, _, _ = block.cell_tuple(0)
    assert (bits, mask) == (5, 0)


def test_load_rejects_overwidth_values():
    block = CellBlock(CellKind.POSTED_RECEIVE, 2, match_width=4, tag_width=4)
    with pytest.raises(ValueError):
        block.load(0, MatchEntry(bits=1 << 4, mask=0, tag=0))
    with pytest.raises(ValueError):
        block.load(0, MatchEntry(bits=0, mask=0, tag=1 << 4))


def test_block_size_must_be_power_of_two():
    with pytest.raises(ValueError):
        CellBlock(CellKind.POSTED_RECEIVE, 12)
    with pytest.raises(ValueError):
        CellBlock(CellKind.POSTED_RECEIVE, 0)
