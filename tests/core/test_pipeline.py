"""Unit tests for the ALPU pipeline timing model."""

import pytest

from repro.core.alpu import AlpuConfig
from repro.core.pipeline import AlpuTimingModel, match_latency_cycles


def test_latency_matches_every_published_design_point():
    """The Tables IV/V latency column, via the >8-blocks rule."""
    published = {
        (256, 8): 7,
        (256, 16): 7,
        (256, 32): 6,
        (128, 8): 7,
        (128, 16): 6,
        (128, 32): 6,
    }
    for (cells, block), latency in published.items():
        assert match_latency_cycles(cells, block) == latency


def test_latency_rejects_bad_geometry():
    with pytest.raises(ValueError):
        match_latency_cycles(100, 7)
    with pytest.raises(ValueError):
        match_latency_cycles(0, 8)


def test_conservative_model_pins_seven_cycles():
    """'The simulation results assume a 7 cycle pipelining latency.'"""
    timing = AlpuTimingModel()
    config = AlpuConfig(total_cells=128, block_size=32)  # geometric: 6
    assert timing.match_cycles(config) == 7


def test_geometric_model_uses_the_table_rule():
    timing = AlpuTimingModel(conservative_match_cycles=False)
    assert timing.match_cycles(AlpuConfig(total_cells=128, block_size=32)) == 6
    assert timing.match_cycles(AlpuConfig(total_cells=256, block_size=8)) == 7


def test_500mhz_durations():
    timing = AlpuTimingModel()
    config = AlpuConfig()
    assert timing.cycle_ps() == 2000
    assert timing.match_ps(config) == 14_000  # 7 cycles at 500 MHz
    assert timing.insert_ps() == 4_000  # every other cycle
    assert timing.command_ps() == 2_000
