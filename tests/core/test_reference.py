"""Unit tests for the golden linear match list."""

from repro.core.match import MatchEntry, MatchFormat, MatchRequest
from repro.core.reference import ReferenceMatchList

FMT = MatchFormat()


def entry(context, source, tag, payload):
    bits, mask = FMT.pack_receive(context, source, tag)
    return MatchEntry(bits=bits, mask=mask, tag=payload)


def test_first_match_wins_and_is_removed():
    queue = ReferenceMatchList()
    queue.append(entry(1, 2, 3, payload=10))
    queue.append(entry(1, 2, 3, payload=11))
    matched, traversed = queue.match(MatchRequest(FMT.pack(1, 2, 3)))
    assert matched.tag == 10
    assert traversed == 1
    assert [e.tag for e in queue] == [11]


def test_traversal_count_reflects_depth():
    queue = ReferenceMatchList()
    for i in range(5):
        queue.append(entry(1, 2, i, payload=i))
    matched, traversed = queue.match(MatchRequest(FMT.pack(1, 2, 4)))
    assert matched.tag == 4
    assert traversed == 5


def test_failed_match_traverses_everything():
    queue = ReferenceMatchList()
    for i in range(3):
        queue.append(entry(1, 2, i, payload=i))
    matched, traversed = queue.match(MatchRequest(FMT.pack(1, 2, 9)))
    assert matched is None
    assert traversed == 3
    assert len(queue) == 3  # nothing removed


def test_peek_match_does_not_remove():
    queue = ReferenceMatchList()
    queue.append(entry(1, 2, 3, payload=7))
    matched, _ = queue.peek_match(MatchRequest(FMT.pack(1, 2, 3)))
    assert matched.tag == 7
    assert len(queue) == 1


def test_remove_by_tag():
    queue = ReferenceMatchList()
    queue.append(entry(1, 2, 3, payload=5))
    queue.append(entry(1, 2, 4, payload=6))
    removed = queue.remove_by_tag(6)
    assert removed is not None
    assert [e.tag for e in queue] == [5]
    assert queue.remove_by_tag(99) is None


def test_snapshot_is_a_copy():
    queue = ReferenceMatchList()
    queue.append(entry(1, 2, 3, payload=1))
    snapshot = queue.snapshot()
    queue.clear()
    assert len(snapshot) == 1
    assert len(queue) == 0
