"""Property-based differential testing: ALPU vs the reference list.

The central correctness claim of the hardware is that, for *any*
interleaving of inserts and matches -- with wildcards, batched inserts,
and matches landing mid-batch -- the ALPU pairs requests with entries
exactly as an ordered linear list would.  Hypothesis drives both with the
same traffic and compares every response and the full survivor order.
"""

import dataclasses
from typing import List

from hypothesis import given, settings, strategies as st

from repro.core.alpu import Alpu, AlpuConfig, CompactionReach
from repro.core.cell import CellKind
from repro.core.commands import (
    Insert,
    MatchFailure,
    MatchSuccess,
    StartAcknowledge,
    StartInsert,
    StopInsert,
)
from repro.core.match import MatchEntry, MatchFormat, MatchRequest
from repro.core.reference import ReferenceMatchList

FMT = MatchFormat()

# keep the universe small so collisions (and wildcard hits) are common
contexts = st.integers(0, 1)
sources = st.integers(0, 3)
tags = st.integers(0, 3)


@dataclasses.dataclass(frozen=True)
class InsertOp:
    context: int
    source: int  # -1 = ANY_SOURCE (posted-receive direction)
    tag: int  # -1 = ANY_TAG


@dataclasses.dataclass(frozen=True)
class MatchOp:
    context: int
    source: int
    tag: int


insert_ops = st.builds(
    InsertOp,
    context=contexts,
    source=st.one_of(st.just(-1), sources),
    tag=st.one_of(st.just(-1), tags),
)
match_ops = st.builds(MatchOp, context=contexts, source=sources, tag=tags)
#: an operation trace; lists of inserts model batched insert mode
traces = st.lists(
    st.one_of(match_ops, st.lists(insert_ops, min_size=1, max_size=4)),
    min_size=1,
    max_size=60,
)

geometries = st.sampled_from([(8, 4), (16, 4), (16, 8), (32, 8), (64, 16)])
reaches = st.sampled_from([CompactionReach.BLOCK, CompactionReach.GLOBAL])


def run_differential(trace, total_cells, block_size, reach):
    alpu = Alpu(
        AlpuConfig(
            kind=CellKind.POSTED_RECEIVE,
            total_cells=total_cells,
            block_size=block_size,
            compaction_reach=reach,
        )
    )
    reference = ReferenceMatchList()
    next_tag = iter(range(1_000_000))

    for op in trace:
        if isinstance(op, MatchOp):
            request = MatchRequest(bits=FMT.pack(op.context, op.source, op.tag))
            responses = alpu.present_header(request)
            expected, _ = reference.match(request)
            assert len(responses) == 1
            if expected is None:
                assert responses == [MatchFailure()]
            else:
                assert responses == [MatchSuccess(tag=expected.tag)]
        else:  # batched inserts under one START/STOP INSERT pair
            acks = alpu.submit(StartInsert())
            assert acks == [StartAcknowledge(free_entries=alpu.free_entries)]
            assert acks[0].free_entries == total_cells - len(reference)
            for insert in op:
                if alpu.free_entries == 0:
                    break
                bits, mask = FMT.pack_receive(
                    insert.context, insert.source, insert.tag
                )
                tag = next(next_tag)
                alpu.submit(Insert(bits, mask, tag))
                reference.append(MatchEntry(bits=bits, mask=mask, tag=tag))
            alpu.submit(StopInsert())
        # survivor order must agree after every operation
        assert [e.tag for e in alpu.entries()] == [
            e.tag for e in reference.snapshot()
        ]


@settings(max_examples=200, deadline=None)
@given(trace=traces, geometry=geometries, reach=reaches)
def test_alpu_equals_reference_list(trace, geometry, reach):
    total_cells, block_size = geometry
    run_differential(trace, total_cells, block_size, reach)


@settings(max_examples=150, deadline=None)
@given(trace=traces)
def test_matches_arriving_mid_batch_preserve_order(trace):
    """Matches landing mid-batch: the held-failure protocol under fire.

    Requests presented during insert mode may be held; the ALPU resolves
    them lazily (after inserts, or at STOP INSERT).  The oracle applies
    each request to the reference list *at the moment the ALPU resolves
    it* -- so a held failure correctly sees entries inserted while it
    waited -- and every response must agree.
    """
    alpu = Alpu(AlpuConfig(total_cells=16, block_size=4))
    reference = ReferenceMatchList()
    next_tag = iter(range(1_000_000))
    unresolved: List[MatchRequest] = []

    def check(responses) -> None:
        """Pair emitted responses with waiting requests, oldest first."""
        for response in responses:
            if isinstance(response, StartAcknowledge):
                continue
            request = unresolved.pop(0)
            expected, _ = reference.match(request)
            if expected is None:
                assert response == MatchFailure()
            else:
                assert response == MatchSuccess(tag=expected.tag)

    for op in trace:
        if isinstance(op, MatchOp):
            request = MatchRequest(bits=FMT.pack(op.context, op.source, op.tag))
            unresolved.append(request)
            check(alpu.present_header(request))
        else:
            check(alpu.submit(StartInsert()))
            for insert in op:
                if alpu.free_entries == 0:
                    break
                bits, mask = FMT.pack_receive(
                    insert.context, insert.source, insert.tag
                )
                tag = next(next_tag)
                reference.append(MatchEntry(bits=bits, mask=mask, tag=tag))
                check(alpu.submit(Insert(bits, mask, tag)))
            check(alpu.submit(StopInsert()))

    assert not unresolved  # every request resolved by the final STOP INSERT
    assert [e.tag for e in alpu.entries()] == [e.tag for e in reference.snapshot()]


@settings(max_examples=100, deadline=None)
@given(
    trace=st.lists(match_ops, min_size=1, max_size=30),
    preload=st.lists(insert_ops, min_size=1, max_size=16),
)
def test_match_only_streams_never_duplicate_deliveries(trace, preload):
    """Every stored entry is delivered at most once (delete-on-match)."""
    alpu = Alpu(AlpuConfig(total_cells=16, block_size=4))
    alpu.submit(StartInsert())
    for i, insert in enumerate(preload[:16]):
        bits, mask = FMT.pack_receive(insert.context, insert.source, insert.tag)
        alpu.submit(Insert(bits, mask, i))
    alpu.submit(StopInsert())
    delivered = []
    for op in trace:
        request = MatchRequest(bits=FMT.pack(op.context, op.source, op.tag))
        for response in alpu.present_header(request):
            if isinstance(response, MatchSuccess):
                delivered.append(response.tag)
    assert len(delivered) == len(set(delivered))
