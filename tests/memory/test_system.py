"""Tests for the composed memory system, including the Table III bands."""

import pytest

from repro.memory.cache import CacheConfig
from repro.memory.system import MemorySystemConfig
from repro.proc.params import make_host_memory, make_nic_memory
from repro.sim.units import cycles_to_ps


def test_l1_hit_costs_zero_extra():
    memory = make_nic_memory()
    memory.access(0x1000)
    assert memory.access(0x1000) == 0


def test_nic_miss_lands_in_table_iii_band():
    """Load-to-use 30-32 cycles at 500 MHz for the common DRAM paths."""
    memory = make_nic_memory()
    cycle = cycles_to_ps(1, 500e6)
    # cold accesses to addresses in distinct rows: activate path
    stall_activate = memory.access(0x10_0000)
    # second access in the same (now open) row, different line: page hit
    stall_hit = memory.access(0x10_0000 + 64)
    assert 30 <= stall_activate / cycle <= 32
    assert 28 <= stall_hit / cycle <= 30


def test_nic_row_conflicts_exceed_the_band():
    """Open-row contention pushes latency above the nominal band."""
    memory = make_nic_memory()
    row = memory.config.dram.row_bytes
    banks = memory.config.dram.num_banks
    cycle = cycles_to_ps(1, 500e6)
    a, b = 0x20_0000, 0x20_0000 + row * banks  # same bank, different rows
    memory.access(a)
    conflict_stall = memory.access(b)
    assert conflict_stall / cycle > 32


def test_host_miss_lands_in_table_iii_band():
    """Load-to-use 85-93 cycles at 2 GHz for the common DRAM paths."""
    memory = make_host_memory()
    cycle = cycles_to_ps(1, 2e9)
    stall = memory.access(0x30_0000)
    assert 85 <= stall / cycle <= 93


def test_host_l2_absorbs_l1_evictions():
    memory = make_host_memory()
    memory.access(0x40_0000)
    # evict it from L1 by filling its set (2-way L1, 512 sets)
    sets = memory.l1.config.num_sets
    line = memory.l1.config.line_bytes
    memory.access(0x40_0000 + sets * line)
    memory.access(0x40_0000 + 2 * sets * line)
    # back to the original: L1 miss, L2 hit -- far cheaper than DRAM
    stall = memory.access(0x40_0000)
    assert stall == memory.config.l2_hit_ps


def test_dirty_writeback_without_l2_charges_dram():
    memory = make_nic_memory()
    sets = memory.l1.config.num_sets
    line = memory.l1.config.line_bytes
    ways = memory.l1.config.ways
    base = 0x50_0000
    memory.access(base, write=True)  # dirty
    # fill the set to evict the dirty line
    for way in range(ways):
        memory.access(base + (way + 1) * sets * line)
    assert memory.dram.accesses > ways + 1  # the write-back hit DRAM too


def test_multi_line_access_charges_each_line():
    memory = make_nic_memory()
    stall_two_lines = memory.access(0x60_0000, size=128)
    memory2 = make_nic_memory()
    stall_one_line = memory2.access(0x60_0000, size=64)
    assert stall_two_lines > stall_one_line


def test_warm_preloads_without_stall():
    memory = make_nic_memory()
    memory.warm(0x70_0000, 4096)
    total = sum(memory.access(0x70_0000 + off) for off in range(0, 4096, 64))
    assert total == 0


def test_invalid_access_size_rejected():
    with pytest.raises(ValueError):
        make_nic_memory().access(0, size=0)


def test_total_stall_accumulates():
    memory = make_nic_memory()
    memory.access(0x100)
    memory.access(0x100)
    assert memory.total_stall_ps > 0
    memory.reset_stats()
    assert memory.total_stall_ps == 0


def test_negative_config_rejected():
    with pytest.raises(ValueError):
        MemorySystemConfig(
            l1=CacheConfig(1024, 2, 64), miss_base_ps=-1
        )
