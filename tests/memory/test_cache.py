"""Unit tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.cache import Cache, CacheConfig


def small_cache(ways=2, sets=4, line=64):
    return Cache(CacheConfig(size_bytes=ways * sets * line, ways=ways, line_bytes=line))


def test_geometry():
    config = CacheConfig(size_bytes=32 * 1024, ways=64, line_bytes=64)
    assert config.num_sets == 8
    assert config.num_lines == 512


def test_bad_geometry_rejected():
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=1000, ways=3, line_bytes=64)
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=0, ways=1)


def test_first_access_misses_then_hits():
    cache = small_cache()
    assert cache.access(0x100).hit is False
    assert cache.access(0x100).hit is True
    assert cache.access(0x108).hit is True  # same line
    assert (cache.hits, cache.misses) == (2, 1)


def test_lru_eviction_within_set():
    cache = small_cache(ways=2, sets=1)
    cache.access(0 * 64)
    cache.access(1 * 64)
    cache.access(0 * 64)  # 0 becomes MRU; 1 is now LRU
    cache.access(2 * 64)  # evicts 1
    assert cache.contains(0 * 64)
    assert not cache.contains(1 * 64)
    assert cache.contains(2 * 64)


def test_dirty_eviction_reports_writeback_line():
    cache = small_cache(ways=1, sets=1)
    cache.access(0, write=True)
    result = cache.access(64)
    assert result.hit is False
    assert result.writeback_line == 0  # line index of the dirty victim
    assert cache.writebacks == 1


def test_clean_eviction_has_no_writeback():
    cache = small_cache(ways=1, sets=1)
    cache.access(0)
    result = cache.access(64)
    assert result.writeback_line is None


def test_write_hit_marks_dirty_for_later_eviction():
    cache = small_cache(ways=1, sets=1)
    cache.access(0)           # clean fill
    cache.access(0, write=True)  # dirty the resident line
    result = cache.access(64)
    assert result.writeback_line == 0


def test_touch_range_covers_all_lines():
    cache = small_cache(ways=8, sets=8)
    results = cache.touch_range(0, 64 * 3)
    assert len(results) == 3
    assert cache.touch_range(10, 1)[0].hit  # inside the first line
    assert len(cache.touch_range(60, 10)) == 2  # straddles a boundary
    assert cache.touch_range(0, 0) == []


def test_contains_does_not_disturb_lru():
    cache = small_cache(ways=2, sets=1)
    cache.access(0)
    cache.access(64)
    cache.contains(0)  # must NOT promote line 0
    cache.access(128)  # evicts true LRU: line 0
    assert not cache.contains(0)
    assert cache.contains(64)


def test_invalidate_all():
    cache = small_cache()
    cache.access(0)
    cache.access(64)
    assert cache.invalidate_all() == 2
    assert cache.occupancy == 0
    assert not cache.contains(0)


def test_hit_rate_and_reset():
    cache = small_cache()
    cache.access(0)
    cache.access(0)
    assert cache.hit_rate == 0.5
    cache.reset_stats()
    assert cache.accesses == 0
    assert Cache(CacheConfig(256, 2, 64)).hit_rate == 0.0


def test_sequential_working_set_beyond_capacity_thrashes():
    """LRU + repeated sequential scan over > capacity lines: zero hits."""
    cache = small_cache(ways=4, sets=4)  # 16 lines capacity
    lines = 24
    for _ in range(2):
        for i in range(lines):
            cache.access(i * 64)
    # second pass must miss everywhere (the defining LRU pathology the
    # paper's cache cliff is made of)
    assert cache.hits == 0
    assert cache.misses == 2 * lines


def test_working_set_within_capacity_all_hits_on_repeat():
    cache = small_cache(ways=4, sets=4)
    for i in range(16):
        cache.access(i * 64)
    cache.reset_stats()
    for i in range(16):
        cache.access(i * 64)
    assert cache.misses == 0


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=0x4000), min_size=1, max_size=200))
def test_occupancy_never_exceeds_capacity(addresses):
    cache = small_cache(ways=2, sets=4)
    for addr in addresses:
        cache.access(addr)
    assert cache.occupancy <= cache.config.num_lines
    # and every set respects its way bound
    for cache_set in cache._sets:
        assert len(cache_set) <= cache.config.ways


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=0x2000), min_size=1, max_size=100))
def test_immediate_re_access_always_hits(addresses):
    cache = small_cache()
    for addr in addresses:
        cache.access(addr)
        assert cache.access(addr).hit
