"""Unit tests for the address allocator."""

import pytest

from repro.memory.layout import AddressAllocator, align_up


def test_align_up():
    assert align_up(0, 64) == 0
    assert align_up(1, 64) == 64
    assert align_up(64, 64) == 64
    assert align_up(65, 128) == 128
    with pytest.raises(ValueError):
        align_up(5, 3)  # not a power of two
    with pytest.raises(ValueError):
        align_up(5, 0)


def test_allocations_are_aligned_and_disjoint():
    allocator = AddressAllocator(base=0x1000)
    blocks = [allocator.alloc(100, alignment=64) for _ in range(10)]
    for addr in blocks:
        assert addr % 64 == 0
    spans = sorted((addr, addr + 100) for addr in blocks)
    for (_, end), (start, _) in zip(spans, spans[1:]):
        assert start >= end


def test_free_list_recycles_exact_sizes():
    allocator = AddressAllocator()
    first = allocator.alloc(128, alignment=128)
    allocator.free(first, 128)
    assert allocator.alloc(128, alignment=128) == first
    # different size does not reuse the freed block
    other = allocator.alloc(64)
    assert other != first


def test_labelled_regions():
    allocator = AddressAllocator(base=0)
    addr = allocator.alloc(256, label="queue")
    assert allocator.region("queue") == (addr, 256)
    with pytest.raises(KeyError):
        allocator.region("nope")


def test_exhaustion_raises():
    allocator = AddressAllocator(base=0, size=256)
    allocator.alloc(128)
    with pytest.raises(MemoryError):
        allocator.alloc(256)


def test_invalid_requests_rejected():
    allocator = AddressAllocator()
    with pytest.raises(ValueError):
        allocator.alloc(0)
    with pytest.raises(ValueError):
        AddressAllocator(base=-1)


def test_bytes_allocated_tracks_bump_pointer():
    allocator = AddressAllocator(base=0)
    allocator.alloc(64, alignment=64)
    allocator.alloc(64, alignment=64)
    assert allocator.bytes_allocated == 128
