"""Unit tests for the open-row DRAM model."""

from repro.memory.dram import Dram, DramConfig


def test_idle_bank_pays_activate_plus_cas():
    dram = Dram()
    cfg = dram.config
    assert dram.access(0) == cfg.ras_ps + cfg.cas_ps
    assert dram.page_misses == 1


def test_open_row_hit_pays_cas_only():
    dram = Dram()
    cfg = dram.config
    dram.access(0)
    assert dram.access(8) == cfg.cas_ps  # same row
    assert dram.page_hits == 1


def test_row_conflict_pays_full_path():
    dram = Dram(DramConfig(num_banks=1, row_bytes=2048))
    cfg = dram.config
    dram.access(0)
    latency = dram.access(2048)  # same (only) bank, different row
    assert latency == cfg.precharge_ps + cfg.ras_ps + cfg.cas_ps
    assert dram.page_conflicts == 1


def test_banks_hold_independent_open_rows():
    dram = Dram(DramConfig(num_banks=4, row_bytes=2048))
    dram.access(0 * 2048)  # bank 0
    dram.access(1 * 2048)  # bank 1
    # returning to bank 0's open row is still a page hit
    assert dram.access(16) == dram.config.cas_ps


def test_interleaved_conflicting_streams_degrade():
    """Two streams on one bank, different rows: every access conflicts."""
    dram = Dram(DramConfig(num_banks=1, row_bytes=2048))
    dram.access(0)
    for _ in range(5):
        dram.access(2048)
        dram.access(0)
    assert dram.page_conflicts == 10
    assert dram.page_hits == 0


def test_close_all_rows_forces_reactivation():
    dram = Dram()
    dram.access(0)
    dram.close_all_rows()
    assert dram.access(0) == dram.config.ras_ps + dram.config.cas_ps


def test_stats_reset():
    dram = Dram()
    dram.access(0)
    dram.access(0)
    dram.reset_stats()
    assert dram.accesses == 0
