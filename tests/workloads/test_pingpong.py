"""Tests for the ping-pong workload."""

from repro.nic.nic import NicConfig
from repro.workloads.pingpong import PingPongParams, run_pingpong


def test_zero_byte_latency_is_sub_microsecond_and_stable():
    result = run_pingpong(
        NicConfig.baseline(), PingPongParams(iterations=6, warmup=2)
    )
    assert len(result.latencies_ns) == 6
    assert 300 < result.mean_ns < 1500
    # steady state: post-warmup samples are identical in a deterministic sim
    assert max(result.latencies_ns) - min(result.latencies_ns) < 100


def test_payload_increases_latency():
    small = run_pingpong(
        NicConfig.baseline(), PingPongParams(message_size=0, iterations=4, warmup=1)
    )
    big = run_pingpong(
        NicConfig.baseline(),
        PingPongParams(message_size=4096, iterations=4, warmup=1),
    )
    assert big.mean_ns > small.mean_ns + 500  # 4 KB at a few GB/s


def test_alpu_adds_small_constant_overhead_at_depth_one():
    baseline = run_pingpong(
        NicConfig.baseline(), PingPongParams(iterations=4, warmup=1)
    )
    alpu = run_pingpong(
        NicConfig.with_alpu(128, 16), PingPongParams(iterations=4, warmup=1)
    )
    delta = alpu.mean_ns - baseline.mean_ns
    assert 0 < delta < 200  # tens of nanoseconds, not microseconds
