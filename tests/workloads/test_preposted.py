"""Tests for the preposted-queue benchmark (small, fast configurations)."""

import pytest

from repro.nic.nic import NicConfig
from repro.workloads.preposted import PrepostedParams, run_preposted

FAST = dict(iterations=5, warmup=2)


def test_match_depth_computation():
    assert PrepostedParams(queue_length=10, traverse_fraction=1.0).match_depth == 9
    assert PrepostedParams(queue_length=10, traverse_fraction=0.0).match_depth == 0
    assert PrepostedParams(queue_length=11, traverse_fraction=0.5).match_depth == 5
    assert PrepostedParams(queue_length=1, traverse_fraction=1.0).match_depth == 0


def test_parameter_validation():
    with pytest.raises(ValueError):
        PrepostedParams(queue_length=0)
    with pytest.raises(ValueError):
        PrepostedParams(traverse_fraction=1.5)
    with pytest.raises(ValueError):
        PrepostedParams(iterations=0)


def test_baseline_latency_grows_with_depth():
    shallow = run_preposted(
        NicConfig.baseline(),
        PrepostedParams(queue_length=32, traverse_fraction=0.0, **FAST),
    )
    deep = run_preposted(
        NicConfig.baseline(),
        PrepostedParams(queue_length=32, traverse_fraction=1.0, **FAST),
    )
    assert deep.median_ns > shallow.median_ns + 200  # ~31 x 14 ns
    assert deep.entries_traversed > shallow.entries_traversed


def test_baseline_traversal_count_matches_depth():
    params = PrepostedParams(queue_length=16, traverse_fraction=1.0, **FAST)
    result = run_preposted(NicConfig.baseline(), params)
    # every timed ping traverses depth+1 = 16 entries
    assert result.entries_traversed == 16 * params.iterations


def test_alpu_is_flat_within_capacity():
    nic = NicConfig.with_alpu(total_cells=32, block_size=8)
    short = run_preposted(
        nic, PrepostedParams(queue_length=2, traverse_fraction=1.0, **FAST)
    )
    long = run_preposted(
        nic, PrepostedParams(queue_length=30, traverse_fraction=1.0, **FAST)
    )
    assert abs(long.median_ns - short.median_ns) < 30
    assert long.entries_traversed == 0  # the ALPU answered everything


def test_alpu_overflow_falls_back_to_software_suffix():
    nic = NicConfig.with_alpu(total_cells=32, block_size=8)
    result = run_preposted(
        nic, PrepostedParams(queue_length=48, traverse_fraction=1.0, **FAST)
    )
    # 48-entry queue, 32 in the ALPU: ~16 software entries per ping
    assert result.entries_traversed > 0
    baseline_equivalent = run_preposted(
        NicConfig.baseline(),
        PrepostedParams(queue_length=48, traverse_fraction=1.0, **FAST),
    )
    assert result.median_ns < baseline_equivalent.median_ns


def test_samples_are_deterministic():
    params = PrepostedParams(queue_length=8, traverse_fraction=1.0, **FAST)
    first = run_preposted(NicConfig.baseline(), params)
    second = run_preposted(NicConfig.baseline(), params)
    assert first.latencies_ns == second.latencies_ns
