"""Sparse all-to-all workload: deterministic peers, discipline-agnostic."""

import dataclasses

import pytest

from repro.nic.nic import NicConfig
from repro.nic.qdisc import QdiscConfig
from repro.workloads.alltoall import AlltoallParams, run_alltoall

FAST = AlltoallParams(num_ranks=6, degree=2, rounds=6)


def test_parameter_validation():
    with pytest.raises(ValueError):
        AlltoallParams(num_ranks=1)
    with pytest.raises(ValueError):
        AlltoallParams(num_ranks=4, degree=4)
    with pytest.raises(ValueError):
        AlltoallParams(rounds=0)


def test_peer_sets_are_seeded_and_self_free():
    params = AlltoallParams(num_ranks=8, degree=3, seed=5)
    first = params.peer_sets()
    second = params.peer_sets()
    assert first == second
    assert first != AlltoallParams(num_ranks=8, degree=3, seed=6).peer_sets()
    for rank, peers in enumerate(first):
        assert len(peers) == 3
        assert rank not in peers
        assert len(set(peers)) == 3


def test_rounds_complete_under_fifo_and_sharded():
    fifo = run_alltoall(NicConfig.baseline(), FAST)
    sharded = run_alltoall(
        dataclasses.replace(
            NicConfig.baseline(),
            qdisc=QdiscConfig(discipline="sharded", shard_key="flow"),
        ),
        FAST,
    )
    assert len(fifo.round_ns) == FAST.rounds
    assert len(sharded.round_ns) == FAST.rounds
    assert fifo.total_messages == sharded.total_messages == 6 * 2 * 6
    # same traffic, same fabric: the disciplines only reorder searches,
    # so the round times stay within interleaving noise of each other
    assert abs(fifo.median_ns - sharded.median_ns) < 0.25 * fifo.median_ns
