"""Tests for the many-rank halo-exchange workload and its sweep plumbing."""

import dataclasses

import pytest

from repro.network.faults import FaultConfig
from repro.nic.reliability import ReliabilityConfig
from repro.obs.telemetry import Telemetry
from repro.workloads.halo import HaloParams, run_halo
from repro.workloads.sweep import (
    HaloRow,
    SweepCache,
    SweepSpec,
    nic_preset,
    run_sweep,
)


def small_params(**overrides):
    kwargs = dict(ranks=8, topology="torus3d", iterations=2, warmup=1)
    kwargs.update(overrides)
    return HaloParams(**kwargs)


def test_params_validation():
    with pytest.raises(ValueError, match=">= 2 ranks"):
        HaloParams(ranks=1)
    with pytest.raises(ValueError, match="unknown topology"):
        HaloParams(topology="fat_tree")
    with pytest.raises(ValueError, match="invalid parameters"):
        HaloParams(iterations=0)


@pytest.mark.parametrize("topology", ["crossbar", "ring", "mesh2d", "torus3d"])
def test_halo_runs_on_every_preset(topology):
    result = run_halo(
        nic_preset("alpu128"), small_params(topology=topology)
    )
    assert len(result.latencies_ns) == 2  # the timed (post-warmup) iterations
    assert result.allreduce_value == 8 * 9 // 2
    assert topology in result.topology


def test_halo_deterministic_and_telemetry_free():
    """Two bare runs agree, and telemetry does not perturb latencies."""
    params = small_params()
    bare = run_halo(nic_preset("alpu128"), params)
    again = run_halo(nic_preset("alpu128"), params)
    assert bare.latencies_ns == again.latencies_ns
    bundle = Telemetry(tracing=False, timeline=True, health=True)
    instrumented = run_halo(nic_preset("alpu128"), params, telemetry=bundle)
    assert instrumented.latencies_ns == bare.latencies_ns
    assert instrumented.metrics is not None
    assert bundle.health_verdict() == "healthy"


def test_halo_recovers_under_faults_with_clean_control():
    params = small_params()
    nic = nic_preset("alpu128")
    nic = dataclasses.replace(nic, reliability=ReliabilityConfig(enabled=True))
    faulty = run_halo(
        nic, params, faults=FaultConfig(seed=3, drop_rate=0.02)
    )
    assert faulty.retransmits > 0
    assert faulty.allreduce_value == 8 * 9 // 2
    control = run_halo(nic, params)
    assert control.retransmits == 0
    assert control.allreduce_value == faulty.allreduce_value


def test_16_rank_sweep_serial_vs_parallel_bit_identical():
    """The satellite-3 pin: a 16-rank topology sweep produces identical
    rows serially and fanned out, and the cache round-trips them."""
    spec = SweepSpec.halo(
        ("alpu128",),
        (16,),
        ("crossbar", "torus3d"),
        iterations=2,
        warmup=1,
    )
    cache = SweepCache()
    serial = run_sweep(spec, cache=cache)
    fanned = run_sweep(spec, workers=2)
    assert serial == fanned
    assert all(isinstance(row, HaloRow) for row in serial)
    assert [row.topology for row in serial] == ["crossbar", "torus3d"]
    # cache round trip (CACHE_VERSION 5 keys)
    again = run_sweep(spec, cache=cache)
    assert again == serial
    assert cache.hits == len(serial)


def test_cache_key_covers_topology():
    """Both topology channels -- the halo params axis and the spec-level
    override for the 2-rank benchmarks -- land in the cache key."""
    spec = SweepSpec.halo(("alpu128",), (8,), ("crossbar",))
    preset, params = spec.points()[0]
    base = SweepCache.key(spec, preset, params)
    assert SweepCache.key(spec, preset, {**params, "topology": "ring"}) != base
    pp_spec = SweepSpec.preposted(("alpu128",), (4,), (1.0,))
    pp_preset, pp_params = pp_spec.points()[0]
    pp_base = SweepCache.key(pp_spec, pp_preset, pp_params)
    routed = dataclasses.replace(pp_spec, topology="torus3d")
    assert SweepCache.key(routed, pp_preset, pp_params) != pp_base


def test_two_rank_benchmarks_accept_topology_override():
    """spec.topology reroutes the classic benchmarks' fabric; on two
    nodes every preset is one hop, so latencies match the crossbar."""
    base_spec = SweepSpec.preposted(
        ("alpu128",), (4,), (1.0,), iterations=3, warmup=1
    )
    routed_spec = dataclasses.replace(base_spec, topology="ring")
    base_rows = run_sweep(base_spec)
    routed_rows = run_sweep(routed_spec)
    assert [r.latency_ns for r in base_rows] == [
        r.latency_ns for r in routed_rows
    ]


def test_fabric_sweep_rows_carry_snapshots_and_key_the_cache():
    """fabric=True threads per-hop observability through the executor:
    rows carry the fabric snapshot, latencies stay bit-identical to the
    bare sweep, and the flag lands in the cache key."""
    bare_spec = SweepSpec.halo(
        ("alpu128",), (8,), ("torus3d",), iterations=2, warmup=1
    )
    spec = dataclasses.replace(bare_spec, fabric=True)
    assert SweepSpec.halo(
        ("alpu128",), (8,), ("torus3d",), iterations=2, warmup=1, fabric=True
    ) == spec  # the factory passes the flag through
    (row,) = run_sweep(spec)
    assert row.fabric["packets_injected"] == row.fabric["packets_delivered"]
    assert row.fabric["topology"]["preset"] == "torus3d"
    (bare,) = run_sweep(bare_spec)
    assert bare.fabric is None
    assert bare.latency_ns == row.latency_ns  # zero perturbation
    preset, params = spec.points()[0]
    assert SweepCache.key(spec, preset, params) != SweepCache.key(
        bare_spec, preset, params
    )
