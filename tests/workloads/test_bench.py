"""The benchmark regression baseline: write/check round trip and CLI."""

import json

import pytest

from repro.workloads import bench
from repro.workloads.bench import (
    check_baseline,
    run_grid,
    write_artifacts,
    write_baseline,
)


@pytest.fixture(scope="module")
def grid_records():
    """One grid run shared by the whole module (the grid is ~seconds)."""
    return run_grid()


@pytest.fixture()
def baseline_path(tmp_path, grid_records):
    path = tmp_path / "baseline.json"
    payload = {"version": bench.BASELINE_VERSION, "grid": grid_records}
    path.write_text(json.dumps(payload))
    return path


class TestGrid:
    def test_grid_records_shape(self, grid_records):
        assert len(grid_records) == len(bench.GRID)
        ids = [record["id"] for record in grid_records]
        assert len(set(ids)) == len(ids)
        for record in grid_records:
            assert record["latencies_ns"], record["id"]
            assert record["events"] > 0
            assert record["events_per_sec"] > 0

    def test_point_ids_omit_iteration_axes(self):
        point = bench._point_id("preposted", "baseline", bench.GRID[0][2])
        assert "iterations" not in point and "warmup" not in point

    def test_committed_baseline_matches_a_fresh_run(self, grid_records):
        # the repo-root BENCH_baseline.json is the real regression gate
        ok, messages = check_baseline(bench.DEFAULT_PATH, grid_records)
        assert ok, "\n".join(messages)


class TestCheck:
    def test_round_trip_passes(self, tmp_path, grid_records):
        path = tmp_path / "baseline.json"
        write_baseline(str(path))
        ok, messages = check_baseline(str(path), grid_records)
        assert ok
        assert all(m.startswith(("ok", "WARN")) for m in messages)

    def test_tampered_latency_fails(self, baseline_path, grid_records):
        payload = json.loads(baseline_path.read_text())
        payload["grid"][0]["latencies_ns"][0] += 1.0
        baseline_path.write_text(json.dumps(payload))
        ok, messages = check_baseline(str(baseline_path), grid_records)
        assert not ok
        assert any(m.startswith("FAIL") and "latencies" in m for m in messages)

    def test_stale_baseline_point_fails(self, baseline_path, grid_records):
        payload = json.loads(baseline_path.read_text())
        extra = dict(payload["grid"][0], id="preposted/retired/q=99")
        payload["grid"].append(extra)
        baseline_path.write_text(json.dumps(payload))
        ok, messages = check_baseline(str(baseline_path), grid_records)
        assert not ok
        assert any("not in the grid" in m for m in messages)

    def test_missing_baseline_point_fails(self, baseline_path, grid_records):
        payload = json.loads(baseline_path.read_text())
        payload["grid"].pop()
        baseline_path.write_text(json.dumps(payload))
        ok, messages = check_baseline(str(baseline_path), grid_records)
        assert not ok
        assert any("not in baseline" in m for m in messages)

    def test_wallclock_regression_warns_but_passes(
        self, baseline_path, grid_records
    ):
        payload = json.loads(baseline_path.read_text())
        for record in payload["grid"]:
            record["events_per_sec"] = record["events_per_sec"] * 100
        baseline_path.write_text(json.dumps(payload))
        ok, messages = check_baseline(str(baseline_path), grid_records)
        assert ok  # wall clock warns by default
        assert any(m.startswith("WARN") for m in messages)

    def test_wallclock_regression_fails_when_gated(
        self, baseline_path, grid_records
    ):
        payload = json.loads(baseline_path.read_text())
        for record in payload["grid"]:
            record["events_per_sec"] = record["events_per_sec"] * 100
        baseline_path.write_text(json.dumps(payload))
        ok, messages = check_baseline(
            str(baseline_path), grid_records, fail_on_wallclock=True
        )
        assert not ok
        assert any(
            m.startswith("FAIL") and "events/s" in m for m in messages
        )
        # latencies themselves still pass: only the wall-clock axis trips
        assert any(m.startswith("ok") for m in messages)

    def test_tolerance_band_is_per_point(self, baseline_path, grid_records):
        """A point's committed band overrides the default: a wide band
        swallows a slowdown the default would flag."""
        payload = json.loads(baseline_path.read_text())
        for record in payload["grid"]:
            record["events_per_sec"] = record["events_per_sec"] * 100
            record["events_per_sec_tolerance"] = 0.999
        baseline_path.write_text(json.dumps(payload))
        ok, messages = check_baseline(
            str(baseline_path), grid_records, fail_on_wallclock=True
        )
        assert ok, "\n".join(messages)
        assert not any("events/s" in m for m in messages)


class TestCli:
    def test_write_then_check_exit_codes(self, tmp_path, capsys):
        path = str(tmp_path / "baseline.json")
        assert bench.main(["--write", path]) == 0
        assert "wrote" in capsys.readouterr().out
        assert bench.main(["--check", path]) == 0
        assert "check passed" in capsys.readouterr().out

    def test_check_fails_on_drift(self, tmp_path, baseline_path, capsys):
        payload = json.loads(baseline_path.read_text())
        payload["grid"][0]["latencies_ns"] = [1.0]
        baseline_path.write_text(json.dumps(payload))
        assert bench.main(["--check", str(baseline_path)]) == 1
        assert "FAILED" in capsys.readouterr().out


@pytest.mark.slow
class TestArtifacts:
    def test_write_artifacts_produces_reports_and_traces(self, tmp_path):
        out = tmp_path / "artifacts"
        written = write_artifacts(str(out))
        names = sorted(p.name for p in out.iterdir())
        assert names == [
            "attribution.json",
            "attribution_alpu128.txt",
            "attribution_baseline.txt",
            "lifecycle_trace_alpu128.json",
            "lifecycle_trace_baseline.json",
            "run_report.html",
            "run_report.json",
            "run_report.txt",
        ]
        assert len(written) == 8
        report = json.loads((out / "attribution.json").read_text())
        for preset in ("baseline", "alpu128"):
            for message in report[preset]["messages"]:
                assert (
                    sum(message["stages_ps"].values())
                    == message["end_to_end_ps"]
                )
        text = (out / "attribution_baseline.txt").read_text()
        assert "match_search" in text
        trace = json.loads(
            (out / "lifecycle_trace_baseline.json").read_text()
        )
        assert trace["traceEvents"]
        html = (out / "run_report.html").read_text()
        assert "Run report" in html and "healthy" in html
        report = json.loads((out / "run_report.json").read_text())
        assert report["version"] == 3
        assert report["health"]["verdict"] == "healthy"
        assert report["attribution"]["aggregate"]["count"] > 0


class TestCompare:
    """The before/after join against a frozen pre-vectorization grid."""

    @pytest.fixture()
    def before_path(self, tmp_path, grid_records):
        """A doctored before file: point 0 ran at half speed (a 2.00x
        speedup today), point 1 is absent (a new grid point), point 2
        carries a tampered simulated latency (drift)."""
        grid = [json.loads(json.dumps(record)) for record in grid_records]
        grid[0]["events_per_sec"] /= 2
        grid[2]["latencies_ns"] = [v + 1.0 for v in grid[2]["latencies_ns"]]
        del grid[1]
        path = tmp_path / "before.json"
        path.write_text(
            json.dumps({"version": bench.BASELINE_VERSION, "grid": grid})
        )
        return path

    def test_compare_rows(self, before_path, grid_records):
        rows = bench.compare_records(str(before_path), grid_records)
        assert len(rows) == len(grid_records)
        by_id = {row["id"]: row for row in rows}
        sped_up = by_id[grid_records[0]["id"]]
        assert sped_up["speedup"] == pytest.approx(2.0)
        assert sped_up["latencies_identical"] is True
        new_point = by_id[grid_records[1]["id"]]
        assert new_point["before_events_per_sec"] is None
        assert new_point["speedup"] is None
        assert new_point["latencies_identical"] is None
        drifted = by_id[grid_records[2]["id"]]
        assert drifted["latencies_identical"] is False

    def test_markdown_table(self, before_path, grid_records):
        rows = bench.compare_records(str(before_path), grid_records)
        table = bench.format_comparison_markdown(rows)
        assert table.startswith("| grid point |")
        assert "2.00x" in table
        assert "new point" in table
        assert "**DRIFTED**" in table

    def test_committed_before_grid_is_latency_identical(self, grid_records):
        # bit-identity against the frozen pre-vectorization grid: the
        # SWAR core and event-engine work must not change what the
        # simulator computes, only how fast the host computes it
        rows = bench.compare_records(bench.BEFORE_PATH, grid_records)
        assert rows, "before grid joined no points"
        joined = [row for row in rows if row["latencies_identical"] is not None]
        assert joined, "before grid joined no points"
        for row in joined:
            assert row["latencies_identical"] is True, row["id"]
        # grid points added after the freeze join as "new point"; the
        # deep-queue anchor is the only one so far
        new_points = [
            row["id"] for row in rows if row["latencies_identical"] is None
        ]
        assert new_points == ["unexpected/baseline/queue_length=512"]

    def test_cli_compare_fails_on_drift(
        self, baseline_path, before_path, capsys
    ):
        status = bench.main(
            ["--check", str(baseline_path), "--compare", str(before_path)]
        )
        assert status == 1
        out = capsys.readouterr().out
        assert "DRIFTED" in out

    def test_cli_speedup_gate_and_markdown_file(
        self, tmp_path, grid_records, baseline_path, capsys
    ):
        grid = [json.loads(json.dumps(record)) for record in grid_records]
        grid[0]["events_per_sec"] /= 2
        before = tmp_path / "before_clean.json"
        before.write_text(
            json.dumps({"version": bench.BASELINE_VERSION, "grid": grid})
        )
        table_path = tmp_path / "table.md"
        argv = [
            "--check", str(baseline_path),
            "--compare", str(before),
            "--markdown", str(table_path),
            "--require-speedup", "1.5",
        ]
        assert bench.main(argv) == 0
        assert "speedup gate passed" in capsys.readouterr().out
        assert table_path.read_text().startswith("| grid point |")
        assert bench.main(argv[:-2] + ["--require-speedup", "1000"]) == 1
        assert "speedup gate FAILED" in capsys.readouterr().out
