"""Tests for the generic grid-sweep executor (SweepSpec / run_sweep)."""

import dataclasses

import pytest

from repro.workloads.sweep import (
    PrepostedRow,
    SweepCache,
    SweepSpec,
    UnexpectedRow,
    run_sweep,
)


def _small_preposted_spec(**overrides):
    kwargs = dict(iterations=3, warmup=1)
    kwargs.update(overrides)
    return SweepSpec.preposted(
        ("baseline", "alpu128"), (1, 4), (0.0, 1.0), **kwargs
    )


def test_points_expand_in_legacy_order():
    spec = _small_preposted_spec()
    points = spec.points()
    assert [(preset, p["queue_length"], p["traverse_fraction"]) for preset, p in points] == [
        ("baseline", 1, 0.0),
        ("baseline", 1, 1.0),
        ("baseline", 4, 0.0),
        ("baseline", 4, 1.0),
        ("alpu128", 1, 0.0),
        ("alpu128", 1, 1.0),
        ("alpu128", 4, 0.0),
        ("alpu128", 4, 1.0),
    ]
    # fixed parameters ride on every point
    assert all(p["iterations"] == 3 and p["warmup"] == 1 for _, p in points)


def test_unknown_benchmark_rejected():
    with pytest.raises(ValueError, match="unknown benchmark"):
        SweepSpec(benchmark="allreduce", presets=("baseline",), axes=())


def test_parallel_rows_bit_identical_to_serial():
    spec = _small_preposted_spec()
    serial = run_sweep(spec)
    fanned = run_sweep(spec, workers=2)
    assert serial == fanned
    assert all(isinstance(row, PrepostedRow) for row in fanned)


def test_parallel_unexpected_matches_serial():
    spec = SweepSpec.unexpected(
        ("baseline", "alpu128"), (0, 2), iterations=3, warmup=1
    )
    serial = run_sweep(spec)
    fanned = run_sweep(spec, workers=2)
    assert serial == fanned
    assert all(isinstance(row, UnexpectedRow) for row in fanned)


def test_cache_skips_rerun_and_returns_identical_rows():
    spec = _small_preposted_spec()
    cache = SweepCache()
    first = run_sweep(spec, cache=cache)
    assert cache.misses == len(first) and cache.hits == 0
    again = run_sweep(spec, cache=cache)
    assert again == first
    # every point was served from the cache the second time
    assert cache.hits == len(first)
    assert cache.misses == len(first)


def test_cache_key_distinguishes_configurations():
    spec = _small_preposted_spec()
    preset, params = spec.points()[0]
    base = SweepCache.key(spec, preset, params)
    assert SweepCache.key(spec, "alpu256", params) != base
    assert SweepCache.key(spec, preset, {**params, "iterations": 4}) != base
    other = dataclasses.replace(spec, telemetry=True)
    assert SweepCache.key(other, preset, params) != base
    # same content hashes the same, regardless of object identity
    assert SweepCache.key(_small_preposted_spec(), preset, dict(params)) == base


def test_file_backed_cache_round_trips(tmp_path):
    path = tmp_path / "cache" / "sweep.json"
    spec = SweepSpec.preposted(("baseline",), (2,), (1.0,), iterations=3, warmup=1)
    first = run_sweep(spec, cache=SweepCache(str(path)))
    assert path.exists()
    reloaded = SweepCache(str(path))
    assert len(reloaded) == 1
    again = run_sweep(spec, cache=reloaded)
    assert again == first
    assert reloaded.hits == 1 and reloaded.misses == 0


def test_cache_and_workers_compose():
    spec = _small_preposted_spec()
    cache = SweepCache()
    first = run_sweep(spec, workers=2, cache=cache)
    again = run_sweep(spec, workers=2, cache=cache)
    assert again == first and cache.hits == len(first)
