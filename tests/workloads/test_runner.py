"""Tests for presets and sweep helpers."""

import json

import pytest

from repro.workloads.runner import (
    PRESETS,
    dump_telemetry,
    nic_preset,
    rows_by_preset,
    sweep_preposted,
    sweep_unexpected,
)


def test_presets_build_the_papers_three_receivers():
    baseline = nic_preset("baseline")
    assert not baseline.firmware.use_alpu
    alpu128 = nic_preset("alpu128")
    assert alpu128.alpu_posted.total_cells == 128
    alpu256 = nic_preset("alpu256", block_size=32)
    assert alpu256.alpu_posted.total_cells == 256
    assert alpu256.alpu_posted.block_size == 32
    assert alpu256.alpu_unexpected.total_cells == 256


def test_unknown_preset_rejected():
    with pytest.raises(ValueError, match="unknown preset"):
        nic_preset("alpu512")


def test_sweep_preposted_produces_the_grid():
    rows = sweep_preposted(
        ["baseline"], [1, 4], [0.0, 1.0], iterations=3, warmup=1
    )
    assert len(rows) == 4
    assert {(r.queue_length, r.traverse_fraction) for r in rows} == {
        (1, 0.0), (1, 1.0), (4, 0.0), (4, 1.0)
    }
    assert all(r.latency_ns > 0 for r in rows)


def test_sweep_unexpected_produces_the_grid():
    rows = sweep_unexpected(["baseline", "alpu128"], [0, 2], iterations=3, warmup=1)
    assert len(rows) == 4
    assert [r.preset for r in rows] == ["baseline", "baseline", "alpu128", "alpu128"]


def test_rows_by_preset_groups_in_order():
    rows = sweep_unexpected(["baseline", "alpu128"], [0], iterations=3, warmup=1)
    grouped = rows_by_preset(rows)
    assert list(grouped) == ["baseline", "alpu128"]
    assert all(len(v) == 1 for v in grouped.values())


def test_presets_tuple_matches_figures():
    assert PRESETS == ("baseline", "alpu128", "alpu256")


def test_dump_telemetry_creates_parent_directories(tmp_path):
    rows = sweep_unexpected(["baseline"], [0], iterations=3, warmup=1)
    path = tmp_path / "results" / "2026-08" / "fig6.json"
    dump_telemetry(rows, str(path), benchmark="unexpected")
    report = json.loads(path.read_text())
    assert report["meta"] == {"benchmark": "unexpected"}
    assert len(report["rows"]) == 1
