"""Unit tests for the ALPU core-op microbenchmark workload."""

import pytest

from repro.workloads.alpucore import AlpuCoreParams, run_alpucore


def small_params(**overrides):
    defaults = dict(
        cells=8,
        block_size=8,
        miss_every=4,
        wildcard_every=4,
        iterations=2,
        warmup=1,
    )
    defaults.update(overrides)
    return AlpuCoreParams(**defaults)


def test_counts_ops_and_rounds():
    result = run_alpucore(small_params())
    # two timed rounds, each: 8 inserts + 8 matches + 2 miss probes
    assert len(result.latencies_ns) == 2
    assert result.ops == 2 * (8 + 8 + 2)
    assert result.median_ns > 0


def test_rounds_are_deterministic():
    params = small_params()
    first = run_alpucore(params)
    # steady-state rounds are protocol-identical, and a re-run is
    # bit-identical -- the property the pinned baseline leans on
    assert first.latencies_ns[0] == first.latencies_ns[1]
    assert run_alpucore(params).latencies_ns == first.latencies_ns


def test_geometry_changes_latency_not_correctness():
    whole = run_alpucore(small_params(cells=16, block_size=16, iterations=1))
    split = run_alpucore(small_params(cells=16, block_size=4, iterations=1))
    assert whole.ops == split.ops
    # cross-block compaction costs pipeline cycles, so the split
    # geometry cannot be faster in simulated time
    assert split.median_ns >= whole.median_ns


@pytest.mark.parametrize(
    "overrides",
    [
        dict(cells=0),
        dict(miss_every=0),
        dict(wildcard_every=0),
        dict(iterations=0),
        dict(warmup=-1),
    ],
)
def test_invalid_params_rejected(overrides):
    with pytest.raises(ValueError):
        small_params(**overrides)


def test_non_power_of_two_block_rejected_at_run():
    with pytest.raises(ValueError):
        run_alpucore(small_params(block_size=3))
