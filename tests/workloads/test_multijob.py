"""Multi-job NIC sharing: the qdisc layer must isolate the latency job."""

import dataclasses

import pytest

from repro.nic.nic import NicConfig
from repro.nic.qdisc import QdiscConfig
from repro.nic.reliability import ReliabilityConfig
from repro.workloads.multijob import MultijobParams, run_multijob

FAST = MultijobParams(iterations=25, warmup=3, hog_messages=250)


def test_parameter_validation():
    with pytest.raises(ValueError):
        MultijobParams(iterations=0)
    with pytest.raises(ValueError):
        MultijobParams(hog_burst=0)
    with pytest.raises(ValueError):
        MultijobParams(hog_service_ns=-1.0)


def test_hogless_run_is_plain_pingpong():
    result = run_multijob(
        NicConfig.baseline(),
        MultijobParams(iterations=25, warmup=3, hog_messages=0),
    )
    assert len(result.latencies_ns) == 25
    assert result.max_unexpected_depth <= 2
    assert 300 < result.median_ns < 2500


def test_sharding_and_admission_shield_the_latency_job():
    """The headline isolation result: under FIFO the pinger's postings
    walk the hog's backlog; sharded + admission + host priority keep the
    round trip near its unloaded latency."""
    exposed = run_multijob(NicConfig.baseline(), FAST)
    shielded = run_multijob(
        dataclasses.replace(
            NicConfig.baseline(),
            qdisc=QdiscConfig(
                discipline="sharded",
                max_unexpected=32,
                admission_policy="nack",
                host_priority=True,
            ),
            reliability=ReliabilityConfig(enabled=True),
        ),
        FAST,
    )
    assert exposed.refused == 0
    assert shielded.refused > 0
    assert exposed.max_unexpected_depth > shielded.max_unexpected_depth
    assert shielded.median_ns < exposed.median_ns
