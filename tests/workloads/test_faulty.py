"""The faulty sweep preset: completion under loss, health verdicts,
cache-key hygiene."""

from repro.network.faults import FaultConfig
from repro.obs.health import has_finding, verdict_of
from repro.workloads.faulty import (
    LOSS_RATES,
    STORM_LOSS_RATE,
    _retransmits,
    faulty_spec,
)
from repro.workloads.sweep import SweepCache, SweepSpec, run_sweep


def test_loss_rates_are_the_figure_5_points():
    assert LOSS_RATES == (0.0, 1e-3, 1e-2)


def test_tiny_faulty_sweep_completes_with_retransmits():
    spec = faulty_spec(
        1e-2, presets=("baseline",), queue_lengths=(4,), iterations=30, warmup=2
    )
    rows = run_sweep(spec)
    assert len(rows) == 1
    assert rows[0].latency_ns > 0
    assert _retransmits(rows) > 0


def test_zero_loss_faulty_sweep_sees_no_retransmits():
    spec = faulty_spec(
        0.0, presets=("baseline",), queue_lengths=(4,), iterations=6, warmup=1
    )
    rows = run_sweep(spec)
    assert rows[0].latency_ns > 0
    assert _retransmits(rows) == 0


def test_cache_key_distinguishes_fault_configurations():
    base = SweepSpec.preposted(("baseline",), (4,), (1.0,), iterations=6, warmup=1)
    lossy = SweepSpec.preposted(
        ("baseline",),
        (4,),
        (1.0,),
        iterations=6,
        warmup=1,
        faults=FaultConfig(seed=1, drop_rate=1e-2),
    )
    reseeded = SweepSpec.preposted(
        ("baseline",),
        (4,),
        (1.0,),
        iterations=6,
        warmup=1,
        faults=FaultConfig(seed=2, drop_rate=1e-2),
    )
    preset, params = base.points()[0]
    keys = {
        SweepCache.key(spec, preset, params) for spec in (base, lossy, reseeded)
    }
    assert len(keys) == 3, "faults (including the seed) must key the cache"


def test_faulty_sweep_rows_are_reproducible():
    spec = faulty_spec(
        1e-2, presets=("baseline",), queue_lengths=(4,), iterations=10, warmup=1
    )
    assert run_sweep(spec) == run_sweep(spec)


def test_zero_fault_rows_carry_a_clean_health_verdict():
    spec = faulty_spec(
        0.0, presets=("baseline",), queue_lengths=(4,), iterations=6, warmup=1
    )
    (row,) = run_sweep(spec)
    assert row.health == {"verdict": "healthy", "findings": []}
    assert verdict_of(row.health["findings"]) == "healthy"


def test_storm_loss_rate_raises_retransmit_storm_deterministically():
    point = dict(
        presets=("baseline",), queue_lengths=(8,), iterations=40, warmup=2
    )
    (row,) = run_sweep(faulty_spec(STORM_LOSS_RATE, **point))
    assert row.health is not None
    assert row.health["verdict"] == "warning"
    assert has_finding(row.health["findings"], "retransmit_storm")
    # findings are JSON-shaped dicts with the full evidence span
    finding = next(
        f for f in row.health["findings"] if f["code"] == "retransmit_storm"
    )
    assert finding["value"] >= finding["threshold"]
    assert finding["end_ps"] > finding["start_ps"]
    # deterministic under the pinned seed: a rerun reports the same health
    (again,) = run_sweep(faulty_spec(STORM_LOSS_RATE, **point))
    assert again.health == row.health


def test_telemetry_off_means_no_health_field():
    spec = faulty_spec(
        0.0,
        presets=("baseline",),
        queue_lengths=(4,),
        iterations=6,
        warmup=1,
        telemetry=False,
    )
    (row,) = run_sweep(spec)
    assert row.health is None
