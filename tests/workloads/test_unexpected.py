"""Tests for the unexpected-queue benchmark (small, fast configurations)."""

import pytest

from repro.nic.nic import NicConfig
from repro.workloads.unexpected import UnexpectedParams, run_unexpected

FAST = dict(iterations=5, warmup=2)


def test_parameter_validation():
    with pytest.raises(ValueError):
        UnexpectedParams(queue_length=-1)
    with pytest.raises(ValueError):
        UnexpectedParams(iterations=0)


def test_zero_fillers_matches_plain_latency():
    result = run_unexpected(NicConfig.baseline(), UnexpectedParams(queue_length=0, **FAST))
    assert 300 < result.median_ns < 1500


def test_baseline_latency_grows_with_unexpected_queue():
    short = run_unexpected(
        NicConfig.baseline(), UnexpectedParams(queue_length=4, **FAST)
    )
    long = run_unexpected(
        NicConfig.baseline(), UnexpectedParams(queue_length=96, **FAST)
    )
    assert long.median_ns > short.median_ns + 400
    assert long.entries_traversed > short.entries_traversed


def test_alpu_flattens_the_unexpected_search():
    nic = NicConfig.with_alpu(total_cells=128, block_size=16)
    short = run_unexpected(nic, UnexpectedParams(queue_length=4, **FAST))
    long = run_unexpected(nic, UnexpectedParams(queue_length=96, **FAST))
    assert abs(long.median_ns - short.median_ns) < 60
    assert long.entries_traversed == 0


def test_alpu_beats_baseline_on_long_queues():
    length = 96
    baseline = run_unexpected(
        NicConfig.baseline(), UnexpectedParams(queue_length=length, **FAST)
    )
    alpu = run_unexpected(
        NicConfig.with_alpu(128, 16), UnexpectedParams(queue_length=length, **FAST)
    )
    assert alpu.median_ns < baseline.median_ns


def test_alpu_costs_tens_of_ns_on_short_queues():
    """'With short unexpected message queues, the ALPU appears to show a
    small loss in latency performance (a few tens of nanoseconds).'"""
    baseline = run_unexpected(
        NicConfig.baseline(), UnexpectedParams(queue_length=2, **FAST)
    )
    alpu = run_unexpected(
        NicConfig.with_alpu(128, 16), UnexpectedParams(queue_length=2, **FAST)
    )
    delta = alpu.median_ns - baseline.median_ns
    assert 0 <= delta < 150
