"""Wildcard-storm workload tests.

Tier-1 runs scaled-down storms (hundreds of messages, ~a second); the
``slow`` marker carries the million-message acceptance run and the
discipline comparison that measures the depth-vs-latency cliff.
"""

import dataclasses

import pytest

from repro.nic.nic import NicConfig
from repro.nic.qdisc import QdiscConfig
from repro.nic.reliability import ReliabilityConfig
from repro.obs.health import has_finding
from repro.obs.telemetry import Telemetry
from repro.workloads.storm import StormParams, run_storm


def _admission_nic(threshold: int = 32, policy: str = "nack") -> NicConfig:
    return dataclasses.replace(
        NicConfig.baseline(),
        qdisc=QdiscConfig(
            discipline="sharded",
            max_unexpected=threshold,
            admission_policy=policy,
            host_priority=True,
        ),
        reliability=ReliabilityConfig(enabled=True),
    )


def test_parameter_validation():
    with pytest.raises(ValueError):
        StormParams(workers=0)
    with pytest.raises(ValueError):
        StormParams(window=0)
    with pytest.raises(ValueError):
        StormParams(service_ns=-1.0)
    with pytest.raises(ValueError):
        StormParams(hot_messages=-1)
    with pytest.raises(ValueError):
        StormParams(worker_gap_ns=-1.0)
    assert StormParams(workers=4, messages_per_worker=8).total_messages == 32


def test_fifo_storm_completes_without_admission():
    """The default discipline runs the storm exactly as before: no
    refusals, no retransmissions, every message matched."""
    result = run_storm(
        NicConfig.baseline(),
        StormParams(workers=2, messages_per_worker=64, window=8),
    )
    assert result.total_messages == 128
    assert result.refused == 0
    assert result.retransmits == 0
    assert result.latencies_ns
    assert result.duration_ns > 0


def test_admission_bounds_the_storm_and_trips_the_watchdog():
    """The tier-1 scaled-down acceptance storm: sharded + admission
    completes an overload flood with a bounded queue and the
    ``unexpected_admission_pressure`` finding raised."""
    threshold = 32
    params = StormParams(
        workers=4, messages_per_worker=200, window=8, service_ns=400.0
    )
    telemetry = Telemetry(tracing=False, timeline=True, health=True)
    result = run_storm(_admission_nic(threshold), params, telemetry=telemetry)
    assert result.total_messages == 800
    # the reorder buffer shares the occupancy budget, so the queue may
    # overshoot the threshold only by one reorder-flush run
    assert result.max_unexpected_depth <= 2 * threshold
    assert result.refused > 0
    assert has_finding(
        telemetry.health_findings(), "unexpected_admission_pressure"
    )


def test_hot_phase_confines_the_flood():
    """With a bounded hot phase and paced workers the refusals are a
    transient: the tail drains clean and the run stays bounded."""
    threshold = 32
    params = StormParams(
        workers=4,
        messages_per_worker=400,
        window=8,
        service_ns=500.0,
        hot_messages=400,
        worker_gap_ns=1500.0,
    )
    result = run_storm(_admission_nic(threshold), params)
    assert result.total_messages == 1600
    assert result.refused > 0
    assert result.max_unexpected_depth <= 2 * threshold


@pytest.mark.slow
def test_discipline_comparison_under_sustained_overload():
    """Buffer occupancy under sustained overload: an unguarded fifo
    queue absorbs the whole send backlog (eager sends complete locally,
    so nothing upstream throttles the flood -- NIC memory is the only
    limit), while admission pins the occupancy at the threshold and
    pushes the backlog to the senders' reliability layer.

    Note the storm itself has no O(depth) *search* cliff -- the master's
    receives wildcard everything, so matches sit at the queue head; the
    cross-flow latency cliff is the multi-job workload's department."""
    params = StormParams(
        workers=4, messages_per_worker=1000, window=8, service_ns=400.0
    )
    exposed_nic = dataclasses.replace(
        NicConfig.baseline(), reliability=ReliabilityConfig(enabled=True)
    )
    exposed = run_storm(exposed_nic, params)
    guarded = run_storm(_admission_nic(32), params)

    assert exposed.refused == 0
    # the fifo queue ends up holding most of the 4000-message backlog
    assert exposed.max_unexpected_depth > 4 * 32
    assert guarded.refused > 0
    assert guarded.max_unexpected_depth <= 64
    # both storms deliver every message
    assert exposed.total_messages == guarded.total_messages == 4000


@pytest.mark.slow
def test_million_message_storm_under_admission():
    """The acceptance run: 10^6 messages complete under ``sharded`` +
    admission control with the watchdog firing on the hot-phase flood."""
    params = StormParams(
        workers=8,
        messages_per_worker=125_000,
        window=16,
        service_ns=400.0,
        hot_messages=2000,
        worker_gap_ns=3000.0,
    )
    threshold = 64
    telemetry = Telemetry(tracing=False, timeline=True, health=True)
    result = run_storm(_admission_nic(threshold), params, telemetry=telemetry)
    assert result.total_messages == 1_000_000
    assert result.max_unexpected_depth <= 2 * threshold
    assert result.refused > 0
    assert has_finding(
        telemetry.health_findings(), "unexpected_admission_pressure"
    )
