"""Tests for the hash-table matching alternative (Section II).

Unit-level cost/ordering properties only: the randomized differential
coverage (hash vs the oracle, alongside every other registered backend)
lives in ``tests/nic/test_backend_differential.py`` on the shared
traffic harness.
"""

import pytest

from repro.core.match import ANY_SOURCE, MatchFormat, MatchRequest
from repro.memory.layout import AddressAllocator
from repro.nic.firmware import FirmwareConfig
from repro.nic.backends.hashmatch import HashMatchTable
from repro.nic.queues import EntryKind, NicQueue

FMT = MatchFormat()


def make_entry(queue, context, source, tag):
    bits, mask = FMT.pack_receive(context, source, tag)
    entry = queue.allocate_entry(EntryKind.POSTED_RECV, bits=bits, mask=mask, size=0)
    queue.append(entry)
    return entry


@pytest.fixture
def setup():
    queue = NicQueue("q", AddressAllocator())
    table = HashMatchTable(FMT)
    return queue, table


def test_exact_match_probes_and_removes(setup):
    queue, table = setup
    entry = make_entry(queue, 1, 2, 3)
    table.insert(entry)
    found, cost = table.match_incoming(MatchRequest(FMT.pack(1, 2, 3)))
    assert found is entry
    assert len(table) == 0
    assert cost.cycles > 0 and cost.touches


def test_miss_probes_all_four_classes(setup):
    queue, table = setup
    _, cost = table.match_incoming(MatchRequest(FMT.pack(1, 2, 3)))
    # four wildcard-class probes even on an empty table: the price of
    # wildcard support in a hash (Section II)
    assert len(cost.touches) == 4


def test_ordering_beats_specificity_across_classes(setup):
    """The hash must still prefer the *older* wildcard receive over a
    newer exact one -- buckets cannot shortcut MPI ordering."""
    queue, table = setup
    wildcard = make_entry(queue, 1, ANY_SOURCE, 7)
    exact = make_entry(queue, 1, 4, 7)
    table.insert(wildcard)
    table.insert(exact)
    found, _ = table.match_incoming(MatchRequest(FMT.pack(1, 4, 7)))
    assert found is wildcard
    found, _ = table.match_incoming(MatchRequest(FMT.pack(1, 4, 7)))
    assert found is exact


def test_reverse_lookup_exact_is_one_probe(setup):
    queue, table = setup
    header = make_entry(queue, 1, 4, 9)  # an arrived message (no mask)
    table.insert(header)
    bits, mask = FMT.pack_receive(1, 4, 9)
    found, cost = table.match_posted_receive(MatchRequest(bits=bits, mask=mask))
    assert found is header
    # one bucket probe + one candidate compare + removal
    probe_touches = [t for t in cost.touches]
    assert len(probe_touches) <= 4


def test_reverse_lookup_with_wildcard_degenerates_to_scan(setup):
    """ANY_SOURCE receives cannot be bucket-addressed: full scan."""
    queue, table = setup
    for source in range(8):
        table.insert(make_entry(queue, 1, source, 9))
    bits, mask = FMT.pack_receive(1, ANY_SOURCE, 9)
    found, cost = table.match_posted_receive(MatchRequest(bits=bits, mask=mask))
    assert found is not None
    # it had to visit many buckets, not one
    assert len(cost.touches) > 4
    # and it still returned the OLDEST (first-inserted) header
    _, src, _ = FMT.unpack(found.bits)
    assert src == 0


def test_insert_costs_more_than_a_list_append(setup):
    queue, table = setup
    entry = make_entry(queue, 1, 2, 3)
    cost = table.insert(entry)
    # hash + two scattered line writes: dearer than the list's one
    # sequential write -- the zero-length ping-pong regression
    assert cost.cycles >= 20
    assert sum(1 for _, _, write in cost.touches if write) >= 2


def test_remove_missing_entry_raises(setup):
    queue, table = setup
    entry = make_entry(queue, 1, 2, 3)
    with pytest.raises(KeyError):
        table.remove(entry)


def test_entries_in_order(setup):
    queue, table = setup
    entries = [make_entry(queue, 1, i, i) for i in range(5)]
    for entry in entries:
        table.insert(entry)
    assert table.entries_in_order() == entries


def test_firmware_config_rejects_hash_plus_alpu():
    with pytest.raises(ValueError):
        FirmwareConfig(use_alpu=True, matching="hash")
    with pytest.raises(ValueError):
        FirmwareConfig(matching="btree")
