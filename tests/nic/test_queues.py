"""Unit tests for the firmware queue structures."""

from repro.core.match import MatchFormat, MatchRequest
from repro.memory.layout import AddressAllocator
from repro.nic.queues import ENTRY_BYTES, EntryKind, NicQueue

FMT = MatchFormat()


def make_queue():
    return NicQueue("q", AddressAllocator(base=0x1000))


def test_entries_live_at_aligned_disjoint_addresses():
    queue = make_queue()
    entries = [
        queue.allocate_entry(EntryKind.POSTED_RECV, bits=i, mask=0, size=0)
        for i in range(4)
    ]
    addresses = [e.addr for e in entries]
    assert len(set(addresses)) == 4
    assert all(addr % ENTRY_BYTES == 0 for addr in addresses)


def test_released_entries_recycle_addresses():
    queue = make_queue()
    entry = queue.allocate_entry(EntryKind.POSTED_RECV, bits=0, mask=0, size=0)
    queue.release(entry)
    again = queue.allocate_entry(EntryKind.POSTED_RECV, bits=1, mask=0, size=0)
    assert again.addr == entry.addr


def test_alpu_prefix_pointer_tracks_removals():
    queue = make_queue()
    entries = []
    for i in range(5):
        entry = queue.allocate_entry(EntryKind.POSTED_RECV, bits=i, mask=0, size=0)
        queue.append(entry)
        entries.append(entry)
    queue.alpu_count = 3
    # removing a prefix (ALPU-resident) entry shrinks the prefix
    queue.remove(entries[1])
    assert queue.alpu_count == 2
    # removing a suffix entry leaves the prefix alone
    queue.remove(entries[4])
    assert queue.alpu_count == 2
    assert [e.bits for e in queue.software_suffix()] == [3]


def test_software_suffix_view():
    queue = make_queue()
    for i in range(4):
        queue.append(
            queue.allocate_entry(EntryKind.POSTED_RECV, bits=i, mask=0, size=0)
        )
    queue.alpu_count = 2
    assert [e.bits for e in queue.software_suffix()] == [2, 3]


def test_find_by_uid():
    queue = make_queue()
    entry = queue.allocate_entry(EntryKind.SEND, bits=0, mask=0, size=8)
    queue.append(entry)
    assert queue.find_by_uid(entry.uid) is entry
    assert queue.find_by_uid(10**9) is None


def test_uids_are_unique():
    queue = make_queue()
    a = queue.allocate_entry(EntryKind.POSTED_RECV, bits=0, mask=0, size=0)
    b = queue.allocate_entry(EntryKind.POSTED_RECV, bits=0, mask=0, size=0)
    assert a.uid != b.uid


def test_entry_matching_honours_wildcards():
    queue = make_queue()
    bits, mask = FMT.pack_receive(1, -1, 7)
    entry = queue.allocate_entry(EntryKind.POSTED_RECV, bits=bits, mask=mask, size=0)
    assert entry.matches(MatchRequest(FMT.pack(1, 30, 7)))
    assert not entry.matches(MatchRequest(FMT.pack(1, 30, 8)))


def test_max_length_statistic():
    queue = make_queue()
    for i in range(3):
        queue.append(
            queue.allocate_entry(EntryKind.POSTED_RECV, bits=i, mask=0, size=0)
        )
    queue.remove(queue.entries[0])
    assert queue.max_length == 3
    assert len(queue) == 2
