"""Unit tests for the ALPU queue driver (Section IV heuristics).

The driver is a generator-based firmware helper, so these tests run it
inside small simulation processes against a real device.
"""

import pytest

from repro.core.alpu import AlpuConfig
from repro.core.commands import MatchFailure, MatchSuccess
from repro.core.match import MatchRequest
from repro.memory.layout import AddressAllocator
from repro.nic.alpu_device import AlpuDevice
from repro.nic.driver import AlpuQueueDriver, DriverConfig
from repro.nic.queues import EntryKind, NicQueue
from repro.proc.costmodel import NicCostModel
from repro.proc.processor import Processor
from repro.sim.engine import Engine
from repro.sim.process import Process


def build(driver_config=DriverConfig(), total_cells=16, block_size=4):
    engine = Engine()
    device = AlpuDevice(
        engine, "dev", AlpuConfig(total_cells=total_cells, block_size=block_size)
    )
    queue = NicQueue("q", AddressAllocator())
    proc = Processor(engine, "nicproc", 500e6)
    driver = AlpuQueueDriver(device, queue, proc, NicCostModel(), driver_config)
    return engine, device, queue, driver


def fill(queue, count, bits_base=0):
    for i in range(count):
        entry = queue.allocate_entry(
            EntryKind.POSTED_RECV, bits=bits_base + i, mask=0, size=0
        )
        queue.append(entry)


def run_gen(engine, generator):
    process = Process(engine, generator)
    engine.run()
    if process.error:
        raise process.error
    return process.result


def test_update_moves_the_whole_suffix():
    engine, device, queue, driver = build()
    fill(queue, 5)
    moved = run_gen(engine, driver.update())
    assert moved == 5
    assert queue.alpu_count == 5
    assert device.alpu.occupancy == 5
    assert driver.tracked_occupancy == 5
    assert driver.batches == 1


def test_update_with_empty_suffix_is_a_no_op():
    engine, device, queue, driver = build()
    assert run_gen(engine, driver.update()) == 0
    assert driver.batches == 0


def test_threshold_defers_engagement():
    engine, device, queue, driver = build(DriverConfig(use_threshold=5))
    fill(queue, 3)
    assert run_gen(engine, driver.update()) == 0  # below the threshold
    fill(queue, 3)
    assert run_gen(engine, driver.update()) == 6  # crossed it
    # once engaged, the threshold no longer gates top-ups
    fill(queue, 1)
    assert run_gen(engine, driver.update()) == 1


def test_threshold_gates_header_replication():
    """Section IV-C: delivery to the ALPU stays off until engagement."""
    engine, device, queue, driver = build(DriverConfig(use_threshold=5))
    assert not driver.engaged
    assert not device.hw_delivery_enabled
    fill(queue, 5)
    run_gen(engine, driver.update())
    assert driver.engaged
    assert device.hw_delivery_enabled


def test_driver_disengages_when_queue_drains():
    engine, device, queue, driver = build(DriverConfig(use_threshold=5))
    fill(queue, 5)
    run_gen(engine, driver.update())
    assert driver.engaged
    # drain the ALPU through matches
    for bits in range(5):
        device.hw_push_header(MatchRequest(bits=bits))
    engine.run()

    def consume_all():
        for _ in range(5):
            response = yield from driver.read_result()
            entry = driver.take_matched_entry(response)
            queue.remove(entry)

    run_gen(engine, consume_all())
    assert driver.tracked_occupancy == 0
    run_gen(engine, driver.update())
    assert not driver.engaged
    assert not device.hw_delivery_enabled


def test_default_threshold_keeps_replication_always_on():
    engine, device, queue, driver = build(DriverConfig(use_threshold=1))
    assert driver.engaged
    run_gen(engine, driver.update())
    assert driver.engaged


def test_max_batch_caps_each_update():
    engine, device, queue, driver = build(DriverConfig(max_batch=2))
    fill(queue, 5)
    assert run_gen(engine, driver.update()) == 2
    assert run_gen(engine, driver.update()) == 2
    assert run_gen(engine, driver.update()) == 1


def test_update_never_exceeds_capacity():
    engine, device, queue, driver = build(total_cells=8, block_size=4)
    fill(queue, 12)
    assert run_gen(engine, driver.update()) == 8
    assert run_gen(engine, driver.update()) == 0  # full
    assert len(queue.software_suffix()) == 4


def test_match_success_roundtrip_through_tags():
    engine, device, queue, driver = build()
    fill(queue, 3, bits_base=100)
    run_gen(engine, driver.update())
    device.hw_push_header(MatchRequest(bits=101))
    engine.run()

    def consume():
        response = yield from driver.read_result()
        return response

    response = run_gen(engine, consume())
    assert isinstance(response, MatchSuccess)
    entry = driver.take_matched_entry(response)
    assert entry.bits == 101
    assert driver.tracked_occupancy == 2


def test_tags_recycle_after_matches():
    engine, device, queue, driver = build(total_cells=4, block_size=4)
    free_before = driver.free_tag_count
    fill(queue, 2)
    run_gen(engine, driver.update())
    assert driver.free_tag_count == free_before - 2
    device.hw_push_header(MatchRequest(bits=0))
    engine.run()

    def consume():
        response = yield from driver.read_result()
        return response

    response = run_gen(engine, consume())
    queue.remove(driver.take_matched_entry(response))
    assert driver.free_tag_count == free_before - 1


def test_update_aborts_when_a_failure_is_outstanding():
    """The Section IV-C race: a failed match must be handled against the
    suffix as it stood, so the batch gives way."""
    engine, device, queue, driver = build()
    fill(queue, 2)
    # a header that fails in match mode, response already in the FIFO
    device.hw_push_header(MatchRequest(bits=999))
    engine.run()
    moved = run_gen(engine, driver.update())
    assert moved == 0
    assert driver.aborted_batches == 1
    assert queue.alpu_count == 0  # nothing moved
    # the failure is now buffered for the firmware's result read
    assert any(isinstance(r, MatchFailure) for r in driver._buffered)
    # and update keeps refusing until the failure is consumed
    assert run_gen(engine, driver.update()) == 0

    def consume():
        response = yield from driver.read_result()
        return response

    assert isinstance(run_gen(engine, consume()), MatchFailure)
    assert run_gen(engine, driver.update()) == 2  # now it proceeds


def test_buffered_successes_do_not_block_updates():
    engine, device, queue, driver = build()
    fill(queue, 2, bits_base=50)
    run_gen(engine, driver.update())
    # a success sitting in the FIFO when the next batch starts is fine
    device.hw_push_header(MatchRequest(bits=50))
    engine.run()
    fill(queue, 1, bits_base=60)
    moved = run_gen(engine, driver.update())
    assert moved == 1
    assert driver.aborted_batches == 0
    assert any(isinstance(r, MatchSuccess) for r in driver._buffered)


def test_software_removal_assertion_guards_prefix_consistency():
    engine, device, queue, driver = build()
    fill(queue, 2)
    run_gen(engine, driver.update())
    prefix_entry = queue.entries[0]
    with pytest.raises(AssertionError):
        driver.forget_software_removal(prefix_entry)


# --------------------------------------------------------- stall detection
def stalled_build(stall_budget=3, timeout_ps=1_000_000):
    from repro.nic.alpu_device import AlpuFaultConfig

    engine = Engine()
    device = AlpuDevice(
        engine,
        "dev",
        AlpuConfig(total_cells=16, block_size=4),
        fault=AlpuFaultConfig(mode="stall", at_ps=0),
    )
    queue = NicQueue("q", AddressAllocator())
    proc = Processor(engine, "nicproc", 500e6)
    driver = AlpuQueueDriver(
        device,
        queue,
        proc,
        NicCostModel(),
        DriverConfig(result_timeout_ps=timeout_ps, stall_budget=stall_budget),
    )
    return engine, device, queue, driver


def test_stalled_device_raises_after_the_stall_budget():
    from repro.nic.driver import AlpuStallError

    engine, device, queue, driver = stalled_build(stall_budget=3)

    def blocked_read():
        response = yield from driver._read_result_raw()
        return response

    with pytest.raises(AlpuStallError, match="device stalled"):
        run_gen(engine, blocked_read())
    # every expiry was counted, and they were consecutive
    assert driver.result_timeouts == 3


def test_healthy_device_never_counts_a_timeout():
    engine, device, queue, driver = build()
    fill(queue, 3)
    run_gen(engine, driver.update())
    device.hw_push_header(MatchRequest(bits=1))
    engine.run()

    def consume():
        response = yield from driver.read_result()
        return response

    assert isinstance(run_gen(engine, consume()), MatchSuccess)
    assert driver.result_timeouts == 0


def test_stall_error_is_a_simulation_error():
    from repro.nic.driver import AlpuStallError
    from repro.sim.engine import SimulationError

    assert issubclass(AlpuStallError, SimulationError)
