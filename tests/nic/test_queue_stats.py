"""Depth-reporting consistency and high-water-mark plumbing.

Two queue-churn regressions pinned here:

* the lifecycle ``unexpected_queue`` mark and the tracer
  ``<nic>.unexpected_enqueue`` instant once disagreed by one (pre- vs
  post-append depth); both now report the post-append depth, and the
  first test fails if either side drifts again;
* ``NicQueue.max_length`` was tracked but never surfaced nor reset --
  it now feeds the ``<nic>.<queue>/max_depth`` snapshot collectors, the
  run-report "queue high-water marks" section, and re-arms through
  ``reset_stats`` / ``Nic.reset_queue_stats`` / ``MpiWorld.reset_queue_stats``.
"""

import dataclasses

from repro.analysis.report import queue_high_water, render_text
from repro.core.match import MatchFormat
from repro.memory.layout import AddressAllocator
from repro.mpi.world import MpiWorld, WorldConfig
from repro.nic.nic import NicConfig
from repro.nic.qdisc import QdiscConfig, create_discipline
from repro.nic.queues import EntryKind, NicQueue
from repro.obs import Telemetry
from repro.workloads.unexpected import UnexpectedParams, run_unexpected

FMT = MatchFormat()


def _run_with_telemetry(**telemetry_kwargs):
    telemetry = Telemetry(**telemetry_kwargs)
    result = run_unexpected(
        NicConfig.baseline(),
        UnexpectedParams(queue_length=12, iterations=3, warmup=1),
        telemetry=telemetry,
    )
    return telemetry, result


def test_lifecycle_and_tracer_report_the_same_depth():
    """Both observers report the *post-append* unexpected-queue depth."""
    telemetry, _ = _run_with_telemetry(tracing=True, lifecycle=True)

    marks = []
    for lifecycle in telemetry.lifecycles():
        for mark in lifecycle.marks:
            if mark.stage == "unexpected_queue":
                marks.append((mark.time_ps, mark.detail["depth"]))
    # the mark precedes the costed append; the tracer instant follows it,
    # so timestamps differ by the enqueue cost but depths must agree
    lifecycle_depths = [depth for _, depth in sorted(marks)]
    tracer_depths = [
        record.args["depth"]
        for record in telemetry.tracer.records
        if record.name.endswith(".unexpected_enqueue")
    ]

    assert lifecycle_depths, "expected unexpected_queue lifecycle marks"
    assert lifecycle_depths == tracer_depths
    # the queue really got that deep (fillers stack up before the probe)
    assert max(lifecycle_depths) >= 12


def test_snapshot_surfaces_queue_high_water_marks():
    telemetry, _ = _run_with_telemetry()
    snapshot = telemetry.snapshot()
    assert snapshot["nic1.unexpectedQ/max_depth"] >= 12
    assert "nic1.postedRecvQ/max_depth" in snapshot
    assert "nic0.sendQ/max_depth" in snapshot


def test_report_renders_high_water_section():
    telemetry, _ = _run_with_telemetry()
    document = telemetry.report(benchmark="unexpected")

    marks = dict(queue_high_water(document))
    assert marks["nic1.unexpectedQ"] >= 12

    text = render_text(document)
    assert "queue high-water marks" in text
    assert "nic1.unexpectedQ" in text


def _append(queue, tag):
    bits, mask = FMT.pack_receive(0, 1, tag)
    entry = queue.allocate_entry(EntryKind.POSTED_RECV, bits=bits, mask=mask, size=0)
    queue.append(entry)
    return entry


def test_queue_reset_stats_rearms_at_current_depth():
    queue = NicQueue(
        "q",
        AddressAllocator(base=0x1000),
        discipline=create_discipline(QdiscConfig(), FMT),
    )
    entries = [_append(queue, tag) for tag in range(8)]
    for entry in entries[:6]:
        queue.remove(entry)
    assert queue.max_length == 8
    queue.reset_stats()
    # re-armed at the *current* depth, not zero -- the two survivors are
    # still resident and must count against the next phase's peak
    assert queue.max_length == 2
    _append(queue, 100)
    assert queue.max_length == 3


def test_world_reset_queue_stats_covers_every_nic_queue():
    """``MpiWorld.reset_queue_stats`` re-arms marks between phases."""
    nic = dataclasses.replace(NicConfig.baseline())

    def flooder(mpi):
        yield from mpi.init()
        sends = []
        for _ in range(16):
            sends.append((yield from mpi.isend(1, 7, 0)))
        yield from mpi.waitall(sends)
        yield from mpi.finalize()

    def sink(mpi):
        yield from mpi.init()
        for _ in range(16):
            yield from mpi.recv(0, 7, 0)
        yield from mpi.finalize()

    world = MpiWorld(WorldConfig(num_ranks=2, nic=nic))
    world.run({0: flooder, 1: sink}, deadline_us=500_000)

    receiver = world.nics[1]
    assert receiver.unexpected_q.max_length > 0
    peak_send = world.nics[0].send_q.max_length
    assert peak_send > 0

    world.reset_queue_stats()
    for nic_obj in world.nics:
        for queue in (nic_obj.posted_recv_q, nic_obj.unexpected_q, nic_obj.send_q):
            assert queue.max_length == len(queue)
