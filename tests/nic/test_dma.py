"""Unit tests for the DMA engines."""

import pytest

from repro.nic.dma import DmaConfig, DmaEngine
from repro.sim.engine import Engine
from repro.sim.units import ns


def test_transfer_time_is_setup_plus_streaming():
    engine = Engine()
    dma = DmaEngine(engine, "dma", DmaConfig(setup_ps=ns(50), bandwidth_bytes_per_ps=0.004))
    # 4 GB/s = 0.004 B/ps -> 4096 bytes = 1,024,000 ps
    assert dma.transfer_time_ps(4096) == ns(50) + 1_024_000
    assert dma.transfer_time_ps(0) == ns(50)


def test_completion_fires_with_cookie():
    engine = Engine()
    dma = DmaEngine(engine, "dma")
    finish = dma.start(1024, cookie="payload")
    engine.run()
    assert engine.now == finish
    assert dma.completed.popleft() == "payload"
    assert dma.done.pulse_count == 1


def test_transfers_serialize_in_issue_order():
    engine = Engine()
    dma = DmaEngine(engine, "dma")
    first = dma.start(4096, cookie="a")
    second = dma.start(4096, cookie="b")
    assert second == first + dma.transfer_time_ps(4096)
    engine.run()
    assert list(dma.completed) == ["a", "b"]


def test_busy_flag():
    engine = Engine()
    dma = DmaEngine(engine, "dma")
    dma.start(4096, cookie=None)
    assert dma.busy
    engine.run()
    assert not dma.busy


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        DmaEngine(Engine(), "dma").start(-1, cookie=None)


def test_statistics():
    engine = Engine()
    dma = DmaEngine(engine, "dma")
    dma.start(100, cookie=None)
    dma.start(200, cookie=None)
    engine.run()
    assert dma.transfers == 2
    assert dma.bytes_moved == 300
