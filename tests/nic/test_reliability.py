"""The NIC reliability layer: recovery under every fault class, retry
exhaustion, and mid-run degradation off a stalled ALPU."""

import dataclasses

import pytest

from repro.network.faults import FaultConfig
from repro.nic.alpu_device import AlpuFaultConfig
from repro.nic.driver import DriverConfig
from repro.nic.nic import NicConfig
from repro.nic.reliability import ReliabilityConfig, RetryExhaustedError
from repro.obs import Telemetry
from repro.sim.engine import SimulationError
from repro.sim.units import us
from repro.workloads.preposted import PrepostedParams, run_preposted

PARAMS = PrepostedParams(
    queue_length=8, traverse_fraction=1.0, iterations=12, warmup=2
)


def reliable(nic: NicConfig, **kwargs) -> NicConfig:
    return dataclasses.replace(
        nic, reliability=ReliabilityConfig(enabled=True, **kwargs)
    )


def counter_sum(snapshot, suffix):
    return sum(
        value for key, value in snapshot.items() if key.endswith(suffix)
    )


def run_faulty(faults, nic=None, *, lifecycle=False):
    bundle = Telemetry(tracing=False, lifecycle=lifecycle)
    nic = reliable(nic if nic is not None else NicConfig.baseline())
    result = run_preposted(nic, PARAMS, telemetry=bundle, faults=faults)
    return result, bundle


# ---------------------------------------------------------------- recovery
def test_drops_are_retransmitted_and_every_message_completes():
    result, bundle = run_faulty(FaultConfig(seed=11, drop_rate=0.05))
    snapshot = bundle.snapshot()
    assert len(result.latencies_ns) == PARAMS.iterations
    assert counter_sum(snapshot, "/faults_dropped") > 0
    assert counter_sum(snapshot, ".rel/retransmits") > 0


def test_duplicates_are_dropped_exactly_once_delivered():
    result, bundle = run_faulty(FaultConfig(seed=5, duplicate_rate=0.2))
    snapshot = bundle.snapshot()
    assert len(result.latencies_ns) == PARAMS.iterations
    assert counter_sum(snapshot, "/faults_duplicated") > 0
    assert counter_sum(snapshot, ".rel/duplicates_dropped") > 0


def test_corruption_is_caught_nacked_and_recovered():
    result, bundle = run_faulty(FaultConfig(seed=9, corrupt_rate=0.05))
    snapshot = bundle.snapshot()
    assert len(result.latencies_ns) == PARAMS.iterations
    assert counter_sum(snapshot, "/faults_corrupted") > 0
    assert counter_sum(snapshot, ".rel/corrupt_dropped") > 0


def test_reordering_is_absorbed_by_the_rx_buffer():
    result, bundle = run_faulty(
        FaultConfig(seed=2, reorder_rate=0.1, reorder_delay_ps=2_000_000)
    )
    snapshot = bundle.snapshot()
    assert len(result.latencies_ns) == PARAMS.iterations
    assert counter_sum(snapshot, "/faults_delayed") > 0


def test_mixed_fault_soup_still_completes():
    result, _ = run_faulty(
        FaultConfig(
            seed=13,
            drop_rate=0.04,
            duplicate_rate=0.04,
            reorder_rate=0.04,
            corrupt_rate=0.04,
        )
    )
    assert len(result.latencies_ns) == PARAMS.iterations


# ----------------------------------------------------------------- lifecycle
def test_retransmitted_messages_keep_a_monotone_lifecycle():
    _, bundle = run_faulty(FaultConfig(seed=11, drop_rate=0.05), lifecycle=True)
    lifecycles = bundle.lifecycles()
    retransmitted = [
        lc for lc in lifecycles if any(m.stage == "retransmit" for m in lc.marks)
    ]
    assert retransmitted, "seed 11 at 5% loss must retransmit something"
    for lc in lifecycles:
        times = [mark.time_ps for mark in lc.marks]
        assert times == sorted(times), f"non-monotone lifecycle: {lc.marks}"
    # dropped-then-retransmitted pings still complete
    pings = [lc for lc in lifecycles if lc.label == "ping"]
    assert pings and all(lc.complete for lc in pings)


# ------------------------------------------------------------ retry budget
def test_retry_budget_exhaustion_raises():
    faults = FaultConfig(seed=1, drop_rate=1.0)  # the wire eats everything
    nic = reliable(NicConfig.baseline(), max_retries=2, ack_timeout_ps=us(1))
    with pytest.raises((RetryExhaustedError, RuntimeError)) as excinfo:
        run_preposted(nic, PARAMS, faults=faults)
    # surfaced directly from the engine or wrapped by the world's runner
    assert isinstance(excinfo.value, SimulationError) or isinstance(
        excinfo.value.__cause__, SimulationError
    )


# ----------------------------------------------------- graceful degradation
def stall_nic(at_ps=5_000_000, stall_budget=3, timeout_ps=us(5)) -> NicConfig:
    nic = NicConfig.with_alpu(total_cells=128, block_size=16)
    driver = DriverConfig(
        result_timeout_ps=timeout_ps, stall_budget=stall_budget
    )
    return dataclasses.replace(
        nic,
        alpu_fault=AlpuFaultConfig(mode="stall", at_ps=at_ps),
        posted_driver=driver,
        unexpected_driver=driver,
    )


def test_alpu_stall_degrades_to_list_backend_mid_run():
    bundle = Telemetry(tracing=False)
    result = run_preposted(stall_nic(), PARAMS, telemetry=bundle)
    # the run survived the stall...
    assert len(result.latencies_ns) == PARAMS.iterations
    snapshot = bundle.snapshot()
    assert counter_sum(snapshot, "/result_timeouts") > 0
    # both NICs carry a faulted ALPU pair, so both degrade exactly once
    assert counter_sum(snapshot, "fw/backend_degraded") == 2


def test_degraded_firmware_runs_the_software_backend():
    from repro.mpi.world import MpiWorld, WorldConfig

    # assemble a world directly so the firmware object stays inspectable
    world = MpiWorld(WorldConfig(num_ranks=2, nic=stall_nic()))
    total = PARAMS.warmup + PARAMS.iterations

    def sender(mpi):
        yield from mpi.init()
        for i in range(total):
            yield from mpi.send(dest=1, tag=i, size=0)
        yield from mpi.finalize()

    def receiver(mpi):
        yield from mpi.init()
        for i in range(total):
            yield from mpi.recv(source=0, tag=i, size=0)
        yield from mpi.finalize()

    world.run({0: sender, 1: receiver})
    firmware = world.nics[1].firmware
    assert firmware.degraded
    assert firmware.backend.name == "list"
    assert world.nics[1].alpu_offline
    for device in world.nics[1].alpu_devices:
        assert not device.hw_delivery_enabled


def test_zero_fault_reliability_layer_still_completes():
    """Reliability on, perfect wire: pure overhead path, still correct."""
    result, bundle = run_faulty(FaultConfig())
    snapshot = bundle.snapshot()
    assert len(result.latencies_ns) == PARAMS.iterations
    assert counter_sum(snapshot, ".rel/retransmits") == 0
    assert counter_sum(snapshot, ".rel/acks_sent") > 0
