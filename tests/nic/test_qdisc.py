"""The pluggable queue-discipline layer and admission control.

Three layers of assurance:

* unit tests of the sharded discipline's search-order contract directly
  against a :class:`NicQueue` (merged age order, wildcard fallbacks);
* a hypothesis property run interleaving append/remove/degrade under
  every registered discipline, pinning the ALPU-prefix invariant, the
  depth gauge, and candidate order against a model list;
* the full differential gate: generated traffic through a sharded NIC
  must produce the matching oracle's exact pairings (both shard keys,
  list and ALPU backends).

Plus the admission-control protocol: bounded unexpected queues under a
flood, NACK_BUSY liveness (retry budgets never exhausted by a full
receiver), and the drop policy's honest retry consumption.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.match import ANY_SOURCE, ANY_TAG, MatchFormat, MatchRequest
from repro.memory.layout import AddressAllocator
from repro.mpi.world import MpiWorld, WorldConfig
from repro.nic.nic import NicConfig
from repro.nic.qdisc import (
    DISCIPLINES,
    AdmissionControl,
    QdiscConfig,
    create_discipline,
    shard_mask,
)
from repro.nic.queues import EntryKind, NicQueue
from repro.nic.reliability import ReliabilityConfig, RetryExhaustedError

from tests.nic.traffic import TrafficCase, check_backend_against_oracle

FMT = MatchFormat()


def make_queue(config: QdiscConfig = QdiscConfig()) -> NicQueue:
    return NicQueue(
        "q",
        AddressAllocator(base=0x1000),
        discipline=create_discipline(config, FMT),
    )


def append_entry(queue, *, source, tag, context=0):
    bits, mask = FMT.pack_receive(context, source, tag)
    entry = queue.allocate_entry(
        EntryKind.POSTED_RECV, bits=bits, mask=mask, size=0
    )
    queue.append(entry)
    return entry


def header(*, source, tag, context=0) -> MatchRequest:
    return MatchRequest(bits=FMT.pack(context, source, tag), mask=0)


# ------------------------------------------------------------- config
def test_config_validation():
    QdiscConfig()  # defaults are valid
    QdiscConfig(discipline="sharded", shard_key="flow",
                max_unexpected=64, admission_policy="nack")
    with pytest.raises(ValueError, match="unknown discipline"):
        QdiscConfig(discipline="lifo")
    with pytest.raises(ValueError, match="shard_key"):
        QdiscConfig(shard_key="tag")
    with pytest.raises(ValueError, match="max_unexpected"):
        QdiscConfig(max_unexpected=-1)
    with pytest.raises(ValueError, match="admission_policy"):
        QdiscConfig(admission_policy="reject")


def test_admission_requires_reliability():
    with pytest.raises(ValueError, match="reliability"):
        dataclasses.replace(
            NicConfig.baseline(), qdisc=QdiscConfig(max_unexpected=8)
        )
    # fine with the layer on
    dataclasses.replace(
        NicConfig.baseline(),
        qdisc=QdiscConfig(max_unexpected=8),
        reliability=ReliabilityConfig(enabled=True),
    )


def test_shard_mask_fields():
    source = shard_mask(QdiscConfig(shard_key="source"), FMT)
    flow = shard_mask(QdiscConfig(shard_key="flow"), FMT)
    assert flow == FMT.full_mask
    assert source == FMT.full_mask & ~FMT.tag_field_mask
    assert source & FMT.tag_field_mask == 0


# ------------------------------------------- sharded search order
def fifo_matches(queue, request):
    return [e for e in queue.entries if e.matches(request)]


def test_sharded_concrete_search_preserves_global_age_order():
    queue = make_queue(QdiscConfig(discipline="sharded", shard_key="source"))
    # interleave two sources and a wildcard that must merge between them
    a1 = append_entry(queue, source=1, tag=5)
    b1 = append_entry(queue, source=2, tag=5)
    w = append_entry(queue, source=ANY_SOURCE, tag=ANY_TAG)
    a2 = append_entry(queue, source=1, tag=6)
    request = header(source=1, tag=5)
    got = [e for e in queue.search_candidates(request)]
    # own shard {a1, a2} merged with the wildcard shard {w}, oldest first
    assert got == [a1, w, a2]
    assert b1 not in got
    # first *matching* candidate is what FIFO would have matched
    first = next(e for e in got if e.matches(request))
    assert first is fifo_matches(queue, request)[0] is a1


def test_sharded_wildcard_request_falls_back_to_full_walk():
    queue = make_queue(QdiscConfig(discipline="sharded", shard_key="source"))
    entries = [append_entry(queue, source=s, tag=3) for s in (1, 2, 3)]
    request = MatchRequest(*FMT.pack_receive(0, ANY_SOURCE, 3))
    assert list(queue.search_candidates(request)) == entries


def test_sharded_flow_key_separates_tags():
    queue = make_queue(QdiscConfig(discipline="sharded", shard_key="flow"))
    e_t1 = append_entry(queue, source=1, tag=1)
    e_t2 = append_entry(queue, source=1, tag=2)
    got = list(queue.search_candidates(header(source=1, tag=2)))
    assert got == [e_t2] and e_t1 not in got
    # ...but an ANY_TAG request wildcards part of the flow key: full walk
    request = MatchRequest(*FMT.pack_receive(0, 1, ANY_TAG))
    assert list(queue.search_candidates(request)) == [e_t1, e_t2]


def test_sharded_suffix_only_skips_alpu_prefix():
    queue = make_queue(QdiscConfig(discipline="sharded", shard_key="source"))
    entries = [append_entry(queue, source=1, tag=t) for t in range(4)]
    queue.alpu_count = 2
    got = list(queue.search_candidates(header(source=1, tag=0), suffix_only=True))
    assert got == entries[2:]


def test_sharded_removal_updates_shards():
    queue = make_queue(QdiscConfig(discipline="sharded", shard_key="source"))
    a = append_entry(queue, source=1, tag=1)
    w = append_entry(queue, source=ANY_SOURCE, tag=1)
    b = append_entry(queue, source=1, tag=2)
    queue.remove(a)
    assert list(queue.search_candidates(header(source=1, tag=2))) == [w, b]
    queue.remove(w)
    assert list(queue.search_candidates(header(source=1, tag=2))) == [b]


# ------------------------------------------------ the property run
class _RecordingGauge:
    def __init__(self):
        self.value = None

    def set(self, value):
        self.value = value


_ops = st.lists(
    st.one_of(
        # (op, source, tag): append with source in 1..3, tag in 0..2,
        # occasionally wildcard
        st.tuples(st.just("append"), st.integers(1, 3), st.integers(0, 2)),
        st.tuples(st.just("append"), st.just(ANY_SOURCE), st.just(ANY_TAG)),
        # remove the i-th (mod len) live entry
        st.tuples(st.just("remove"), st.integers(0, 31), st.just(0)),
        # extend the mirrored prefix by up to 2 entries
        st.tuples(st.just("mirror"), st.integers(1, 2), st.just(0)),
        # degrade: drop the whole mirrored prefix back to software
        st.tuples(st.just("degrade"), st.just(0), st.just(0)),
    ),
    max_size=40,
)


@pytest.mark.parametrize(
    "config",
    [
        QdiscConfig(),
        QdiscConfig(discipline="sharded", shard_key="source"),
        QdiscConfig(discipline="sharded", shard_key="flow"),
    ],
    ids=["fifo", "sharded-source", "sharded-flow"],
)
@settings(max_examples=40, deadline=None)
@given(ops=_ops)
def test_queue_invariants_under_churn(config, ops):
    """alpu_count prefix + depth gauge + candidate order vs a model list."""
    assert config.discipline in DISCIPLINES
    queue = make_queue(config)
    gauge = _RecordingGauge()
    queue.attach_depth_gauge(gauge)
    model = []
    peak = 0
    for op, x, y in ops:
        if op == "append":
            model.append(append_entry(queue, source=x, tag=y))
            peak = max(peak, len(model))
        elif op == "remove" and model:
            queue.remove(model.pop(x % len(model)))
        elif op == "mirror":
            batch = queue.peek_software_suffix(x)
            assert batch == [e for e in model if not e.in_alpu][: x]
            queue.mark_alpu_mirrored(batch)
        elif op == "degrade":
            queue.alpu_count = 0

        # the store is the model list, in order
        assert queue.entries == model
        assert len(queue) == len(model) == gauge.value
        assert queue.max_length == peak
        # mirrored entries always form a prefix of append order
        flags = [e.in_alpu for e in model]
        assert queue.alpu_count == sum(flags)
        assert flags == sorted(flags, reverse=True)
        assert queue.software_suffix() == [e for e in model if not e.in_alpu]
        # discipline candidates: same matching entries, same relative
        # order as a plain FIFO walk, for concrete and wildcard requests
        for request in (
            header(source=1, tag=0),
            header(source=2, tag=1),
            MatchRequest(*FMT.pack_receive(0, ANY_SOURCE, 1)),
        ):
            visited = list(queue.search_candidates(request))
            assert [e for e in visited if e.matches(request)] == [
                e for e in model if e.matches(request)
            ]
            # candidates are a subsequence of the model's FIFO order
            order = {e.uid: i for i, e in enumerate(model)}
            ranks = [order[e.uid] for e in visited]
            assert ranks == sorted(ranks)
    queue.reset_stats()
    assert queue.max_length == len(model)


# --------------------------------------------- the differential gate
_sources = st.sampled_from([ANY_SOURCE, 0])
_msg_tags = st.integers(0, 3)
_recv_tags = st.one_of(st.just(ANY_TAG), _msg_tags)
_ctxs = st.integers(0, 1)
_recvs = st.lists(
    st.tuples(_sources, _recv_tags, _ctxs), max_size=6
).map(tuple)
_msgs = st.lists(st.tuples(_msg_tags, _ctxs), max_size=8).map(tuple)

traffic_cases = st.builds(
    TrafficCase, pre_recvs=_recvs, msgs=_msgs, post_recvs=_recvs
)


def _sharded_nic(backend: str, shard_key: str) -> NicConfig:
    qdisc = QdiscConfig(discipline="sharded", shard_key=shard_key)
    if backend == "alpu":
        # tiny geometry so cases overflow into the software-suffix path,
        # where the discipline actually shapes the search
        nic = NicConfig.with_alpu(total_cells=16, block_size=4)
    else:
        nic = NicConfig.baseline()
    return dataclasses.replace(nic, qdisc=qdisc)


@pytest.mark.parametrize("backend", ["list", "alpu"])
@pytest.mark.parametrize("shard_key", ["source", "flow"])
@settings(max_examples=10, deadline=None)
@given(case=traffic_cases)
def test_sharded_discipline_matches_oracle(backend, shard_key, case):
    check_backend_against_oracle(case, _sharded_nic(backend, shard_key))


@pytest.mark.parametrize("backend", ["list", "alpu"])
@pytest.mark.parametrize("shard_key", ["source", "flow"])
def test_sharded_discipline_on_adversarial_case(backend, shard_key):
    case = TrafficCase(
        pre_recvs=((ANY_SOURCE, ANY_TAG, 0), (0, 2, 0), (0, 2, 1)),
        msgs=((2, 0), (2, 0), (2, 1), (3, 0), (1, 1)),
        post_recvs=((0, ANY_TAG, 1), (ANY_SOURCE, 3, 0), (0, 1, 0)),
    )
    check_backend_against_oracle(case, _sharded_nic(backend, shard_key))


# --------------------------------------------------- admission control
def _flood_world(policy: str, *, threshold=8, messages=64, burst=32):
    """Rank 0 floods rank 1, which posts its receives only at the end."""
    nic = dataclasses.replace(
        NicConfig.baseline(),
        qdisc=QdiscConfig(
            discipline="sharded",
            max_unexpected=threshold,
            admission_policy=policy,
        ),
        reliability=ReliabilityConfig(enabled=True),
    )

    def flooder(mpi):
        yield from mpi.init()
        remaining = messages
        while remaining:
            chunk = min(burst, remaining)
            sends = []
            for _ in range(chunk):
                sends.append((yield from mpi.isend(1, 7, 0)))
            yield from mpi.waitall(sends)
            remaining -= chunk
        yield from mpi.finalize()

    def sink(mpi):
        yield from mpi.init()
        # wait out the flood's front before posting anything, so the
        # unexpected queue (not the posted queue) takes the pressure
        yield from mpi.recv(0, 7, 0)
        for _ in range(messages - 1):
            yield from mpi.recv(0, 7, 0)
        yield from mpi.finalize()

    world = MpiWorld(WorldConfig(num_ranks=2, nic=nic))
    return world, flooder, sink


@pytest.mark.parametrize("policy", ["drop", "nack"])
def test_admission_bounds_unexpected_queue(policy):
    threshold = 8
    world, flooder, sink = _flood_world(policy, threshold=threshold)
    world.run({0: flooder, 1: sink}, deadline_us=500_000)
    receiver = world.nics[1]
    assert receiver.admission is not None
    assert receiver.admission.refused > 0
    assert receiver.admission.threshold == threshold
    # held + backlog share the budget, so the queue itself may overshoot
    # only by one reorder-flush run (< threshold)
    assert receiver.unexpected_q.max_length <= 2 * threshold
    # every message was eventually delivered and matched
    assert len(receiver.unexpected_q) == 0


def test_nack_policy_preserves_retry_budget():
    """NACK_BUSY is liveness proof: a full receiver must never exhaust a
    sender's retries, no matter how long the flood outlasts the budget."""
    world, flooder, sink = _flood_world("nack", threshold=4, messages=96)
    world.run({0: flooder, 1: sink}, deadline_us=500_000)
    sender = world.nics[0]
    assert sender.reliability.busy_deferrals > 0
    # refused-then-retried packets never count against max_retries
    for record in sender.reliability._unacked.values():
        assert record.retries <= sender.config.reliability.max_retries


def test_drop_policy_spends_retry_budget():
    """The drop policy recovers via sender timeouts, which *do* consume
    retries -- a flood that outlasts the budget kills the sender."""
    world, flooder, sink = _flood_world(
        "drop", threshold=2, messages=256, burst=256
    )
    with pytest.raises(RetryExhaustedError):
        world.run({0: flooder, 1: sink}, deadline_us=500_000)


def test_admission_head_exemption_prevents_livelock():
    """The in-order head must stay admissible while the reorder buffer
    holds its successors (the `held == threshold` livelock)."""
    world, flooder, sink = _flood_world("nack", threshold=4, messages=64,
                                        burst=64)
    # completing at all is the assertion: without the head exemption this
    # configuration wedges with an empty queue and a full reorder buffer
    world.run({0: flooder, 1: sink}, deadline_us=500_000)
    receiver = world.nics[1]
    assert len(receiver.unexpected_q) == 0
    assert receiver.admission.refused > 0


def test_admission_counters_and_occupancy():
    nic = dataclasses.replace(
        NicConfig.baseline(),
        qdisc=QdiscConfig(max_unexpected=4, admission_policy="drop"),
        reliability=ReliabilityConfig(enabled=True),
    )
    world = MpiWorld(WorldConfig(num_ranks=2, nic=nic))
    receiver = world.nics[1]
    admission = receiver.admission
    assert isinstance(admission, AdmissionControl)
    assert admission.policy == "drop" and admission.threshold == 4
    # no admission object without the feature
    plain = MpiWorld(WorldConfig(num_ranks=2, nic=NicConfig.baseline()))
    assert plain.nics[0].admission is None
