"""Tests for the pluggable match-backend layer (registry + protocol)."""

import pytest

from repro.nic.backends import (
    AlpuMatchBackend,
    HashTableBackend,
    ListSearchBackend,
    backend_spec,
    create_backend,
    register_backend,
    registered_backends,
    unregister_backend,
)
from repro.nic.firmware import FirmwareConfig
from repro.nic.nic import NicConfig
from repro.workloads.pingpong import PingPongParams, run_pingpong


def test_stock_backends_are_registered():
    assert set(registered_backends()) >= {"list", "hash", "alpu"}
    assert backend_spec("list").factory is ListSearchBackend
    assert backend_spec("hash").factory is HashTableBackend
    assert backend_spec("alpu").factory is AlpuMatchBackend
    assert not backend_spec("list").needs_alpu
    assert not backend_spec("hash").needs_alpu
    assert backend_spec("alpu").needs_alpu


def test_unknown_backend_rejected_everywhere():
    with pytest.raises(ValueError, match="unknown matching engine"):
        backend_spec("tcam")
    with pytest.raises(ValueError, match="unknown matching engine"):
        FirmwareConfig(matching="tcam")
    with pytest.raises(ValueError, match="unknown matching engine"):
        create_backend("tcam")


def test_duplicate_registration_rejected_without_replace():
    with pytest.raises(ValueError, match="already registered"):
        register_backend("list", ListSearchBackend)


def test_firmware_config_backcompat():
    # the legacy string values and the use_alpu flag resolve as before
    assert FirmwareConfig(matching="list").backend_name == "list"
    assert FirmwareConfig(matching="hash").backend_name == "hash"
    assert FirmwareConfig(use_alpu=True).backend_name == "alpu"
    assert FirmwareConfig(use_alpu=True, matching="list").backend_name == "alpu"
    with pytest.raises(ValueError, match="conflicts with use_alpu=True"):
        FirmwareConfig(use_alpu=True, matching="hash")


def test_needs_alpu_drives_nic_assembly():
    from repro.mpi.world import MpiWorld, WorldConfig

    software = MpiWorld(WorldConfig(num_ranks=2, nic=NicConfig.baseline()))
    assert software.nics[0].alpu_devices == ()
    assert software.nics[0].posted_driver is None

    hardware = MpiWorld(
        WorldConfig(num_ranks=2, nic=NicConfig.with_backend("alpu"))
    )
    assert len(hardware.nics[0].alpu_devices) == 2
    assert hardware.nics[0].posted_driver is not None


class TracingToyBackend(ListSearchBackend):
    """List search that counts protocol calls -- a minimal third engine."""

    name = "toy"
    calls = None  # set per-registration by the test

    def match_arrival(self, request):
        type(self).calls["match_arrival"] += 1
        return (yield from super().match_arrival(request))

    def consume_unexpected(self, request):
        type(self).calls["consume_unexpected"] += 1
        return (yield from super().consume_unexpected(request))


def test_custom_backend_runs_end_to_end():
    TracingToyBackend.calls = {"match_arrival": 0, "consume_unexpected": 0}
    register_backend("toy", TracingToyBackend)
    try:
        nic = NicConfig.with_backend("toy")
        assert nic.firmware.backend_name == "toy"
        result = run_pingpong(nic, PingPongParams(iterations=3, warmup=1))
        assert len(result.latencies_ns) == 3
        assert all(ns > 0 for ns in result.latencies_ns)
        # the firmware routed its matching work through the toy engine
        assert TracingToyBackend.calls["match_arrival"] > 0
        assert TracingToyBackend.calls["consume_unexpected"] > 0
    finally:
        unregister_backend("toy")
    with pytest.raises(ValueError, match="unknown matching engine"):
        FirmwareConfig(matching="toy")


def test_custom_backend_matches_list_timing():
    """A subclass that adds no cost must reproduce list timing exactly."""
    TracingToyBackend.calls = {"match_arrival": 0, "consume_unexpected": 0}
    register_backend("toy", TracingToyBackend)
    try:
        params = PingPongParams(iterations=4, warmup=1)
        baseline = run_pingpong(NicConfig.baseline(), params)
        toy = run_pingpong(NicConfig.with_backend("toy"), params)
        assert toy.latencies_ns == baseline.latencies_ns
    finally:
        unregister_backend("toy")
